#!/usr/bin/env bash
# CI gate for axmlx: warnings-as-errors build, full test suite, project
# linter (plus a machine-readable `axmlx_lint --json` artifact), a perf
# smoke stage (which includes the bench_obs_overhead flight-recorder budget
# gate), an end-to-end forensics render, the fault-injection suites under
# ASan/UBSan, and finally the fault+mvcc suites under TSan
# (-DAXMLX_SANITIZE=thread). Exits non-zero on the first failure. See
# DESIGN.md §6b.
#
# The perf smoke stage runs the hot-path benches with --smoke and diffs
# their reports against the committed smoke baselines in
# bench/baselines/smoke/. By default the diff is report-only; set
# CHECK_PERF=1 to also fail the gate when ops/sec regresses by more than
# 30% (smoke runs on shared machines are noisy, so the gate is opt-in).
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"
JOBS="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n=== %s ===\n' "$*"; }

step "configure + build (-DAXMLX_WERROR=ON)"
cmake -B "$BUILD_DIR" -S . -DAXMLX_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"

step "full test suite"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

step "static analysis (ctest -L lint)"
ctest --test-dir "$BUILD_DIR" -L lint --output-on-failure

step "static analysis artifact (axmlx_lint --json src)"
# Machine-readable findings for CI archival; a non-empty array exits 1 and
# fails the gate. CHECK_LINT_JSON overrides the artifact path.
LINT_JSON="${CHECK_LINT_JSON:-$BUILD_DIR/lint-findings.json}"
"$BUILD_DIR/tools/axmlx_lint" --json src > "$LINT_JSON"
echo "lint findings artifact: $LINT_JSON"

step "bench smoke (--smoke reports validated by axmlx_report --check)"
BUILD_ABS="$(cd "$BUILD_DIR" && pwd)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
(
  cd "$SMOKE_DIR"
  for bench in "$BUILD_ABS"/bench/bench_*; do
    [ -x "$bench" ] || continue
    "$bench" --smoke
  done
  reports=(BENCH_*.json)
  if [ ! -e "${reports[0]}" ]; then
    echo "FAIL: no BENCH_*.json reports produced by the smoke run" >&2
    exit 1
  fi
  "$BUILD_ABS/tools/axmlx_report" --check BENCH_*.json
)

step "perf smoke (axmlx_report --diff vs bench/baselines/smoke)"
REPO_ABS="$(pwd)"
(
  cd "$SMOKE_DIR"
  for baseline in "$REPO_ABS"/bench/baselines/smoke/BENCH_*.json; do
    [ -e "$baseline" ] || continue
    report="$(basename "$baseline")"
    if [ ! -e "$report" ]; then
      echo "FAIL: smoke run produced no $report to diff against $baseline" >&2
      exit 1
    fi
    if [ "${CHECK_PERF:-0}" = "1" ]; then
      "$BUILD_ABS/tools/axmlx_report" --diff "$baseline" "$report" \
        --regress-pct 30
    else
      "$BUILD_ABS/tools/axmlx_report" --diff "$baseline" "$report"
    fi
  done
)

step "forensics (sabotaged drill -> black box -> axmlx_report --forensics)"
FORENSICS_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$FORENSICS_DIR"' EXIT
AXMLX_FORENSICS_OUT="$FORENSICS_DIR" "$BUILD_ABS/tests/forensics_test"
dumps=("$FORENSICS_DIR"/*/forensics/forensic-*.json)
if [ ! -e "${dumps[0]}" ]; then
  echo "FAIL: forensics_test left no forensic-*.json under $FORENSICS_DIR" >&2
  exit 1
fi
"$BUILD_ABS/tools/axmlx_report" --forensics "${dumps[@]}"

step "trace (axmlx-trace-v1 export, --check partition gate, --critical-path)"
# The bench smoke run left Perfetto-loadable TRACE_*.json artifacts beside
# the BENCH reports; --check enforces the phase-partition invariant on each
# and --critical-path proves the dominator pipeline renders. The forensics
# dump from the previous stage round-trips through --trace into the same
# checkable format.
traces=("$SMOKE_DIR"/TRACE_*.json)
if [ ! -e "${traces[0]}" ]; then
  echo "FAIL: bench smoke run produced no TRACE_*.json artifacts" >&2
  exit 1
fi
"$BUILD_ABS/tools/axmlx_report" --check "${traces[@]}"
"$BUILD_ABS/tools/axmlx_report" --critical-path "${traces[@]}" > /dev/null
"$BUILD_ABS/tools/axmlx_report" --trace "$FORENSICS_DIR/trace.json" \
  "${dumps[0]}"
"$BUILD_ABS/tools/axmlx_report" --check "$FORENSICS_DIR/trace.json"

step "sanitizer build (-DAXMLX_SANITIZE=ON) + fault-labeled suites"
SAN_DIR="$BUILD_DIR-asan"
cmake -B "$SAN_DIR" -S . -DAXMLX_WERROR=ON -DAXMLX_SANITIZE=ON
cmake --build "$SAN_DIR" -j "$JOBS" \
  --target fault_injection_test fault_drill_test forensics_test
ctest --test-dir "$SAN_DIR" -L fault --output-on-failure -j "$JOBS"

step "sanitizer isolation matrix (ctest -L mvcc)"
# The MVCC interleaving matrix under ASan: version-chain bookkeeping,
# conflict-triggered rollback+compensation, and pruning are exactly the
# paths where a stale Node* or double-free would hide.
cmake --build "$SAN_DIR" -j "$JOBS" --target isolation_matrix_test
ctest --test-dir "$SAN_DIR" -L mvcc --output-on-failure -j "$JOBS"

step "thread sanitizer (-DAXMLX_SANITIZE=thread) + fault/mvcc/runtime suites"
# TSan is the dynamic half of the concurrency scaffolding for the
# worker-pool runtime (DESIGN.md §11); the static half is lint R9 +
# clang -Wthread-safety. The runtime suites drive real worker threads
# through the wave protocol — unit coverage plus the differential oracle
# (parallel vs deterministic at 1/2/4/8 workers) — so a data race in the
# hand-off or in a work stage's shared-state reads fires here.
TSAN_DIR="$BUILD_DIR-tsan"
cmake -B "$TSAN_DIR" -S . -DAXMLX_WERROR=ON -DAXMLX_SANITIZE=thread
cmake --build "$TSAN_DIR" -j "$JOBS" \
  --target fault_injection_test fault_drill_test forensics_test \
           isolation_matrix_test runtime_test runtime_diff_test
ctest --test-dir "$TSAN_DIR" -L 'fault|mvcc|runtime' --output-on-failure \
  -j "$JOBS"

step "OK: all gates passed"
