#ifndef AXMLX_SERVICE_REPOSITORY_H_
#define AXMLX_SERVICE_REPOSITORY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "axml/materializer.h"
#include "axml/service_call.h"
#include "baseline/locked_executor.h"
#include "common/rng.h"
#include "common/status.h"
#include "compensation/compensation.h"
#include "ops/executor.h"
#include "ops/op_log.h"
#include "overlay/network.h"
#include "xml/document.h"

namespace axmlx::service {

/// Declaration of one service hosted by a peer.
///
/// AXML services are "Web services defined as queries/updates over AXML
/// documents" (paper §1): `ops` is the list of operation templates executed
/// over the hosted document `document`. `${param}` placeholders in locations
/// and data are substituted from the invocation parameters.
///
/// The distributed/nested structure of the paper's Figure 1 is captured by
/// `subcalls`: executing this service additionally requires invoking the
/// listed services on other peers ("distributed nesting", §1). Subcalls are
/// driven by the transaction layer, not by the local executor.
struct ServiceDefinition {
  std::string name;

  /// Target hosted document for `ops` (empty if the service is native-only).
  std::string document;

  /// Operation templates executed in order against `document`.
  std::vector<ops::Operation> ops;

  /// Nested invocations on other peers, issued while processing this
  /// service (Fig. 1: S3 invokes S4 and S5 on AP4/AP5).
  struct SubCall {
    overlay::PeerId peer;
    std::string service;
    /// Fault handlers for this embedded call (§3.2): catch/catchAll, with
    /// optional retry against the same peer or a replica. An empty list
    /// means faults propagate (backward recovery).
    std::vector<axml::FaultHandler> handlers;
    /// Invocation parameters forwarded to the child (templated like ops).
    std::vector<std::pair<std::string, std::string>> params;
  };
  std::vector<SubCall> subcalls;

  /// Simulated execution time in ticks (excludes subcall time).
  overlay::Tick duration = 1;

  /// Failure injection for experiments: probability that an invocation of
  /// this service faults with `fault_name`. The decision is made by the
  /// hosting transactional peer (not by ServiceHost), so the timing below
  /// can be honoured.
  double fault_probability = 0.0;
  std::string fault_name = "InjectedFault";
  /// When true the fault strikes after the local work and all subcalls have
  /// completed — the paper's Figure 1 timing, where AP5 fails "while
  /// processing the service S5" with S6 already invoked, so the abort must
  /// cascade to AP6. When false the fault strikes right after local work.
  bool fault_after_subcalls = false;

  /// Optional native handler (simulates a generic Web service). When set,
  /// it runs instead of `ops` and produces the result fragment directly.
  std::function<Result<axml::ServiceResponse>(const axml::ServiceRequest&)>
      native;
};

/// Result of executing a service locally on its hosting peer.
struct InvocationOutcome {
  /// Result fragment returned to the invoker (children of the root are the
  /// result nodes; query services return copies of selected nodes).
  std::unique_ptr<xml::Document> result_fragment;

  /// The dynamically constructed compensating-service definition, returned
  /// "along with the invocation results" for peer-independent compensation
  /// (§3.2): executing it on this peer undoes this invocation.
  comp::CompensationPlan compensation;

  /// Full effects, retained by the hosting peer for local (peer-dependent)
  /// compensation.
  ops::OpLog effects;

  /// The paper's cost measure for this invocation.
  size_t nodes_affected = 0;
};

/// Per-peer storage and service registry: "AXML peers: nodes where the AXML
/// documents and services are hosted" (§1).
class Repository {
 public:
  Repository() = default;
  Repository(const Repository&) = delete;
  Repository& operator=(const Repository&) = delete;

  /// Hosts `doc` under its root element's name.
  Status AddDocument(std::unique_ptr<xml::Document> doc);

  /// Hosts or replaces `doc` (used by eager replication: a peer pushes its
  /// document state to its replica after each service execution, §1).
  void PutDocument(std::unique_ptr<xml::Document> doc);
  xml::Document* GetDocument(const std::string& name);
  const xml::Document* GetDocument(const std::string& name) const;
  std::vector<std::string> DocumentNames() const;

  Status AddService(ServiceDefinition service);
  /// Adds or replaces a service definition.
  void PutService(ServiceDefinition service);
  const ServiceDefinition* FindService(const std::string& name) const;
  std::vector<std::string> ServiceNames() const;

 private:
  std::map<std::string, std::unique_ptr<xml::Document>> documents_;
  std::map<std::string, ServiceDefinition> services_;
};

/// Substitutes `${name}` placeholders in `text` from `params`. Values are
/// inserted verbatim; query literals should be written pre-quoted in the
/// template, e.g. `where p/name = "${name}"`.
std::string SubstituteParams(
    const std::string& text,
    const std::vector<std::pair<std::string, std::string>>& params);

/// Executes services against a repository's documents and constructs their
/// compensating-service definitions.
class ServiceHost {
 public:
  /// `repo` must outlive the host. `downstream` resolves embedded
  /// service-call materializations encountered while executing operations
  /// (may be null to forbid them). `rng` drives fault injection (may be
  /// null for no faults).
  ServiceHost(Repository* repo, axml::ServiceInvoker downstream, Rng* rng)
      : repo_(repo), downstream_(std::move(downstream)), rng_(rng) {}

  /// Enables XPath locking (the concurrency-control baseline, after [5])
  /// for invocations carrying a nonzero lock id. `locks` is not owned and
  /// must outlive the host. Lock conflicts surface as kServiceFault
  /// "LockConflict: ..." so the recovery machinery treats them like any
  /// application fault. The caller releases a transaction's locks at its
  /// resolution via `locks->ReleaseAll(lock_id)`.
  void EnableLocking(baseline::PathLockManager* locks) { locks_ = locks; }

  /// Executes service `name` with `params`. On success the outcome carries
  /// results plus the compensating-service definition. Service faults are
  /// returned as kServiceFault ("<fault_name>: ..."). `lock_id` != 0 runs
  /// the operations under path locks when locking is enabled.
  Result<InvocationOutcome> Invoke(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& params,
      int64_t lock_id = 0);

 private:
  Repository* repo_;
  axml::ServiceInvoker downstream_;
  Rng* rng_;
  baseline::PathLockManager* locks_ = nullptr;
};

}  // namespace axmlx::service

#endif  // AXMLX_SERVICE_REPOSITORY_H_
