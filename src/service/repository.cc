#include "service/repository.h"

#include <utility>

#include "xml/builder.h"

namespace axmlx::service {

Status Repository::AddDocument(std::unique_ptr<xml::Document> doc) {
  const xml::Node* root = doc->Find(doc->root());
  std::string name = root->name;
  if (documents_.count(name) > 0) {
    return AlreadyExists("Repository already hosts a document named " + name);
  }
  documents_[name] = std::move(doc);
  return Status::Ok();
}

void Repository::PutDocument(std::unique_ptr<xml::Document> doc) {
  const xml::Node* root = doc->Find(doc->root());
  documents_[root->name] = std::move(doc);
}

xml::Document* Repository::GetDocument(const std::string& name) {
  auto it = documents_.find(name);
  return it == documents_.end() ? nullptr : it->second.get();
}

const xml::Document* Repository::GetDocument(const std::string& name) const {
  auto it = documents_.find(name);
  return it == documents_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Repository::DocumentNames() const {
  std::vector<std::string> names;
  names.reserve(documents_.size());
  for (const auto& [name, doc] : documents_) names.push_back(name);
  return names;
}

Status Repository::AddService(ServiceDefinition service) {
  if (services_.count(service.name) > 0) {
    return AlreadyExists("Repository already hosts a service named " +
                         service.name);
  }
  services_[service.name] = std::move(service);
  return Status::Ok();
}

void Repository::PutService(ServiceDefinition service) {
  services_[service.name] = std::move(service);
}

const ServiceDefinition* Repository::FindService(
    const std::string& name) const {
  auto it = services_.find(name);
  return it == services_.end() ? nullptr : &it->second;
}

std::vector<std::string> Repository::ServiceNames() const {
  std::vector<std::string> names;
  names.reserve(services_.size());
  for (const auto& [name, def] : services_) names.push_back(name);
  return names;
}

std::string SubstituteParams(
    const std::string& text,
    const std::vector<std::pair<std::string, std::string>>& params) {
  std::string out = text;
  for (const auto& [key, value] : params) {
    std::string token = "${" + key + "}";
    size_t pos = 0;
    while ((pos = out.find(token, pos)) != std::string::npos) {
      out.replace(pos, token.size(), value);
      pos += value.size();
    }
  }
  return out;
}

Result<InvocationOutcome> ServiceHost::Invoke(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& params,
    int64_t lock_id) {
  const ServiceDefinition* service = repo_->FindService(name);
  if (service == nullptr) {
    return NotFound("peer does not host a service named " + name);
  }
  InvocationOutcome outcome;
  outcome.result_fragment = std::make_unique<xml::Document>("result");

  if (service->native) {
    axml::ServiceRequest request;
    request.method_name = name;
    request.params = params;
    AXMLX_ASSIGN_OR_RETURN(axml::ServiceResponse response,
                           service->native(request));
    if (response.fragment != nullptr) {
      const xml::Node* frag_root =
          response.fragment->Find(response.fragment->root());
      for (xml::NodeId c : frag_root->children) {
        AXMLX_ASSIGN_OR_RETURN(
            xml::NodeId copy,
            outcome.result_fragment->ImportSubtree(*response.fragment, c));
        AXMLX_RETURN_IF_ERROR(outcome.result_fragment->AppendChild(
            outcome.result_fragment->root(), copy));
      }
    }
    return outcome;
  }

  xml::Document* doc = repo_->GetDocument(service->document);
  if (doc == nullptr) {
    return NotFound("service " + name + " targets unknown document '" +
                    service->document + "'");
  }
  ops::Executor executor(doc, downstream_);
  // The locking baseline (when enabled) runs the forward operations under
  // path locks; compensation runs through the plain executor, covered by
  // the locks the transaction already holds.
  const bool locking = locks_ != nullptr && lock_id != 0;
  baseline::LockedExecutor locked(doc, downstream_, locks_);
  for (const auto& [key, value] : params) {
    executor.SetExternal(key, value);
    locked.SetExternal(key, value);
  }
  for (const ops::Operation& op_template : service->ops) {
    ops::Operation op = op_template;
    op.location = SubstituteParams(op.location, params);
    op.data_xml = SubstituteParams(op.data_xml, params);
    auto effect_or = locking ? locked.Execute(lock_id, op)
                             : executor.Execute(op);
    if (!effect_or.ok() &&
        effect_or.status().code() == StatusCode::kConflict) {
      comp::CompensationPlan partial =
          comp::CompensationBuilder::ForLog(outcome.effects);
      Status undo = comp::ApplyPlan(&executor, partial);
      if (!undo.ok()) {
        // The partial rollback itself failed: the document now holds a
        // half-applied invocation, which is worse than the conflict.
        return Internal("partial rollback failed after LockConflict: " +
                        undo.ToString());
      }
      return ServiceFault("LockConflict: " + effect_or.status().message());
    }
    if (!effect_or.ok()) {
      // Undo this service's earlier operations before reporting the fault:
      // the service invocation itself is atomic on its hosting peer.
      comp::CompensationPlan partial =
          comp::CompensationBuilder::ForLog(outcome.effects);
      Status undo = comp::ApplyPlan(&executor, partial);
      if (!undo.ok()) {
        return Internal("partial rollback failed after " +
                        effect_or.status().ToString() + ": " +
                        undo.ToString());
      }
      return effect_or.status();
    }
    ops::OpEffect effect = std::move(effect_or).value();
    // Copy query results / inserted nodes into the result fragment.
    if (op.type == ops::ActionType::kQuery) {
      for (xml::NodeId id : effect.query_result.AllSelected()) {
        AXMLX_ASSIGN_OR_RETURN(xml::NodeId copy,
                               outcome.result_fragment->ImportSubtree(*doc, id));
        AXMLX_RETURN_IF_ERROR(outcome.result_fragment->AppendChild(
            outcome.result_fragment->root(), copy));
      }
    } else {
      for (xml::NodeId id : effect.inserted) {
        xml::NodeId ack = xml::AddElement(outcome.result_fragment.get(),
                                          outcome.result_fragment->root(),
                                          "inserted");
        AXMLX_RETURN_IF_ERROR(outcome.result_fragment->SetAttribute(
            ack, "id", std::to_string(id)));
      }
    }
    outcome.effects.Append(std::move(effect));
  }
  outcome.nodes_affected = outcome.effects.TotalNodesAffected();
  outcome.compensation = comp::CompensationBuilder::ForLog(outcome.effects);
  return outcome;
}

}  // namespace axmlx::service
