#ifndef AXMLX_SERVICE_DESCRIPTION_H_
#define AXMLX_SERVICE_DESCRIPTION_H_

#include <string>

#include "common/status.h"
#include "service/repository.h"

namespace axmlx::service {

/// Generates a WSDL-like XML description of a hosted service ("Note that
/// AXML services are also exposed as a regular Web service (with a WSDL
/// description file)", paper §1). The description covers the operation
/// templates, parameters referenced via ${...} placeholders, subcalls, and
/// failure characteristics — enough for a remote peer to reason about
/// invoking (and compensating) the service.
///
/// <service name="getPoints" document="PointsDB" duration="3">
///   <parameters><parameter name="name"/></parameters>
///   <operations><operation index="0" type="query">...</operation></operations>
///   <subcalls><subcall peer="AP4" service="S4" handlers="1"/></subcalls>
/// </service>
std::string DescribeService(const ServiceDefinition& def);

/// Describes every service a repository hosts, wrapped in
/// `<services peer="...">`.
std::string DescribeRepository(const Repository& repo,
                               const std::string& peer_id);

/// Extracts the `${...}` parameter names referenced by a service's
/// operation templates (deduplicated, in first-use order).
std::vector<std::string> ReferencedParameters(const ServiceDefinition& def);

}  // namespace axmlx::service

#endif  // AXMLX_SERVICE_DESCRIPTION_H_
