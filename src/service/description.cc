#include "service/description.h"

#include <sstream>

#include "common/strings.h"

namespace axmlx::service {

namespace {

void CollectParams(const std::string& text, std::vector<std::string>* out) {
  size_t pos = 0;
  while ((pos = text.find("${", pos)) != std::string::npos) {
    size_t end = text.find('}', pos + 2);
    if (end == std::string::npos) break;
    std::string name = text.substr(pos + 2, end - pos - 2);
    bool seen = false;
    for (const std::string& existing : *out) seen = seen || existing == name;
    if (!seen) out->push_back(name);
    pos = end + 1;
  }
}

}  // namespace

std::vector<std::string> ReferencedParameters(const ServiceDefinition& def) {
  std::vector<std::string> out;
  for (const ops::Operation& op : def.ops) {
    CollectParams(op.location, &out);
    CollectParams(op.data_xml, &out);
  }
  return out;
}

std::string DescribeService(const ServiceDefinition& def) {
  std::ostringstream os;
  os << "<service name=\"" << XmlEscape(def.name) << "\"";
  if (!def.document.empty()) {
    os << " document=\"" << XmlEscape(def.document) << "\"";
  }
  os << " duration=\"" << def.duration << "\"";
  if (def.native) os << " native=\"true\"";
  if (def.fault_probability > 0) {
    os << " faultName=\"" << XmlEscape(def.fault_name) << "\"";
  }
  os << ">";
  std::vector<std::string> params = ReferencedParameters(def);
  if (!params.empty()) {
    os << "<parameters>";
    for (const std::string& p : params) {
      os << "<parameter name=\"" << XmlEscape(p) << "\"/>";
    }
    os << "</parameters>";
  }
  if (!def.ops.empty()) {
    os << "<operations>";
    for (size_t i = 0; i < def.ops.size(); ++i) {
      os << "<operation index=\"" << i << "\" type=\""
         << ops::ActionTypeName(def.ops[i].type) << "\">"
         << XmlEscape(def.ops[i].location) << "</operation>";
    }
    os << "</operations>";
  }
  if (!def.subcalls.empty()) {
    os << "<subcalls>";
    for (const ServiceDefinition::SubCall& sub : def.subcalls) {
      os << "<subcall peer=\"" << XmlEscape(sub.peer) << "\" service=\""
         << XmlEscape(sub.service) << "\" handlers=\""
         << sub.handlers.size() << "\"/>";
    }
    os << "</subcalls>";
  }
  os << "</service>";
  return os.str();
}

std::string DescribeRepository(const Repository& repo,
                               const std::string& peer_id) {
  std::ostringstream os;
  os << "<services peer=\"" << XmlEscape(peer_id) << "\">";
  for (const std::string& name : repo.ServiceNames()) {
    os << DescribeService(*repo.FindService(name));
  }
  os << "</services>";
  return os.str();
}

}  // namespace axmlx::service
