#ifndef AXMLX_XML_PARSER_H_
#define AXMLX_XML_PARSER_H_

#include <memory>
#include <string_view>

#include "common/status.h"
#include "xml/document.h"

namespace axmlx::xml {

struct ParseOptions {
  /// When false (the default), text nodes consisting entirely of whitespace
  /// between elements are dropped and other text is trimmed; this matches
  /// how the paper's example documents are written (indentation is layout,
  /// not data).
  bool keep_whitespace_text = false;
};

/// Parses `input` into a Document. Supports the XML subset used by AXML
/// documents: an optional `<?xml ...?>` declaration, nested elements with
/// attributes (single- or double-quoted), self-closing tags, character data
/// with the five standard entities plus numeric references, and comments.
/// DOCTYPE, CDATA and processing instructions other than the declaration
/// are rejected with a kParseError status.
Result<std::unique_ptr<Document>> Parse(std::string_view input,
                                        const ParseOptions& options = {});

}  // namespace axmlx::xml

#endif  // AXMLX_XML_PARSER_H_
