#include "xml/diff.h"

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace axmlx::xml {

namespace {

std::unordered_set<NodeId> CollectIds(const Document& doc) {
  std::unordered_set<NodeId> ids;
  doc.Walk(doc.root(), [&ids](const Node& n) {
    ids.insert(n.id);
    return true;
  });
  return ids;
}

DetachedSubtree CopySubtree(const Document& doc, NodeId root) {
  DetachedSubtree subtree;
  subtree.root = root;
  doc.Walk(root, [&subtree](const Node& n) {
    subtree.nodes.push_back(n);
    return true;
  });
  subtree.nodes.front().parent = kNullNode;
  return subtree;
}

/// Applies one diff op to `doc`.
Status ApplyOp(Document* doc, const DiffOp& op) {
  switch (op.kind) {
    case DiffOp::Kind::kRemoveSubtree:
      return doc->RemoveSubtree(op.node).status();
    case DiffOp::Kind::kInsertSubtree: {
      const Node* parent = doc->Find(op.parent);
      if (parent == nullptr) return NotFound("diff: unknown insert parent");
      size_t index = op.index > parent->children.size()
                         ? parent->children.size()
                         : op.index;
      return Reattach(doc, op.subtree, op.parent, index);
    }
    case DiffOp::Kind::kSetText:
      return doc->SetText(op.node, op.text);
    case DiffOp::Kind::kSetAttributes: {
      Node* node = doc->FindMutable(op.node);
      if (node == nullptr) return NotFound("diff: unknown attr node");
      node->attributes = op.attributes;
      return Status::Ok();
    }
    case DiffOp::Kind::kMove: {
      // Re-position: detach (ids preserved) and reinsert at the target.
      AXMLX_ASSIGN_OR_RETURN(DetachResult detached,
                             DetachSubtree(doc, op.node));
      const Node* parent = doc->Find(op.parent);
      if (parent == nullptr) return NotFound("diff: unknown move parent");
      size_t index = op.index > parent->children.size()
                         ? parent->children.size()
                         : op.index;
      return Reattach(doc, detached.subtree, op.parent, index);
    }
  }
  return Internal("diff: unknown op kind");
}

}  // namespace

size_t DocumentDiff::NodesAffected() const {
  size_t total = 0;
  for (const DiffOp& op : ops) {
    switch (op.kind) {
      case DiffOp::Kind::kInsertSubtree:
        total += op.subtree.size();
        break;
      default:
        total += 1;
    }
  }
  return total;
}

Result<DocumentDiff> ComputeDiff(const Document& from, const Document& to) {
  if (from.root() != to.root()) {
    return FailedPrecondition(
        "ComputeDiff requires versions sharing a root id (clone-derived "
        "replicas)");
  }
  std::unordered_set<NodeId> from_ids = CollectIds(from);
  std::unordered_set<NodeId> to_ids = CollectIds(to);
  DocumentDiff diff;

  // Phase A — removes: from-only subtree roots whose parent survives.
  from.Walk(from.root(), [&](const Node& n) {
    if (to_ids.count(n.id) > 0) return true;
    if (n.parent != kNullNode && to_ids.count(n.parent) > 0) {
      DiffOp op;
      op.kind = DiffOp::Kind::kRemoveSubtree;
      op.node = n.id;
      diff.ops.push_back(std::move(op));
    }
    return false;  // descendants are covered by this removal
  });

  // Phase B — inserts: to-only subtree roots under surviving parents.
  to.Walk(to.root(), [&](const Node& n) {
    if (from_ids.count(n.id) > 0) return true;
    if (n.parent != kNullNode && from_ids.count(n.parent) > 0) {
      DiffOp op;
      op.kind = DiffOp::Kind::kInsertSubtree;
      op.parent = n.parent;
      op.index = to.IndexInParent(n.id);
      op.subtree = CopySubtree(to, n.id);
      op.node = n.id;
      diff.ops.push_back(std::move(op));
    }
    return false;
  });

  // Phase C — content updates on shared nodes.
  to.Walk(to.root(), [&](const Node& n) {
    if (from_ids.count(n.id) == 0) return false;
    const Node* old_node = from.Find(n.id);
    if (n.type != old_node->type || n.name != old_node->name) {
      // Ids are never recycled across types/names in this system; treat a
      // mismatch as replace.
      DiffOp remove;
      remove.kind = DiffOp::Kind::kRemoveSubtree;
      remove.node = n.id;
      diff.ops.push_back(std::move(remove));
      DiffOp insert;
      insert.kind = DiffOp::Kind::kInsertSubtree;
      insert.parent = n.parent;
      insert.index = to.IndexInParent(n.id);
      insert.subtree = CopySubtree(to, n.id);
      insert.node = n.id;
      diff.ops.push_back(std::move(insert));
      return false;
    }
    if (!n.is_element() && n.text != old_node->text) {
      DiffOp op;
      op.kind = DiffOp::Kind::kSetText;
      op.node = n.id;
      op.text = n.text;
      diff.ops.push_back(std::move(op));
    }
    if (n.is_element() && n.attributes != old_node->attributes) {
      DiffOp op;
      op.kind = DiffOp::Kind::kSetAttributes;
      op.node = n.id;
      op.attributes = n.attributes;
      diff.ops.push_back(std::move(op));
    }
    return true;
  });

  // Phase D — ordering/reparenting: simulate the script so far on a scratch
  // copy of `from`, then walk `to` pre-order and emit the moves needed to
  // make every element's child list match exactly.
  std::unique_ptr<Document> sim = from.Clone();
  for (const DiffOp& op : diff.ops) {
    AXMLX_RETURN_IF_ERROR(ApplyOp(sim.get(), op));
  }
  std::vector<NodeId> shared_elements;
  to.Walk(to.root(), [&](const Node& n) {
    if (n.is_element() && sim->Contains(n.id)) {
      shared_elements.push_back(n.id);
    }
    return true;
  });
  for (NodeId elem : shared_elements) {
    const Node* want = to.Find(elem);
    for (size_t i = 0; i < want->children.size(); ++i) {
      NodeId expected = want->children[i];
      const Node* sim_elem = sim->Find(elem);
      if (sim_elem == nullptr) break;
      if (i < sim_elem->children.size() && sim_elem->children[i] == expected) {
        continue;
      }
      if (!sim->Contains(expected)) {
        return Internal("diff: node " + std::to_string(expected) +
                        " missing after structural phases");
      }
      DiffOp op;
      op.kind = DiffOp::Kind::kMove;
      op.node = expected;
      op.parent = elem;
      op.index = i;
      AXMLX_RETURN_IF_ERROR(ApplyOp(sim.get(), op));
      diff.ops.push_back(std::move(op));
    }
  }
  return diff;
}

Status ApplyDiff(Document* doc, const DocumentDiff& diff) {
  for (const DiffOp& op : diff.ops) {
    AXMLX_RETURN_IF_ERROR(ApplyOp(doc, op));
  }
  return Status::Ok();
}

}  // namespace axmlx::xml
