#ifndef AXMLX_XML_DOCUMENT_H_
#define AXMLX_XML_DOCUMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "xml/node.h"

namespace axmlx::xml {

/// An in-memory XML tree with stable node ids and ordered children.
///
/// `Document` is the storage substrate for AXML repositories: every peer in
/// the simulated overlay hosts its documents as `Document` instances, and
/// all operations (query / insert / delete / replace, plus service-call
/// materializations) are edits against a `Document`.
///
/// A `Document` is also used to represent free-standing *fragments*: the
/// `<data>` payload of an insert operation, a deleted subtree captured in
/// the compensation log, or a service invocation result. A fragment is
/// simply a document whose root carries the fragment's top-level nodes.
///
/// Not thread-safe; the discrete-event simulator is single-threaded.
class Document {
 public:
  /// Creates an empty document with a root element named `root_name`.
  explicit Document(const std::string& root_name = "root");

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  /// Deep copy (fresh ids are NOT assigned: ids are preserved so that
  /// snapshots taken for tests compare structurally AND positionally).
  std::unique_ptr<Document> Clone() const;

  NodeId root() const { return root_; }

  /// Returns the node or nullptr if the id is unknown (e.g. deleted).
  const Node* Find(NodeId id) const;

  /// Mutable access for internal editors. Prefer the typed mutators below.
  Node* FindMutable(NodeId id);

  /// True if `id` identifies a live node of this document.
  bool Contains(NodeId id) const { return Find(id) != nullptr; }

  // --- Node creation -------------------------------------------------------

  /// Creates a detached element node; attach it with AppendChild/InsertAt.
  NodeId CreateElement(const std::string& name);

  /// Creates a detached text node.
  NodeId CreateText(const std::string& text);

  /// Creates a detached comment node.
  NodeId CreateComment(const std::string& text);

  // --- Tree mutation -------------------------------------------------------

  /// Appends detached node `child` as the last child of `parent`.
  Status AppendChild(NodeId parent, NodeId child);

  /// Inserts detached node `child` under `parent` at position `index`
  /// (0 = first; index == children.size() appends). The paper notes that
  /// compensating a delete in an *ordered* document needs insertion at a
  /// specific position (§3.1) — this is that primitive.
  Status InsertAt(NodeId parent, size_t index, NodeId child);

  /// Detaches and destroys the subtree rooted at `id`. Returns the former
  /// parent and position so callers (the op log) can build the inverse.
  struct RemovedInfo {
    NodeId parent = kNullNode;
    size_t index = 0;
  };
  Result<RemovedInfo> RemoveSubtree(NodeId id);

  /// Sets the text of a text node.
  Status SetText(NodeId id, const std::string& text);

  /// Sets (adds or overwrites) an attribute on an element node.
  Status SetAttribute(NodeId id, const std::string& key,
                      const std::string& value);

  // --- Subtree copy --------------------------------------------------------

  /// Deep-copies the subtree rooted at `src_id` in `src` into this document,
  /// detached (fresh ids). Returns the new subtree root id.
  Result<NodeId> ImportSubtree(const Document& src, NodeId src_id);

  /// Extracts the subtree rooted at `id` into a new fragment document whose
  /// root's children are [the copied subtree]. Does not modify `this`.
  Result<std::unique_ptr<Document>> ExtractFragment(NodeId id) const;

  /// Re-inserts a set of node records (a previously detached subtree,
  /// root-first, with internal parent/children links intact) under `parent`
  /// at `index`, preserving the original node ids. All ids must be free;
  /// `next_id_` is advanced past the largest restored id. Used by the edit
  /// log to roll back deletions exactly (see xml/edit.h).
  Status RestoreSubtree(const std::vector<Node>& nodes, NodeId subtree_root,
                        NodeId parent, size_t index);

  // --- Introspection -------------------------------------------------------

  /// Number of live nodes (including the root).
  size_t size() const { return nodes_.size(); }

  /// Number of nodes in the subtree rooted at `id` (0 if unknown).
  size_t SubtreeSize(NodeId id) const;

  /// Index of `id` within its parent's children, or npos if detached/root.
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  size_t IndexInParent(NodeId id) const;

  /// Concatenation of all descendant text nodes, in document order.
  std::string TextContent(NodeId id) const;

  /// Pre-order traversal of the subtree rooted at `id`; `fn` returning
  /// false prunes descent into that node's children.
  void Walk(NodeId id, const std::function<bool(const Node&)>& fn) const;

  /// Human-readable slash path of `id` from the root, e.g.
  /// "/ATPList/player[0]/name". Diagnostics only.
  std::string PathOf(NodeId id) const;

  /// Serializes the subtree at `id` (default: the whole document).
  /// `pretty` adds two-space indentation and newlines.
  std::string Serialize(NodeId id = kNullNode, bool pretty = false) const;

  /// Structural equality of two subtrees (names, attributes, text, order);
  /// ignores node ids and comments.
  static bool SubtreeEquals(const Document& a, NodeId a_id, const Document& b,
                            NodeId b_id);

  /// Structural equality of whole documents.
  static bool Equals(const Document& a, const Document& b) {
    return SubtreeEquals(a, a.root(), b, b.root());
  }

 private:
  NodeId NewNode(NodeType type);
  void SerializeNode(NodeId id, bool pretty, int depth,
                     std::string* out) const;
  void DestroySubtree(NodeId id);
  NodeId ImportRec(const Document& src, NodeId src_id);

  NodeId next_id_ = 1;
  NodeId root_ = kNullNode;
  std::unordered_map<NodeId, std::unique_ptr<Node>> nodes_;
};

}  // namespace axmlx::xml

#endif  // AXMLX_XML_DOCUMENT_H_
