#ifndef AXMLX_XML_DOCUMENT_H_
#define AXMLX_XML_DOCUMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "xml/node.h"

namespace axmlx::xml {

/// A consistent read position over a versioned document (DESIGN.md §10).
///
/// `version` is the document's mutation counter captured at transaction
/// begin; reads through the view resolve every node to its state as of that
/// version. `writer` is the reading transaction's own writer tag: nodes it
/// wrote after the snapshot stay visible in their current (live) state, so
/// a transaction always reads its own writes. An inactive view reads the
/// live document (plain `Find`).
struct ReadView {
  uint64_t version = 0;  ///< Snapshot: document version at transaction begin.
  uint64_t writer = 0;   ///< Reader's writer tag (0 = read-only observer).
  bool active = false;   ///< False = live reads, no snapshot.
};

/// An in-memory XML tree with stable node ids and ordered children.
///
/// `Document` is the storage substrate for AXML repositories: every peer in
/// the simulated overlay hosts its documents as `Document` instances, and
/// all operations (query / insert / delete / replace, plus service-call
/// materializations) are edits against a `Document`.
///
/// A `Document` is also used to represent free-standing *fragments*: the
/// `<data>` payload of an insert operation, a deleted subtree captured in
/// the compensation log, or a service invocation result. A fragment is
/// simply a document whose root carries the fragment's top-level nodes.
///
/// Storage layout (DESIGN.md §8): nodes live in slab pages — fixed-size
/// arrays of `Node` — with a free list of reusable slots. A `NodeId` maps
/// to its slot through dense per-id arrays with a generation check, so
/// `Find` is two array reads, stale ids of destroyed nodes resolve to
/// nullptr, and `Node*` handles stay valid until the node is destroyed
/// (pages are never moved or shrunk). Ids are still never reused, which the
/// paper's compensation contract (§3.1) relies on.
///
/// Tag names are interned in a per-document string table (`NameId`), and an
/// incidence index `NameId -> node ids` accelerates descendant-axis query
/// steps. The index is maintained lazily: entries of destroyed or renamed
/// nodes are filtered (and compacted) on lookup.
///
/// Not thread-safe; the discrete-event simulator is single-threaded.
class Document {
 public:
  /// Creates an empty document with a root element named `root_name`.
  explicit Document(const std::string& root_name = "root");

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  /// Deep copy (fresh ids are NOT assigned: ids are preserved so that
  /// snapshots taken for tests compare structurally AND positionally).
  std::unique_ptr<Document> Clone() const;

  NodeId root() const { return root_; }

  /// Returns the node or nullptr if the id is unknown (e.g. deleted).
  const Node* Find(NodeId id) const {
    if (id == kNullNode || id >= slot_of_id_.size()) return nullptr;
    const uint32_t slot = slot_of_id_[id];
    if (slot == kInvalidSlot || slot_gen_[slot] != gen_of_id_[id]) {
      return nullptr;
    }
    return &NodeAt(slot);
  }

  /// Mutable access for internal editors. Prefer the typed mutators below.
  Node* FindMutable(NodeId id) {
    return const_cast<Node*>(std::as_const(*this).Find(id));
  }

  /// True if `id` identifies a live node of this document.
  bool Contains(NodeId id) const { return Find(id) != nullptr; }

  // --- Multi-version reads (DESIGN.md §10) ---------------------------------
  //
  // Versioning turns the slab's never-reused ids into cheap copy-on-write
  // history: every mutation first pushes the *prior* state of each touched
  // node onto that node's undo chain, tagged with the mutation's version
  // number and the current writer tag. A snapshot is just the version
  // counter captured at transaction begin; reconstructing a node at
  // snapshot S walks its chain for the oldest record newer than S. Live
  // reads stay two array reads — the chains are consulted only through
  // FindAt with an active view.

  /// Turns on version recording (idempotent). History starts empty: states
  /// from before the call cannot be reconstructed, which is fine because
  /// snapshots are always taken at or after the current version.
  void EnableVersioning() { versioning_enabled_ = true; }
  bool versioning_enabled() const { return versioning_enabled_; }

  /// Mutation counter: incremented once per recorded node-state change.
  uint64_t version() const { return version_; }

  /// Tags subsequent mutations with `writer` (a transaction's writer tag;
  /// 0 = untagged). Conflict detection and read-your-own-writes key off it.
  void SetWriter(uint64_t writer) { writer_ = writer; }
  uint64_t writer() const { return writer_; }

  /// `Find` as of `view`: the live node when unchanged since the snapshot
  /// (or last written by the view's own writer), the reconstructed prior
  /// state when another writer touched it afterwards, and nullptr when the
  /// node did not exist at the snapshot. The returned pointer stays valid
  /// until the next mutation or PruneVersionsBefore call.
  const Node* FindAt(NodeId id, const ReadView& view) const {
    if (!view.active || !versioning_enabled_) return Find(id);
    return FindVersioned(id, view);
  }

  /// Invokes `fn(version, writer)` for every retained history record of
  /// `id` with version > `since`, oldest first. Conflict detection scans
  /// these to find overlapping writers.
  void ForEachWriteSince(
      NodeId id, uint64_t since,
      const std::function<void(uint64_t version, uint64_t writer)>& fn) const;

  /// Concatenated descendant text as of `view` (live walk when inactive).
  void AppendTextContentAt(NodeId id, const ReadView& view,
                           std::string* out) const;

  /// Drops history records with version <= `min_version` — safe once no
  /// active snapshot is older than that version. Chains that empty are
  /// erased entirely, so an idle document carries no history at all.
  void PruneVersionsBefore(uint64_t min_version);

  /// Retained history records across all chains (introspection/tests).
  size_t VersionRecordCount() const;

  // --- Interned tag names --------------------------------------------------

  /// Returns the id of `name` in this document's string table, interning it
  /// on first use. Ids are stable for the document's lifetime.
  NameId InternName(std::string_view name);

  /// Returns the id of `name` if already interned, else kNoName. Lets
  /// lookups conclude "no element of this name exists here" without a scan.
  NameId FindNameId(std::string_view name) const;

  /// Spelling of an interned name (empty string for kNoName/out of range).
  const std::string& NameOf(NameId name_id) const;

  /// Number of distinct interned names.
  size_t interned_names() const { return names_.size(); }

  // --- Node creation -------------------------------------------------------

  /// Creates a detached element node; attach it with AppendChild/InsertAt.
  NodeId CreateElement(const std::string& name);

  /// Creates a detached text node.
  NodeId CreateText(const std::string& text);

  /// Creates a detached comment node.
  NodeId CreateComment(const std::string& text);

  // --- Tree mutation -------------------------------------------------------

  /// Appends detached node `child` as the last child of `parent`.
  Status AppendChild(NodeId parent, NodeId child);

  /// Inserts detached node `child` under `parent` at position `index`
  /// (0 = first; index == children.size() appends). The paper notes that
  /// compensating a delete in an *ordered* document needs insertion at a
  /// specific position (§3.1) — this is that primitive.
  Status InsertAt(NodeId parent, size_t index, NodeId child);

  /// Detaches and destroys the subtree rooted at `id`. Returns the former
  /// parent and position so callers (the op log) can build the inverse.
  struct RemovedInfo {
    NodeId parent = kNullNode;
    size_t index = 0;
  };
  Result<RemovedInfo> RemoveSubtree(NodeId id);

  /// Sets the text of a text node.
  Status SetText(NodeId id, const std::string& text);

  /// Renames an element node, keeping the interned id and tag index in sync.
  Status RenameElement(NodeId id, const std::string& name);

  /// Sets (adds or overwrites) an attribute on an element node.
  Status SetAttribute(NodeId id, const std::string& key,
                      const std::string& value);

  // --- Subtree copy --------------------------------------------------------

  /// Deep-copies the subtree rooted at `src_id` in `src` into this document,
  /// detached (fresh ids). Returns the new subtree root id.
  Result<NodeId> ImportSubtree(const Document& src, NodeId src_id);

  /// Extracts the subtree rooted at `id` into a new fragment document whose
  /// root's children are [the copied subtree]. Does not modify `this`.
  Result<std::unique_ptr<Document>> ExtractFragment(NodeId id) const;

  /// Re-inserts a set of node records (a previously detached subtree,
  /// root-first, with internal parent/children links intact) under `parent`
  /// at `index`, preserving the original node ids. All ids must be free;
  /// `next_id_` is advanced past the largest restored id. Used by the edit
  /// log to roll back deletions exactly (see xml/edit.h). Record `name`
  /// spellings are re-interned, so records may originate from another
  /// document (diff replay between replicas).
  Status RestoreSubtree(const std::vector<Node>& nodes, NodeId subtree_root,
                        NodeId parent, size_t index);

  // --- Tag index -----------------------------------------------------------

  /// Appends the ids of all live element nodes whose current name is
  /// `name_id` (attached or detached, in allocation order — NOT document
  /// order). Stale index entries are swept as a side effect — unless
  /// concurrent-read mode is on, which filters without compacting.
  void CollectElementsNamed(NameId name_id, std::vector<NodeId>* out) const;

  /// Concurrent-read mode: while on, the const read paths touch none of the
  /// document's mutable caches — CollectElementsNamed filters stale index
  /// entries without sweeping them (and without counting the sweep), and
  /// the iterative walks use local stacks instead of the shared
  /// walk-scratch buffer — so any number of threads may read one document
  /// concurrently, as the worker-pool runtime's work stages do during a
  /// wave (DESIGN.md §11). Results are identical either way; the flag only
  /// trades the single-thread allocation reuse for thread safety. Toggling
  /// is not synchronized: flip it only while no reader is in flight (the
  /// wave barrier provides that ordering).
  void SetConcurrentReads(bool on) { concurrent_reads_ = on; }
  [[nodiscard]] bool concurrent_reads() const { return concurrent_reads_; }

  // --- Introspection -------------------------------------------------------

  /// Number of live nodes (including the root).
  size_t size() const { return live_nodes_; }

  /// Number of nodes in the subtree rooted at `id` (0 if unknown).
  size_t SubtreeSize(NodeId id) const;

  /// Index of `id` within its parent's children, or npos if detached/root.
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  size_t IndexInParent(NodeId id) const;

  /// Concatenation of all descendant text nodes, in document order.
  std::string TextContent(NodeId id) const;

  /// Appends the concatenation of all descendant text nodes to `*out`.
  void AppendTextContent(NodeId id, std::string* out) const;

  /// Pre-order traversal of the subtree rooted at `id`; `fn` returning
  /// false prunes descent into that node's children.
  void Walk(NodeId id, const std::function<bool(const Node&)>& fn) const;

  /// Human-readable slash path of `id` from the root, e.g.
  /// "/ATPList/player[0]/name". Diagnostics only.
  std::string PathOf(NodeId id) const;

  /// Serializes the subtree at `id` (default: the whole document).
  /// `pretty` adds two-space indentation and newlines.
  std::string Serialize(NodeId id = kNullNode, bool pretty = false) const;

  /// Structural equality of two subtrees (names, attributes, text, order);
  /// ignores node ids and comments.
  static bool SubtreeEquals(const Document& a, NodeId a_id, const Document& b,
                            NodeId b_id);

  /// Structural equality of whole documents.
  static bool Equals(const Document& a, const Document& b) {
    return SubtreeEquals(a, a.root(), b, b.root());
  }

  /// Slab / interning counters, monotonic over the document's lifetime.
  struct StorageStats {
    int64_t nodes_allocated = 0;  ///< NewNode calls (slab slot grabs).
    int64_t nodes_freed = 0;      ///< Destroyed nodes (slots recycled).
    int64_t slots_reused = 0;     ///< Allocations served from the free list.
    int64_t pages_allocated = 0;  ///< Slab pages ever allocated.
    int64_t index_entries_swept = 0;  ///< Stale tag-index entries dropped.
    int64_t versions_recorded = 0;  ///< Undo records pushed (MVCC).
    int64_t versions_pruned = 0;    ///< Undo records garbage-collected.
  };
  const StorageStats& storage_stats() const { return storage_stats_; }

 private:
  // Slab geometry: nodes live in pages of kPageSize contiguous records, so
  // `Node*` handles never move (pages are never freed or reallocated) while
  // allocation stays mostly-contiguous and reusable through the free list.
  static constexpr uint32_t kPageBits = 9;
  static constexpr uint32_t kPageSize = 1u << kPageBits;
  static constexpr uint32_t kPageMask = kPageSize - 1;
  static constexpr uint32_t kInvalidSlot = 0xFFFFFFFFu;

  struct RawTag {};  ///< Tag for the member-copying Clone constructor.
  explicit Document(RawTag) {}

  Node& NodeAt(uint32_t slot) {
    return pages_[slot >> kPageBits][slot & kPageMask];
  }
  const Node& NodeAt(uint32_t slot) const {
    return pages_[slot >> kPageBits][slot & kPageMask];
  }

  /// Grabs a free slot (free list first, else bump allocation, growing the
  /// slab by one page when full).
  uint32_t AllocSlot();

  /// Maps `id` to `slot` in the id->slot arrays, growing them as needed and
  /// advancing next_id_ past `id`.
  void MapIdToSlot(NodeId id, uint32_t slot);

  NodeId NewNode(NodeType type);

  /// Returns `id`'s slot to the free list (generation bump + field reset so
  /// the slot's string/vector capacity is recycled).
  void FreeNode(NodeId id);

  void SerializeNode(NodeId id, bool pretty, int depth,
                     std::string* out) const;
  void DestroySubtree(NodeId id);
  NodeId ImportRec(const Document& src, NodeId src_id);

  /// One undo record: the state of a node just before the mutation numbered
  /// `version` (by `writer`) replaced it. `live == false` means the node
  /// did not exist before that mutation (creation / id-preserving restore).
  struct VersionRecord {
    uint64_t version = 0;
    uint64_t writer = 0;
    bool live = false;
    Node state;
  };

  /// Pushes the current state of `id` (or an "absent" record) onto its undo
  /// chain under a fresh version number. No-op unless versioning is on.
  /// Mutators call this immediately before changing the node.
  void RecordVersion(NodeId id);

  const Node* FindVersioned(NodeId id, const ReadView& view) const;

  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct StringEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  NodeId next_id_ = 1;
  NodeId root_ = kNullNode;
  size_t live_nodes_ = 0;

  // Slab storage + free list.
  std::vector<std::unique_ptr<Node[]>> pages_;
  uint32_t slots_used_ = 0;  ///< High-water mark of ever-touched slots.
  std::vector<uint32_t> free_slots_;
  std::vector<uint32_t> slot_gen_;  ///< [slot] -> current generation.

  // Dense id -> slot mapping with the generation captured at mapping time;
  // a mismatch means the id is stale (its node was destroyed).
  std::vector<uint32_t> slot_of_id_;
  std::vector<uint32_t> gen_of_id_;

  // Interned tag names.
  std::vector<std::string> names_;
  std::unordered_map<std::string, NameId, StringHash, StringEq> name_ids_;

  // Tag index: [NameId] -> element ids, maintained lazily (mutable so const
  // lookups can sweep stale entries in place).
  mutable std::vector<std::vector<NodeId>> name_index_;

  // MVCC state: per-node undo chains, append-ordered by version. Empty (and
  // cost-free on the mutation path) until EnableVersioning().
  bool versioning_enabled_ = false;
  uint64_t version_ = 0;
  uint64_t writer_ = 0;
  std::unordered_map<NodeId, std::vector<VersionRecord>> history_;

  mutable StorageStats storage_stats_;

  // Shared work stack for the iterative internal walks (DestroySubtree,
  // SubtreeSize, AppendTextContent). Those never nest and take no user
  // callbacks, so one buffer keeps the hot paths allocation-free. Bypassed
  // (local stacks) while concurrent_reads_ is on.
  mutable std::vector<NodeId> walk_scratch_;

  // See SetConcurrentReads(). Not guarded: toggled only across the wave
  // barrier, read by concurrent const readers in between.
  bool concurrent_reads_ = false;
};

}  // namespace axmlx::xml

#endif  // AXMLX_XML_DOCUMENT_H_
