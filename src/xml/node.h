#ifndef AXMLX_XML_NODE_H_
#define AXMLX_XML_NODE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace axmlx::xml {

/// Stable identifier of a node within its owning `Document`. Ids are never
/// reused within a document. The paper's compensation scheme relies on this:
/// "we assume that the [insert] operation returns the (unique) ID of the
/// inserted node ... the compensating operation is a delete operation to
/// delete the node having the corresponding ID" (§3.1).
using NodeId = uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kNullNode = 0;

enum class NodeType {
  kElement,
  kText,
  kComment,
};

/// A single XML node. Nodes are owned and linked by their `Document`; user
/// code manipulates them through `Document` APIs and treats `Node` as a
/// read-mostly record.
struct Node {
  NodeId id = kNullNode;
  NodeType type = NodeType::kElement;
  NodeId parent = kNullNode;

  /// Element tag name (element nodes only).
  std::string name;

  /// Text content (text and comment nodes only).
  std::string text;

  /// Attributes in document order (element nodes only).
  std::vector<std::pair<std::string, std::string>> attributes;

  /// Ordered child ids (element nodes only).
  std::vector<NodeId> children;

  bool is_element() const { return type == NodeType::kElement; }
  bool is_text() const { return type == NodeType::kText; }

  /// Returns the attribute value or nullptr if absent.
  const std::string* FindAttribute(const std::string& key) const {
    for (const auto& [k, v] : attributes) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

}  // namespace axmlx::xml

#endif  // AXMLX_XML_NODE_H_
