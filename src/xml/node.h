#ifndef AXMLX_XML_NODE_H_
#define AXMLX_XML_NODE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace axmlx::xml {

/// Stable identifier of a node within its owning `Document`. Ids are never
/// reused within a document. The paper's compensation scheme relies on this:
/// "we assume that the [insert] operation returns the (unique) ID of the
/// inserted node ... the compensating operation is a delete operation to
/// delete the node having the corresponding ID" (§3.1).
using NodeId = uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kNullNode = 0;

/// Interned tag-name id, valid within the owning `Document`'s string table
/// (see Document::InternName). Element name equality inside one document is
/// an integer compare on `Node::name_id`; the spelling in `Node::name` stays
/// authoritative for cross-document comparisons and detached node records.
using NameId = uint32_t;

/// Sentinel NameId: text/comment nodes, and "name not interned here".
inline constexpr NameId kNoName = 0xFFFFFFFFu;

/// Well-known AXML tag names, interned by every `Document` at construction
/// in this fixed order so the ids below are valid in every document and the
/// query evaluator can classify nodes without string compares.
inline constexpr NameId kNameAxmlSc = 0;        ///< "axml:sc"
inline constexpr NameId kNameAxmlParams = 1;    ///< "axml:params"
inline constexpr NameId kNameAxmlCatch = 2;     ///< "axml:catch"
inline constexpr NameId kNameAxmlCatchAll = 3;  ///< "axml:catchAll"
inline constexpr NameId kNameAxmlRetry = 4;     ///< "axml:retry"
inline constexpr NameId kNumReservedNames = 5;

enum class NodeType {
  kElement,
  kText,
  kComment,
};

/// A single XML node. Nodes are owned and linked by their `Document`; user
/// code manipulates them through `Document` APIs and treats `Node` as a
/// read-mostly record. Storage-wise nodes live in the document's slab pages
/// (see Document), so `Node*` stays valid until the node is destroyed.
struct Node {
  NodeId id = kNullNode;
  NodeType type = NodeType::kElement;
  NodeId parent = kNullNode;

  /// Element tag name (element nodes only). Kept as a string so detached
  /// node records (xml/edit.h) remain meaningful across documents.
  std::string name;

  /// Interned id of `name` in the owning document's string table; kNoName
  /// for text/comment nodes. Maintained by Document mutators — do not write
  /// directly.
  NameId name_id = kNoName;

  /// Text content (text and comment nodes only).
  std::string text;

  /// Attributes in document order (element nodes only).
  std::vector<std::pair<std::string, std::string>> attributes;

  /// Ordered child ids (element nodes only).
  std::vector<NodeId> children;

  bool is_element() const { return type == NodeType::kElement; }
  bool is_text() const { return type == NodeType::kText; }

  /// Returns the attribute value or nullptr if absent.
  const std::string* FindAttribute(const std::string& key) const {
    for (const auto& [k, v] : attributes) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

}  // namespace axmlx::xml

#endif  // AXMLX_XML_NODE_H_
