#include "xml/edit.h"

namespace axmlx::xml {

Result<DetachResult> DetachSubtree(Document* doc, NodeId id) {
  const Node* n = doc->Find(id);
  if (n == nullptr) return NotFound("DetachSubtree: unknown node");
  if (id == doc->root()) {
    return FailedPrecondition("DetachSubtree: cannot detach the root");
  }
  DetachResult result;
  result.parent = n->parent;
  result.index = doc->IndexInParent(id);
  result.subtree.root = id;
  doc->Walk(id, [&result](const Node& node) {
    result.subtree.nodes.push_back(node);
    return true;
  });
  // The detached copy must not point back into the document.
  result.subtree.nodes.front().parent = kNullNode;
  auto removed = doc->RemoveSubtree(id);
  if (!removed.ok()) return removed.status();
  return result;
}

Status Reattach(Document* doc, const DetachedSubtree& subtree, NodeId parent,
                size_t index) {
  if (subtree.root == kNullNode || subtree.nodes.empty()) {
    return InvalidArgument("Reattach: empty subtree");
  }
  return doc->RestoreSubtree(subtree.nodes, subtree.root, parent, index);
}

size_t EditLog::TotalNodesAffected() const {
  size_t total = 0;
  for (const Edit& e : edits_) total += e.nodes_affected;
  return total;
}

Status ApplyInverse(Document* doc, const Edit& edit) {
  switch (edit.kind) {
    case Edit::Kind::kInsertSubtree: {
      auto removed = doc->RemoveSubtree(edit.node);
      return removed.ok() ? Status::Ok() : removed.status();
    }
    case Edit::Kind::kRemoveSubtree:
      return Reattach(doc, edit.removed, edit.parent, edit.index);
    case Edit::Kind::kSetText:
      return doc->SetText(edit.node, edit.old_text);
  }
  return Internal("ApplyInverse: unknown edit kind");
}

Status RollbackAll(Document* doc, const EditLog& log, size_t from) {
  const std::vector<Edit>& edits = log.edits();
  for (size_t i = edits.size(); i > from; --i) {
    AXMLX_RETURN_IF_ERROR(ApplyInverse(doc, edits[i - 1]));
  }
  return Status::Ok();
}

}  // namespace axmlx::xml
