#include "xml/document.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"

namespace axmlx::xml {

namespace {

/// Well-known AXML names, interned by every document in this fixed order so
/// the kNameAxml* constants in node.h hold everywhere.
constexpr const char* kReservedNames[kNumReservedNames] = {
    "axml:sc", "axml:params", "axml:catch", "axml:catchAll", "axml:retry"};

const std::string kEmptyName;

}  // namespace

Document::Document(const std::string& root_name) {
  for (const char* reserved : kReservedNames) {
    (void)InternName(reserved);
  }
  root_ = CreateElement(root_name);
}

std::unique_ptr<Document> Document::Clone() const {
  std::unique_ptr<Document> copy(new Document(RawTag{}));
  copy->next_id_ = next_id_;
  copy->root_ = root_;
  copy->live_nodes_ = live_nodes_;
  copy->pages_.reserve(pages_.size());
  for (const auto& page : pages_) {
    auto new_page = std::make_unique<Node[]>(kPageSize);
    std::copy(page.get(), page.get() + kPageSize, new_page.get());
    copy->pages_.push_back(std::move(new_page));
  }
  copy->slots_used_ = slots_used_;
  copy->free_slots_ = free_slots_;
  copy->slot_gen_ = slot_gen_;
  copy->slot_of_id_ = slot_of_id_;
  copy->gen_of_id_ = gen_of_id_;
  copy->names_ = names_;
  copy->name_ids_ = name_ids_;
  copy->name_index_ = name_index_;
  copy->versioning_enabled_ = versioning_enabled_;
  copy->version_ = version_;
  copy->writer_ = writer_;
  copy->history_ = history_;
  copy->storage_stats_ = storage_stats_;
  return copy;
}

void Document::RecordVersion(NodeId id) {
  if (!versioning_enabled_) return;
  VersionRecord rec;
  rec.version = ++version_;
  rec.writer = writer_;
  const Node* n = Find(id);
  rec.live = n != nullptr;
  if (n != nullptr) rec.state = *n;
  history_[id].push_back(std::move(rec));
  ++storage_stats_.versions_recorded;
}

const Node* Document::FindVersioned(NodeId id, const ReadView& view) const {
  const Node* live = Find(id);
  auto it = history_.find(id);
  if (it == history_.end()) return live;
  const std::vector<VersionRecord>& chain = it->second;
  // Chains are append-ordered by version; the oldest record newer than the
  // snapshot holds the node's state *at* the snapshot (it is the undo image
  // of the first post-snapshot mutation).
  auto rec = std::upper_bound(
      chain.begin(), chain.end(), view.version,
      [](uint64_t v, const VersionRecord& r) { return v < r.version; });
  if (rec == chain.end()) return live;  // unchanged since the snapshot
  // Read-your-own-writes: if the viewer authored any post-snapshot change,
  // the live state is its state. Conflict detection keeps chains
  // single-writer past a snapshot, so mixed chains only occur transiently
  // while a loser is being rolled back.
  if (view.writer != 0) {
    for (auto r = rec; r != chain.end(); ++r) {
      if (r->writer == view.writer) return live;
    }
  }
  return rec->live ? &rec->state : nullptr;
}

void Document::ForEachWriteSince(
    NodeId id, uint64_t since,
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  auto it = history_.find(id);
  if (it == history_.end()) return;
  for (const VersionRecord& rec : it->second) {
    if (rec.version > since) fn(rec.version, rec.writer);
  }
}

void Document::AppendTextContentAt(NodeId id, const ReadView& view,
                                   std::string* out) const {
  if (!view.active || !versioning_enabled_) {
    AppendTextContent(id, out);
    return;
  }
  const Node* n = FindAt(id, view);
  if (n == nullptr) return;
  if (n->is_text()) {
    out->append(n->text);
    return;
  }
  if (n->type == NodeType::kComment) return;
  for (NodeId c : n->children) AppendTextContentAt(c, view, out);
}

void Document::PruneVersionsBefore(uint64_t min_version) {
  // Order-insensitive: each chain is pruned independently and the stats
  // fold commutes, so hash order cannot leak into observable state.
  // lint:allow(R7)
  for (auto it = history_.begin(); it != history_.end();) {
    std::vector<VersionRecord>& chain = it->second;
    auto keep = std::upper_bound(
        chain.begin(), chain.end(), min_version,
        [](uint64_t v, const VersionRecord& r) { return v < r.version; });
    storage_stats_.versions_pruned +=
        static_cast<int64_t>(keep - chain.begin());
    chain.erase(chain.begin(), keep);
    it = chain.empty() ? history_.erase(it) : std::next(it);
  }
}

size_t Document::VersionRecordCount() const {
  size_t count = 0;
  // Order-insensitive: summing chain sizes commutes. lint:allow(R7)
  for (const auto& [id, chain] : history_) count += chain.size();
  return count;
}

NameId Document::InternName(std::string_view name) {
  auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  name_index_.emplace_back();
  return id;
}

NameId Document::FindNameId(std::string_view name) const {
  auto it = name_ids_.find(name);
  return it == name_ids_.end() ? kNoName : it->second;
}

const std::string& Document::NameOf(NameId name_id) const {
  if (name_id >= names_.size()) return kEmptyName;
  return names_[name_id];
}

uint32_t Document::AllocSlot() {
  if (!free_slots_.empty()) {
    uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    ++storage_stats_.slots_reused;
    return slot;
  }
  if (slots_used_ == pages_.size() * kPageSize) {
    pages_.push_back(std::make_unique<Node[]>(kPageSize));
    ++storage_stats_.pages_allocated;
  }
  uint32_t slot = slots_used_++;
  slot_gen_.push_back(0);
  return slot;
}

void Document::MapIdToSlot(NodeId id, uint32_t slot) {
  if (id >= slot_of_id_.size()) {
    slot_of_id_.resize(id + 1, kInvalidSlot);
    gen_of_id_.resize(id + 1, 0);
  }
  slot_of_id_[id] = slot;
  gen_of_id_[id] = slot_gen_[slot];
  if (id >= next_id_) next_id_ = id + 1;
  ++live_nodes_;
}

NodeId Document::NewNode(NodeType type) {
  uint32_t slot = AllocSlot();
  NodeId id = next_id_;
  RecordVersion(id);  // "absent" undo image: the id did not exist before
  MapIdToSlot(id, slot);
  Node& node = NodeAt(slot);
  node.id = id;
  node.type = type;
  node.parent = kNullNode;
  ++storage_stats_.nodes_allocated;
  return id;
}

// Slot recycling, not a logical mutation: every caller (RemoveSubtree /
// DestroySubtree / RollbackAll) records the version entry for `id` before
// freeing, and the undo image restores the slot wholesale. lint:allow(R6)
void Document::FreeNode(NodeId id) {
  uint32_t slot = slot_of_id_[id];
  Node& node = NodeAt(slot);
  // Keep the tag index tight under create/destroy churn: drop this node's
  // entry when it sits at its bucket's tail (the common LIFO case), plus
  // any already-dead ids that pop exposes. Entries elsewhere in the bucket
  // stay until CollectElementsNamed's sweep.
  if (node.is_element() && node.name_id != kNoName &&
      node.name_id < name_index_.size()) {
    std::vector<NodeId>& bucket = name_index_[node.name_id];
    if (!bucket.empty() && bucket.back() == id) {
      bucket.pop_back();
      while (!bucket.empty() && Find(bucket.back()) == nullptr) {
        bucket.pop_back();
        ++storage_stats_.index_entries_swept;
      }
    }
  }
  // clear() keeps string/vector capacity, so a recycled slot serves its
  // next node without fresh heap allocations.
  node.id = kNullNode;
  node.parent = kNullNode;
  node.name.clear();
  node.name_id = kNoName;
  node.text.clear();
  node.attributes.clear();
  node.children.clear();
  ++slot_gen_[slot];
  slot_of_id_[id] = kInvalidSlot;
  free_slots_.push_back(slot);
  ++storage_stats_.nodes_freed;
  --live_nodes_;
}

NodeId Document::CreateElement(const std::string& name) {
  NameId name_id = InternName(name);
  NodeId id = NewNode(NodeType::kElement);
  Node* node = FindMutable(id);
  node->name = name;
  node->name_id = name_id;
  name_index_[name_id].push_back(id);
  return id;
}

NodeId Document::CreateText(const std::string& text) {
  NodeId id = NewNode(NodeType::kText);
  FindMutable(id)->text = text;
  return id;
}

NodeId Document::CreateComment(const std::string& text) {
  NodeId id = NewNode(NodeType::kComment);
  FindMutable(id)->text = text;
  return id;
}

Status Document::AppendChild(NodeId parent, NodeId child) {
  Node* p = FindMutable(parent);
  if (p == nullptr) return NotFound("AppendChild: unknown parent");
  return InsertAt(parent, p->children.size(), child);
}

Status Document::InsertAt(NodeId parent, size_t index, NodeId child) {
  Node* p = FindMutable(parent);
  Node* c = FindMutable(child);
  if (p == nullptr) return NotFound("InsertAt: unknown parent");
  if (c == nullptr) return NotFound("InsertAt: unknown child");
  if (!p->is_element()) {
    return InvalidArgument("InsertAt: parent is not an element");
  }
  if (c->parent != kNullNode) {
    return FailedPrecondition("InsertAt: child is already attached");
  }
  if (index > p->children.size()) {
    return OutOfRange("InsertAt: index beyond end of children");
  }
  // Reject cycles: `parent` must not live inside `child`'s subtree.
  for (NodeId cur = parent; cur != kNullNode; cur = Find(cur)->parent) {
    if (cur == child) {
      return InvalidArgument("InsertAt: would create a cycle");
    }
  }
  RecordVersion(parent);
  RecordVersion(child);
  // RecordVersion may rehash history_ but never touches the slab, so the
  // Node pointers above stay valid.
  p->children.insert(p->children.begin() + static_cast<ptrdiff_t>(index),
                     child);
  c->parent = parent;
  return Status::Ok();
}

Result<Document::RemovedInfo> Document::RemoveSubtree(NodeId id) {
  Node* n = FindMutable(id);
  if (n == nullptr) return NotFound("RemoveSubtree: unknown node");
  if (id == root_) {
    return FailedPrecondition("RemoveSubtree: cannot remove the root");
  }
  RemovedInfo info;
  info.parent = n->parent;
  if (n->parent != kNullNode) {
    RecordVersion(n->parent);
    Node* p = FindMutable(n->parent);
    auto it = std::find(p->children.begin(), p->children.end(), id);
    info.index = static_cast<size_t>(it - p->children.begin());
    p->children.erase(it);
    n->parent = kNullNode;
  }
  DestroySubtree(id);
  return info;
}

void Document::DestroySubtree(NodeId id) {
  // Iterative destruction; FreeNode clears the child list, so children are
  // pushed onto the work stack first.
  std::vector<NodeId>& stack = walk_scratch_;
  stack.clear();
  stack.push_back(id);
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    Node* n = FindMutable(cur);
    if (n == nullptr) continue;
    for (NodeId c : n->children) stack.push_back(c);
    RecordVersion(cur);
    FreeNode(cur);
  }
}

Status Document::SetText(NodeId id, const std::string& text) {
  Node* n = FindMutable(id);
  if (n == nullptr) return NotFound("SetText: unknown node");
  if (n->is_element()) return InvalidArgument("SetText: node is an element");
  RecordVersion(id);
  n->text = text;
  return Status::Ok();
}

Status Document::RenameElement(NodeId id, const std::string& name) {
  Node* n = FindMutable(id);
  if (n == nullptr) return NotFound("RenameElement: unknown node");
  if (!n->is_element()) {
    return InvalidArgument("RenameElement: node is not an element");
  }
  NameId name_id = InternName(name);
  if (name_id == n->name_id) return Status::Ok();
  RecordVersion(id);
  // The entry under the old name goes stale; CollectElementsNamed filters
  // and sweeps it on the next lookup.
  n->name = name;
  n->name_id = name_id;
  name_index_[name_id].push_back(id);
  return Status::Ok();
}

Status Document::SetAttribute(NodeId id, const std::string& key,
                              const std::string& value) {
  Node* n = FindMutable(id);
  if (n == nullptr) return NotFound("SetAttribute: unknown node");
  if (!n->is_element()) {
    return InvalidArgument("SetAttribute: node is not an element");
  }
  RecordVersion(id);
  for (auto& [k, v] : n->attributes) {
    if (k == key) {
      v = value;
      return Status::Ok();
    }
  }
  n->attributes.emplace_back(key, value);
  return Status::Ok();
}

NodeId Document::ImportRec(const Document& src, NodeId src_id) {
  const Node* s = src.Find(src_id);
  NodeId id;
  switch (s->type) {
    case NodeType::kElement:
      id = CreateElement(s->name);
      break;
    case NodeType::kText:
      id = CreateText(s->text);
      break;
    case NodeType::kComment:
      id = CreateComment(s->text);
      break;
    default:
      id = CreateElement(s->name);
  }
  Node* d = FindMutable(id);
  d->attributes = s->attributes;
  for (NodeId c : s->children) {
    NodeId cc = ImportRec(src, c);
    FindMutable(cc)->parent = id;
    d->children.push_back(cc);
  }
  return id;
}

Result<NodeId> Document::ImportSubtree(const Document& src, NodeId src_id) {
  if (src.Find(src_id) == nullptr) {
    return NotFound("ImportSubtree: unknown source node");
  }
  return ImportRec(src, src_id);
}

Result<std::unique_ptr<Document>> Document::ExtractFragment(NodeId id) const {
  if (Find(id) == nullptr) return NotFound("ExtractFragment: unknown node");
  auto frag = std::make_unique<Document>("fragment");
  AXMLX_ASSIGN_OR_RETURN(NodeId copy, frag->ImportSubtree(*this, id));
  AXMLX_RETURN_IF_ERROR(frag->AppendChild(frag->root(), copy));
  return frag;
}

Status Document::RestoreSubtree(const std::vector<Node>& nodes,
                                NodeId subtree_root, NodeId parent,
                                size_t index) {
  Node* p = FindMutable(parent);
  if (p == nullptr) return NotFound("RestoreSubtree: unknown parent");
  if (!p->is_element()) {
    return InvalidArgument("RestoreSubtree: parent is not an element");
  }
  if (index > p->children.size()) {
    return OutOfRange("RestoreSubtree: index beyond end of children");
  }
  for (const Node& n : nodes) {
    if (Contains(n.id)) {
      return AlreadyExists("RestoreSubtree: node id is live");
    }
  }
  RecordVersion(parent);
  for (const Node& n : nodes) {
    RecordVersion(n.id);  // "absent": the id was free before the restore
    uint32_t slot = AllocSlot();
    Node& stored = NodeAt(slot);
    stored = n;
    // Re-intern from the spelling: the record may come from a document with
    // a different name table (diff replay between replicas).
    if (stored.is_element()) {
      stored.name_id = InternName(stored.name);
      name_index_[stored.name_id].push_back(stored.id);
    } else {
      stored.name_id = kNoName;
    }
    MapIdToSlot(n.id, slot);
    ++storage_stats_.nodes_allocated;
  }
  Node* r = FindMutable(subtree_root);
  if (r == nullptr) return Internal("RestoreSubtree: root not among nodes");
  r->parent = parent;
  p->children.insert(p->children.begin() + static_cast<ptrdiff_t>(index),
                     subtree_root);
  return Status::Ok();
}

void Document::CollectElementsNamed(NameId name_id,
                                    std::vector<NodeId>* out) const {
  if (name_id >= name_index_.size()) return;
  std::vector<NodeId>& bucket = name_index_[name_id];
  if (concurrent_reads_) {
    // Filter without compacting: stale entries stay until the next
    // single-threaded lookup sweeps them.
    for (NodeId id : bucket) {
      const Node* n = Find(id);
      if (n != nullptr && n->name_id == name_id) out->push_back(id);
    }
    return;
  }
  // Filter + compact in place: survivors are the live elements still named
  // `name_id`; everything else (destroyed or renamed) is swept.
  size_t w = 0;
  for (NodeId id : bucket) {
    const Node* n = Find(id);
    if (n == nullptr || n->name_id != name_id) continue;
    bucket[w++] = id;
    out->push_back(id);
  }
  storage_stats_.index_entries_swept +=
      static_cast<int64_t>(bucket.size() - w);
  bucket.resize(w);
}

size_t Document::SubtreeSize(NodeId id) const {
  if (Find(id) == nullptr) return 0;
  size_t count = 0;
  std::vector<NodeId> local_stack;
  std::vector<NodeId>& stack = concurrent_reads_ ? local_stack : walk_scratch_;
  stack.clear();
  stack.push_back(id);
  while (!stack.empty()) {
    const Node* n = Find(stack.back());
    stack.pop_back();
    if (n == nullptr) continue;
    ++count;
    for (NodeId c : n->children) stack.push_back(c);
  }
  return count;
}

size_t Document::IndexInParent(NodeId id) const {
  const Node* n = Find(id);
  if (n == nullptr || n->parent == kNullNode) return kNpos;
  const Node* p = Find(n->parent);
  auto it = std::find(p->children.begin(), p->children.end(), id);
  return it == p->children.end()
             ? kNpos
             : static_cast<size_t>(it - p->children.begin());
}

void Document::AppendTextContent(NodeId id, std::string* out) const {
  const Node* start = Find(id);
  if (start == nullptr) return;
  if (start->is_text()) {
    out->append(start->text);
    return;
  }
  // Fast path for leaf elements (all children are text) — the dominant
  // shape for scalar fields like <rank>7</rank>.
  bool flat = true;
  for (NodeId c : start->children) {
    const Node* child = Find(c);
    if (child != nullptr && !child->is_text()) {
      flat = false;
      break;
    }
  }
  if (flat) {
    for (NodeId c : start->children) {
      const Node* child = Find(c);
      if (child != nullptr) out->append(child->text);
    }
    return;
  }
  // Iterative pre-order with a reversed-children stack so text concatenates
  // in document order without per-node callback overhead.
  std::vector<NodeId> local_stack;
  std::vector<NodeId>& stack = concurrent_reads_ ? local_stack : walk_scratch_;
  stack.clear();
  stack.push_back(id);
  while (!stack.empty()) {
    const Node* n = Find(stack.back());
    stack.pop_back();
    if (n == nullptr) continue;
    if (n->is_text()) {
      out->append(n->text);
      continue;
    }
    for (size_t i = n->children.size(); i > 0; --i) {
      stack.push_back(n->children[i - 1]);
    }
  }
}

std::string Document::TextContent(NodeId id) const {
  std::string out;
  AppendTextContent(id, &out);
  return out;
}

void Document::Walk(NodeId id,
                    const std::function<bool(const Node&)>& fn) const {
  const Node* n = Find(id);
  if (n == nullptr) return;
  if (!fn(*n)) return;
  for (NodeId c : n->children) Walk(c, fn);
}

std::string Document::PathOf(NodeId id) const {
  const Node* n = Find(id);
  if (n == nullptr) return "<unknown>";
  if (n->parent == kNullNode) return "/" + n->name;
  std::ostringstream os;
  os << PathOf(n->parent) << "/";
  if (n->is_element()) {
    os << n->name;
  } else {
    os << "#text";
  }
  size_t idx = IndexInParent(id);
  if (idx != kNpos) os << "[" << idx << "]";
  return os.str();
}

void Document::SerializeNode(NodeId id, bool pretty, int depth,
                             std::string* out) const {
  const Node* n = Find(id);
  if (n == nullptr) return;
  std::string indent = pretty ? std::string(static_cast<size_t>(depth) * 2, ' ')
                              : std::string();
  switch (n->type) {
    case NodeType::kText:
      if (pretty) *out += indent;
      *out += XmlEscape(n->text);
      if (pretty) *out += "\n";
      return;
    case NodeType::kComment:
      if (pretty) *out += indent;
      out->append("<!--");
      out->append(n->text);
      out->append("-->");
      if (pretty) *out += "\n";
      return;
    case NodeType::kElement:
      break;
  }
  if (pretty) *out += indent;
  out->push_back('<');
  out->append(n->name);
  for (const auto& [k, v] : n->attributes) {
    out->push_back(' ');
    out->append(k);
    out->append("=\"");
    out->append(XmlEscape(v));
    out->push_back('"');
  }
  if (n->children.empty()) {
    out->append("/>");
    if (pretty) *out += "\n";
    return;
  }
  out->push_back('>');
  if (pretty) *out += "\n";
  for (NodeId c : n->children) SerializeNode(c, pretty, depth + 1, out);
  if (pretty) *out += indent;
  out->append("</");
  out->append(n->name);
  out->push_back('>');
  if (pretty) *out += "\n";
}

std::string Document::Serialize(NodeId id, bool pretty) const {
  if (id == kNullNode) id = root_;
  std::string out;
  SerializeNode(id, pretty, 0, &out);
  return out;
}

bool Document::SubtreeEquals(const Document& a, NodeId a_id, const Document& b,
                             NodeId b_id) {
  const Node* na = a.Find(a_id);
  const Node* nb = b.Find(b_id);
  if (na == nullptr || nb == nullptr) return na == nb;
  if (na->type != nb->type) return false;
  if (na->is_element()) {
    // Cross-document comparison: spellings, not per-document NameIds.
    if (na->name != nb->name) return false;
    if (na->attributes != nb->attributes) return false;
    // Compare children skipping comments on both sides.
    std::vector<NodeId> ca, cb;
    for (NodeId c : na->children) {
      if (a.Find(c)->type != NodeType::kComment) ca.push_back(c);
    }
    for (NodeId c : nb->children) {
      if (b.Find(c)->type != NodeType::kComment) cb.push_back(c);
    }
    if (ca.size() != cb.size()) return false;
    for (size_t i = 0; i < ca.size(); ++i) {
      if (!SubtreeEquals(a, ca[i], b, cb[i])) return false;
    }
    return true;
  }
  return na->text == nb->text;
}

}  // namespace axmlx::xml
