#include "xml/document.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"

namespace axmlx::xml {

Document::Document(const std::string& root_name) {
  root_ = CreateElement(root_name);
}

std::unique_ptr<Document> Document::Clone() const {
  auto copy = std::make_unique<Document>();
  copy->nodes_.clear();
  copy->next_id_ = next_id_;
  copy->root_ = root_;
  for (const auto& [id, node] : nodes_) {
    copy->nodes_[id] = std::make_unique<Node>(*node);
  }
  return copy;
}

const Node* Document::Find(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

Node* Document::FindMutable(NodeId id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

NodeId Document::NewNode(NodeType type) {
  NodeId id = next_id_++;
  auto node = std::make_unique<Node>();
  node->id = id;
  node->type = type;
  nodes_[id] = std::move(node);
  return id;
}

NodeId Document::CreateElement(const std::string& name) {
  NodeId id = NewNode(NodeType::kElement);
  nodes_[id]->name = name;
  return id;
}

NodeId Document::CreateText(const std::string& text) {
  NodeId id = NewNode(NodeType::kText);
  nodes_[id]->text = text;
  return id;
}

NodeId Document::CreateComment(const std::string& text) {
  NodeId id = NewNode(NodeType::kComment);
  nodes_[id]->text = text;
  return id;
}

Status Document::AppendChild(NodeId parent, NodeId child) {
  Node* p = FindMutable(parent);
  if (p == nullptr) return NotFound("AppendChild: unknown parent");
  return InsertAt(parent, p->children.size(), child);
}

Status Document::InsertAt(NodeId parent, size_t index, NodeId child) {
  Node* p = FindMutable(parent);
  Node* c = FindMutable(child);
  if (p == nullptr) return NotFound("InsertAt: unknown parent");
  if (c == nullptr) return NotFound("InsertAt: unknown child");
  if (!p->is_element()) {
    return InvalidArgument("InsertAt: parent is not an element");
  }
  if (c->parent != kNullNode) {
    return FailedPrecondition("InsertAt: child is already attached");
  }
  if (index > p->children.size()) {
    return OutOfRange("InsertAt: index beyond end of children");
  }
  // Reject cycles: `parent` must not live inside `child`'s subtree.
  for (NodeId cur = parent; cur != kNullNode; cur = Find(cur)->parent) {
    if (cur == child) {
      return InvalidArgument("InsertAt: would create a cycle");
    }
  }
  p->children.insert(p->children.begin() + static_cast<ptrdiff_t>(index),
                     child);
  c->parent = parent;
  return Status::Ok();
}

Result<Document::RemovedInfo> Document::RemoveSubtree(NodeId id) {
  Node* n = FindMutable(id);
  if (n == nullptr) return NotFound("RemoveSubtree: unknown node");
  if (id == root_) {
    return FailedPrecondition("RemoveSubtree: cannot remove the root");
  }
  RemovedInfo info;
  info.parent = n->parent;
  if (n->parent != kNullNode) {
    Node* p = FindMutable(n->parent);
    auto it = std::find(p->children.begin(), p->children.end(), id);
    info.index = static_cast<size_t>(it - p->children.begin());
    p->children.erase(it);
    n->parent = kNullNode;
  }
  DestroySubtree(id);
  return info;
}

void Document::DestroySubtree(NodeId id) {
  Node* n = FindMutable(id);
  if (n == nullptr) return;
  // Copy the child list: erasing invalidates the node's storage.
  std::vector<NodeId> children = n->children;
  for (NodeId c : children) DestroySubtree(c);
  nodes_.erase(id);
}

Status Document::SetText(NodeId id, const std::string& text) {
  Node* n = FindMutable(id);
  if (n == nullptr) return NotFound("SetText: unknown node");
  if (n->is_element()) return InvalidArgument("SetText: node is an element");
  n->text = text;
  return Status::Ok();
}

Status Document::SetAttribute(NodeId id, const std::string& key,
                              const std::string& value) {
  Node* n = FindMutable(id);
  if (n == nullptr) return NotFound("SetAttribute: unknown node");
  if (!n->is_element()) {
    return InvalidArgument("SetAttribute: node is not an element");
  }
  for (auto& [k, v] : n->attributes) {
    if (k == key) {
      v = value;
      return Status::Ok();
    }
  }
  n->attributes.emplace_back(key, value);
  return Status::Ok();
}

NodeId Document::ImportRec(const Document& src, NodeId src_id) {
  const Node* s = src.Find(src_id);
  NodeId id;
  switch (s->type) {
    case NodeType::kElement:
      id = CreateElement(s->name);
      break;
    case NodeType::kText:
      id = CreateText(s->text);
      break;
    case NodeType::kComment:
      id = CreateComment(s->text);
      break;
    default:
      id = CreateElement(s->name);
  }
  Node* d = FindMutable(id);
  d->attributes = s->attributes;
  for (NodeId c : s->children) {
    NodeId cc = ImportRec(src, c);
    FindMutable(cc)->parent = id;
    d->children.push_back(cc);
  }
  return id;
}

Result<NodeId> Document::ImportSubtree(const Document& src, NodeId src_id) {
  if (src.Find(src_id) == nullptr) {
    return NotFound("ImportSubtree: unknown source node");
  }
  return ImportRec(src, src_id);
}

Result<std::unique_ptr<Document>> Document::ExtractFragment(NodeId id) const {
  if (Find(id) == nullptr) return NotFound("ExtractFragment: unknown node");
  auto frag = std::make_unique<Document>("fragment");
  AXMLX_ASSIGN_OR_RETURN(NodeId copy, frag->ImportSubtree(*this, id));
  AXMLX_RETURN_IF_ERROR(frag->AppendChild(frag->root(), copy));
  return frag;
}

Status Document::RestoreSubtree(const std::vector<Node>& nodes,
                                NodeId subtree_root, NodeId parent,
                                size_t index) {
  Node* p = FindMutable(parent);
  if (p == nullptr) return NotFound("RestoreSubtree: unknown parent");
  if (!p->is_element()) {
    return InvalidArgument("RestoreSubtree: parent is not an element");
  }
  if (index > p->children.size()) {
    return OutOfRange("RestoreSubtree: index beyond end of children");
  }
  for (const Node& n : nodes) {
    if (Contains(n.id)) {
      return AlreadyExists("RestoreSubtree: node id is live");
    }
  }
  for (const Node& n : nodes) {
    nodes_[n.id] = std::make_unique<Node>(n);
    if (n.id >= next_id_) next_id_ = n.id + 1;
  }
  Node* r = FindMutable(subtree_root);
  if (r == nullptr) return Internal("RestoreSubtree: root not among nodes");
  r->parent = parent;
  p->children.insert(p->children.begin() + static_cast<ptrdiff_t>(index),
                     subtree_root);
  return Status::Ok();
}

size_t Document::SubtreeSize(NodeId id) const {
  const Node* n = Find(id);
  if (n == nullptr) return 0;
  size_t count = 1;
  for (NodeId c : n->children) count += SubtreeSize(c);
  return count;
}

size_t Document::IndexInParent(NodeId id) const {
  const Node* n = Find(id);
  if (n == nullptr || n->parent == kNullNode) return kNpos;
  const Node* p = Find(n->parent);
  auto it = std::find(p->children.begin(), p->children.end(), id);
  return it == p->children.end()
             ? kNpos
             : static_cast<size_t>(it - p->children.begin());
}

std::string Document::TextContent(NodeId id) const {
  std::string out;
  Walk(id, [&out](const Node& n) {
    if (n.is_text()) out += n.text;
    return true;
  });
  return out;
}

void Document::Walk(NodeId id,
                    const std::function<bool(const Node&)>& fn) const {
  const Node* n = Find(id);
  if (n == nullptr) return;
  if (!fn(*n)) return;
  for (NodeId c : n->children) Walk(c, fn);
}

std::string Document::PathOf(NodeId id) const {
  const Node* n = Find(id);
  if (n == nullptr) return "<unknown>";
  if (n->parent == kNullNode) return "/" + n->name;
  std::ostringstream os;
  os << PathOf(n->parent) << "/";
  if (n->is_element()) {
    os << n->name;
  } else {
    os << "#text";
  }
  size_t idx = IndexInParent(id);
  if (idx != kNpos) os << "[" << idx << "]";
  return os.str();
}

void Document::SerializeNode(NodeId id, bool pretty, int depth,
                             std::string* out) const {
  const Node* n = Find(id);
  if (n == nullptr) return;
  std::string indent = pretty ? std::string(static_cast<size_t>(depth) * 2, ' ')
                              : std::string();
  switch (n->type) {
    case NodeType::kText:
      if (pretty) *out += indent;
      *out += XmlEscape(n->text);
      if (pretty) *out += "\n";
      return;
    case NodeType::kComment:
      if (pretty) *out += indent;
      *out += "<!--" + n->text + "-->";
      if (pretty) *out += "\n";
      return;
    case NodeType::kElement:
      break;
  }
  if (pretty) *out += indent;
  *out += "<" + n->name;
  for (const auto& [k, v] : n->attributes) {
    *out += " " + k + "=\"" + XmlEscape(v) + "\"";
  }
  if (n->children.empty()) {
    *out += "/>";
    if (pretty) *out += "\n";
    return;
  }
  *out += ">";
  if (pretty) *out += "\n";
  for (NodeId c : n->children) SerializeNode(c, pretty, depth + 1, out);
  if (pretty) *out += indent;
  *out += "</" + n->name + ">";
  if (pretty) *out += "\n";
}

std::string Document::Serialize(NodeId id, bool pretty) const {
  if (id == kNullNode) id = root_;
  std::string out;
  SerializeNode(id, pretty, 0, &out);
  return out;
}

bool Document::SubtreeEquals(const Document& a, NodeId a_id, const Document& b,
                             NodeId b_id) {
  const Node* na = a.Find(a_id);
  const Node* nb = b.Find(b_id);
  if (na == nullptr || nb == nullptr) return na == nb;
  if (na->type != nb->type) return false;
  if (na->is_element()) {
    if (na->name != nb->name) return false;
    if (na->attributes != nb->attributes) return false;
    // Compare children skipping comments on both sides.
    std::vector<NodeId> ca, cb;
    for (NodeId c : na->children) {
      if (a.Find(c)->type != NodeType::kComment) ca.push_back(c);
    }
    for (NodeId c : nb->children) {
      if (b.Find(c)->type != NodeType::kComment) cb.push_back(c);
    }
    if (ca.size() != cb.size()) return false;
    for (size_t i = 0; i < ca.size(); ++i) {
      if (!SubtreeEquals(a, ca[i], b, cb[i])) return false;
    }
    return true;
  }
  return na->text == nb->text;
}

}  // namespace axmlx::xml
