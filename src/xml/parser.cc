#include "xml/parser.h"

#include <cctype>
#include <sstream>

#include "common/strings.h"

namespace axmlx::xml {
namespace {

/// Recursive-descent parser over a string_view. Tracks line numbers for
/// error messages.
class ParserImpl {
 public:
  ParserImpl(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  Result<std::unique_ptr<Document>> Run() {
    SkipWhitespaceAndMisc();
    if (!AtTagOpen()) return Error("expected a root element");
    // Parse the root element into a placeholder document, then splice it in
    // as the document root by re-parsing children directly.
    auto doc = std::make_unique<Document>("placeholder");
    AXMLX_ASSIGN_OR_RETURN(NodeId root, ParseElement(doc.get()));
    // Replace the placeholder root with the parsed element. Renaming goes
    // through the document so the interned name id and tag index follow.
    const Node* parsed = doc->Find(root);
    AXMLX_RETURN_IF_ERROR(doc->RenameElement(doc->root(), parsed->name));
    Node* placeholder = doc->FindMutable(doc->root());
    placeholder->attributes = parsed->attributes;
    std::vector<NodeId> children = parsed->children;
    for (NodeId c : children) {
      doc->FindMutable(c)->parent = kNullNode;
      Status s = doc->AppendChild(doc->root(), c);
      if (!s.ok()) return s;
    }
    doc->FindMutable(root)->children.clear();
    auto removed = doc->RemoveSubtree(root);
    if (!removed.ok()) return removed.status();
    SkipWhitespaceAndMisc();
    if (pos_ != input_.size()) {
      return Error("trailing content after the root element");
    }
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool AtTagOpen() const { return !AtEnd() && Peek() == '<'; }

  bool LookingAt(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  void Advance(size_t n = 1) {
    for (size_t i = 0; i < n && pos_ < input_.size(); ++i) {
      if (input_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }

  Status Error(const std::string& message) const {
    std::ostringstream os;
    os << "line " << line_ << ": " << message;
    return ParseError(os.str());
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  /// Skips whitespace, the XML declaration, and comments outside elements.
  void SkipWhitespaceAndMisc() {
    while (true) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        while (!AtEnd() && !LookingAt("?>")) Advance();
        Advance(2);
        continue;
      }
      if (LookingAt("<!--")) {
        Advance(4);
        while (!AtEnd() && !LookingAt("-->")) Advance();
        Advance(3);
        continue;
      }
      break;
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected a name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> ParseQuotedValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected a quoted attribute value");
    }
    char quote = Peek();
    Advance();
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) Advance();
    if (AtEnd()) return Error("unterminated attribute value");
    std::string value = XmlUnescape(input_.substr(start, pos_ - start));
    Advance();  // closing quote
    return value;
  }

  /// Parses one element (cursor at '<') into `doc`, detached.
  Result<NodeId> ParseElement(Document* doc) {
    Advance();  // '<'
    AXMLX_ASSIGN_OR_RETURN(std::string name, ParseName());
    NodeId elem = doc->CreateElement(name);
    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag <" + name);
      if (Peek() == '>' || LookingAt("/>")) break;
      AXMLX_ASSIGN_OR_RETURN(std::string key, ParseName());
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '=' after attribute");
      Advance();
      SkipWhitespace();
      AXMLX_ASSIGN_OR_RETURN(std::string value, ParseQuotedValue());
      AXMLX_RETURN_IF_ERROR(doc->SetAttribute(elem, key, value));
    }
    if (LookingAt("/>")) {
      Advance(2);
      return elem;
    }
    Advance();  // '>'
    // Children.
    while (true) {
      if (AtEnd()) return Error("unterminated element <" + name + ">");
      if (LookingAt("</")) {
        Advance(2);
        AXMLX_ASSIGN_OR_RETURN(std::string close, ParseName());
        if (close != name) {
          return Error("mismatched close tag </" + close + "> for <" + name +
                       ">");
        }
        SkipWhitespace();
        if (AtEnd() || Peek() != '>') return Error("expected '>'");
        Advance();
        return elem;
      }
      if (LookingAt("<!--")) {
        Advance(4);
        size_t start = pos_;
        while (!AtEnd() && !LookingAt("-->")) Advance();
        if (AtEnd()) return Error("unterminated comment");
        NodeId comment =
            doc->CreateComment(std::string(input_.substr(start, pos_ - start)));
        Advance(3);
        AXMLX_RETURN_IF_ERROR(doc->AppendChild(elem, comment));
        continue;
      }
      if (LookingAt("<![CDATA[")) return Error("CDATA is not supported");
      if (LookingAt("<!")) return Error("DOCTYPE is not supported");
      if (LookingAt("<?")) {
        return Error("processing instructions are not supported here");
      }
      if (Peek() == '<') {
        AXMLX_ASSIGN_OR_RETURN(NodeId child, ParseElement(doc));
        AXMLX_RETURN_IF_ERROR(doc->AppendChild(elem, child));
        continue;
      }
      // Character data up to the next '<'.
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') Advance();
      std::string_view raw = input_.substr(start, pos_ - start);
      std::string text = XmlUnescape(raw);
      if (!options_.keep_whitespace_text) {
        std::string trimmed{StripWhitespace(text)};
        if (trimmed.empty()) continue;
        text = std::move(trimmed);
      }
      NodeId tn = doc->CreateText(text);
      AXMLX_RETURN_IF_ERROR(doc->AppendChild(elem, tn));
    }
  }

  std::string_view input_;
  ParseOptions options_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Result<std::unique_ptr<Document>> Parse(std::string_view input,
                                        const ParseOptions& options) {
  ParserImpl parser(input, options);
  return parser.Run();
}

}  // namespace axmlx::xml
