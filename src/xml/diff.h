#ifndef AXMLX_XML_DIFF_H_
#define AXMLX_XML_DIFF_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "xml/document.h"
#include "xml/edit.h"

namespace axmlx::xml {

/// One step of a document diff script.
struct DiffOp {
  enum class Kind {
    kInsertSubtree,   ///< Insert `subtree` under parent at index.
    kRemoveSubtree,   ///< Remove the subtree rooted at `node`.
    kSetText,         ///< Set text node `node` to `text`.
    kSetAttributes,   ///< Replace element `node`'s attribute list.
    kMove,            ///< Re-position `node` under parent at index.
  };
  Kind kind = Kind::kInsertSubtree;
  NodeId node = kNullNode;
  NodeId parent = kNullNode;
  size_t index = 0;
  DetachedSubtree subtree;  ///< kInsertSubtree payload (ids preserved).
  std::string text;         ///< kSetText payload.
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// An id-based diff script transforming one version of a document into
/// another.
///
/// Replicated AXML documents (paper §1, after [2]) share node ids: the
/// replica is maintained by id-preserving clones, so two divergent versions
/// can be compared exactly by id. `ComputeDiff(from, to)` produces the
/// minimal-ish script that turns `from` into `to`:
/// - ids present only in `to` become inserts (with their subtrees),
/// - ids present only in `from` become removes,
/// - shared text nodes with different text become kSetText,
/// - shared elements with different attributes become kSetAttributes,
/// - shared nodes living under a different parent/position become kMove.
///
/// The script ships efficiently (only the delta) — this is the simulator's
/// stand-in for the replication layer's incremental synchronization, used
/// when a disconnected peer rejoins and must catch up with its replica.
struct DocumentDiff {
  std::vector<DiffOp> ops;

  bool empty() const { return ops.empty(); }
  size_t size() const { return ops.size(); }

  /// Total nodes the script touches (the usual cost measure).
  size_t NodesAffected() const;
};

/// Computes the script transforming `from` into `to`. Both documents must
/// have the same root id (true for clone-derived replicas).
Result<DocumentDiff> ComputeDiff(const Document& from, const Document& to);

/// Applies `diff` to `doc` (which must be in the `from` state). Afterwards
/// Document::Equals(doc, to) holds, including child order, and shared ids
/// are preserved.
Status ApplyDiff(Document* doc, const DocumentDiff& diff);

}  // namespace axmlx::xml

#endif  // AXMLX_XML_DIFF_H_
