#ifndef AXMLX_XML_BUILDER_H_
#define AXMLX_XML_BUILDER_H_

#include <string>

#include "xml/document.h"

namespace axmlx::xml {

/// Convenience helpers for building trees programmatically in tests,
/// examples and workload generators. All of them assume valid arguments and
/// crash (assert) on misuse rather than returning Status, to keep
/// construction code readable.

/// Creates an element named `name` and appends it under `parent`.
NodeId AddElement(Document* doc, NodeId parent, const std::string& name);

/// Creates `<name>text</name>` under `parent`; returns the element id.
NodeId AddTextElement(Document* doc, NodeId parent, const std::string& name,
                      const std::string& text);

/// Appends a text node under `parent`.
NodeId AddText(Document* doc, NodeId parent, const std::string& text);

/// Returns the first child element of `parent` named `name`, or kNullNode.
NodeId FirstChildElement(const Document& doc, NodeId parent,
                         const std::string& name);

/// Returns the first descendant element (pre-order) named `name`, or
/// kNullNode.
NodeId FirstDescendantElement(const Document& doc, NodeId from,
                              const std::string& name);

}  // namespace axmlx::xml

#endif  // AXMLX_XML_BUILDER_H_
