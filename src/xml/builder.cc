#include "xml/builder.h"

#include <cassert>

namespace axmlx::xml {

NodeId AddElement(Document* doc, NodeId parent, const std::string& name) {
  NodeId id = doc->CreateElement(name);
  Status s = doc->AppendChild(parent, id);
  assert(s.ok());
  (void)s;
  return id;
}

NodeId AddTextElement(Document* doc, NodeId parent, const std::string& name,
                      const std::string& text) {
  NodeId id = AddElement(doc, parent, name);
  AddText(doc, id, text);
  return id;
}

NodeId AddText(Document* doc, NodeId parent, const std::string& text) {
  NodeId id = doc->CreateText(text);
  Status s = doc->AppendChild(parent, id);
  assert(s.ok());
  (void)s;
  return id;
}

NodeId FirstChildElement(const Document& doc, NodeId parent,
                         const std::string& name) {
  const Node* p = doc.Find(parent);
  if (p == nullptr) return kNullNode;
  const NameId want = doc.FindNameId(name);
  if (want == kNoName) return kNullNode;
  for (NodeId c : p->children) {
    const Node* n = doc.Find(c);
    if (n != nullptr && n->name_id == want) return c;
  }
  return kNullNode;
}

NodeId FirstDescendantElement(const Document& doc, NodeId from,
                              const std::string& name) {
  const NameId want = doc.FindNameId(name);
  if (want == kNoName) return kNullNode;
  NodeId found = kNullNode;
  doc.Walk(from, [&](const Node& n) {
    if (found != kNullNode) return false;
    if (n.name_id == want && n.id != from) {
      found = n.id;
      return false;
    }
    return true;
  });
  return found;
}

}  // namespace axmlx::xml
