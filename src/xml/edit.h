#ifndef AXMLX_XML_EDIT_H_
#define AXMLX_XML_EDIT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/document.h"

namespace axmlx::xml {

/// A subtree detached from a document with all node ids preserved, so it can
/// be re-attached exactly (same ids, same order) during rollback. Node ids
/// are never reused by a `Document`, which makes preserved-id re-attachment
/// safe.
struct DetachedSubtree {
  NodeId root = kNullNode;
  std::vector<Node> nodes;  ///< All nodes of the subtree, root first.

  size_t size() const { return nodes.size(); }
};

/// Detaches the subtree rooted at `id` from `doc`, preserving ids. Returns
/// the detached subtree plus the original parent/position.
struct DetachResult {
  DetachedSubtree subtree;
  NodeId parent = kNullNode;
  size_t index = 0;
};
Result<DetachResult> DetachSubtree(Document* doc, NodeId id);

/// Re-attaches a previously detached subtree under `parent` at `index`,
/// restoring the original node ids. Fails if any id is (again) live.
Status Reattach(Document* doc, const DetachedSubtree& subtree, NodeId parent,
                size_t index);

/// One primitive document edit, recorded by the operation executor and the
/// service-call materializer. The compensation machinery (§3.1 of the
/// paper) consumes these records in two ways: locally they are inverted
/// mechanically (`ApplyInverse`), and across peers they are turned into
/// compensating *operations* by `compensation::CompensationBuilder`.
struct Edit {
  enum class Kind {
    kInsertSubtree,  ///< `node` (subtree root) inserted under parent@index.
    kRemoveSubtree,  ///< Subtree removed; content kept in `removed`.
    kSetText,        ///< Text node `node` changed old_text -> new_text.
  };
  Kind kind = Kind::kInsertSubtree;

  NodeId node = kNullNode;
  NodeId parent = kNullNode;
  size_t index = 0;

  DetachedSubtree removed;  ///< kRemoveSubtree only.

  std::string old_text;  ///< kSetText only.
  std::string new_text;  ///< kSetText only.

  /// Number of XML nodes touched by this edit — the paper's operation cost
  /// measure ("the number of XML nodes affected (traversed) is usually a
  /// good measure of the cost of an operation", §3.2).
  size_t nodes_affected = 0;
};

/// Append-only log of primitive edits against one document.
class EditLog {
 public:
  void Append(Edit edit) { edits_.push_back(std::move(edit)); }
  const std::vector<Edit>& edits() const { return edits_; }
  bool empty() const { return edits_.empty(); }
  size_t size() const { return edits_.size(); }
  void Clear() { edits_.clear(); }

  /// Sum of `nodes_affected` across all edits.
  size_t TotalNodesAffected() const;

 private:
  std::vector<Edit> edits_;
};

/// Applies the inverse of a single edit to `doc`.
Status ApplyInverse(Document* doc, const Edit& edit);

/// Rolls back all edits in `log` starting from `from` (default: all), in
/// reverse order. Stops at the first failure.
Status RollbackAll(Document* doc, const EditLog& log, size_t from = 0);

}  // namespace axmlx::xml

#endif  // AXMLX_XML_EDIT_H_
