#include "query/ast.h"

#include <sstream>

namespace axmlx::query {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string PathExpr::ToString() const {
  std::string out;
  for (const Step& s : steps) {
    switch (s.axis) {
      case Step::Axis::kChild:
        out += "/" + s.name;
        break;
      case Step::Axis::kDescendant:
        out += "//" + s.name;
        break;
      case Step::Axis::kParent:
        out += "/..";
        break;
      case Step::Axis::kAttribute:
        out += "/@" + s.name;
        break;
    }
  }
  return out;
}

std::string Predicate::ToString(const std::string& var) const {
  switch (kind) {
    case Kind::kCompare: {
      std::string lit = literal;
      // Quote literals that would not survive re-lexing as a bareword.
      if (lit.find_first_of(" \t()/") != std::string::npos || lit.empty()) {
        lit = "\"" + lit + "\"";
      }
      return var + path.ToString() + " " + CompareOpName(op) + " " + lit;
    }
    case Kind::kAnd:
      return "(" + left->ToString(var) + " and " + right->ToString(var) + ")";
    case Kind::kOr:
      return "(" + left->ToString(var) + " or " + right->ToString(var) + ")";
    case Kind::kNot:
      return "(not " + left->ToString(var) + ")";
  }
  return "?";
}

namespace {
void CollectNames(const PathExpr& path, std::vector<std::string>* out) {
  for (const Step& s : path.steps) {
    if (s.axis != Step::Axis::kParent && s.axis != Step::Axis::kAttribute &&
        s.name != "*") {
      out->push_back(s.name);
    }
  }
}
void CollectPredicateNames(const Predicate* p, std::vector<std::string>* out) {
  if (p == nullptr) return;
  if (p->kind == Predicate::Kind::kCompare) {
    CollectNames(p->path, out);
    return;
  }
  CollectPredicateNames(p->left.get(), out);
  CollectPredicateNames(p->right.get(), out);
}
}  // namespace

std::vector<std::string> Query::MentionedNames() const {
  std::vector<std::string> out;
  for (const PathExpr& p : selects) CollectNames(p, &out);
  CollectPredicateNames(where.get(), &out);
  return out;
}

std::string Query::ToString() const {
  std::ostringstream os;
  os << "Select ";
  for (size_t i = 0; i < selects.size(); ++i) {
    if (i > 0) os << ", ";
    os << var << selects[i].ToString();
  }
  os << " from " << var << " in " << doc_name << source.ToString();
  if (where != nullptr) os << " where " << where->ToString(var);
  return os.str();
}

}  // namespace axmlx::query
