#ifndef AXMLX_QUERY_NAIVE_EVAL_H_
#define AXMLX_QUERY_NAIVE_EVAL_H_

#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "query/eval.h"
#include "xml/document.h"

namespace axmlx::query::naive {

/// Reference evaluator: the straightforward recursive implementation the
/// indexed evaluator in eval.cc replaced. It matches tag names by string
/// comparison, walks the tree for every descendant step, and allocates
/// fresh vectors per step — deliberately independent of the NameId intern
/// table, the document tag index, and EvalContext scratch state.
///
/// Kept for two reasons: differential tests assert the optimized evaluator
/// returns node-for-node identical results, and benchmarks use it as the
/// pre-optimization baseline. Semantics (visibility rules, comparison
/// trimming) are identical to eval.h by construction — both share
/// CompareScalarValues and the §3.1 service-call transparency rules.
///
/// Every entry point has a snapshot-aware overload taking an xml::ReadView;
/// the view-free forms read the live document. The view overloads resolve
/// nodes through Document::FindAt so the differential oracle also holds for
/// transactions reading through an MVCC snapshot (DESIGN.md §10).
std::vector<xml::NodeId> EvaluatePathFrom(const xml::Document& doc,
                                          xml::NodeId context,
                                          const PathExpr& path);
std::vector<xml::NodeId> EvaluatePathFrom(const xml::Document& doc,
                                          const xml::ReadView& view,
                                          xml::NodeId context,
                                          const PathExpr& path);

bool EvaluatePredicate(const xml::Document& doc, xml::NodeId context,
                       const Predicate& pred);
bool EvaluatePredicate(const xml::Document& doc, const xml::ReadView& view,
                       xml::NodeId context, const Predicate& pred);

Result<std::vector<xml::NodeId>> EvaluateBindings(const xml::Document& doc,
                                                  const Query& q,
                                                  bool check_doc_name = true);
Result<std::vector<xml::NodeId>> EvaluateBindings(const xml::Document& doc,
                                                  const xml::ReadView& view,
                                                  const Query& q,
                                                  bool check_doc_name = true);

Result<QueryResult> EvaluateQuery(const xml::Document& doc, const Query& q,
                                  bool check_doc_name = true);
Result<QueryResult> EvaluateQuery(const xml::Document& doc,
                                  const xml::ReadView& view, const Query& q,
                                  bool check_doc_name = true);

}  // namespace axmlx::query::naive

#endif  // AXMLX_QUERY_NAIVE_EVAL_H_
