#include "query/parser.h"

#include <cctype>
#include <memory>
#include <sstream>
#include <utility>

namespace axmlx::query {
namespace {

enum class TokKind {
  kName,     // identifiers, barewords
  kString,   // quoted literal
  kSlash,    // '/'
  kDslash,   // '//'
  kDotdot,   // '..'
  kStar,     // '*'
  kAt,       // '@'
  kComma,
  kLparen,
  kRparen,
  kOp,       // comparison operator
  kSemicolon,
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespace();
      if (pos_ >= input_.size()) break;
      char c = input_[pos_];
      if (c == '/') {
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '/') {
          out.push_back({TokKind::kDslash, "//"});
          pos_ += 2;
        } else {
          out.push_back({TokKind::kSlash, "/"});
          ++pos_;
        }
      } else if (c == '.') {
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '.') {
          out.push_back({TokKind::kDotdot, ".."});
          pos_ += 2;
        } else {
          return ParseError("query lexer: unexpected '.'");
        }
      } else if (c == '*') {
        out.push_back({TokKind::kStar, "*"});
        ++pos_;
      } else if (c == '@') {
        out.push_back({TokKind::kAt, "@"});
        ++pos_;
      } else if (c == ',') {
        out.push_back({TokKind::kComma, ","});
        ++pos_;
      } else if (c == '(') {
        out.push_back({TokKind::kLparen, "("});
        ++pos_;
      } else if (c == ')') {
        out.push_back({TokKind::kRparen, ")"});
        ++pos_;
      } else if (c == ';') {
        out.push_back({TokKind::kSemicolon, ";"});
        ++pos_;
      } else if (c == '=') {
        out.push_back({TokKind::kOp, "="});
        ++pos_;
      } else if (c == '!' || c == '<' || c == '>') {
        std::string op(1, c);
        ++pos_;
        if (pos_ < input_.size() && input_[pos_] == '=') {
          op += '=';
          ++pos_;
        }
        if (op == "!") return ParseError("query lexer: expected '!='");
        out.push_back({TokKind::kOp, op});
      } else if (c == '"' || c == '\'') {
        char quote = c;
        ++pos_;
        size_t start = pos_;
        while (pos_ < input_.size() && input_[pos_] != quote) ++pos_;
        if (pos_ >= input_.size()) {
          return ParseError("query lexer: unterminated string literal");
        }
        out.push_back(
            {TokKind::kString, std::string(input_.substr(start, pos_ - start))});
        ++pos_;
      } else if (IsWordChar(c)) {
        size_t start = pos_;
        while (pos_ < input_.size() && IsWordChar(input_[pos_])) ++pos_;
        out.push_back(
            {TokKind::kName, std::string(input_.substr(start, pos_ - start))});
      } else {
        std::ostringstream os;
        os << "query lexer: unexpected character '" << c << "'";
        return ParseError(os.str());
      }
    }
    out.push_back({TokKind::kEnd, ""});
    return out;
  }

 private:
  static bool IsWordChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == ':' || c == '$';
  }
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }
  std::string_view input_;
  size_t pos_ = 0;
};

std::string Lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

class QueryParser {
 public:
  explicit QueryParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<Query> ParseFull() {
    if (!ConsumeKeyword("select")) {
      return ParseError("query: expected 'Select'");
    }
    Query q;
    std::vector<std::pair<std::string, PathExpr>> raw_selects;
    while (true) {
      AXMLX_ASSIGN_OR_RETURN(auto head_path, ParseHeadedPath());
      raw_selects.push_back(std::move(head_path));
      if (Peek().kind == TokKind::kComma) {
        ++pos_;
        continue;
      }
      break;
    }
    if (!ConsumeKeyword("from")) return ParseError("query: expected 'from'");
    if (Peek().kind != TokKind::kName) {
      return ParseError("query: expected a variable name after 'from'");
    }
    q.var = Next().text;
    if (!ConsumeKeyword("in")) return ParseError("query: expected 'in'");
    AXMLX_ASSIGN_OR_RETURN(auto source, ParseHeadedPath());
    q.doc_name = source.first;
    q.source = std::move(source.second);
    for (auto& [head, path] : raw_selects) {
      if (head != q.var) {
        return ParseError("query: select path head '" + head +
                          "' does not match variable '" + q.var + "'");
      }
      q.selects.push_back(std::move(path));
    }
    if (ConsumeKeyword("where")) {
      AXMLX_ASSIGN_OR_RETURN(auto pred, ParseOr(q.var));
      q.where = std::move(pred);
    }
    if (Peek().kind == TokKind::kSemicolon) ++pos_;
    if (Peek().kind != TokKind::kEnd) {
      return ParseError("query: trailing tokens after query: '" +
                        Peek().text + "'");
    }
    return q;
  }

  /// Parses `NAME steps`; returns (NAME, steps).
  Result<std::pair<std::string, PathExpr>> ParseHeadedPath() {
    if (Peek().kind != TokKind::kName) {
      return ParseError("query: expected a name at the start of a path");
    }
    std::string head = Next().text;
    PathExpr path;
    while (true) {
      if (Peek().kind == TokKind::kSlash) {
        ++pos_;
        if (Peek().kind == TokKind::kDotdot) {
          ++pos_;
          path.steps.push_back({Step::Axis::kParent, ""});
        } else if (Peek().kind == TokKind::kAt) {
          ++pos_;
          if (Peek().kind != TokKind::kName) {
            return ParseError("query: expected an attribute name after '@'");
          }
          path.steps.push_back({Step::Axis::kAttribute, Next().text});
        } else if (Peek().kind == TokKind::kStar) {
          ++pos_;
          path.steps.push_back({Step::Axis::kChild, "*"});
        } else if (Peek().kind == TokKind::kName) {
          path.steps.push_back({Step::Axis::kChild, Next().text});
        } else {
          return ParseError("query: expected a step after '/'");
        }
      } else if (Peek().kind == TokKind::kDslash) {
        ++pos_;
        if (Peek().kind == TokKind::kStar) {
          ++pos_;
          path.steps.push_back({Step::Axis::kDescendant, "*"});
        } else if (Peek().kind == TokKind::kName) {
          path.steps.push_back({Step::Axis::kDescendant, Next().text});
        } else {
          return ParseError("query: expected a step after '//'");
        }
      } else {
        break;
      }
    }
    return std::make_pair(std::move(head), std::move(path));
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  bool ConsumeKeyword(const std::string& kw) {
    if (Peek().kind == TokKind::kName && Lower(Peek().text) == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool PeekKeyword(const std::string& kw) const {
    return Peek().kind == TokKind::kName && Lower(Peek().text) == kw;
  }

  Result<std::unique_ptr<Predicate>> ParseOr(const std::string& var) {
    AXMLX_ASSIGN_OR_RETURN(auto left, ParseAnd(var));
    while (PeekKeyword("or")) {
      ++pos_;
      AXMLX_ASSIGN_OR_RETURN(auto right, ParseAnd(var));
      auto node = std::make_unique<Predicate>();
      node->kind = Predicate::Kind::kOr;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<Predicate>> ParseAnd(const std::string& var) {
    AXMLX_ASSIGN_OR_RETURN(auto left, ParseUnary(var));
    while (PeekKeyword("and")) {
      ++pos_;
      AXMLX_ASSIGN_OR_RETURN(auto right, ParseUnary(var));
      auto node = std::make_unique<Predicate>();
      node->kind = Predicate::Kind::kAnd;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<Predicate>> ParseUnary(const std::string& var) {
    if (PeekKeyword("not")) {
      ++pos_;
      AXMLX_ASSIGN_OR_RETURN(auto child, ParseUnary(var));
      auto node = std::make_unique<Predicate>();
      node->kind = Predicate::Kind::kNot;
      node->left = std::move(child);
      return node;
    }
    if (Peek().kind == TokKind::kLparen) {
      ++pos_;
      AXMLX_ASSIGN_OR_RETURN(auto inner, ParseOr(var));
      if (Peek().kind != TokKind::kRparen) {
        return ParseError("query: expected ')'");
      }
      ++pos_;
      return inner;
    }
    // Comparison: path OP literal.
    AXMLX_ASSIGN_OR_RETURN(auto head_path, ParseHeadedPath());
    if (head_path.first != var) {
      return ParseError("query: predicate path head '" + head_path.first +
                        "' does not match variable '" + var + "'");
    }
    if (Peek().kind != TokKind::kOp) {
      return ParseError("query: expected a comparison operator");
    }
    std::string op = Next().text;
    auto node = std::make_unique<Predicate>();
    node->kind = Predicate::Kind::kCompare;
    node->path = std::move(head_path.second);
    if (op == "=") {
      node->op = CompareOp::kEq;
    } else if (op == "!=") {
      node->op = CompareOp::kNe;
    } else if (op == "<") {
      node->op = CompareOp::kLt;
    } else if (op == "<=") {
      node->op = CompareOp::kLe;
    } else if (op == ">") {
      node->op = CompareOp::kGt;
    } else {
      node->op = CompareOp::kGe;
    }
    if (Peek().kind == TokKind::kString || Peek().kind == TokKind::kName) {
      node->literal = Next().text;
    } else {
      return ParseError("query: expected a literal after the operator");
    }
    return node;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view input) {
  Lexer lexer(input);
  AXMLX_ASSIGN_OR_RETURN(auto tokens, lexer.Run());
  QueryParser parser(std::move(tokens));
  return parser.ParseFull();
}

Result<PathExpr> ParsePath(std::string_view input, std::string* head) {
  Lexer lexer(input);
  AXMLX_ASSIGN_OR_RETURN(auto tokens, lexer.Run());
  QueryParser parser(std::move(tokens));
  AXMLX_ASSIGN_OR_RETURN(auto head_path, parser.ParseHeadedPath());
  *head = head_path.first;
  return head_path.second;
}

}  // namespace axmlx::query
