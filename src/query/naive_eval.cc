#include "query/naive_eval.h"

#include <unordered_set>

namespace axmlx::query::naive {
namespace {

bool IsServiceCall(const xml::Node& node) {
  return node.is_element() && node.name == "axml:sc";
}

bool IsBookkeeping(const xml::Node& node) {
  if (!node.is_element()) return false;
  return node.name == "axml:params" || node.name == "axml:catch" ||
         node.name == "axml:catchAll" || node.name == "axml:retry";
}

void CollectQueryChildren(const xml::Document& doc, const xml::ReadView& view,
                          xml::NodeId id, std::vector<xml::NodeId>* out) {
  const xml::Node* n = doc.FindAt(id, view);
  if (n == nullptr) return;
  for (xml::NodeId c : n->children) {
    const xml::Node* child = doc.FindAt(c, view);
    if (child == nullptr) continue;  // stale child id: skip, don't crash
    if (child->type == xml::NodeType::kComment) continue;
    if (IsBookkeeping(*child)) continue;
    if (IsServiceCall(*child)) {
      // Transparent: surface the service call's result children.
      CollectQueryChildren(doc, view, c, out);
      continue;
    }
    out->push_back(c);
  }
}

/// Appends all query-visible descendant elements of `id` (pre-order).
void CollectDescendants(const xml::Document& doc, const xml::ReadView& view,
                        xml::NodeId id, std::vector<xml::NodeId>* out) {
  std::vector<xml::NodeId> children;
  CollectQueryChildren(doc, view, id, &children);
  for (xml::NodeId c : children) {
    const xml::Node* child = doc.FindAt(c, view);
    if (child != nullptr && child->is_element()) {
      out->push_back(c);
      CollectDescendants(doc, view, c, out);
    }
  }
}

bool NameMatches(const xml::Node& node, const std::string& pattern) {
  return node.is_element() && (pattern == "*" || node.name == pattern);
}

xml::NodeId NaiveQueryParent(const xml::Document& doc,
                             const xml::ReadView& view, xml::NodeId id) {
  const xml::Node* n = doc.FindAt(id, view);
  if (n == nullptr) return xml::kNullNode;
  xml::NodeId cur = n->parent;
  while (cur != xml::kNullNode) {
    const xml::Node* p = doc.FindAt(cur, view);
    if (p == nullptr) return xml::kNullNode;
    if (!IsServiceCall(*p) && !IsBookkeeping(*p)) return cur;
    cur = p->parent;
  }
  return xml::kNullNode;
}

}  // namespace

std::vector<xml::NodeId> EvaluatePathFrom(const xml::Document& doc,
                                          const xml::ReadView& view,
                                          xml::NodeId context,
                                          const PathExpr& path) {
  std::vector<xml::NodeId> current = {context};
  for (const Step& step : path.steps) {
    std::vector<xml::NodeId> next;
    std::unordered_set<xml::NodeId> seen;
    auto add = [&next, &seen](xml::NodeId id) {
      if (seen.insert(id).second) next.push_back(id);
    };
    for (xml::NodeId node : current) {
      switch (step.axis) {
        case Step::Axis::kChild: {
          std::vector<xml::NodeId> children;
          CollectQueryChildren(doc, view, node, &children);
          for (xml::NodeId c : children) {
            if (NameMatches(*doc.FindAt(c, view), step.name)) add(c);
          }
          break;
        }
        case Step::Axis::kDescendant: {
          std::vector<xml::NodeId> desc;
          CollectDescendants(doc, view, node, &desc);
          for (xml::NodeId d : desc) {
            if (NameMatches(*doc.FindAt(d, view), step.name)) add(d);
          }
          break;
        }
        case Step::Axis::kParent: {
          xml::NodeId p = NaiveQueryParent(doc, view, node);
          if (p != xml::kNullNode) add(p);
          break;
        }
        case Step::Axis::kAttribute:
          break;
      }
    }
    current = std::move(next);
  }
  return current;
}

std::vector<xml::NodeId> EvaluatePathFrom(const xml::Document& doc,
                                          xml::NodeId context,
                                          const PathExpr& path) {
  return EvaluatePathFrom(doc, xml::ReadView{}, context, path);
}

bool EvaluatePredicate(const xml::Document& doc, const xml::ReadView& view,
                       xml::NodeId context, const Predicate& pred) {
  switch (pred.kind) {
    case Predicate::Kind::kCompare: {
      if (!pred.path.steps.empty() &&
          pred.path.steps.back().axis == Step::Axis::kAttribute) {
        PathExpr prefix;
        prefix.steps.assign(pred.path.steps.begin(),
                            pred.path.steps.end() - 1);
        const std::string& attr = pred.path.steps.back().name;
        for (xml::NodeId id :
             naive::EvaluatePathFrom(doc, view, context, prefix)) {
          const xml::Node* node = doc.FindAt(id, view);
          if (node == nullptr) continue;
          const std::string* value = node->FindAttribute(attr);
          if (value != nullptr &&
              CompareScalarValues(*value, pred.literal, pred.op)) {
            return true;
          }
        }
        return false;
      }
      for (xml::NodeId id :
           naive::EvaluatePathFrom(doc, view, context, pred.path)) {
        std::string text;
        doc.AppendTextContentAt(id, view, &text);
        if (CompareScalarValues(text, pred.literal, pred.op)) {
          return true;
        }
      }
      return false;
    }
    case Predicate::Kind::kAnd:
      return naive::EvaluatePredicate(doc, view, context, *pred.left) &&
             naive::EvaluatePredicate(doc, view, context, *pred.right);
    case Predicate::Kind::kOr:
      return naive::EvaluatePredicate(doc, view, context, *pred.left) ||
             naive::EvaluatePredicate(doc, view, context, *pred.right);
    case Predicate::Kind::kNot:
      return !naive::EvaluatePredicate(doc, view, context, *pred.left);
  }
  return false;
}

bool EvaluatePredicate(const xml::Document& doc, xml::NodeId context,
                       const Predicate& pred) {
  return EvaluatePredicate(doc, xml::ReadView{}, context, pred);
}

Result<std::vector<xml::NodeId>> EvaluateBindings(const xml::Document& doc,
                                                  const xml::ReadView& view,
                                                  const Query& q,
                                                  bool check_doc_name) {
  const xml::Node* root = doc.FindAt(doc.root(), view);
  if (check_doc_name && root->name != q.doc_name) {
    return NotFound("query addresses document '" + q.doc_name +
                    "' but the target document root is '" + root->name + "'");
  }
  std::vector<xml::NodeId> bound =
      naive::EvaluatePathFrom(doc, view, doc.root(), q.source);
  std::vector<xml::NodeId> out;
  for (xml::NodeId id : bound) {
    if (q.where == nullptr ||
        naive::EvaluatePredicate(doc, view, id, *q.where)) {
      out.push_back(id);
    }
  }
  return out;
}

Result<std::vector<xml::NodeId>> EvaluateBindings(const xml::Document& doc,
                                                  const Query& q,
                                                  bool check_doc_name) {
  return EvaluateBindings(doc, xml::ReadView{}, q, check_doc_name);
}

Result<QueryResult> EvaluateQuery(const xml::Document& doc,
                                  const xml::ReadView& view, const Query& q,
                                  bool check_doc_name) {
  AXMLX_ASSIGN_OR_RETURN(
      auto bound, naive::EvaluateBindings(doc, view, q, check_doc_name));
  QueryResult result;
  for (xml::NodeId id : bound) {
    QueryResult::Binding binding;
    binding.node = id;
    for (const PathExpr& sel : q.selects) {
      binding.selected.push_back(
          naive::EvaluatePathFrom(doc, view, id, sel));
    }
    result.bindings.push_back(std::move(binding));
  }
  return result;
}

Result<QueryResult> EvaluateQuery(const xml::Document& doc, const Query& q,
                                  bool check_doc_name) {
  return EvaluateQuery(doc, xml::ReadView{}, q, check_doc_name);
}

}  // namespace axmlx::query::naive
