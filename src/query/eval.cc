#include "query/eval.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

namespace axmlx::query {

bool IsServiceCallElement(const xml::Node& node) {
  return node.is_element() && node.name == "axml:sc";
}

bool IsBookkeepingElement(const xml::Node& node) {
  if (!node.is_element()) return false;
  return node.name == "axml:params" || node.name == "axml:catch" ||
         node.name == "axml:catchAll" || node.name == "axml:retry";
}

namespace {

void CollectQueryChildren(const xml::Document& doc, xml::NodeId id,
                          std::vector<xml::NodeId>* out) {
  const xml::Node* n = doc.Find(id);
  if (n == nullptr) return;
  for (xml::NodeId c : n->children) {
    const xml::Node* child = doc.Find(c);
    if (child->type == xml::NodeType::kComment) continue;
    if (IsBookkeepingElement(*child)) continue;
    if (IsServiceCallElement(*child)) {
      // Transparent: surface the service call's result children.
      CollectQueryChildren(doc, c, out);
      continue;
    }
    out->push_back(c);
  }
}

/// Appends all query-visible descendant elements of `id` (pre-order).
void CollectDescendants(const xml::Document& doc, xml::NodeId id,
                        std::vector<xml::NodeId>* out) {
  for (xml::NodeId c : QueryChildren(doc, id)) {
    const xml::Node* child = doc.Find(c);
    if (child->is_element()) {
      out->push_back(c);
      CollectDescendants(doc, c, out);
    }
  }
}

bool NameMatches(const xml::Node& node, const std::string& pattern) {
  return node.is_element() && (pattern == "*" || node.name == pattern);
}

/// Compares two scalar values, numerically when possible.
bool CompareValues(const std::string& lhs, const std::string& rhs,
                   CompareOp op) {
  char* end_l = nullptr;
  char* end_r = nullptr;
  double dl = std::strtod(lhs.c_str(), &end_l);
  double dr = std::strtod(rhs.c_str(), &end_r);
  bool numeric = !lhs.empty() && !rhs.empty() && *end_l == '\0' &&
                 *end_r == '\0';
  int cmp;
  if (numeric) {
    cmp = dl < dr ? -1 : (dl > dr ? 1 : 0);
  } else {
    cmp = lhs.compare(rhs);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

}  // namespace

std::vector<xml::NodeId> QueryChildren(const xml::Document& doc,
                                       xml::NodeId id) {
  std::vector<xml::NodeId> out;
  CollectQueryChildren(doc, id, &out);
  return out;
}

xml::NodeId QueryParent(const xml::Document& doc, xml::NodeId id) {
  const xml::Node* n = doc.Find(id);
  if (n == nullptr) return xml::kNullNode;
  xml::NodeId cur = n->parent;
  while (cur != xml::kNullNode) {
    const xml::Node* p = doc.Find(cur);
    if (!IsServiceCallElement(*p) && !IsBookkeepingElement(*p)) return cur;
    cur = p->parent;
  }
  return xml::kNullNode;
}

std::vector<xml::NodeId> EvaluatePathFrom(const xml::Document& doc,
                                          xml::NodeId context,
                                          const PathExpr& path) {
  std::vector<xml::NodeId> current = {context};
  for (const Step& step : path.steps) {
    std::vector<xml::NodeId> next;
    std::unordered_set<xml::NodeId> seen;
    auto add = [&next, &seen](xml::NodeId id) {
      if (seen.insert(id).second) next.push_back(id);
    };
    for (xml::NodeId ctx : current) {
      switch (step.axis) {
        case Step::Axis::kChild:
          for (xml::NodeId c : QueryChildren(doc, ctx)) {
            if (NameMatches(*doc.Find(c), step.name)) add(c);
          }
          break;
        case Step::Axis::kDescendant: {
          std::vector<xml::NodeId> desc;
          CollectDescendants(doc, ctx, &desc);
          for (xml::NodeId d : desc) {
            if (NameMatches(*doc.Find(d), step.name)) add(d);
          }
          break;
        }
        case Step::Axis::kParent: {
          xml::NodeId p = QueryParent(doc, ctx);
          if (p != xml::kNullNode) add(p);
          break;
        }
        case Step::Axis::kAttribute:
          // Attributes are not nodes; attribute steps are only meaningful
          // as the final step of a predicate path (see EvaluatePredicate).
          break;
      }
    }
    current = std::move(next);
  }
  return current;
}

bool EvaluatePredicate(const xml::Document& doc, xml::NodeId context,
                       const Predicate& pred) {
  switch (pred.kind) {
    case Predicate::Kind::kCompare: {
      // Attribute comparison: `p/@rank = 1` — evaluate the prefix path,
      // then test the named attribute of each matched element.
      if (!pred.path.steps.empty() &&
          pred.path.steps.back().axis == Step::Axis::kAttribute) {
        PathExpr prefix;
        prefix.steps.assign(pred.path.steps.begin(),
                            pred.path.steps.end() - 1);
        const std::string& attr = pred.path.steps.back().name;
        for (xml::NodeId id : EvaluatePathFrom(doc, context, prefix)) {
          const xml::Node* node = doc.Find(id);
          const std::string* value = node->FindAttribute(attr);
          if (value != nullptr &&
              CompareValues(*value, pred.literal, pred.op)) {
            return true;
          }
        }
        return false;
      }
      std::vector<xml::NodeId> nodes =
          EvaluatePathFrom(doc, context, pred.path);
      for (xml::NodeId id : nodes) {
        if (CompareValues(doc.TextContent(id), pred.literal, pred.op)) {
          return true;
        }
      }
      return false;
    }
    case Predicate::Kind::kAnd:
      return EvaluatePredicate(doc, context, *pred.left) &&
             EvaluatePredicate(doc, context, *pred.right);
    case Predicate::Kind::kOr:
      return EvaluatePredicate(doc, context, *pred.left) ||
             EvaluatePredicate(doc, context, *pred.right);
    case Predicate::Kind::kNot:
      return !EvaluatePredicate(doc, context, *pred.left);
  }
  return false;
}

std::vector<xml::NodeId> QueryResult::AllSelected() const {
  std::vector<xml::NodeId> out;
  std::unordered_set<xml::NodeId> seen;
  for (const Binding& b : bindings) {
    for (const auto& group : b.selected) {
      for (xml::NodeId id : group) {
        if (seen.insert(id).second) out.push_back(id);
      }
    }
  }
  return out;
}

Result<std::vector<xml::NodeId>> EvaluateBindings(const xml::Document& doc,
                                                  const Query& q,
                                                  bool check_doc_name) {
  const xml::Node* root = doc.Find(doc.root());
  if (check_doc_name && root->name != q.doc_name) {
    return NotFound("query addresses document '" + q.doc_name +
                    "' but the target document root is '" + root->name + "'");
  }
  std::vector<xml::NodeId> bound =
      EvaluatePathFrom(doc, doc.root(), q.source);
  std::vector<xml::NodeId> out;
  for (xml::NodeId id : bound) {
    if (q.where == nullptr || EvaluatePredicate(doc, id, *q.where)) {
      out.push_back(id);
    }
  }
  return out;
}

Result<QueryResult> EvaluateQuery(const xml::Document& doc, const Query& q,
                                  bool check_doc_name) {
  AXMLX_ASSIGN_OR_RETURN(auto bound, EvaluateBindings(doc, q, check_doc_name));
  QueryResult result;
  for (xml::NodeId id : bound) {
    QueryResult::Binding binding;
    binding.node = id;
    for (const PathExpr& sel : q.selects) {
      binding.selected.push_back(EvaluatePathFrom(doc, id, sel));
    }
    result.bindings.push_back(std::move(binding));
  }
  return result;
}

}  // namespace axmlx::query
