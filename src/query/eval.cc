#include "query/eval.h"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "common/strings.h"

namespace axmlx::query {

bool IsServiceCallElement(const xml::Node& node) {
  return node.name_id == xml::kNameAxmlSc;
}

bool IsBookkeepingElement(const xml::Node& node) {
  return node.name_id >= xml::kNameAxmlParams &&
         node.name_id <= xml::kNameAxmlRetry;
}

namespace {

/// True if `name_id` is one of the reserved AXML bookkeeping/service-call
/// names — such elements are never query-visible match results.
bool IsReservedName(xml::NameId name_id) {
  return name_id < xml::kNumReservedNames;
}

/// Appends all query-visible descendant *elements* of `id` in pre-order,
/// filtered by `want` (pass xml::kNoName to match any element). Iterative,
/// allocation-free once `ctx->walk_stack` is warm. Service-call elements
/// are transparent (traversed, never emitted); bookkeeping subtrees are
/// invisible.
void CollectDescendantsWalk(const xml::Document& doc, xml::NodeId id,
                            xml::NameId want, EvalContext* ctx,
                            std::vector<xml::NodeId>* out) {
  std::vector<xml::NodeId>& stack = ctx->walk_stack;
  stack.clear();
  const xml::Node* start = doc.FindAt(id, ctx->view);
  if (start == nullptr) return;
  for (size_t i = start->children.size(); i > 0; --i) {
    stack.push_back(start->children[i - 1]);
  }
  while (!stack.empty()) {
    xml::NodeId cur = stack.back();
    stack.pop_back();
    const xml::Node* n = doc.FindAt(cur, ctx->view);
    if (n == nullptr || !n->is_element() || IsBookkeepingElement(*n)) {
      continue;
    }
    if (!IsServiceCallElement(*n) &&
        (want == xml::kNoName || n->name_id == want)) {
      out->push_back(cur);
    }
    for (size_t i = n->children.size(); i > 0; --i) {
      stack.push_back(n->children[i - 1]);
    }
  }
}

/// True if `node` is a query-visible descendant of `ctx_node`: `ctx_node`
/// is on its ancestor chain and no ancestor strictly between them is a
/// bookkeeping element (service calls are transparent).
bool IsVisibleDescendantOf(const xml::Document& doc, xml::NodeId ctx_node,
                           xml::NodeId node) {
  const xml::Node* n = doc.Find(node);
  if (n == nullptr || node == ctx_node) return false;
  for (xml::NodeId cur = n->parent; cur != xml::kNullNode;) {
    if (cur == ctx_node) return true;
    const xml::Node* a = doc.Find(cur);
    if (a == nullptr || IsBookkeepingElement(*a)) return false;
    cur = a->parent;
  }
  return false;
}

uint32_t SiblingIndex(const xml::Document& doc, xml::NodeId id,
                      EvalContext* ctx) {
  auto it = ctx->sibling_index_cache.find(id);
  if (it != ctx->sibling_index_cache.end()) return it->second;
  uint32_t index = static_cast<uint32_t>(doc.IndexInParent(id));
  ctx->sibling_index_cache.emplace(id, index);
  return index;
}

/// Index-backed descendant step: pull candidate ids for `want` from the
/// document's tag index, keep the visible descendants of `ctx_node`, and
/// append them in document order (sorted by their sibling-index paths).
void CollectDescendantsIndexed(const xml::Document& doc, xml::NodeId ctx_node,
                               EvalContext* ctx,
                               std::vector<xml::NodeId>* out) {
  std::vector<xml::NodeId>& cands = ctx->candidates;
  size_t w = 0;
  for (xml::NodeId cand : cands) {
    if (IsVisibleDescendantOf(doc, ctx_node, cand)) cands[w++] = cand;
  }
  cands.resize(w);
  if (cands.empty()) return;
  if (cands.size() == 1) {
    out->push_back(cands[0]);
    return;
  }
  auto& keys = ctx->order_keys;
  keys.clear();
  keys.reserve(cands.size());
  for (xml::NodeId cand : cands) {
    std::vector<uint32_t> key;
    for (xml::NodeId cur = cand; cur != ctx_node;) {
      key.push_back(SiblingIndex(doc, cur, ctx));
      cur = doc.Find(cur)->parent;
    }
    std::reverse(key.begin(), key.end());
    keys.emplace_back(std::move(key), cand);
  }
  std::sort(keys.begin(), keys.end());
  for (const auto& [key, id] : keys) out->push_back(id);
}

/// Appends the query-visible descendant elements of `ctx_node` matching the
/// step name, choosing between the tag index and a tree walk.
void CollectDescendantsForStep(const xml::Document& doc, xml::NodeId ctx_node,
                               const Step& step, xml::NameId want,
                               EvalContext* ctx,
                               std::vector<xml::NodeId>* out) {
  if (step.name == "*") {
    ++ctx->stats.walk_fallbacks;
    CollectDescendantsWalk(doc, ctx_node, xml::kNoName, ctx, out);
    return;
  }
  // Under a snapshot older than the live document the tag index is
  // unusable: it neither lists nodes deleted since the snapshot nor hides
  // post-snapshot inserts and renames. The versioned walk is exact.
  if (ctx->view.active && doc.version() > ctx->view.version) {
    ++ctx->stats.walk_fallbacks;
    CollectDescendantsWalk(doc, ctx_node, want, ctx, out);
    return;
  }
  if (want == xml::kNoName || IsReservedName(want)) return;  // can't match
  std::vector<xml::NodeId>& cands = ctx->candidates;
  cands.clear();
  doc.CollectElementsNamed(want, &cands);
  ctx->stats.index_candidates += static_cast<int64_t>(cands.size());
  // When the name covers a large share of the document, the per-candidate
  // ancestor checks and ordering sort cost more than one pre-order walk
  // (measured break-even in bench_query_index is near 1/8 of the nodes).
  if (cands.size() * 8 >= doc.size()) {
    ++ctx->stats.walk_fallbacks;
    CollectDescendantsWalk(doc, ctx_node, want, ctx, out);
    return;
  }
  ++ctx->stats.index_hits;
  CollectDescendantsIndexed(doc, ctx_node, ctx, out);
}

/// TextContent with a per-evaluation memo (predicate-heavy queries hit the
/// same nodes repeatedly across bindings).
const std::string& CachedTextContent(const xml::Document& doc, xml::NodeId id,
                                     EvalContext* ctx) {
  auto [it, inserted] = ctx->text_cache.try_emplace(id);
  if (inserted) {
    doc.AppendTextContentAt(id, ctx->view, &it->second);
  } else {
    ++ctx->stats.text_cache_hits;
  }
  return it->second;
}

bool ParseNumber(std::string_view s, double* out) {
  if (!s.empty() && s.front() == '+') s.remove_prefix(1);  // strtod parity
  if (s.empty()) return false;
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, *out);
  // Trailing garbage ("7abc") falls back to string comparison, as do the
  // non-finite spellings from_chars accepts ("inf", "nan") and overflow
  // ("1e999", result_out_of_range). Letting a NaN through would poison the
  // three-way compare in CompareScalarValues, where neither `<` nor `>`
  // holds and any value would count as *equal* to "nan".
  return ec == std::errc() && ptr == end && std::isfinite(*out);
}

/// Core of EvaluatePathFrom over a step range; `prefix_end` lets predicate
/// evaluation reuse the path minus a trailing attribute step without
/// copying. Appends results (document order, deduplicated) to `out`.
void EvaluateSteps(const xml::Document& doc, xml::NodeId context,
                   const Step* begin, const Step* end, EvalContext* ctx,
                   std::vector<xml::NodeId>* out) {
  std::vector<xml::NodeId>& current = ctx->path_current;
  std::vector<xml::NodeId>& next = ctx->step_out;
  current.clear();
  current.push_back(context);
  for (const Step* step = begin; step != end; ++step) {
    next.clear();
    ctx->seen.clear();
    auto add = [&next, ctx](xml::NodeId id) {
      if (ctx->seen.insert(id).second) next.push_back(id);
    };
    const bool any_name = step->name == "*";
    const xml::NameId want =
        any_name ? xml::kNoName : doc.FindNameId(step->name);
    for (xml::NodeId node : current) {
      switch (step->axis) {
        case Step::Axis::kChild: {
          if (!any_name && want == xml::kNoName) break;  // name not interned
          std::vector<xml::NodeId>& tmp = ctx->axis_scratch;
          tmp.clear();
          QueryChildrenInto(doc, ctx->view, node, &tmp);
          for (xml::NodeId c : tmp) {
            const xml::Node* child = doc.FindAt(c, ctx->view);
            if (child == nullptr) continue;
            if (any_name ? child->is_element() : child->name_id == want) {
              add(c);
            }
          }
          break;
        }
        case Step::Axis::kDescendant: {
          std::vector<xml::NodeId>& tmp = ctx->axis_scratch;
          tmp.clear();
          CollectDescendantsForStep(doc, node, *step, want, ctx, &tmp);
          for (xml::NodeId d : tmp) add(d);
          break;
        }
        case Step::Axis::kParent: {
          xml::NodeId p = QueryParent(doc, ctx->view, node);
          if (p != xml::kNullNode) add(p);
          break;
        }
        case Step::Axis::kAttribute:
          // Attributes are not nodes; attribute steps are only meaningful
          // as the final step of a predicate path (see EvaluatePredicate).
          break;
      }
    }
    current.swap(next);
  }
  out->insert(out->end(), current.begin(), current.end());
}

}  // namespace

void QueryChildrenInto(const xml::Document& doc, const xml::ReadView& view,
                       xml::NodeId id, std::vector<xml::NodeId>* out) {
  const xml::Node* n = doc.FindAt(id, view);
  if (n == nullptr) return;
  for (xml::NodeId c : n->children) {
    const xml::Node* child = doc.FindAt(c, view);
    if (child == nullptr) continue;  // stale child id: skip, don't crash
    if (child->type == xml::NodeType::kComment) continue;
    if (IsBookkeepingElement(*child)) continue;
    if (IsServiceCallElement(*child)) {
      // Transparent: surface the service call's result children in place.
      QueryChildrenInto(doc, view, c, out);
      continue;
    }
    out->push_back(c);
  }
}

void QueryChildrenInto(const xml::Document& doc, xml::NodeId id,
                       std::vector<xml::NodeId>* out) {
  QueryChildrenInto(doc, xml::ReadView{}, id, out);
}

std::vector<xml::NodeId> QueryChildren(const xml::Document& doc,
                                       xml::NodeId id) {
  std::vector<xml::NodeId> out;
  QueryChildrenInto(doc, id, &out);
  return out;
}

xml::NodeId QueryParent(const xml::Document& doc, const xml::ReadView& view,
                        xml::NodeId id) {
  const xml::Node* n = doc.FindAt(id, view);
  if (n == nullptr) return xml::kNullNode;
  xml::NodeId cur = n->parent;
  while (cur != xml::kNullNode) {
    const xml::Node* p = doc.FindAt(cur, view);
    if (p == nullptr) return xml::kNullNode;
    if (!IsServiceCallElement(*p) && !IsBookkeepingElement(*p)) return cur;
    cur = p->parent;
  }
  return xml::kNullNode;
}

xml::NodeId QueryParent(const xml::Document& doc, xml::NodeId id) {
  return QueryParent(doc, xml::ReadView{}, id);
}

bool CompareScalarValues(const std::string& lhs, const std::string& rhs,
                         CompareOp op) {
  // Trim both sides before numeric classification so padding is symmetric
  // (" 7" and "7" are the same number); the string fallback still compares
  // the untrimmed originals.
  double dl = 0;
  double dr = 0;
  const bool numeric = ParseNumber(StripWhitespace(lhs), &dl) &&
                       ParseNumber(StripWhitespace(rhs), &dr);
  int cmp;
  if (numeric) {
    cmp = dl < dr ? -1 : (dl > dr ? 1 : 0);
  } else {
    cmp = lhs.compare(rhs);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

void EvaluatePathFrom(const xml::Document& doc, xml::NodeId context,
                      const PathExpr& path, EvalContext* ctx,
                      std::vector<xml::NodeId>* out) {
  EvaluateSteps(doc, context, path.steps.data(),
                path.steps.data() + path.steps.size(), ctx, out);
}

std::vector<xml::NodeId> EvaluatePathFrom(const xml::Document& doc,
                                          xml::NodeId context,
                                          const PathExpr& path) {
  EvalContext ctx;
  std::vector<xml::NodeId> out;
  EvaluatePathFrom(doc, context, path, &ctx, &out);
  return out;
}

bool EvaluatePredicate(const xml::Document& doc, xml::NodeId context,
                       const Predicate& pred, EvalContext* ctx) {
  switch (pred.kind) {
    case Predicate::Kind::kCompare: {
      // Attribute comparison: `p/@rank = 1` — evaluate the prefix path,
      // then test the named attribute of each matched element.
      std::vector<xml::NodeId> nodes;
      if (!pred.path.steps.empty() &&
          pred.path.steps.back().axis == Step::Axis::kAttribute) {
        const std::string& attr = pred.path.steps.back().name;
        EvaluateSteps(doc, context, pred.path.steps.data(),
                      pred.path.steps.data() + pred.path.steps.size() - 1,
                      ctx, &nodes);
        for (xml::NodeId id : nodes) {
          const xml::Node* node = doc.FindAt(id, ctx->view);
          if (node == nullptr) continue;
          const std::string* value = node->FindAttribute(attr);
          if (value != nullptr &&
              CompareScalarValues(*value, pred.literal, pred.op)) {
            return true;
          }
        }
        return false;
      }
      EvaluatePathFrom(doc, context, pred.path, ctx, &nodes);
      for (xml::NodeId id : nodes) {
        if (CompareScalarValues(CachedTextContent(doc, id, ctx), pred.literal,
                                pred.op)) {
          return true;
        }
      }
      return false;
    }
    case Predicate::Kind::kAnd:
      return EvaluatePredicate(doc, context, *pred.left, ctx) &&
             EvaluatePredicate(doc, context, *pred.right, ctx);
    case Predicate::Kind::kOr:
      return EvaluatePredicate(doc, context, *pred.left, ctx) ||
             EvaluatePredicate(doc, context, *pred.right, ctx);
    case Predicate::Kind::kNot:
      return !EvaluatePredicate(doc, context, *pred.left, ctx);
  }
  return false;
}

bool EvaluatePredicate(const xml::Document& doc, xml::NodeId context,
                       const Predicate& pred) {
  EvalContext ctx;
  return EvaluatePredicate(doc, context, pred, &ctx);
}

std::vector<xml::NodeId> QueryResult::AllSelected() const {
  std::vector<xml::NodeId> out;
  std::unordered_set<xml::NodeId> seen;
  for (const Binding& b : bindings) {
    for (const auto& group : b.selected) {
      for (xml::NodeId id : group) {
        if (seen.insert(id).second) out.push_back(id);
      }
    }
  }
  return out;
}

Result<std::vector<xml::NodeId>> EvaluateBindings(const xml::Document& doc,
                                                  const Query& q,
                                                  EvalContext* ctx,
                                                  bool check_doc_name) {
  ctx->InvalidateCaches();
  const xml::Node* root = doc.FindAt(doc.root(), ctx->view);
  if (check_doc_name && root->name != q.doc_name) {
    return NotFound("query addresses document '" + q.doc_name +
                    "' but the target document root is '" + root->name + "'");
  }
  std::vector<xml::NodeId> bound;
  EvaluatePathFrom(doc, doc.root(), q.source, ctx, &bound);
  std::vector<xml::NodeId> out;
  for (xml::NodeId id : bound) {
    if (q.where == nullptr || EvaluatePredicate(doc, id, *q.where, ctx)) {
      out.push_back(id);
    }
  }
  return out;
}

Result<std::vector<xml::NodeId>> EvaluateBindings(const xml::Document& doc,
                                                  const Query& q,
                                                  bool check_doc_name) {
  EvalContext ctx;
  return EvaluateBindings(doc, q, &ctx, check_doc_name);
}

Result<QueryResult> EvaluateQuery(const xml::Document& doc, const Query& q,
                                  EvalContext* ctx, bool check_doc_name) {
  AXMLX_ASSIGN_OR_RETURN(auto bound,
                         EvaluateBindings(doc, q, ctx, check_doc_name));
  QueryResult result;
  for (xml::NodeId id : bound) {
    QueryResult::Binding binding;
    binding.node = id;
    for (const PathExpr& sel : q.selects) {
      std::vector<xml::NodeId> selected;
      EvaluatePathFrom(doc, id, sel, ctx, &selected);
      binding.selected.push_back(std::move(selected));
    }
    result.bindings.push_back(std::move(binding));
  }
  return result;
}

Result<QueryResult> EvaluateQuery(const xml::Document& doc, const Query& q,
                                  bool check_doc_name) {
  EvalContext ctx;
  return EvaluateQuery(doc, q, &ctx, check_doc_name);
}

}  // namespace axmlx::query
