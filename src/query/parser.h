#ifndef AXMLX_QUERY_PARSER_H_
#define AXMLX_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/ast.h"

namespace axmlx::query {

/// Parses the paper's location/query language, e.g.:
///
///   Select p/citizenship, p/grandslamswon from p in ATPList//player
///   where p/name/lastname = Federer;
///
/// Grammar (keywords case-insensitive, trailing ';' optional):
///   query   := 'Select' path (',' path)* 'from' NAME 'in' source
///              ('where' pred)?
///   path    := NAME steps            -- leading NAME must be the variable
///   source  := NAME steps            -- leading NAME is the document name
///   steps   := ('/' (NAME | '..' | '*') | '//' NAME)*
///   pred    := conj ('or' conj)*
///   conj    := unary ('and' unary)*
///   unary   := 'not' unary | '(' pred ')' | path OP literal
///   OP      := '=' | '!=' | '<' | '<=' | '>' | '>='
///   literal := '"'...'"' | '\''...'\'' | bareword
Result<Query> ParseQuery(std::string_view input);

/// Parses just a path expression with a leading name, e.g. "p/name/lastname"
/// or "ATPList//player". Returns the leading name through `head`.
Result<PathExpr> ParsePath(std::string_view input, std::string* head);

}  // namespace axmlx::query

#endif  // AXMLX_QUERY_PARSER_H_
