#ifndef AXMLX_QUERY_EVAL_H_
#define AXMLX_QUERY_EVAL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "xml/document.h"

namespace axmlx::query {

/// AXML-aware navigation helpers.
///
/// The evaluator treats `axml:sc` (embedded service call) elements as
/// *transparent containers*: their materialized result children are visible
/// as if they were children of the service call's parent element, while
/// bookkeeping children (`axml:params`, fault handlers) are invisible to
/// queries. This is what makes the paper's Query A see
/// `player/grandslamswon` even though the nodes physically live inside an
/// `<axml:sc>` element (§3.1).
bool IsServiceCallElement(const xml::Node& node);

/// True for `axml:params`, `axml:catch`, `axml:catchAll`, `axml:retry` —
/// service-call bookkeeping that queries must not see.
bool IsBookkeepingElement(const xml::Node& node);

/// Returns the query-visible children of `id` (service calls expanded,
/// bookkeeping skipped). Text and element nodes only.
std::vector<xml::NodeId> QueryChildren(const xml::Document& doc,
                                       xml::NodeId id);

/// Returns the query-visible parent of `id`: the nearest ancestor that is
/// neither a service call nor bookkeeping, or kNullNode.
xml::NodeId QueryParent(const xml::Document& doc, xml::NodeId id);

/// Evaluates a path expression from a single context node. Returns matched
/// node ids in document order without duplicates.
std::vector<xml::NodeId> EvaluatePathFrom(const xml::Document& doc,
                                          xml::NodeId context,
                                          const PathExpr& path);

/// Evaluates `pred` for the binding `context`. Comparisons are existential
/// over the path's node set; values compare numerically when both sides
/// parse as numbers, else as strings.
bool EvaluatePredicate(const xml::Document& doc, xml::NodeId context,
                       const Predicate& pred);

/// Result of a full query evaluation.
struct QueryResult {
  struct Binding {
    xml::NodeId node = xml::kNullNode;  ///< The bound variable's node.
    /// selected[i] = nodes matched by the i-th select path for this binding.
    std::vector<std::vector<xml::NodeId>> selected;
  };
  std::vector<Binding> bindings;

  /// All selected node ids across bindings and select paths, deduplicated,
  /// in first-seen order.
  std::vector<xml::NodeId> AllSelected() const;
};

/// Evaluates a parsed query against `doc`. The query's `doc_name` must match
/// the root element name of `doc` (the paper addresses documents by name,
/// e.g. `ATPList//player`); pass `check_doc_name=false` to skip that check.
Result<QueryResult> EvaluateQuery(const xml::Document& doc, const Query& q,
                                  bool check_doc_name = true);

/// Finds the nodes bound by the query's `from ... in <source>` clause that
/// satisfy the `where` clause — i.e. the *target nodes* of a `<location>`
/// expression, before applying select paths.
Result<std::vector<xml::NodeId>> EvaluateBindings(const xml::Document& doc,
                                                  const Query& q,
                                                  bool check_doc_name = true);

}  // namespace axmlx::query

#endif  // AXMLX_QUERY_EVAL_H_
