#ifndef AXMLX_QUERY_EVAL_H_
#define AXMLX_QUERY_EVAL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "xml/document.h"

namespace axmlx::query {

/// AXML-aware navigation helpers.
///
/// The evaluator treats `axml:sc` (embedded service call) elements as
/// *transparent containers*: their materialized result children are visible
/// as if they were children of the service call's parent element, while
/// bookkeeping children (`axml:params`, fault handlers) are invisible to
/// queries. This is what makes the paper's Query A see
/// `player/grandslamswon` even though the nodes physically live inside an
/// `<axml:sc>` element (§3.1).
bool IsServiceCallElement(const xml::Node& node);

/// True for `axml:params`, `axml:catch`, `axml:catchAll`, `axml:retry` —
/// service-call bookkeeping that queries must not see.
bool IsBookkeepingElement(const xml::Node& node);

/// Returns the query-visible children of `id` (service calls expanded,
/// bookkeeping skipped). Text and element nodes only.
std::vector<xml::NodeId> QueryChildren(const xml::Document& doc,
                                       xml::NodeId id);

/// Allocation-free form: appends the query-visible children of `id`.
void QueryChildrenInto(const xml::Document& doc, xml::NodeId id,
                       std::vector<xml::NodeId>* out);

/// Snapshot-aware form: children as of `view` (live when inactive).
void QueryChildrenInto(const xml::Document& doc, const xml::ReadView& view,
                       xml::NodeId id, std::vector<xml::NodeId>* out);

/// Returns the query-visible parent of `id`: the nearest ancestor that is
/// neither a service call nor bookkeeping, or kNullNode.
xml::NodeId QueryParent(const xml::Document& doc, xml::NodeId id);

/// Snapshot-aware form: the query-visible parent as of `view`.
xml::NodeId QueryParent(const xml::Document& doc, const xml::ReadView& view,
                        xml::NodeId id);

/// Evaluation counters for one or more evaluations sharing an EvalContext.
struct EvalStats {
  int64_t index_hits = 0;        ///< Descendant steps served by the tag index.
  int64_t index_candidates = 0;  ///< Candidate ids pulled from the index.
  int64_t walk_fallbacks = 0;    ///< Descendant steps that walked the tree.
  int64_t text_cache_hits = 0;   ///< TextContent served from the memo.
};

/// Reusable evaluation scratch state: work buffers for the iterative
/// walks, the per-evaluation TextContent memo, and counters. Reusing one
/// EvalContext across evaluations keeps the hot path allocation-free once
/// the buffers are warm. Treat everything except `stats` as opaque.
struct EvalContext {
  EvalStats stats;

  /// Snapshot the evaluation reads through (DESIGN.md §10). Inactive (the
  /// default) reads the live document. When active, every node resolution
  /// goes through Document::FindAt, and descendant steps fall back to the
  /// versioned tree walk whenever the document has moved past the snapshot
  /// (the tag index only describes the live tree). Give each transaction
  /// its own EvalContext: the text/sibling memos are only valid for one
  /// view at a time.
  xml::ReadView view;

  // Scratch (internal): cleared/reused by the evaluator.
  std::vector<xml::NodeId> walk_stack;
  std::vector<xml::NodeId> candidates;
  std::vector<xml::NodeId> step_out;
  std::vector<xml::NodeId> path_current;
  std::vector<xml::NodeId> axis_scratch;
  std::unordered_set<xml::NodeId> seen;
  std::unordered_map<xml::NodeId, std::string> text_cache;
  std::unordered_map<xml::NodeId, uint32_t> sibling_index_cache;
  std::vector<std::pair<std::vector<uint32_t>, xml::NodeId>> order_keys;

  /// Drops memoized per-document state (call after mutating the document).
  void InvalidateCaches() {
    text_cache.clear();
    sibling_index_cache.clear();
  }
};

/// Compares two scalar values under `op`. Both sides are compared
/// numerically when both parse fully as numbers after trimming ASCII
/// whitespace (so " 7" equals "7"); otherwise they compare as raw strings.
bool CompareScalarValues(const std::string& lhs, const std::string& rhs,
                         CompareOp op);

/// Evaluates a path expression from a single context node. Returns matched
/// node ids in document order without duplicates.
std::vector<xml::NodeId> EvaluatePathFrom(const xml::Document& doc,
                                          xml::NodeId context,
                                          const PathExpr& path);

/// As above, appending into `out` and using `ctx` scratch buffers.
void EvaluatePathFrom(const xml::Document& doc, xml::NodeId context,
                      const PathExpr& path, EvalContext* ctx,
                      std::vector<xml::NodeId>* out);

/// Evaluates `pred` for the binding `context`. Comparisons are existential
/// over the path's node set; values compare numerically when both sides
/// (after trimming ASCII whitespace) parse as numbers, else as strings.
bool EvaluatePredicate(const xml::Document& doc, xml::NodeId context,
                       const Predicate& pred);
bool EvaluatePredicate(const xml::Document& doc, xml::NodeId context,
                       const Predicate& pred, EvalContext* ctx);

/// Result of a full query evaluation.
struct QueryResult {
  struct Binding {
    xml::NodeId node = xml::kNullNode;  ///< The bound variable's node.
    /// selected[i] = nodes matched by the i-th select path for this binding.
    std::vector<std::vector<xml::NodeId>> selected;
  };
  std::vector<Binding> bindings;

  /// All selected node ids across bindings and select paths, deduplicated,
  /// in first-seen order.
  std::vector<xml::NodeId> AllSelected() const;
};

/// Evaluates a parsed query against `doc`. The query's `doc_name` must match
/// the root element name of `doc` (the paper addresses documents by name,
/// e.g. `ATPList//player`); pass `check_doc_name=false` to skip that check.
Result<QueryResult> EvaluateQuery(const xml::Document& doc, const Query& q,
                                  bool check_doc_name = true);
Result<QueryResult> EvaluateQuery(const xml::Document& doc, const Query& q,
                                  EvalContext* ctx,
                                  bool check_doc_name = true);

/// Finds the nodes bound by the query's `from ... in <source>` clause that
/// satisfy the `where` clause — i.e. the *target nodes* of a `<location>`
/// expression, before applying select paths.
Result<std::vector<xml::NodeId>> EvaluateBindings(const xml::Document& doc,
                                                  const Query& q,
                                                  bool check_doc_name = true);
Result<std::vector<xml::NodeId>> EvaluateBindings(const xml::Document& doc,
                                                  const Query& q,
                                                  EvalContext* ctx,
                                                  bool check_doc_name = true);

}  // namespace axmlx::query

#endif  // AXMLX_QUERY_EVAL_H_
