#ifndef AXMLX_QUERY_AST_H_
#define AXMLX_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace axmlx::query {

/// One step of a path expression.
struct Step {
  enum class Axis {
    kChild,       ///< `/name`
    kDescendant,  ///< `//name`
    kParent,      ///< `/..` — used by the paper's compensating inserts
    kAttribute,   ///< `/@name` — attribute access; only valid as the final
                  ///< step of a predicate path (attributes are not nodes)
  };
  Axis axis = Axis::kChild;
  /// Element name to match; "*" matches any element. Unused for kParent.
  std::string name;

  bool operator==(const Step&) const = default;
};

/// A relative path such as `p/name/lastname` (steps applied from a binding)
/// or an absolute source path such as `ATPList//player` (first step applied
/// from the document root; the leading name must match the root element).
struct PathExpr {
  std::vector<Step> steps;

  bool operator==(const PathExpr&) const = default;

  /// Renders the path in the paper's syntax, without the leading variable.
  std::string ToString() const;
};

/// Comparison operators usable in `where` clauses.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Predicate tree: comparisons combined with `and` / `or` / `not`.
struct Predicate {
  enum class Kind { kCompare, kAnd, kOr, kNot };
  Kind kind = Kind::kCompare;

  // kCompare:
  PathExpr path;                ///< Relative to the bound variable.
  CompareOp op = CompareOp::kEq;
  std::string literal;

  // kAnd / kOr: both children; kNot: only `left`.
  std::unique_ptr<Predicate> left;
  std::unique_ptr<Predicate> right;

  /// Renders the predicate in the paper's syntax; `var` is the binding
  /// variable the paths hang off ("p/name/lastname = Federer").
  std::string ToString(const std::string& var) const;
};

/// A parsed query/location expression:
///   Select <select_1>, ..., <select_n>
///   from <var> in <source>
///   [where <predicate>]
/// The same structure drives both read queries and the `<location>` part of
/// update operations (§3 of the paper).
struct Query {
  std::vector<PathExpr> selects;  ///< Paths relative to `var`.
  std::string var;                ///< Binding variable name, e.g. "p".
  std::string doc_name;           ///< Document name, e.g. "ATPList".
  PathExpr source;                ///< Path from the root to binding nodes.
  std::unique_ptr<Predicate> where;  ///< May be null.

  /// Every element name mentioned in select paths and predicate paths.
  /// Drives lazy materialization: a service call is needed only if its
  /// output name is among these (§3.1, Query A vs Query B).
  std::vector<std::string> MentionedNames() const;

  std::string ToString() const;
};

const char* CompareOpName(CompareOp op);

}  // namespace axmlx::query

#endif  // AXMLX_QUERY_AST_H_
