#ifndef AXMLX_COMMON_STRINGS_H_
#define AXMLX_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace axmlx {

/// Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view input, char sep);

/// Joins `pieces` with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// True if `s` starts with / ends with `prefix` / `suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-sensitive containment test.
bool Contains(std::string_view haystack, std::string_view needle);

/// Escapes the five XML special characters (& < > " ') in `s`.
std::string XmlEscape(std::string_view s);

/// Reverses XmlEscape for the standard five entities plus decimal/hex
/// character references.
std::string XmlUnescape(std::string_view s);

}  // namespace axmlx

#endif  // AXMLX_COMMON_STRINGS_H_
