#ifndef AXMLX_COMMON_STATUS_H_
#define AXMLX_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace axmlx {

/// Canonical error codes used across the library. The set deliberately
/// mirrors the failure classes that appear in the paper's protocols:
/// application faults raised by services (`kServiceFault`), peers that left
/// the overlay (`kPeerDisconnected`), and transactions that were aborted by
/// the recovery protocol (`kAborted`).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kServiceFault,
  kPeerDisconnected,
  kAborted,
  kTimeout,
  kConflict,
};

/// Returns a stable human-readable name for `code` ("OK", "NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

/// Value-type result of an operation that can fail. `Status` carries a code
/// and a message; it is cheap to copy in the OK case. The library does not
/// use exceptions: every fallible API returns `Status` or `Result<T>`.
///
/// Marked [[nodiscard]] at class level, which makes *every* function
/// returning `Status` warn when the result is ignored (lint rule R2 keeps
/// the attribute in place). A silently dropped abort status is exactly the
/// "partial effects survive" bug the compensation framework exists to
/// prevent, so discarding must be explicit: handle the status, propagate
/// it, or account it (e.g. AxmlPeer::BestEffortSend) — never a bare cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "CODE: message" for diagnostics.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status FailedPrecondition(std::string message);
Status OutOfRange(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);
Status ParseError(std::string message);
Status ServiceFault(std::string message);
Status PeerDisconnected(std::string message);
Status Aborted(std::string message);
Status Timeout(std::string message);
Status Conflict(std::string message);

/// `Result<T>` holds either a value or a non-OK `Status`. Analogous to
/// absl::StatusOr. Accessing `value()` on an error result is a programming
/// error and asserts in debug builds. [[nodiscard]] for the same reason as
/// `Status`: a dropped error result hides a failed protocol step.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse (`return node;` / `return NotFound(...);`).
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {      // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace axmlx

/// Propagates a non-OK Status from an expression, Google-style.
#define AXMLX_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::axmlx::Status _axmlx_status = (expr);      \
    if (!_axmlx_status.ok()) return _axmlx_status; \
  } while (false)

/// Evaluates a Result<T> expression, propagating errors, else assigns the
/// value to `lhs`. Usage: AXMLX_ASSIGN_OR_RETURN(auto v, Compute());
#define AXMLX_ASSIGN_OR_RETURN(lhs, rexpr)                    \
  AXMLX_ASSIGN_OR_RETURN_IMPL_(                               \
      AXMLX_STATUS_CONCAT_(_axmlx_result, __LINE__), lhs, rexpr)

#define AXMLX_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

#define AXMLX_STATUS_CONCAT_(a, b) AXMLX_STATUS_CONCAT_IMPL_(a, b)
#define AXMLX_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // AXMLX_COMMON_STATUS_H_
