#ifndef AXMLX_COMMON_TRACE_H_
#define AXMLX_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace axmlx {

/// A single protocol event. The recovery and disconnection benches assert
/// against (and print) these traces to reproduce the paper's Figure 1 and
/// Figure 2 narratives step by step.
struct TraceEvent {
  int64_t time = 0;        ///< Simulation time the event occurred at.
  std::string actor;       ///< Peer (or component) that produced the event.
  std::string kind;        ///< Short category, e.g. "SEND", "ABORT", "DETECT".
  std::string detail;      ///< Free-form description.
};

/// Append-only event trace shared by the simulator components. Not
/// thread-safe; the discrete-event simulator is single-threaded by design.
class Trace {
 public:
  void Add(int64_t time, std::string actor, std::string kind,
           std::string detail) {
    events_.push_back({time, std::move(actor), std::move(kind),
                       std::move(detail)});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// Returns the number of events whose `kind` matches exactly.
  int CountKind(const std::string& kind) const;

  /// Renders the trace as one line per event, for example output and tests.
  std::string ToString() const;

  /// Renders message events (SEND kind "X -> P") as a Mermaid sequence
  /// diagram, for embedding protocol runs in documentation. Non-message
  /// events become participant notes.
  std::string ToMermaid() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace axmlx

#endif  // AXMLX_COMMON_TRACE_H_
