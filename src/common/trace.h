#ifndef AXMLX_COMMON_TRACE_H_
#define AXMLX_COMMON_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace axmlx {

/// Declared trace-event kinds. Every `kind` emitted into a Trace must come
/// from this table (lint rule R3): benches and tests assert on kind strings
/// (`CountKind("SEND")`), so an emitter inventing an off-table spelling
/// silently breaks those assertions instead of failing loudly.
inline constexpr char kEvSend[] = "SEND";
inline constexpr char kEvRecv[] = "RECV";
inline constexpr char kEvDrop[] = "DROP";
inline constexpr char kEvSendFail[] = "SEND_FAIL";
inline constexpr char kEvSendReject[] = "SEND_REJECT";
inline constexpr char kEvDisconnect[] = "DISCONNECT";
inline constexpr char kEvDisconnectRefused[] = "DISCONNECT_REFUSED";
inline constexpr char kEvReconnect[] = "RECONNECT";
inline constexpr char kEvCrash[] = "CRASH";
inline constexpr char kEvRestart[] = "RESTART";
inline constexpr char kEvFaultDrop[] = "FAULT_DROP";
inline constexpr char kEvFaultDup[] = "FAULT_DUP";
inline constexpr char kEvFaultMisroute[] = "FAULT_MISROUTE";
inline constexpr char kEvPingTimeout[] = "PING_TIMEOUT";
inline constexpr char kEvStreamSilence[] = "STREAM_SILENCE";
inline constexpr char kEvRefresh[] = "REFRESH";

/// A single protocol event. The recovery and disconnection benches assert
/// against (and print) these traces to reproduce the paper's Figure 1 and
/// Figure 2 narratives step by step.
struct TraceEvent {
  int64_t time = 0;        ///< Simulation time the event occurred at.
  std::string actor;       ///< Peer (or component) that produced the event.
  std::string kind;        ///< Short category, e.g. "SEND", "ABORT", "DETECT".
  std::string detail;      ///< Free-form description.
};

/// Append-only event trace shared by the simulator components. Not
/// thread-safe; the discrete-event simulator is single-threaded by design.
class Trace {
 public:
  void Add(int64_t time, std::string actor, std::string kind,
           std::string detail) {
    ++kind_counts_[kind];
    events_.push_back({time, std::move(actor), std::move(kind),
                       std::move(detail)});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() {
    events_.clear();
    kind_counts_.clear();
  }

  /// Returns the number of events whose `kind` matches exactly. O(log k) in
  /// the number of distinct kinds — benches call this per iteration.
  int CountKind(const std::string& kind) const;

  /// Renders the trace as one line per event, for example output and tests.
  std::string ToString() const;

  /// Renders message events (SEND kind "X -> P") as a Mermaid sequence
  /// diagram, for embedding protocol runs in documentation. Non-message
  /// events become participant notes. SEND details that do not follow the
  /// "X -> P" convention (or whose peer token is not a plain identifier) are
  /// skipped, and note labels are sanitized, so free-form details cannot
  /// corrupt the diagram syntax.
  std::string ToMermaid() const;

  /// Renders the trace as JSON Lines, one
  /// {"time":...,"actor":...,"kind":...,"detail":...} object per event.
  std::string ToJsonl() const;

 private:
  std::vector<TraceEvent> events_;
  std::map<std::string, int> kind_counts_;  ///< Maintained by Add/Clear.
};

}  // namespace axmlx

#endif  // AXMLX_COMMON_TRACE_H_
