#ifndef AXMLX_COMMON_RNG_H_
#define AXMLX_COMMON_RNG_H_

#include <cstdint>

namespace axmlx {

/// Deterministic splitmix64-based PRNG. All randomized components of the
/// simulator (workload generators, disconnection injection, latency jitter)
/// take an explicit `Rng` so experiments are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Returns the next 64 random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Returns a uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Returns a uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Derives an independent child generator; useful for giving each peer its
  /// own stream without correlating with the parent's future draws.
  Rng Fork() { return Rng(Next()); }

 private:
  uint64_t state_;
};

}  // namespace axmlx

#endif  // AXMLX_COMMON_RNG_H_
