#include "common/strings.h"

#include <cctype>
#include <cstdlib>

namespace axmlx {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string XmlUnescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] != '&') {
      out += s[i++];
      continue;
    }
    size_t semi = s.find(';', i);
    if (semi == std::string_view::npos) {
      out += s[i++];
      continue;
    }
    std::string_view entity = s.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      // Decimal (&#65;) or hex (&#x41;) character reference. Only ASCII
      // code points are emitted as-is; others pass through untouched.
      long code = 0;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        code = std::strtol(std::string(entity.substr(2)).c_str(), nullptr, 16);
      } else {
        code = std::strtol(std::string(entity.substr(1)).c_str(), nullptr, 10);
      }
      if (code > 0 && code < 128) {
        out += static_cast<char>(code);
      } else {
        out += s.substr(i, semi - i + 1);
      }
    } else {
      out += s.substr(i, semi - i + 1);
    }
    i = semi + 1;
  }
  return out;
}

}  // namespace axmlx
