#include "common/trace.h"

#include <sstream>

namespace axmlx {

int Trace::CountKind(const std::string& kind) const {
  int n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::string Trace::ToMermaid() const {
  std::ostringstream os;
  os << "sequenceDiagram\n";
  for (const TraceEvent& e : events_) {
    if (e.kind == "SEND") {
      // detail is "<TYPE> -> <peer>".
      size_t arrow = e.detail.find(" -> ");
      if (arrow != std::string::npos) {
        std::string type = e.detail.substr(0, arrow);
        std::string to = e.detail.substr(arrow + 4);
        os << "  " << e.actor << "->>" << to << ": " << type << " (t="
           << e.time << ")\n";
      }
      continue;
    }
    if (e.kind == "RECV") continue;  // implied by the arrow
    if (e.kind == "DISCONNECT" || e.kind == "RECONNECT" ||
        e.kind == "PING_TIMEOUT" || e.kind == "STREAM_SILENCE" ||
        e.kind == "SEND_FAIL") {
      os << "  Note over " << e.actor << ": " << e.kind << " t=" << e.time
         << "\n";
    }
  }
  return os.str();
}

std::string Trace::ToString() const {
  std::ostringstream os;
  for (const TraceEvent& e : events_) {
    os << "[t=" << e.time << "] " << e.actor << " " << e.kind << " "
       << e.detail << "\n";
  }
  return os.str();
}

}  // namespace axmlx
