#include "common/trace.h"

#include <cctype>
#include <sstream>

#include "obs/json.h"

namespace axmlx {

namespace {

/// A Mermaid participant must be a plain identifier; anything else would be
/// spliced into the diagram source and corrupt it.
bool IsMermaidIdent(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

/// Keeps labels on one line and free of Mermaid-significant characters.
std::string MermaidLabel(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (static_cast<unsigned char>(c) < 0x20 || c == ';' || c == ':') {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

int Trace::CountKind(const std::string& kind) const {
  auto it = kind_counts_.find(kind);
  return it == kind_counts_.end() ? 0 : it->second;
}

std::string Trace::ToMermaid() const {
  std::ostringstream os;
  os << "sequenceDiagram\n";
  for (const TraceEvent& e : events_) {
    if (e.kind == "SEND") {
      // detail is "<TYPE> -> <peer>"; skip entries that deviate.
      size_t arrow = e.detail.find(" -> ");
      if (arrow == std::string::npos) continue;
      std::string type = e.detail.substr(0, arrow);
      std::string to = e.detail.substr(arrow + 4);
      if (!IsMermaidIdent(e.actor) || !IsMermaidIdent(to)) continue;
      os << "  " << e.actor << "->>" << to << ": " << MermaidLabel(type)
         << " (t=" << e.time << ")\n";
      continue;
    }
    if (e.kind == "RECV") continue;  // implied by the arrow
    if (e.kind == "DISCONNECT" || e.kind == "RECONNECT" ||
        e.kind == "PING_TIMEOUT" || e.kind == "STREAM_SILENCE" ||
        e.kind == "SEND_FAIL") {
      if (!IsMermaidIdent(e.actor)) continue;
      os << "  Note over " << e.actor << ": " << MermaidLabel(e.kind)
         << " t=" << e.time << "\n";
    }
  }
  return os.str();
}

std::string Trace::ToJsonl() const {
  std::ostringstream os;
  for (const TraceEvent& e : events_) {
    os << "{\"time\":" << e.time << ",\"actor\":\"" << obs::JsonEscape(e.actor)
       << "\",\"kind\":\"" << obs::JsonEscape(e.kind) << "\",\"detail\":\""
       << obs::JsonEscape(e.detail) << "\"}\n";
  }
  return os.str();
}

std::string Trace::ToString() const {
  std::ostringstream os;
  for (const TraceEvent& e : events_) {
    os << "[t=" << e.time << "] " << e.actor << " " << e.kind << " "
       << e.detail << "\n";
  }
  return os.str();
}

}  // namespace axmlx
