#ifndef AXMLX_COMMON_THREAD_ANNOTATIONS_H_
#define AXMLX_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety annotations, spelled with an AXMLX_ prefix so the
/// codebase has exactly one way to declare lock discipline. Under clang
/// with -Wthread-safety (wired behind AXMLX_WERROR in CMakeLists.txt) the
/// compiler proves every access to an AXMLX_GUARDED_BY member happens with
/// its mutex held; under gcc the macros expand to nothing and the project
/// linter's rule R9 still enforces that shared mutable state in obs/,
/// storage/, and compensation/ carries annotations at all. This is the
/// static half of the concurrency story ahead of the worker-pool runtime
/// (ROADMAP item 2); the dynamic half is the AXMLX_SANITIZE=thread TSan
/// stage in scripts/check.sh.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && defined(__has_attribute)
#define AXMLX_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define AXMLX_THREAD_ANNOTATION_(x)  // no-op under gcc/msvc
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define AXMLX_CAPABILITY(x) AXMLX_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII guard type that acquires on construction, releases on
/// destruction.
#define AXMLX_SCOPED_CAPABILITY AXMLX_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only with `x` held.
#define AXMLX_GUARDED_BY(x) AXMLX_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define AXMLX_PT_GUARDED_BY(x) AXMLX_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires `...` held exclusively (caller locks).
#define AXMLX_REQUIRES(...) \
  AXMLX_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function requires `...` held at least shared.
#define AXMLX_REQUIRES_SHARED(...) \
  AXMLX_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires `...` exclusively and does not release it.
#define AXMLX_ACQUIRE(...) \
  AXMLX_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires `...` shared and does not release it.
#define AXMLX_ACQUIRE_SHARED(...) \
  AXMLX_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases `...`.
#define AXMLX_RELEASE(...) \
  AXMLX_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases a shared hold on `...`.
#define AXMLX_RELEASE_SHARED(...) \
  AXMLX_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function attempts the lock; first argument is the success return value.
#define AXMLX_TRY_ACQUIRE(...) \
  AXMLX_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must be called with `...` NOT held (deadlock prevention).
#define AXMLX_EXCLUDES(...) \
  AXMLX_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime) that the calling thread holds `...`.
#define AXMLX_ASSERT_CAPABILITY(x) \
  AXMLX_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the capability `x`.
#define AXMLX_RETURN_CAPABILITY(x) AXMLX_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables analysis for one function (init/destroy paths).
#define AXMLX_NO_THREAD_SAFETY_ANALYSIS \
  AXMLX_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // AXMLX_COMMON_THREAD_ANNOTATIONS_H_
