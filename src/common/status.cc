#include "common/status.h"

namespace axmlx {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kServiceFault:
      return "SERVICE_FAULT";
    case StatusCode::kPeerDisconnected:
      return "PEER_DISCONNECTED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kConflict:
      return "CONFLICT";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status ServiceFault(std::string message) {
  return Status(StatusCode::kServiceFault, std::move(message));
}
Status PeerDisconnected(std::string message) {
  return Status(StatusCode::kPeerDisconnected, std::move(message));
}
Status Aborted(std::string message) {
  return Status(StatusCode::kAborted, std::move(message));
}
Status Timeout(std::string message) {
  return Status(StatusCode::kTimeout, std::move(message));
}
Status Conflict(std::string message) {
  return Status(StatusCode::kConflict, std::move(message));
}

}  // namespace axmlx
