#ifndef AXMLX_OBS_JSON_H_
#define AXMLX_OBS_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace axmlx::obs {

/// Escapes `s` for embedding inside a JSON string literal (surrounding
/// quotes are the caller's job). Control characters become \uXXXX.
std::string JsonEscape(const std::string& s);

/// Minimal JSON document model. Writer-side code (metrics, spans, bench
/// reports) builds JSON by concatenation with JsonEscape; this parser exists
/// so the report tooling can validate what was written without an external
/// dependency.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;  ///< kArray elements, in order.
  /// kObject members, in document order (duplicate keys keep the first).
  std::vector<std::pair<std::string, JsonValue>> members;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// number rounded to int64 (0 when not a number).
  int64_t AsInt() const;
};

/// Parses one JSON document (surrounding whitespace allowed; trailing
/// garbage is an error). Returns nullopt and fills `error` on bad input.
std::optional<JsonValue> ParseJson(const std::string& text,
                                   std::string* error = nullptr);

}  // namespace axmlx::obs

#endif  // AXMLX_OBS_JSON_H_
