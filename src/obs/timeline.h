#ifndef AXMLX_OBS_TIMELINE_H_
#define AXMLX_OBS_TIMELINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace axmlx::obs {

class FlightRecorderSet;
class MetricsRegistry;
class Histogram;
class SpanTracker;

/// Declared transaction phases. Every `phase` passed to Timeline::Enter /
/// Timeline::Exit must come from this table (lint rules R3/R10, same
/// contract as the kEvFr* recorder kinds): the `txn.latency.*` histograms,
/// the trace exporter, and `axmlx_report --critical-path` all group by
/// these strings, so an off-table spelling silently falls out of the
/// attribution. Table order IS attribution priority: when several phases
/// claim the same instant, the earliest entry below wins (recovery beats
/// compensation beats conflict checking beats WAL work beats evaluation
/// beats transport). QUEUE_WAIT is never claimed — it is the residual
/// attributed whenever no phase holds a claim.
inline constexpr char kPhaseRecovery[] = "RECOVERY";
inline constexpr char kPhaseCompensation[] = "COMPENSATION";
inline constexpr char kPhaseConflictCheck[] = "CONFLICT_CHECK";
inline constexpr char kPhaseWalAppend[] = "WAL_APPEND";
inline constexpr char kPhaseFlushWait[] = "FLUSH_WAIT";
inline constexpr char kPhaseEval[] = "EVAL";
inline constexpr char kPhaseNetInflight[] = "NET_INFLIGHT";
inline constexpr char kPhaseQueueWait[] = "QUEUE_WAIT";

inline constexpr int kPhaseCount = 8;

/// The phase table in priority order (index 0 = kPhaseRecovery, index
/// kPhaseCount-1 = kPhaseQueueWait, the residual).
const char* const* PhaseTable();

/// Priority index of `phase` in the table above; -1 for off-table strings.
int PhaseIndex(const char* phase);
int PhaseIndex(const std::string& phase);

/// The `txn.latency.*` histogram name for phase index `i` (kMetric*
/// constants from obs/metric_names.h, same order as PhaseTable()).
const char* PhaseMetricName(int i);

/// Bucket bounds (simulation ticks) shared by every txn.latency.* histogram.
std::vector<int64_t> PhaseLatencyBuckets();

/// One contiguous stretch of a transaction attributed to a single phase.
struct PhaseSegment {
  const char* phase = kPhaseQueueWait;  ///< One of the kPhase* table.
  int64_t start = 0;
  int64_t end = 0;
};

/// Everything the timeline learned about one transaction. Segments are
/// contiguous from `begin` to `end` and zero-width stretches are dropped,
/// so the segment widths partition the transaction's wall duration exactly
/// — that invariant holds by construction, not by bookkeeping discipline.
struct TxnTimeline {
  std::string txn;
  int64_t begin = 0;
  int64_t end = -1;  ///< -1 while the transaction is still open.
  std::vector<PhaseSegment> segments;
  int64_t phase_ticks[kPhaseCount] = {};  ///< Indexed by PhaseIndex().
};

/// Per-transaction phase accounting over the simulation clock.
///
/// One timeline is shared by every component of a repository (like
/// SpanTracker): peers open the transaction window at Submit, and every
/// instrumented layer — overlay transport, service evaluation, WAL,
/// compensation, recovery — places counted claims on the phases it is
/// responsible for. At any instant the transaction is attributed to the
/// highest-priority phase with an active claim (PhaseTable() order), or to
/// QUEUE_WAIT when nothing claims it. Claims are counts, not booleans:
/// three in-flight messages are three NET_INFLIGHT claims, and the phase
/// stays attributed until the last one exits. Enter/Exit for transactions
/// that are unknown, already ended, or never begun are ignored (messages
/// legitimately outlive their transaction's decision), and Exit never
/// drives a claim negative.
///
/// Local work in the discrete-event simulator is zero-tick, so phases like
/// WAL_APPEND place zero-width claims there: they never win wall time, but
/// they still appear in the per-phase histograms (as 0) and keep the same
/// instrumentation shape as wall-clock executors (ConcurrentExecutor runs
/// the same accounting on a logical op clock where they do have width).
class Timeline {
 public:
  /// Registers the txn.latency.* histograms in `metrics` (not owned; null
  /// detaches). EndTxn observes every phase total plus the end-to-end
  /// duration there.
  void AttachMetrics(MetricsRegistry* metrics);

  /// Convenience clock for components without their own (overlay::Network
  /// keeps it in step with the event loop, like FlightRecorderSet).
  void SetNow(int64_t now) { now_ = now; }
  int64_t now() const { return now_; }

  /// Opens the accounting window for `txn` at `now`. Re-beginning an open
  /// transaction ends the previous incarnation first.
  void BeginTxn(const std::string& txn, int64_t now);

  /// Places / releases one claim of `phase` on `txn` at time `now`.
  void Enter(const std::string& txn, const char* phase, int64_t now);
  void Exit(const std::string& txn, const char* phase, int64_t now);

  /// Closes the window at `now`, truncating any still-active claims, and
  /// observes the txn.latency.* histograms. Later Enter/Exit for the same
  /// name are ignored.
  void EndTxn(const std::string& txn, int64_t now);

  /// All transaction records, in BeginTxn order (open ones have end == -1).
  const std::vector<TxnTimeline>& txns() const { return txns_; }

  /// The most recent record for `txn`; null when never begun.
  const TxnTimeline* Find(const std::string& txn) const;

  void Clear();

 private:
  struct OpenTxn {
    size_t index = 0;  ///< Into txns_.
    int claims[kPhaseCount] = {};
    int attributed = kPhaseCount - 1;  ///< Current phase (QUEUE_WAIT idle).
    int64_t segment_start = 0;
  };

  /// Closes the current segment at `now` if the winning phase changed (or
  /// `force`), dropping zero-width stretches.
  void Reattribute(OpenTxn* open, int64_t now, bool force);

  MetricsRegistry* metrics_ = nullptr;
  Histogram* phase_hist_[kPhaseCount] = {};
  Histogram* total_hist_ = nullptr;
  int64_t now_ = 0;
  std::map<std::string, OpenTxn> open_;
  std::vector<TxnTimeline> txns_;
};

/// Renders recorder + span + timeline state as an "axmlx-trace-v1" document:
/// Chrome `trace_event` JSON (object form, `traceEvents` array) that loads
/// directly in Perfetto / chrome://tracing. Each peer becomes a process
/// track carrying its flight events (zero-duration slices) and spans;
/// MSG_SEND -> MSG_RECV pairs become cross-peer flow arrows keyed by the
/// overlay message id; the timeline's transactions become threads of a
/// synthetic pid-0 "transactions" process whose slices are the phase
/// segments. Any argument may be null (that layer is simply omitted). The
/// output is a pure function of the inputs, so equal seeds produce
/// byte-identical traces. Timestamps are simulation ticks rendered as
/// microseconds.
std::string BuildTraceJson(const FlightRecorderSet* recorders,
                           const SpanTracker* spans, const Timeline* timeline);

}  // namespace axmlx::obs

#endif  // AXMLX_OBS_TIMELINE_H_
