#ifndef AXMLX_OBS_METRIC_NAMES_H_
#define AXMLX_OBS_METRIC_NAMES_H_

/// The metric-name registry: every counter/gauge/histogram name the system
/// publishes, declared exactly once. The AxmlStats introspection document,
/// axmlx_report, and the bench JSON reports all aggregate by these strings,
/// so a misspelled or double-defined name silently splits a series — lint
/// rule R10 enforces that every name literal passed to
/// MetricsRegistry::GetCounter/GetGauge/GetHistogram appears in this table
/// and that no two entries share a value. Names follow `<domain>.<metric>`:
/// overlay.* (message fabric), txn.* (transaction protocol + MVCC),
/// txn.latency.* (per-phase attribution, obs/timeline.h), drill.*
/// (fault-drill harness), wal.* / doc.* / query.* (storage and evaluator
/// hot paths), obs.* (observability self-accounting).
namespace axmlx::obs {

// --- overlay.*: message fabric -------------------------------------------
inline constexpr char kMetricOverlayMessagesSent[] = "overlay.messages_sent";
inline constexpr char kMetricOverlayMessagesDelivered[] =
    "overlay.messages_delivered";
inline constexpr char kMetricOverlayMessagesDropped[] =
    "overlay.messages_dropped";
inline constexpr char kMetricOverlaySendsFailed[] = "overlay.sends_failed";
inline constexpr char kMetricOverlaySendsRejected[] = "overlay.sends_rejected";
inline constexpr char kMetricOverlayFaultsInjected[] =
    "overlay.faults_injected";
inline constexpr char kMetricOverlayTickCalls[] = "overlay.tick_calls";

// --- txn.*: transaction protocol, compensation, MVCC ---------------------
inline constexpr char kMetricTxnTxnsCommitted[] = "txn.txns_committed";
inline constexpr char kMetricTxnTxnsAborted[] = "txn.txns_aborted";
inline constexpr char kMetricTxnContextsAborted[] = "txn.contexts_aborted";
inline constexpr char kMetricTxnAbortsSent[] = "txn.aborts_sent";
inline constexpr char kMetricTxnForwardRecoveries[] =
    "txn.forward_recoveries";
inline constexpr char kMetricTxnRetries[] = "txn.retries";
inline constexpr char kMetricTxnCompensationsExecuted[] =
    "txn.compensations_executed";
inline constexpr char kMetricTxnCompensationFailures[] =
    "txn.compensation_failures";
inline constexpr char kMetricTxnNodesCompensated[] = "txn.nodes_compensated";
inline constexpr char kMetricTxnWastedNodes[] = "txn.wasted_nodes";
inline constexpr char kMetricTxnResultsRerouted[] = "txn.results_rerouted";
inline constexpr char kMetricTxnSubcallsReused[] = "txn.subcalls_reused";
inline constexpr char kMetricTxnAdoptions[] = "txn.adoptions";
inline constexpr char kMetricTxnNotificationsSent[] =
    "txn.notifications_sent";
inline constexpr char kMetricTxnEarlyAborts[] = "txn.early_aborts";
inline constexpr char kMetricTxnCompAcksOk[] = "txn.comp_acks_ok";
inline constexpr char kMetricTxnCompAcksFailed[] = "txn.comp_acks_failed";
inline constexpr char kMetricTxnSendsBestEffortFailed[] =
    "txn.sends_best_effort_failed";
inline constexpr char kMetricTxnSnapshotsTaken[] = "txn.snapshots_taken";
inline constexpr char kMetricTxnSnapshotOps[] = "txn.snapshot_ops";
inline constexpr char kMetricTxnConflictsDetected[] =
    "txn.conflicts_detected";
inline constexpr char kMetricTxnConflictsAborted[] = "txn.conflicts_aborted";
inline constexpr char kMetricTxnConflictsRetried[] = "txn.conflicts_retried";
inline constexpr char kMetricTxnMvccCommits[] = "txn.mvcc_commits";

// --- txn.latency.*: per-phase transaction latency (obs/timeline.h) -------
// One histogram per kPhase* table entry plus the end-to-end total; the
// Timeline observes all of them at EndTxn, so every histogram's count is
// the number of decided transactions and the per-txn phase values sum to
// the total (phases partition the transaction window by construction).
inline constexpr char kMetricTxnLatencyTotal[] = "txn.latency.total";
inline constexpr char kMetricTxnLatencyQueueWait[] = "txn.latency.queue_wait";
inline constexpr char kMetricTxnLatencyEval[] = "txn.latency.eval";
inline constexpr char kMetricTxnLatencyWalAppend[] = "txn.latency.wal_append";
inline constexpr char kMetricTxnLatencyFlushWait[] = "txn.latency.flush_wait";
inline constexpr char kMetricTxnLatencyNetInflight[] =
    "txn.latency.net_inflight";
inline constexpr char kMetricTxnLatencyConflictCheck[] =
    "txn.latency.conflict_check";
inline constexpr char kMetricTxnLatencyCompensation[] =
    "txn.latency.compensation";
inline constexpr char kMetricTxnLatencyRecovery[] = "txn.latency.recovery";

// --- drill.*: fault-drill harness ----------------------------------------
inline constexpr char kMetricDrillJournalErrors[] = "drill.journal_errors";
inline constexpr char kMetricDrillCrashes[] = "drill.crashes";
inline constexpr char kMetricDrillWalReplayedOps[] = "drill.wal_replayed_ops";
inline constexpr char kMetricDrillWalRecoveredTxns[] =
    "drill.wal_recovered_txns";
inline constexpr char kMetricDrillResyncNodes[] = "drill.resync_nodes";
inline constexpr char kMetricDrillRestarts[] = "drill.restarts";
inline constexpr char kMetricDrillHarnessErrors[] = "drill.harness_errors";
inline constexpr char kMetricDrillUndecided[] = "drill.undecided";
inline constexpr char kMetricDrillCommitted[] = "drill.committed";
inline constexpr char kMetricDrillAborted[] = "drill.aborted";
inline constexpr char kMetricDrillTxnDurationTicks[] =
    "drill.txn_duration_ticks";

// --- wal.* / doc.* / query.*: storage and evaluator hot paths ------------
inline constexpr char kMetricWalFlushes[] = "wal.flushes";
inline constexpr char kMetricWalRecordsBatched[] = "wal.records_batched";
inline constexpr char kMetricDocNodesAllocated[] = "doc.nodes_allocated";
inline constexpr char kMetricQueryIndexHits[] = "query.index_hits";
inline constexpr char kMetricQueryIndexCandidates[] =
    "query.index_candidates";
inline constexpr char kMetricQueryWalkFallbacks[] = "query.walk_fallbacks";

// --- runtime.* / job.*: typed-priority worker pool (src/runtime) ---------
// The JobQueue publishes pool-level counters under runtime.* and per-type
// queue-depth gauges / run-latency histograms under job.<type>.*; the
// <type> segment is JobTypeName() of the kJob* taxonomy (runtime/job.h).
inline constexpr char kMetricRuntimeJobsSubmitted[] =
    "runtime.jobs_submitted";
inline constexpr char kMetricRuntimeJobsExecuted[] = "runtime.jobs_executed";
inline constexpr char kMetricRuntimeInlineRuns[] = "runtime.inline_runs";
inline constexpr char kMetricRuntimeWaves[] = "runtime.waves";
inline constexpr char kMetricRuntimeWorkers[] = "runtime.workers";
inline constexpr char kMetricJobRecoveryQueueDepth[] =
    "job.recovery.queue_depth";
inline constexpr char kMetricJobCompensationQueueDepth[] =
    "job.compensation.queue_depth";
inline constexpr char kMetricJobConflictCheckQueueDepth[] =
    "job.conflict_check.queue_depth";
inline constexpr char kMetricJobWalAppendQueueDepth[] =
    "job.wal_append.queue_depth";
inline constexpr char kMetricJobFlushQueueDepth[] = "job.flush.queue_depth";
inline constexpr char kMetricJobEvalQueueDepth[] = "job.eval.queue_depth";
inline constexpr char kMetricJobServiceCallQueueDepth[] =
    "job.service_call.queue_depth";
inline constexpr char kMetricJobRecoveryRunUs[] = "job.recovery.run_us";
inline constexpr char kMetricJobCompensationRunUs[] =
    "job.compensation.run_us";
inline constexpr char kMetricJobConflictCheckRunUs[] =
    "job.conflict_check.run_us";
inline constexpr char kMetricJobWalAppendRunUs[] = "job.wal_append.run_us";
inline constexpr char kMetricJobFlushRunUs[] = "job.flush.run_us";
inline constexpr char kMetricJobEvalRunUs[] = "job.eval.run_us";
inline constexpr char kMetricJobServiceCallRunUs[] =
    "job.service_call.run_us";

// --- obs.*: observability self-accounting --------------------------------
inline constexpr char kMetricObsSpansCloseUnknown[] =
    "obs.spans_close_unknown";

}  // namespace axmlx::obs

#endif  // AXMLX_OBS_METRIC_NAMES_H_
