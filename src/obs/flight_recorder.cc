#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <sstream>
#include <tuple>

#include "obs/json.h"
#include "obs/span.h"

namespace axmlx::obs {

FlightRecorder::FlightRecorder(size_t capacity, uint64_t* shared_seq,
                               const int64_t* clock)
    : ring_(capacity == 0 ? size_t{1} : capacity),
      shared_seq_(shared_seq),
      clock_(clock) {}

void FlightRecorder::Record(const char* kind, std::string_view what,
                            uint64_t span, int64_t arg) {
  FlightEvent& e = ring_[total_ % ring_.size()];
  e.time = time();
  e.seq = shared_seq_ != nullptr ? (*shared_seq_)++ : local_seq_++;
  e.span = span;
  e.arg = arg;
  e.kind = kind;
  size_t n = std::min(what.size(), sizeof(e.what) - 1);
  std::memcpy(e.what, what.data(), n);
  e.what[n] = '\0';
  ++total_;
}

size_t FlightRecorder::size() const {
  return total_ < ring_.size() ? static_cast<size_t>(total_) : ring_.size();
}

const FlightEvent& FlightRecorder::At(size_t i) const {
  size_t first = total_ <= ring_.size()
                     ? size_t{0}
                     : static_cast<size_t>(total_ % ring_.size());
  return ring_[(first + i) % ring_.size()];
}

void FlightRecorder::Clear() { total_ = 0; }

FlightRecorder* FlightRecorderSet::ForPeer(const std::string& peer) {
  auto it = recorders_.find(peer);
  if (it == recorders_.end()) {
    it = recorders_
             .emplace(std::piecewise_construct, std::forward_as_tuple(peer),
                      std::forward_as_tuple(capacity_, &next_seq_, &now_))
             .first;
  }
  return &it->second;
}

std::string BuildForensicDump(const FlightRecorderSet& recorders,
                              const ForensicDumpOptions& options,
                              const SpanTracker* spans) {
  // Involved peers: the focal transaction's span participants when known
  // (the paper's abort cascade names exactly these), else every recorder.
  std::set<std::string> involved;
  if (!options.txn.empty() && spans != nullptr) {
    for (const SpanRecord& s : spans->spans()) {
      if (s.txn == options.txn) involved.insert(s.peer);
    }
  }
  if (involved.empty()) {
    for (const auto& [peer, rec] : recorders.recorders()) involved.insert(peer);
  }
  if (!options.peer.empty()) involved.insert(options.peer);

  // Merge the last-N events of each involved peer into one timeline. The
  // shared sequence counter makes (time, seq) a deterministic total order.
  struct Entry {
    const FlightEvent* event;
    const std::string* peer;
  };
  std::vector<Entry> merged;
  for (const std::string& peer : involved) {
    auto it = recorders.recorders().find(peer);
    if (it == recorders.recorders().end()) continue;
    const FlightRecorder& rec = it->second;
    size_t count = rec.size();
    size_t first = count > options.last_n ? count - options.last_n : 0;
    for (size_t i = first; i < count; ++i) {
      merged.push_back(Entry{&rec.At(i), &it->first});
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.event->time, a.event->seq) <
           std::tie(b.event->time, b.event->seq);
  });

  std::ostringstream os;
  os << "{\"schema\":\"axmlx-forensics-v1\"";
  os << ",\"reason\":\"" << JsonEscape(options.reason) << "\"";
  os << ",\"peer\":\"" << JsonEscape(options.peer) << "\"";
  os << ",\"txn\":\"" << JsonEscape(options.txn) << "\"";
  os << ",\"time\":" << options.time;
  os << ",\"last_n\":" << options.last_n;
  os << ",\n\"peers\":[";
  bool first_peer = true;
  for (const std::string& peer : involved) {
    if (!first_peer) os << ",";
    first_peer = false;
    os << "\"" << JsonEscape(peer) << "\"";
  }
  os << "],\n\"events\":[";
  for (size_t i = 0; i < merged.size(); ++i) {
    const FlightEvent& e = *merged[i].event;
    if (i != 0) os << ",";
    os << "\n{\"time\":" << e.time << ",\"seq\":" << e.seq << ",\"peer\":\""
       << JsonEscape(*merged[i].peer) << "\",\"kind\":\"" << JsonEscape(e.kind)
       << "\",\"span\":" << e.span << ",\"what\":\"" << JsonEscape(e.what)
       << "\",\"arg\":" << e.arg << "}";
  }
  os << "],\n\"spans\":[";
  bool first_span = true;
  if (spans != nullptr) {
    // Span context: the focal transaction's full tree when known, else
    // whatever was still open (in flight at the failure point).
    for (const SpanRecord& s : spans->spans()) {
      bool keep = !options.txn.empty() ? s.txn == options.txn : s.end < 0;
      if (!keep) continue;
      if (!first_span) os << ",";
      first_span = false;
      os << "\n" << SpanToJson(s);
    }
  }
  os << "]}\n";
  return os.str();
}

}  // namespace axmlx::obs
