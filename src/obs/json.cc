#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace axmlx::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

int64_t JsonValue::AsInt() const {
  if (type != Type::kNumber) return 0;
  return static_cast<int64_t>(number < 0 ? number - 0.5 : number + 0.5);
}

namespace {

/// Recursive-descent parser state over the raw text.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : s_(text), error_(error) {}

  std::optional<JsonValue> Parse() {
    SkipSpace();
    JsonValue v;
    if (!ParseValue(&v)) return std::nullopt;
    SkipSpace();
    if (i_ != s_.size()) {
      Fail("trailing characters after JSON document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " (at byte " + std::to_string(i_) + ")";
    }
  }

  void SkipSpace() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }

  bool Literal(const char* word, size_t len) {
    if (s_.compare(i_, len, word) != 0) {
      Fail("invalid literal");
      return false;
    }
    i_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (depth_ > 64) {
      Fail("nesting too deep");
      return false;
    }
    if (i_ >= s_.size()) {
      Fail("unexpected end of input");
      return false;
    }
    const char c = s_[i_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return Literal("true", 4);
    }
    if (c == 'f') {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return Literal("false", 5);
    }
    if (c == 'n') {
      out->type = JsonValue::Type::kNull;
      return Literal("null", 4);
    }
    return ParseNumber(out);
  }

  bool ParseNumber(JsonValue* out) {
    const char* begin = s_.c_str() + i_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) {
      Fail("invalid number");
      return false;
    }
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    i_ += static_cast<size_t>(end - begin);
    return true;
  }

  bool ParseString(std::string* out) {
    ++i_;  // opening quote
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_];
      if (c == '\\') {
        if (i_ + 1 >= s_.size()) {
          Fail("unterminated escape");
          return false;
        }
        const char esc = s_[i_ + 1];
        i_ += 2;
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            *out += esc;
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (i_ + 4 > s_.size()) {
              Fail("truncated \\u escape");
              return false;
            }
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = s_[i_ + static_cast<size_t>(k)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                Fail("invalid \\u escape");
                return false;
              }
            }
            i_ += 4;
            // UTF-8 encode the code point (surrogate pairs are not combined
            // — the emitters here only produce ASCII escapes).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            Fail("unknown escape");
            return false;
        }
        continue;
      }
      *out += c;
      ++i_;
    }
    if (i_ >= s_.size()) {
      Fail("unterminated string");
      return false;
    }
    ++i_;  // closing quote
    return true;
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++i_;  // '['
    ++depth_;
    SkipSpace();
    if (i_ < s_.size() && s_[i_] == ']') {
      ++i_;
      --depth_;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!ParseValue(&item)) return false;
      out->items.push_back(std::move(item));
      SkipSpace();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        SkipSpace();
        continue;
      }
      if (i_ < s_.size() && s_[i_] == ']') {
        ++i_;
        --depth_;
        return true;
      }
      Fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++i_;  // '{'
    ++depth_;
    SkipSpace();
    if (i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      --depth_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (i_ >= s_.size() || s_[i_] != '"') {
        Fail("expected object key string");
        return false;
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (i_ >= s_.size() || s_[i_] != ':') {
        Fail("expected ':' after object key");
        return false;
      }
      ++i_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      if (out->Find(key) == nullptr) {
        out->members.emplace_back(std::move(key), std::move(value));
      }
      SkipSpace();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      if (i_ < s_.size() && s_[i_] == '}') {
        ++i_;
        --depth_;
        return true;
      }
      Fail("expected ',' or '}' in object");
      return false;
    }
  }

  const std::string& s_;
  std::string* error_;
  size_t i_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<JsonValue> ParseJson(const std::string& text,
                                   std::string* error) {
  return Parser(text, error).Parse();
}

}  // namespace axmlx::obs
