#include "obs/timeline.h"

#include <algorithm>
#include <cstring>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace axmlx::obs {

namespace {

const char* const kPhases[kPhaseCount] = {
    kPhaseRecovery, kPhaseCompensation, kPhaseConflictCheck, kPhaseWalAppend,
    kPhaseFlushWait, kPhaseEval, kPhaseNetInflight, kPhaseQueueWait,
};

const char* const kPhaseMetrics[kPhaseCount] = {
    kMetricTxnLatencyRecovery,     kMetricTxnLatencyCompensation,
    kMetricTxnLatencyConflictCheck, kMetricTxnLatencyWalAppend,
    kMetricTxnLatencyFlushWait,    kMetricTxnLatencyEval,
    kMetricTxnLatencyNetInflight,  kMetricTxnLatencyQueueWait,
};

}  // namespace

const char* const* PhaseTable() { return kPhases; }

int PhaseIndex(const char* phase) {
  for (int i = 0; i < kPhaseCount; ++i) {
    // Pointer equality first: call sites pass the table constants.
    if (kPhases[i] == phase || std::strcmp(kPhases[i], phase) == 0) return i;
  }
  return -1;
}

int PhaseIndex(const std::string& phase) { return PhaseIndex(phase.c_str()); }

const char* PhaseMetricName(int i) {
  return i >= 0 && i < kPhaseCount ? kPhaseMetrics[i] : "";
}

std::vector<int64_t> PhaseLatencyBuckets() {
  // ~1.5x log-spaced. The old 1-2-5 decade grid was coarse enough that
  // typical phase medians sat in buckets spanning 2-2.5x, so reported
  // quantiles clustered near a handful of bounds; the denser grid keeps
  // the in-bucket interpolation error under ~25% everywhere.
  return {1,  2,  3,  4,   6,   9,   13,  19,   28,   42,   63,
          95, 140, 210, 320, 480, 720, 1080, 1600, 2400, 3600, 5400};
}

void Timeline::AttachMetrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) {
    for (int i = 0; i < kPhaseCount; ++i) phase_hist_[i] = nullptr;
    total_hist_ = nullptr;
    return;
  }
  for (int i = 0; i < kPhaseCount; ++i) {
    phase_hist_[i] = metrics_->GetHistogram(kPhaseMetrics[i],
                                            PhaseLatencyBuckets());
  }
  total_hist_ =
      metrics_->GetHistogram(kMetricTxnLatencyTotal, PhaseLatencyBuckets());
}

void Timeline::BeginTxn(const std::string& txn, int64_t now) {
  if (open_.count(txn) > 0) EndTxn(txn, now);
  OpenTxn open;
  open.index = txns_.size();
  open.segment_start = now;
  txns_.push_back({});
  txns_.back().txn = txn;
  txns_.back().begin = now;
  open_.emplace(txn, open);
}

void Timeline::Reattribute(OpenTxn* open, int64_t now, bool force) {
  int winner = kPhaseCount - 1;  // QUEUE_WAIT unless something claims.
  for (int i = 0; i < kPhaseCount; ++i) {
    if (open->claims[i] > 0) {
      winner = i;
      break;
    }
  }
  if (winner == open->attributed && !force) return;
  TxnTimeline& rec = txns_[open->index];
  if (now > open->segment_start) {
    rec.segments.push_back({kPhases[open->attributed], open->segment_start,
                            now});
    rec.phase_ticks[open->attributed] += now - open->segment_start;
    open->segment_start = now;
  }
  open->attributed = winner;
}

void Timeline::Enter(const std::string& txn, const char* phase, int64_t now) {
  auto it = open_.find(txn);
  if (it == open_.end()) return;
  const int index = PhaseIndex(phase);
  if (index < 0) return;
  ++it->second.claims[index];
  Reattribute(&it->second, now, /*force=*/false);
}

void Timeline::Exit(const std::string& txn, const char* phase, int64_t now) {
  auto it = open_.find(txn);
  if (it == open_.end()) return;
  const int index = PhaseIndex(phase);
  if (index < 0 || it->second.claims[index] == 0) return;
  --it->second.claims[index];
  Reattribute(&it->second, now, /*force=*/false);
}

void Timeline::EndTxn(const std::string& txn, int64_t now) {
  auto it = open_.find(txn);
  if (it == open_.end()) return;
  OpenTxn& open = it->second;
  Reattribute(&open, now, /*force=*/true);
  TxnTimeline& rec = txns_[open.index];
  rec.end = now;
  if (total_hist_ != nullptr) {
    for (int i = 0; i < kPhaseCount; ++i) {
      phase_hist_[i]->Observe(rec.phase_ticks[i]);
    }
    total_hist_->Observe(rec.end - rec.begin);
  }
  open_.erase(it);
}

const TxnTimeline* Timeline::Find(const std::string& txn) const {
  for (size_t i = txns_.size(); i > 0; --i) {
    if (txns_[i - 1].txn == txn) return &txns_[i - 1];
  }
  return nullptr;
}

void Timeline::Clear() {
  open_.clear();
  txns_.clear();
}

// ---------------------------------------------------------------------------
// axmlx-trace-v1 export
// ---------------------------------------------------------------------------

namespace {

void AppendInt(std::string* out, int64_t v) { *out += std::to_string(v); }

/// {"ph":"M","pid":P,"tid":T,"name":"<kind>","args":{"name":"<name>"}}
void AppendMeta(std::string* out, int64_t pid, int64_t tid, const char* kind,
                const std::string& name) {
  *out += "{\"ph\":\"M\",\"pid\":";
  AppendInt(out, pid);
  *out += ",\"tid\":";
  AppendInt(out, tid);
  *out += ",\"name\":\"";
  *out += kind;
  *out += "\",\"args\":{\"name\":\"" + JsonEscape(name) + "\"}}";
}

/// Opens {"ph":"X",...,"args":{ — caller appends args pairs and "}}"
void AppendSliceHead(std::string* out, int64_t pid, int64_t tid, int64_t ts,
                     int64_t dur, const std::string& name, const char* cat) {
  *out += "{\"ph\":\"X\",\"pid\":";
  AppendInt(out, pid);
  *out += ",\"tid\":";
  AppendInt(out, tid);
  *out += ",\"ts\":";
  AppendInt(out, ts);
  *out += ",\"dur\":";
  AppendInt(out, dur);
  *out += ",\"name\":\"" + JsonEscape(name) + "\",\"cat\":\"";
  *out += cat;
  *out += "\",\"args\":{";
}

/// Flow begin ("s") or finish ("f", binding-point "e") event.
void AppendFlow(std::string* out, char ph, int64_t pid, int64_t tid,
                int64_t ts, int64_t id) {
  *out += "{\"ph\":\"";
  *out += ph;
  *out += "\",\"pid\":";
  AppendInt(out, pid);
  *out += ",\"tid\":";
  AppendInt(out, tid);
  *out += ",\"ts\":";
  AppendInt(out, ts);
  *out += ",\"id\":";
  AppendInt(out, id);
  *out += ",\"name\":\"msg\",\"cat\":\"overlay\"";
  if (ph == 'f') *out += ",\"bp\":\"e\"";
  *out += "}";
}

void Comma(std::string* out, bool* first) {
  if (!*first) *out += ",";
  *first = false;
}

}  // namespace

std::string BuildTraceJson(const FlightRecorderSet* recorders,
                           const SpanTracker* spans,
                           const Timeline* timeline) {
  // Peer processes: union of recorder peers and span peers, sorted (pid is
  // 1 + rank; pid 0 is the synthetic transactions process).
  std::map<std::string, int64_t> pid_of;
  if (recorders != nullptr) {
    for (const auto& [peer, recorder] : recorders->recorders()) {
      pid_of.emplace(peer, 0);
    }
  }
  if (spans != nullptr) {
    for (const SpanRecord& s : spans->spans()) pid_of.emplace(s.peer, 0);
  }
  int64_t next_pid = 1;
  for (auto& [peer, pid] : pid_of) pid = next_pid++;

  std::string out = "{\"schema\":\"axmlx-trace-v1\",\"displayTimeUnit\":"
                    "\"ms\",\"traceEvents\":[";
  bool first = true;

  // --- Metadata: track names ---
  if (timeline != nullptr && !timeline->txns().empty()) {
    Comma(&out, &first);
    AppendMeta(&out, 0, 0, "process_name", "transactions");
    for (size_t i = 0; i < timeline->txns().size(); ++i) {
      Comma(&out, &first);
      AppendMeta(&out, 0, static_cast<int64_t>(i) + 1, "thread_name",
                 timeline->txns()[i].txn);
    }
  }
  for (const auto& [peer, pid] : pid_of) {
    Comma(&out, &first);
    AppendMeta(&out, pid, 0, "process_name", peer);
    Comma(&out, &first);
    AppendMeta(&out, pid, 1, "thread_name", "events");
    Comma(&out, &first);
    AppendMeta(&out, pid, 2, "thread_name", "spans");
  }

  // --- Transaction phase slices (pid 0, one thread per transaction) ---
  if (timeline != nullptr) {
    for (size_t i = 0; i < timeline->txns().size(); ++i) {
      const TxnTimeline& rec = timeline->txns()[i];
      const int64_t tid = static_cast<int64_t>(i) + 1;
      int64_t end = rec.end;
      if (end < 0) {  // still open: truncate at the last attributed edge
        end = rec.begin;
        if (!rec.segments.empty()) end = rec.segments.back().end;
      }
      Comma(&out, &first);
      AppendSliceHead(&out, 0, tid, rec.begin, end - rec.begin, rec.txn,
                      "txn");
      out += "\"txn\":\"" + JsonEscape(rec.txn) + "\",\"open\":";
      out += rec.end < 0 ? "true" : "false";
      out += "}}";
      for (const PhaseSegment& seg : rec.segments) {
        Comma(&out, &first);
        AppendSliceHead(&out, 0, tid, seg.start, seg.end - seg.start,
                        seg.phase, "phase");
        out += "\"txn\":\"" + JsonEscape(rec.txn) + "\",\"phase\":\"";
        out += seg.phase;
        out += "\"}}";
      }
    }
  }

  // --- Flight events, merged across peers in (time, seq) order ---
  if (recorders != nullptr) {
    struct Entry {
      const FlightEvent* event;
      const std::string* peer;
    };
    std::vector<Entry> merged;
    for (const auto& [peer, recorder] : recorders->recorders()) {
      for (size_t i = 0; i < recorder.size(); ++i) {
        merged.push_back({&recorder.At(i), &peer});
      }
    }
    std::sort(merged.begin(), merged.end(), [](const Entry& a,
                                               const Entry& b) {
      return std::tie(a.event->time, a.event->seq) <
             std::tie(b.event->time, b.event->seq);
    });
    for (const Entry& e : merged) {
      const int64_t pid = pid_of.at(*e.peer);
      Comma(&out, &first);
      AppendSliceHead(&out, pid, 1, e.event->time, 0, e.event->kind, "fr");
      out += "\"what\":\"" + JsonEscape(e.event->what) + "\",\"span\":";
      AppendInt(&out, static_cast<int64_t>(e.event->span));
      out += ",\"arg\":";
      AppendInt(&out, e.event->arg);
      out += "}}";
      // Overlay flow arrows: every send opens a flow keyed by the message
      // id (the recorder's arg); every receive finishes one. Dropped or
      // unreceived copies leave the flow dangling, which is legal.
      if (e.event->kind == kEvFrMsgSend ||
          std::strcmp(e.event->kind, kEvFrMsgSend) == 0) {
        Comma(&out, &first);
        AppendFlow(&out, 's', pid, 1, e.event->time, e.event->arg);
      } else if (e.event->kind == kEvFrMsgRecv ||
                 std::strcmp(e.event->kind, kEvFrMsgRecv) == 0) {
        Comma(&out, &first);
        AppendFlow(&out, 'f', pid, 1, e.event->time, e.event->arg);
      }
    }
  }

  // --- Spans (per-peer thread 2) ---
  if (spans != nullptr) {
    for (const SpanRecord& s : spans->spans()) {
      const int64_t pid = pid_of.at(s.peer);
      const int64_t dur = s.end >= 0 ? s.end - s.start : 0;
      Comma(&out, &first);
      AppendSliceHead(&out, pid, 2, s.start, dur,
                      s.kind + (s.detail.empty() ? "" : " " + s.detail),
                      "span");
      out += "\"txn\":\"" + JsonEscape(s.txn) + "\",\"span\":";
      AppendInt(&out, static_cast<int64_t>(s.span_id));
      out += ",\"parent\":";
      AppendInt(&out, static_cast<int64_t>(s.parent_span_id));
      out += ",\"outcome\":\"" +
             JsonEscape(s.end >= 0 ? s.outcome : "OPEN") + "\"}}";
    }
  }

  out += "]}\n";
  return out;
}

}  // namespace axmlx::obs
