#ifndef AXMLX_OBS_METRICS_H_
#define AXMLX_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metric_names.h"

namespace axmlx::obs {

/// Monotonic event counter. Supports `++counter` and `counter += n` so
/// migrated struct-field call sites keep their spelling.
class Counter {
 public:
  Counter& operator++() {
    ++value_;
    return *this;
  }
  Counter& operator+=(int64_t delta) {
    value_ += delta;
    return *this;
  }
  void Increment(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

/// Last-value gauge (queue depths, configured rates, ...).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// One histogram's data, frozen at snapshot time.
struct HistogramSnapshot {
  std::vector<int64_t> bounds;  ///< Inclusive upper bounds, ascending.
  std::vector<int64_t> counts;  ///< bounds.size() + 1 (last = overflow).
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  ///< 0 when empty.
  int64_t max = 0;
  int64_t p50 = 0;
  int64_t p95 = 0;
  int64_t p99 = 0;

  /// {"bounds":[...],"counts":[...],"count":N,...,"p95":N,"p99":N}.
  std::string ToJson() const;
};

/// Fixed-bucket histogram over int64 values (latencies in simulation ticks
/// or wall-clock microseconds). A value lands in the first bucket whose
/// upper bound is >= the value; everything past the last bound goes to an
/// implicit overflow bucket.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<int64_t> bounds);

  void Observe(int64_t value);

  const std::vector<int64_t>& bounds() const { return bounds_; }
  const std::vector<int64_t>& bucket_counts() const { return counts_; }
  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }

  /// Value at quantile `q` in [0, 1], estimated as the upper bound of the
  /// bucket holding that rank; ranks landing in the overflow bucket
  /// interpolate linearly between the last bound and the observed max.
  /// 0 when empty.
  int64_t Quantile(double q) const;

  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::vector<int64_t> bounds_;
  std::vector<int64_t> counts_;  ///< bounds_.size() + 1.
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// All registered metrics, frozen at snapshot time.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;
};

/// Named-metric registry. Handles returned by the Get* methods are stable
/// for the registry's lifetime (node-based storage), so hot paths cache the
/// pointer once and never pay the name lookup per event. Not thread-safe;
/// the simulator is single-threaded by design.
///
/// Naming scheme (see DESIGN.md §7): `<domain>.<metric>` with domains
/// `overlay.*` (message bus), `txn.*` (peer protocol), `drill.*` (fault
/// drills), `bench.*` (benchmark harness).
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies on first creation; later calls for the same name must
  /// pass the same bounds (or an empty vector meaning "whatever exists").
  /// A mismatch aborts the process: two call sites disagreeing on bucket
  /// layout would silently merge incomparable distributions.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds);

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }

  /// Zeroes every metric, keeping registrations (and handed-out pointers)
  /// valid.
  void Reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace axmlx::obs

#endif  // AXMLX_OBS_METRICS_H_
