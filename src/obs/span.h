#ifndef AXMLX_OBS_SPAN_H_
#define AXMLX_OBS_SPAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace axmlx::obs {

class Counter;
class FlightRecorderSet;
class MetricsRegistry;

/// Declared span kinds. Every `kind` passed to SpanTracker::OpenSpan must
/// come from this table (lint rule R3, same contract as the kEv* trace
/// kinds): the report tooling groups and renders by these strings, so an
/// emitter inventing an off-table spelling silently falls out of the
/// invocation-tree reconstruction.
inline constexpr char kSpanTxn[] = "TXN";
inline constexpr char kSpanService[] = "SERVICE";
inline constexpr char kSpanCompensation[] = "COMPENSATION";
inline constexpr char kSpanRecovery[] = "RECOVERY";

/// Span outcomes (deliberately NOT kSpan*-prefixed: they are not kinds and
/// must not enter the lint table).
inline constexpr char kOutcomeCommitted[] = "COMMITTED";
inline constexpr char kOutcomeAborted[] = "ABORTED";
inline constexpr char kOutcomeOk[] = "OK";
inline constexpr char kOutcomeFailed[] = "FAILED";
inline constexpr char kOutcomeAbsorbed[] = "ABSORBED";
inline constexpr char kOutcomeRetried[] = "RETRIED";

/// One causal span in the distributed invocation tree (paper §3.2): a
/// transaction, a nested service execution, a compensation, or a recovery
/// attempt. Parent links cross peers — the parent id travels in the INVOKE
/// message's span header — so the per-transaction tree reconstructs the
/// paper's Figure 1/2 narratives end to end.
struct SpanRecord {
  std::string txn;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  ///< 0 = root.
  std::string peer;
  std::string kind;    ///< One of the kSpan* table.
  std::string detail;  ///< Service name, document, or fault context.
  int64_t start = 0;   ///< Simulation time.
  int64_t end = -1;    ///< -1 while the span is open.
  std::string outcome;  ///< Empty while open.
  std::string fault;    ///< Fault name for aborted/failed spans.
};

/// Append-only span log with process-wide unique ids. One tracker is shared
/// by every peer of a repository (the discrete-event simulator is
/// single-threaded), which is what makes cross-peer parent links unambiguous.
class SpanTracker {
 public:
  /// Opens a span and returns its id (never 0).
  uint64_t OpenSpan(const std::string& txn, const std::string& peer,
                    const std::string& kind, uint64_t parent_span_id,
                    int64_t start, const std::string& detail = std::string());

  /// Closes `span_id` with `outcome` (and optionally the fault that ended
  /// it). Unknown or already-closed ids are ignored — close points race
  /// benignly under duplicated control messages — but every ignored close
  /// bumps obs.spans_close_unknown when a registry is attached, so the
  /// benign races stay observable.
  void CloseSpan(uint64_t span_id, int64_t end, const std::string& outcome,
                 const std::string& fault = std::string());

  const std::vector<SpanRecord>& spans() const { return spans_; }
  const SpanRecord* Find(uint64_t span_id) const;

  /// One JSON object per line:
  /// {"txn":...,"span":N,"parent":N,"peer":...,"kind":...,"detail":...,
  ///  "start":T,"end":T,"outcome":...[,"fault":...]}
  /// Still-open spans render with "end":-1 and the explicit outcome "OPEN"
  /// so dumps taken from crashed peers are unambiguous.
  std::string ToJsonl() const;

  /// Mirrors every OpenSpan/CloseSpan into the opening peer's flight
  /// recorder (SPAN_OPEN / SPAN_CLOSE events). Null detaches.
  void AttachRecorders(FlightRecorderSet* recorders) {
    recorders_ = recorders;
  }

  /// Counts ignored CloseSpan calls into `metrics` (not owned; null
  /// detaches).
  void AttachMetrics(MetricsRegistry* metrics);

  void Clear();

 private:
  std::vector<SpanRecord> spans_;
  std::map<uint64_t, size_t> index_;  ///< span_id -> index in spans_.
  uint64_t next_id_ = 1;
  FlightRecorderSet* recorders_ = nullptr;
  Counter* close_unknown_ = nullptr;  ///< obs.spans_close_unknown.
};

/// Renders one span as the JSON object described at ToJsonl (no trailing
/// newline). Shared by ToJsonl and the forensic dump builder so both
/// artifacts stay parseable by the same report code.
std::string SpanToJson(const SpanRecord& s);

}  // namespace axmlx::obs

#endif  // AXMLX_OBS_SPAN_H_
