#include "obs/span.h"

#include <sstream>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace axmlx::obs {

void SpanTracker::AttachMetrics(MetricsRegistry* metrics) {
  close_unknown_ =
      metrics != nullptr ? metrics->GetCounter(kMetricObsSpansCloseUnknown)
                         : nullptr;
}

uint64_t SpanTracker::OpenSpan(const std::string& txn, const std::string& peer,
                               const std::string& kind,
                               uint64_t parent_span_id, int64_t start,
                               const std::string& detail) {
  SpanRecord rec;
  rec.txn = txn;
  rec.span_id = next_id_++;
  rec.parent_span_id = parent_span_id;
  rec.peer = peer;
  rec.kind = kind;
  rec.detail = detail;
  rec.start = start;
  index_[rec.span_id] = spans_.size();
  spans_.push_back(std::move(rec));
  const SpanRecord& stored = spans_.back();
  if (recorders_ != nullptr) {
    recorders_->ForPeer(stored.peer)->Record(
        kEvFrSpanOpen, stored.kind, stored.span_id,
        static_cast<int64_t>(stored.parent_span_id));
  }
  return stored.span_id;
}

void SpanTracker::CloseSpan(uint64_t span_id, int64_t end,
                            const std::string& outcome,
                            const std::string& fault) {
  auto it = index_.find(span_id);
  if (it == index_.end()) {
    if (close_unknown_ != nullptr) ++*close_unknown_;
    return;
  }
  SpanRecord& rec = spans_[it->second];
  if (rec.end >= 0) {  // already closed; first close wins
    if (close_unknown_ != nullptr) ++*close_unknown_;
    return;
  }
  rec.end = end;
  rec.outcome = outcome;
  rec.fault = fault;
  if (recorders_ != nullptr) {
    recorders_->ForPeer(rec.peer)->Record(kEvFrSpanClose, rec.outcome,
                                          rec.span_id);
  }
}

const SpanRecord* SpanTracker::Find(uint64_t span_id) const {
  auto it = index_.find(span_id);
  if (it == index_.end()) return nullptr;
  return &spans_[it->second];
}

std::string SpanToJson(const SpanRecord& s) {
  std::ostringstream os;
  os << "{\"txn\":\"" << JsonEscape(s.txn) << "\",\"span\":" << s.span_id
     << ",\"parent\":" << s.parent_span_id << ",\"peer\":\""
     << JsonEscape(s.peer) << "\",\"kind\":\"" << JsonEscape(s.kind)
     << "\",\"detail\":\"" << JsonEscape(s.detail) << "\",\"start\":" << s.start
     << ",\"end\":" << s.end << ",\"outcome\":\""
     << (s.end < 0 ? "OPEN" : JsonEscape(s.outcome)) << "\"";
  if (!s.fault.empty()) {
    os << ",\"fault\":\"" << JsonEscape(s.fault) << "\"";
  }
  os << "}";
  return os.str();
}

std::string SpanTracker::ToJsonl() const {
  std::string out;
  for (const SpanRecord& s : spans_) {
    out += SpanToJson(s);
    out += '\n';
  }
  return out;
}

void SpanTracker::Clear() {
  spans_.clear();
  index_.clear();
  next_id_ = 1;
}

}  // namespace axmlx::obs
