#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "obs/json.h"

namespace axmlx::obs {

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

void Histogram::Observe(int64_t value) {
  size_t bucket = bounds_.size();  // overflow by default
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

int64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based.
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(count_ - 1)) + 1;
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen < rank) continue;
    // Interpolate linearly between the bucket's edges by the rank's
    // position inside it, everywhere — not just in the overflow bucket.
    // Returning the upper bound outright pinned any mid-distribution
    // quantile to a bucket boundary (bench medians read exactly 250000
    // because that was a bound, regardless of where the mass sat), and
    // made p50 jump discontinuously whenever a bucket emptied. The edges
    // are clamped to the observed min/max so sparse buckets cannot report
    // values outside the data.
    const int64_t in_bucket = counts_[i];
    int64_t lo = i == 0 ? min() : bounds_[i - 1];
    if (min() > lo) lo = min();
    int64_t hi = i < bounds_.size() ? std::min(bounds_[i], max()) : max();
    if (hi <= lo || in_bucket <= 1) return hi;
    const int64_t into = rank - (seen - in_bucket);  // 1..in_bucket
    return lo + (hi - lo) * into / in_bucket;
  }
  return max();
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts = counts_;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min();
  snap.max = max();
  snap.p50 = Quantile(0.50);
  snap.p95 = Quantile(0.95);
  snap.p99 = Quantile(0.99);
  return snap;
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

namespace {

void AppendIntArray(std::ostringstream* os, const std::vector<int64_t>& v) {
  *os << "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) *os << ",";
    *os << v[i];
  }
  *os << "]";
}

}  // namespace

std::string HistogramSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"bounds\":";
  AppendIntArray(&os, bounds);
  os << ",\"counts\":";
  AppendIntArray(&os, counts);
  os << ",\"count\":" << count << ",\"sum\":" << sum << ",\"min\":" << min
     << ",\"max\":" << max << ",\"p50\":" << p50 << ",\"p95\":" << p95
     << ",\"p99\":" << p99 << "}";
  return os.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << hist.ToJson();
  }
  os << "}}";
  return os.str();
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return &counters_[name];
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return &gauges_[name];
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
  } else if (!bounds.empty() && bounds != it->second.bounds()) {
    std::fprintf(stderr,
                 "MetricsRegistry::GetHistogram(\"%s\"): bucket bounds "
                 "mismatch with an earlier registration\n",
                 name.c_str());
    std::abort();
  }
  return &it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h.Snapshot();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, g] : gauges_) g.Reset();
  for (auto& [name, h] : histograms_) h.Reset();
}

}  // namespace axmlx::obs
