#ifndef AXMLX_OBS_FLIGHT_RECORDER_H_
#define AXMLX_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace axmlx::obs {

class SpanTracker;

/// Declared flight-recorder event kinds. Every `kind` passed to
/// FlightRecorder::Record must come from this table (lint rule R3, same
/// contract as the kEv* trace kinds and the kSpan* span kinds): forensic
/// dumps and the `axmlx_report --forensics` timeline group by these strings,
/// so an emitter inventing an off-table spelling silently falls out of the
/// rendered black box. The free-form `what` argument is lowercase by
/// convention, which keeps it visually distinct from kinds (and out of the
/// linter's ALL_CAPS literal check).
inline constexpr char kEvFrMsgSend[] = "MSG_SEND";
inline constexpr char kEvFrMsgRecv[] = "MSG_RECV";
inline constexpr char kEvFrMsgDrop[] = "MSG_DROP";
inline constexpr char kEvFrTxnState[] = "TXN_STATE";
inline constexpr char kEvFrWalAppend[] = "WAL_APPEND";
inline constexpr char kEvFrWalFlush[] = "WAL_FLUSH";
inline constexpr char kEvFrCheckpoint[] = "WAL_CHECKPOINT";
inline constexpr char kEvFrOpExec[] = "OP_EXEC";
inline constexpr char kEvFrCompStep[] = "COMP_STEP";
inline constexpr char kEvFrFault[] = "FAULT_INJECT";
inline constexpr char kEvFrSpanOpen[] = "SPAN_OPEN";
inline constexpr char kEvFrSpanClose[] = "SPAN_CLOSE";
inline constexpr char kEvFrCrash[] = "CRASH";
inline constexpr char kEvFrRestart[] = "RESTART";
inline constexpr char kEvFrRecovery[] = "RECOVERY";
inline constexpr char kEvFrTxnSnapshot[] = "TXN_SNAPSHOT";
inline constexpr char kEvFrTxnConflict[] = "TXN_CONFLICT";
inline constexpr char kEvFrJobRun[] = "JOB_RUN";

/// One fixed-size flight-recorder record. `kind` points into the kEvFr*
/// table (never owned); `what` is a truncating copy of the free-form detail,
/// so appending an event never allocates.
struct FlightEvent {
  int64_t time = 0;   ///< Simulation time (from the shared clock or SetTime).
  uint64_t seq = 0;   ///< Global order among all recorders of one set.
  uint64_t span = 0;  ///< Correlated span id; 0 = none.
  int64_t arg = 0;    ///< Kind-specific integer (batch size, node count, ...).
  const char* kind = "";  ///< One of the kEvFr* table.
  char what[40] = {};     ///< Truncated lowercase detail, NUL-terminated.
};

/// Per-peer bounded ring buffer of FlightEvents: the always-on black box.
///
/// The ring is preallocated in the constructor; Record() overwrites the
/// oldest slot in place, so steady-state appends perform zero heap
/// allocation — cheap enough to stay enabled on the storage/query hot paths
/// (bench_obs_overhead enforces the budget). Events are stamped with the
/// shared clock of the owning FlightRecorderSet when there is one, else
/// with the last SetTime() value; `seq` gives a deterministic total order
/// for merging the tails of several peers into one timeline.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  /// `shared_seq`/`clock` (optional, not owned) are supplied by
  /// FlightRecorderSet so all recorders of one repository share a sequence
  /// counter and a simulation clock; standalone recorders use local ones.
  explicit FlightRecorder(size_t capacity = kDefaultCapacity,
                          uint64_t* shared_seq = nullptr,
                          const int64_t* clock = nullptr);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event. `kind` must be a kEvFr* table constant (the pointer
  /// is stored, not copied); `what` is truncated into the fixed-size slot.
  void Record(const char* kind, std::string_view what = {}, uint64_t span = 0,
              int64_t arg = 0);

  /// Clock for recorders without a set-shared clock (no-op otherwise).
  void SetTime(int64_t time) { time_ = time; }
  int64_t time() const { return clock_ != nullptr ? *clock_ : time_; }

  size_t capacity() const { return ring_.size(); }
  /// Events ever recorded (>= size(); the difference was overwritten).
  uint64_t total() const { return total_; }
  /// Events currently retained.
  size_t size() const;

  /// The i-th retained event, oldest first (i < size()).
  const FlightEvent& At(size_t i) const;

  void Clear();

 private:
  std::vector<FlightEvent> ring_;
  uint64_t total_ = 0;
  int64_t time_ = 0;
  uint64_t* shared_seq_;
  uint64_t local_seq_ = 0;
  const int64_t* clock_;
};

/// One FlightRecorder per peer, sharing a sequence counter and a simulation
/// clock so that their tails merge into one deterministic cross-peer
/// timeline. Recorder pointers are stable for the set's lifetime
/// (node-based storage), so components cache them once.
class FlightRecorderSet {
 public:
  explicit FlightRecorderSet(
      size_t capacity_per_peer = FlightRecorder::kDefaultCapacity)
      : capacity_(capacity_per_peer) {}

  FlightRecorderSet(const FlightRecorderSet&) = delete;
  FlightRecorderSet& operator=(const FlightRecorderSet&) = delete;

  /// The recorder for `peer`, created on first use.
  FlightRecorder* ForPeer(const std::string& peer);

  /// Advances the shared clock all member recorders stamp events with.
  void SetNow(int64_t now) { now_ = now; }
  int64_t now() const { return now_; }

  const std::map<std::string, FlightRecorder>& recorders() const {
    return recorders_;
  }

 private:
  size_t capacity_;
  int64_t now_ = 0;
  uint64_t next_seq_ = 0;
  std::map<std::string, FlightRecorder> recorders_;
};

/// What triggered a forensic dump, and what to focus it on.
struct ForensicDumpOptions {
  std::string reason;  ///< "crash", "abort-cascade", "atomicity-violation".
  std::string peer;    ///< Focal peer; empty = none.
  std::string txn;     ///< Focal transaction; empty = none.
  int64_t time = -1;   ///< Failure time; -1 = unknown.
  size_t last_n = 64;  ///< Tail length taken from each involved peer.
};

/// Builds the "axmlx-forensics-v1" black-box JSON artifact: the last-N
/// events of every involved peer merged into one (time, seq)-ordered
/// timeline, plus span context. Involved peers are those that appear in
/// `options.txn`'s spans when a focal transaction is given (the abort
/// cascade's participants), else every peer with a recorder. Included spans
/// are the focal transaction's, else all still-open ones. The output is a
/// pure function of recorder/span state, so equal seeds produce
/// byte-identical dumps. `spans` may be null.
std::string BuildForensicDump(const FlightRecorderSet& recorders,
                              const ForensicDumpOptions& options,
                              const SpanTracker* spans);

}  // namespace axmlx::obs

#endif  // AXMLX_OBS_FLIGHT_RECORDER_H_
