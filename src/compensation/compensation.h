#ifndef AXMLX_COMPENSATION_COMPENSATION_H_
#define AXMLX_COMPENSATION_COMPENSATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ops/executor.h"
#include "ops/op_log.h"
#include "xml/document.h"

namespace axmlx::comp {

/// A dynamically constructed compensation plan (paper §3.1): the inverse
/// operations of an executed transaction prefix, ordered for execution
/// ("compensation is achieved by executing the compensating operations in
/// the reverse order of the execution of their respective forward
/// operations").
struct CompensationPlan {
  std::vector<ops::Operation> operations;

  /// Nodes the plan will touch — the paper's recovery-cost measure (§3.2).
  size_t cost_nodes = 0;

  bool empty() const { return operations.empty(); }
};

/// Serializes a detached subtree back to XML (used for the `<data>` payload
/// of compensating inserts).
std::string SerializeDetached(const xml::DetachedSubtree& subtree);

/// Builds compensation plans from logged effects. Static handlers cannot do
/// this: "As the actual set of service calls materialized is determined
/// only at run-time, the compensating operation for an AXML query cannot be
/// pre-defined statically (has to be constructed dynamically)." (§3.1)
class CompensationBuilder {
 public:
  /// Inverse operations for a single executed operation:
  /// - each logged insert becomes a delete of the inserted node id,
  /// - each logged delete becomes an insert of the logged subtree at the
  ///   logged parent/position (exact, id-preserving),
  /// - each logged text change becomes a replace reinstating the old value,
  /// in reverse edit order.
  static CompensationPlan ForEffect(const ops::OpEffect& effect);

  /// Inverse operations for a whole transaction log (reverse op order).
  static CompensationPlan ForLog(const ops::OpLog& log);

  /// Renders a plan in the paper's `<action>` syntax, one string per
  /// compensating operation (presentation/peer-shipping form; loses id
  /// preservation, see Operation::restore).
  static std::vector<std::string> ToPaperXml(const CompensationPlan& plan);
};

/// Executes every operation of `plan` against `executor`'s document,
/// stopping at the first failure. Returns the total nodes affected through
/// `nodes_affected` when non-null.
Status ApplyPlan(ops::Executor* executor, const CompensationPlan& plan,
                 size_t* nodes_affected = nullptr);

}  // namespace axmlx::comp

#endif  // AXMLX_COMPENSATION_COMPENSATION_H_
