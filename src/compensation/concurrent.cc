#include "compensation/concurrent.h"

#include <set>
#include <utility>

#include "obs/flight_recorder.h"
#include "runtime/job_queue.h"
#include "xml/edit.h"

namespace axmlx::comp {

bool IsWriteConflict(const Status& status) {
  return status.code() == StatusCode::kConflict;
}

ConcurrentExecutor::ConcurrentExecutor(xml::Document* doc,
                                       axml::ServiceInvoker invoker,
                                       obs::FlightRecorder* recorder)
    : doc_(doc),
      invoker_(std::move(invoker)),
      recorder_(recorder),
      counters_(&metrics_) {
  doc_->EnableVersioning();
}

TxnHandle ConcurrentExecutor::Begin(const std::string& label) {
  TxnHandle handle = next_writer_++;
  Txn& t = txns_[handle];
  t.label = label;
  t.snapshot = doc_->version();
  t.ctx.view = xml::ReadView{t.snapshot, handle, true};
  table_.BeginWriter(handle, t.snapshot);
  ++counters_.snapshots_taken;
  if (timeline_ != nullptr) timeline_->BeginTxn(t.label, timeline_now_);
  if (recorder_ != nullptr) {
    recorder_->Record(obs::kEvFrTxnSnapshot, t.label, handle,
                      static_cast<int64_t>(t.snapshot));
  }
  return handle;
}

Result<const ops::OpEffect*> ConcurrentExecutor::Execute(
    TxnHandle txn, const ops::Operation& op) {
  return ExecuteImpl(txn, op, /*prep=*/nullptr);
}

Result<const ops::OpEffect*> ConcurrentExecutor::ExecuteImpl(
    TxnHandle txn, const ops::Operation& op, ops::PreparedOp* prep) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return InvalidArgument("unknown or finished transaction handle");
  }
  Txn& t = it->second;
  // Writes by this executor step must carry our writer tag so the conflict
  // check can tell our fresh records from other writers', and so our own
  // snapshot reads see them (read-your-own-writes).
  doc_->SetWriter(txn);
  ops::Executor exec(doc_, invoker_);
  exec.SetEvalContext(&t.ctx);
  exec.SetRecorder(recorder_);
  // The document may have moved since our last op; memoized text is stale.
  t.ctx.InvalidateCaches();
  if (timeline_ != nullptr) {
    timeline_->Enter(t.label, obs::kPhaseEval, timeline_now_);
  }
  Result<ops::OpEffect> result = prep != nullptr
                                     ? exec.ExecutePrepared(op, std::move(*prep))
                                     : exec.Execute(op);
  if (timeline_ != nullptr) {
    timeline_->Exit(t.label, obs::kPhaseEval, ++timeline_now_);
  }
  doc_->SetWriter(0);
  if (!result.ok()) return result.status();  // doc untouched; txn stays live
  ++counters_.snapshot_ops;

  if (timeline_ != nullptr) {
    timeline_->Enter(t.label, obs::kPhaseConflictCheck, timeline_now_);
  }
  // The check itself always runs here, serialized on the caller (under the
  // runtime, inside the job's apply stage); RunInline only adds typed
  // accounting so conflict checks show up as kJobConflictCheck work.
  std::optional<ops::Conflict> conflict;
  auto check = [&] {
    conflict = table_.CheckEffect(*doc_, result.value(), txn, t.snapshot);
  };
  if (runtime_ != nullptr) {
    runtime_->RunInline(runtime::JobType::kJobConflictCheck, t.label, check);
  } else {
    check();
  }
  if (timeline_ != nullptr) {
    timeline_->Exit(t.label, obs::kPhaseConflictCheck, ++timeline_now_);
  }
  if (conflict.has_value()) {
    ++counters_.conflicts_detected;
    // First-writer-wins: we lose. Roll the in-flight effect back, then
    // compensate the prefix we had already executed.
    doc_->SetWriter(txn);
    Status rollback = xml::RollbackAll(doc_, result.value().edits);
    doc_->SetWriter(0);
    if (!rollback.ok()) return rollback;
    AXMLX_RETURN_IF_ERROR(CompensateAndEnd(txn, &t, "conflict"));
    ++counters_.conflicts_aborted;
    return Conflict("WriteConflict: node " +
                    std::to_string(conflict->node) + " written by txn " +
                    std::to_string(conflict->other_writer) + " at version " +
                    std::to_string(conflict->version));
  }
  t.log.Append(std::move(result).value());
  return &t.log.effects().back();
}

std::vector<ConcurrentExecutor::BatchOutcome> ConcurrentExecutor::ExecuteBatch(
    const std::vector<BatchOp>& batch) {
  std::vector<BatchOutcome> out(batch.size());
  // A nested batch (submitted from inside a job's apply stage) must not
  // join the in-flight drain: its results live on this stack frame.
  if (runtime_ != nullptr && !runtime_->draining() && !batch.empty()) {
    std::vector<ops::PreparedOp> prepared(batch.size());
    std::set<TxnHandle> seen;
    // Work stages read the wave-start document concurrently; switch the
    // const read paths to their cache-mutation-free variants for the drain.
    doc_->SetConcurrentReads(true);
    for (size_t i = 0; i < batch.size(); ++i) {
      auto it = txns_.find(batch[i].txn);
      runtime::Job job;
      job.type = runtime::JobType::kJobEval;
      job.txn = it != txns_.end() ? it->second.label : std::string();
      // Repeat ops of one transaction stay unprepared: their apply stage
      // then runs the full synchronous path and sees the transaction's
      // earlier same-batch writes live instead of through the stale
      // wave-start snapshot.
      if (it != txns_.end() && seen.insert(batch[i].txn).second) {
        xml::ReadView view = it->second.ctx.view;
        job.work = [this, &batch, &prepared, i,
                    view](runtime::WorkerContext& wc) {
          wc.eval->view = view;
          wc.eval->InvalidateCaches();
          prepared[i] = ops::Executor::Prepare(*doc_, batch[i].op, wc.eval);
        };
      }
      job.apply = [this, &batch, &prepared, &out, i] {
        Result<const ops::OpEffect*> r =
            ExecuteImpl(batch[i].txn, batch[i].op, &prepared[i]);
        out[i].status = r.status();
        out[i].effect = r.ok() ? r.value() : nullptr;
      };
      runtime_->Submit(std::move(job));
    }
    runtime_->Drain();
    doc_->SetConcurrentReads(false);
    return out;
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    Result<const ops::OpEffect*> r = Execute(batch[i].txn, batch[i].op);
    out[i].status = r.status();
    out[i].effect = r.ok() ? r.value() : nullptr;
  }
  return out;
}

Status ConcurrentExecutor::Commit(TxnHandle txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return InvalidArgument("unknown or finished transaction handle");
  }
  if (timeline_ != nullptr) timeline_->EndTxn(it->second.label, timeline_now_);
  table_.EndWriter(txn);
  txns_.erase(it);
  ++counters_.mvcc_commits;
  PruneHistory();
  return Status::Ok();
}

Status ConcurrentExecutor::Abort(TxnHandle txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return InvalidArgument("unknown or finished transaction handle");
  }
  return CompensateAndEnd(txn, &it->second, "abort");
}

void ConcurrentExecutor::NoteRetry() { ++counters_.conflicts_retried; }

bool ConcurrentExecutor::IsActive(TxnHandle txn) const {
  return txns_.count(txn) != 0;
}

xml::ReadView ConcurrentExecutor::ViewOf(TxnHandle txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return xml::ReadView{};
  return it->second.ctx.view;
}

Status ConcurrentExecutor::CompensateAndEnd(TxnHandle txn, Txn* t,
                                            const char* why) {
  if (recorder_ != nullptr) {
    recorder_->Record(obs::kEvFrTxnConflict, why, txn,
                      static_cast<int64_t>(t->log.size()));
  }
  Status status = Status::Ok();
  if (!t->log.empty()) {
    auto compensate = [&] {
      CompensationPlan plan = CompensationBuilder::ForLog(t->log);
      // Compensation runs against the *live* document (open nesting: our
      // writes are already visible), under our writer tag so other snapshots
      // treat the undo like any concurrent write.
      doc_->SetWriter(txn);
      ops::Executor exec(doc_, invoker_);
      query::EvalContext live_ctx;
      exec.SetEvalContext(&live_ctx);
      exec.SetRecorder(recorder_);
      status = ApplyPlan(&exec, plan);
      doc_->SetWriter(0);
    };
    if (runtime_ != nullptr) {
      runtime_->RunInline(runtime::JobType::kJobCompensation, t->label,
                          compensate);
    } else {
      compensate();
    }
  }
  if (timeline_ != nullptr) {
    timeline_->Enter(t->label, obs::kPhaseCompensation, timeline_now_);
    timeline_->Exit(t->label, obs::kPhaseCompensation, ++timeline_now_);
    timeline_->EndTxn(t->label, timeline_now_);
  }
  table_.EndWriter(txn);
  txns_.erase(txn);
  PruneHistory();
  return status;
}

void ConcurrentExecutor::PruneHistory() {
  doc_->PruneVersionsBefore(table_.OldestSnapshot(doc_->version()));
}

}  // namespace axmlx::comp
