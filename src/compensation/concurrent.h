#ifndef AXMLX_COMPENSATION_CONCURRENT_H_
#define AXMLX_COMPENSATION_CONCURRENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "axml/materializer.h"
#include "common/status.h"
#include "compensation/compensation.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "ops/conflict.h"
#include "ops/executor.h"
#include "ops/op_log.h"
#include "query/eval.h"
#include "xml/document.h"

namespace axmlx::obs {
class FlightRecorder;
}  // namespace axmlx::obs

namespace axmlx::runtime {
class JobQueue;
}  // namespace axmlx::runtime

namespace axmlx::comp {

/// Identifies one in-flight transaction of a ConcurrentExecutor. Handles are
/// never reused within one executor.
using TxnHandle = uint64_t;

/// True when `status` is the write-write conflict abort produced by
/// ConcurrentExecutor::Execute — the caller should retry the transaction
/// from Begin() rather than treat it as a hard failure.
[[nodiscard]] bool IsWriteConflict(const Status& status);

/// Interleaves several transactions against one document without locks
/// (DESIGN.md §10).
///
/// Each Begin() takes an MVCC snapshot: the transaction's queries resolve
/// every node through the document's version chains as of the begin
/// version, plus its own writes (read-your-own-writes). Writes execute
/// against the live document immediately — the paper's open-nesting model,
/// where sub-transactions commit at once and atomicity is restored by
/// compensation, not by holding effects back. After each write the effect's
/// node footprint is checked against all other writers' version records;
/// on a write-write conflict the in-flight effect is rolled back, the
/// transaction's earlier operations are compensated through
/// CompensationBuilder (§3.1/§3.2 machinery, the same path a distributed
/// abort takes), and Execute returns a kConflict status the caller resolves
/// by retrying. Losers abort; nobody blocks.
class ConcurrentExecutor {
 public:
  /// `doc` must outlive the executor; versioning is enabled on it. `invoker`
  /// and `recorder` are forwarded to the per-transaction ops::Executors.
  ConcurrentExecutor(xml::Document* doc, axml::ServiceInvoker invoker,
                     obs::FlightRecorder* recorder = nullptr);

  /// Starts a transaction: allocates a writer tag, snapshots the document
  /// version, registers with the conflict table.
  TxnHandle Begin(const std::string& label);

  /// Executes `op` for `txn`. On success returns the logged effect (owned
  /// by the transaction's log; valid until Commit/Abort). On write-write
  /// conflict the transaction is aborted and compensated, and the returned
  /// status has StatusCode::kConflict (test with IsWriteConflict); on other
  /// errors the transaction stays active and the document is untouched.
  Result<const ops::OpEffect*> Execute(TxnHandle txn, const ops::Operation& op);

  /// One entry of an ExecuteBatch: an operation to run on behalf of an
  /// already-begun transaction.
  struct BatchOp {
    TxnHandle txn = 0;
    ops::Operation op;
  };

  /// Outcome of one batch entry, mirroring Execute's contract: `effect` is
  /// owned by the transaction's log and valid until Commit/Abort; a
  /// kConflict status means the transaction was aborted and compensated.
  struct BatchOutcome {
    Status status;
    const ops::OpEffect* effect = nullptr;
  };

  /// Executes a batch of operations from *distinct* transactions. With a
  /// runtime attached (AttachRuntime), each entry's read-only half runs as a
  /// kJobEval work stage — location queries evaluated concurrently against
  /// the wave-start document through each transaction's snapshot view — and
  /// its mutation half (including conflict check and compensation) applies
  /// serially in batch order, which makes outcomes identical to calling
  /// Execute sequentially in batch order — and identical across worker
  /// counts (DESIGN.md §11). Without a runtime it does exactly that,
  /// sequentially. Entries sharing a TxnHandle with an earlier entry skip
  /// the prepared path: an operation must see its own transaction's earlier
  /// writes live, not through the wave-start snapshot. One caveat vs pure
  /// sequential execution: an embedded service call *inserted* by an
  /// earlier batch entry is only considered for materialization from the
  /// next batch on (prepare decisions are taken at wave start).
  std::vector<BatchOutcome> ExecuteBatch(const std::vector<BatchOp>& batch);

  /// Commits `txn`: its writes become durable history, its snapshot is
  /// released, and version records no active snapshot can reach are pruned.
  Status Commit(TxnHandle txn);

  /// Voluntarily aborts `txn`, compensating all executed operations.
  Status Abort(TxnHandle txn);

  /// Counts a caller-driven retry after a conflict abort (metrics only).
  void NoteRetry();

  [[nodiscard]] bool IsActive(TxnHandle txn) const;

  /// Snapshot view of an active transaction (inactive view when unknown) —
  /// lets callers run their own snapshot queries for verification.
  [[nodiscard]] xml::ReadView ViewOf(TxnHandle txn) const;

  obs::MetricsRegistry* metrics() { return &metrics_; }
  xml::Document* doc() { return doc_; }

  /// Attaches a phase timeline keyed by transaction *labels* (not owned;
  /// null detaches) — labels must therefore be unique among concurrently
  /// open transactions. The executor has no simulation clock, so it drives
  /// a logical one: each Execute advances it one tick inside EVAL and one
  /// inside CONFLICT_CHECK, and each conflict/abort adds one COMPENSATION
  /// tick — giving the contended-path phases real widths, with time a
  /// transaction spends open while *other* transactions execute falling to
  /// the QUEUE_WAIT residual (see DESIGN.md §7).
  void AttachTimeline(obs::Timeline* timeline) { timeline_ = timeline; }

  /// Attaches the worker pool ExecuteBatch parallelizes over (not owned;
  /// null detaches). Also routes conflict-check and compensation work
  /// through JobQueue::RunInline for typed job accounting.
  void AttachRuntime(runtime::JobQueue* rt) { runtime_ = rt; }

  /// Elapsed ticks of the logical op clock driving the timeline stamps
  /// (only advances while a timeline is attached; zero otherwise). Benches
  /// read it to turn committed-op counts into a simulated-time rate.
  [[nodiscard]] int64_t timeline_now() const { return timeline_now_; }

 private:
  struct Txn {
    std::string label;
    uint64_t snapshot = 0;
    query::EvalContext ctx;  ///< Per-txn: memos are only valid for one view.
    ops::OpLog log;
  };

  /// Execute() with an optional precomputed read half (null: resolve
  /// synchronously).
  Result<const ops::OpEffect*> ExecuteImpl(TxnHandle txn,
                                           const ops::Operation& op,
                                           ops::PreparedOp* prep);

  /// Compensates `t`'s executed operations (reverse order) against the live
  /// document and unregisters it. `why` feeds the flight recorder.
  Status CompensateAndEnd(TxnHandle txn, Txn* t, const char* why);

  /// Drops version records no active snapshot can reach.
  void PruneHistory();

  xml::Document* doc_;
  axml::ServiceInvoker invoker_;
  obs::FlightRecorder* recorder_;
  obs::Timeline* timeline_ = nullptr;
  runtime::JobQueue* runtime_ = nullptr;
  int64_t timeline_now_ = 0;  ///< Logical op clock for timeline stamps.
  ops::ConflictTable table_;
  std::map<TxnHandle, Txn> txns_;
  TxnHandle next_writer_ = 1;

  obs::MetricsRegistry metrics_;
  struct Counters {
    obs::Counter& snapshots_taken;
    obs::Counter& snapshot_ops;
    obs::Counter& conflicts_detected;
    obs::Counter& conflicts_aborted;
    obs::Counter& conflicts_retried;
    obs::Counter& mvcc_commits;
    explicit Counters(obs::MetricsRegistry* m)
        : snapshots_taken(*m->GetCounter(obs::kMetricTxnSnapshotsTaken)),
          snapshot_ops(*m->GetCounter(obs::kMetricTxnSnapshotOps)),
          conflicts_detected(*m->GetCounter(obs::kMetricTxnConflictsDetected)),
          conflicts_aborted(*m->GetCounter(obs::kMetricTxnConflictsAborted)),
          conflicts_retried(*m->GetCounter(obs::kMetricTxnConflictsRetried)),
          mvcc_commits(*m->GetCounter(obs::kMetricTxnMvccCommits)) {}
  } counters_;
};

}  // namespace axmlx::comp

#endif  // AXMLX_COMPENSATION_CONCURRENT_H_
