#include "compensation/compensation.h"

#include <cassert>
#include <memory>

#include "common/strings.h"

namespace axmlx::comp {

std::string SerializeDetached(const xml::DetachedSubtree& subtree) {
  // Restore into a scratch document to reuse the serializer. The scratch
  // root has id 1; detached subtrees never contain a document root, so their
  // ids are all >= 2 and cannot collide.
  xml::Document scratch("scratch");
  Status s = scratch.RestoreSubtree(subtree.nodes, subtree.root,
                                    scratch.root(), 0);
  assert(s.ok());
  (void)s;
  return scratch.Serialize(subtree.root);
}

namespace {

/// Appends the inverse of `edit` to `plan`.
void AppendInverse(const xml::Edit& edit, CompensationPlan* plan) {
  switch (edit.kind) {
    case xml::Edit::Kind::kInsertSubtree: {
      // "The compensating operation (for the insert operation) is a delete
      // operation to delete the node having the corresponding ID." (§3.1)
      plan->operations.push_back(ops::MakeDeleteById(edit.node));
      break;
    }
    case xml::Edit::Kind::kRemoveSubtree: {
      // "...the <location> and <data> of the compensating insert operation
      // are the parent (/..) of the deleted node and the result of the
      // <location> query of the delete operation, respectively." (§3.1)
      ops::Operation op = ops::MakeInsertAt(edit.parent, edit.index,
                                            SerializeDetached(edit.removed));
      op.restore = std::make_shared<xml::DetachedSubtree>(edit.removed);
      plan->operations.push_back(std::move(op));
      break;
    }
    case xml::Edit::Kind::kSetText: {
      ops::Operation op;
      op.type = ops::ActionType::kReplace;
      op.target_node = edit.node;
      op.data_xml = XmlEscape(edit.old_text);
      plan->operations.push_back(std::move(op));
      break;
    }
  }
  plan->cost_nodes += edit.nodes_affected;
}

}  // namespace

CompensationPlan CompensationBuilder::ForEffect(const ops::OpEffect& effect) {
  CompensationPlan plan;
  const std::vector<xml::Edit>& edits = effect.edits.edits();
  for (size_t i = edits.size(); i > 0; --i) {
    AppendInverse(edits[i - 1], &plan);
  }
  return plan;
}

CompensationPlan CompensationBuilder::ForLog(const ops::OpLog& log) {
  CompensationPlan plan;
  const std::vector<ops::OpEffect>& effects = log.effects();
  for (size_t i = effects.size(); i > 0; --i) {
    CompensationPlan sub = ForEffect(effects[i - 1]);
    for (ops::Operation& op : sub.operations) {
      plan.operations.push_back(std::move(op));
    }
    plan.cost_nodes += sub.cost_nodes;
  }
  return plan;
}

std::vector<std::string> CompensationBuilder::ToPaperXml(
    const CompensationPlan& plan) {
  std::vector<std::string> out;
  out.reserve(plan.operations.size());
  for (const ops::Operation& op : plan.operations) {
    out.push_back(op.ToXml());
  }
  return out;
}

Status ApplyPlan(ops::Executor* executor, const CompensationPlan& plan,
                 size_t* nodes_affected) {
  size_t total = 0;
  for (const ops::Operation& op : plan.operations) {
    auto effect = executor->Execute(op);
    if (!effect.ok()) return effect.status();
    total += effect->NodesAffected();
  }
  if (nodes_affected != nullptr) *nodes_affected = total;
  return Status::Ok();
}

}  // namespace axmlx::comp
