#ifndef AXMLX_BASELINE_LOCKED_EXECUTOR_H_
#define AXMLX_BASELINE_LOCKED_EXECUTOR_H_

#include <string>
#include <vector>

#include "axml/materializer.h"
#include "baseline/xpath_lock.h"
#include "common/status.h"
#include "ops/executor.h"
#include "xml/document.h"

namespace axmlx::baseline {

/// Lock-based executor over a real document, implementing the XPath
/// locking discipline of [5] that the paper contrasts against (§2):
///
/// - nodes referenced by the `where` part of a select "are only accessed
///   for a short time (for testing)": they take **P locks**, released as
///   soon as the predicate has been evaluated;
/// - query result nodes take **S locks**; update targets take **X locks**
///   on their full paths (covering the subtree);
/// - locks are held until the transaction releases them (strict 2PL).
///
/// Conflicting acquisitions fail fast with kConflict — the caller decides
/// whether to wait and retry or abort, mirroring the paper's complaint that
/// long AXML service calls turn every held lock into a bottleneck.
class LockedExecutor {
 public:
  using TxnId = PathLockManager::TxnId;

  /// `doc`, `locks` must outlive the executor. `invoker` resolves embedded
  /// service calls during materialization (their insertions inherit the
  /// target's X lock).
  LockedExecutor(xml::Document* doc, axml::ServiceInvoker invoker,
                 PathLockManager* locks);

  /// Supplies `$name` external parameter values for service calls.
  void SetExternal(const std::string& name, const std::string& value) {
    executor_.SetExternal(name, value);
  }

  /// Executes `op` under `txn`, acquiring the required locks first.
  /// Returns kConflict (and acquires nothing durable) when a lock cannot be
  /// granted.
  Result<ops::OpEffect> Execute(TxnId txn, const ops::Operation& op);

  /// Releases everything `txn` holds (commit/abort).
  void Release(TxnId txn);

  struct Stats {
    int64_t p_locks_taken = 0;
    int64_t conflicts = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Paths of the nodes the `where` clause will test, for P locking.
  Result<std::vector<std::string>> PredicatePaths(const ops::Operation& op);
  /// Paths of the operation's target nodes, for S/X locking.
  Result<std::vector<std::string>> TargetPaths(const ops::Operation& op);

  xml::Document* doc_;
  ops::Executor executor_;
  PathLockManager* locks_;
  Stats stats_;
};

}  // namespace axmlx::baseline

#endif  // AXMLX_BASELINE_LOCKED_EXECUTOR_H_
