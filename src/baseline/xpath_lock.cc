#include "baseline/xpath_lock.h"

#include <algorithm>
#include <cstddef>

namespace axmlx::baseline {

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kShared:
      return "S";
    case LockMode::kExclusive:
      return "X";
    case LockMode::kP:
      return "P";
  }
  return "?";
}

bool PathCovers(const std::string& ancestor, const std::string& path) {
  if (ancestor.size() > path.size()) return false;
  if (path.compare(0, ancestor.size(), ancestor) != 0) return false;
  return path.size() == ancestor.size() || path[ancestor.size()] == '/';
}

namespace {
bool ModesCompatible(LockMode a, LockMode b) {
  if (a == LockMode::kExclusive || b == LockMode::kExclusive) return false;
  return true;  // S-S, S-P, P-P are all compatible.
}
}  // namespace

bool PathLockManager::Conflicts(const std::string& path_a, LockMode mode_a,
                                const std::string& path_b, LockMode mode_b) {
  if (ModesCompatible(mode_a, mode_b)) return false;
  return PathCovers(path_a, path_b) || PathCovers(path_b, path_a);
}

bool PathLockManager::TryLock(TxnId txn, const std::string& path,
                              LockMode mode) {
  for (const auto& [held_path, holders] : table_) {
    if (!PathCovers(held_path, path) && !PathCovers(path, held_path)) {
      continue;
    }
    for (const Held& h : holders) {
      if (h.txn == txn) continue;
      if (!ModesCompatible(h.mode, mode)) {
        ++stats_.denied;
        return false;
      }
    }
  }
  table_[path].push_back({txn, mode});
  ++stats_.acquired;
  return true;
}

void PathLockManager::Unlock(TxnId txn, const std::string& path,
                             LockMode mode) {
  auto it = table_.find(path);
  if (it == table_.end()) return;
  auto& holders = it->second;
  for (size_t i = 0; i < holders.size(); ++i) {
    if (holders[i].txn == txn && holders[i].mode == mode) {
      holders.erase(holders.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  if (holders.empty()) table_.erase(it);
}

void PathLockManager::ReleaseAll(TxnId txn) {
  for (auto it = table_.begin(); it != table_.end();) {
    auto& holders = it->second;
    holders.erase(std::remove_if(holders.begin(), holders.end(),
                                 [txn](const Held& h) { return h.txn == txn; }),
                  holders.end());
    if (holders.empty()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t PathLockManager::HeldCount() const {
  size_t n = 0;
  for (const auto& [path, holders] : table_) n += holders.size();
  return n;
}

}  // namespace axmlx::baseline
