#include "baseline/lock_sim.h"

#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "baseline/xpath_lock.h"

namespace axmlx::baseline {
namespace {

struct TxnSpec {
  int64_t arrival = 0;
  std::vector<std::pair<std::string, LockMode>> locks;
};

std::vector<TxnSpec> GenerateWorkload(const WorkloadConfig& config, Rng* rng) {
  static const char* kFields[] = {"points", "citizenship", "name",
                                  "grandslamswon"};
  std::vector<TxnSpec> txns(static_cast<size_t>(config.num_txns));
  int64_t clock = 0;
  for (TxnSpec& txn : txns) {
    clock += 1 + static_cast<int64_t>(
                     rng->Uniform(static_cast<uint64_t>(
                         std::max<int64_t>(1, 2 * config.arrival_gap))));
    txn.arrival = clock;
    for (int i = 0; i < config.ops_per_txn; ++i) {
      int player;
      if (rng->Bernoulli(config.hot_fraction)) {
        player = static_cast<int>(rng->Uniform(
            static_cast<uint64_t>(std::max(1, config.hot_players))));
      } else {
        player = static_cast<int>(
            rng->Uniform(static_cast<uint64_t>(std::max(1, config.num_players))));
      }
      std::string path = "/ATPList/player[" + std::to_string(player) + "]/" +
                         kFields[rng->Uniform(4)];
      LockMode mode = rng->Bernoulli(config.write_fraction)
                          ? LockMode::kExclusive
                          : LockMode::kShared;
      txn.locks.emplace_back(std::move(path), mode);
    }
  }
  return txns;
}

SimResult Summarize(int committed, int aborted, int64_t makespan,
                    int64_t total_latency) {
  SimResult result;
  result.committed = committed;
  result.aborted = aborted;
  result.makespan = makespan;
  result.avg_latency =
      committed > 0 ? static_cast<double>(total_latency) / committed : 0.0;
  result.throughput =
      makespan > 0 ? 1000.0 * committed / static_cast<double>(makespan) : 0.0;
  return result;
}

}  // namespace

SimResult RunLockingSimulation(const WorkloadConfig& config) {
  Rng rng(config.seed);
  std::vector<TxnSpec> txns = GenerateWorkload(config, &rng);
  int64_t timeout = config.lock_wait_timeout > 0
                        ? config.lock_wait_timeout
                        : 10 * config.service_duration;

  PathLockManager locks;
  struct Running {
    int64_t finish;
    int txn;
  };
  struct RunningAfter {
    bool operator()(const Running& a, const Running& b) const {
      return a.finish > b.finish;
    }
  };
  std::priority_queue<Running, std::vector<Running>, RunningAfter> running;
  struct Waiter {
    int txn;
    int64_t deadline;
  };
  std::vector<Waiter> waiting;

  int committed = 0;
  int aborted = 0;
  int64_t total_latency = 0;
  int64_t makespan = 0;
  size_t next_arrival = 0;
  int64_t now = 0;

  auto try_start = [&](int txn_index) -> bool {
    const TxnSpec& txn = txns[static_cast<size_t>(txn_index)];
    size_t got = 0;
    for (; got < txn.locks.size(); ++got) {
      if (!locks.TryLock(txn_index, txn.locks[got].first,
                         txn.locks[got].second)) {
        break;
      }
    }
    if (got < txn.locks.size()) {
      locks.ReleaseAll(txn_index);  // all-or-nothing acquisition
      return false;
    }
    running.push({now + config.service_duration, txn_index});
    return true;
  };

  auto admit = [&](int txn_index) {
    if (!try_start(txn_index)) {
      waiting.push_back({txn_index, now + timeout});
    }
  };

  auto drain_waiters = [&]() {
    std::vector<Waiter> still_waiting;
    for (const Waiter& w : waiting) {
      if (try_start(w.txn)) continue;
      if (now >= w.deadline) {
        ++aborted;  // lock-wait timeout: give up (deadlock avoidance)
        continue;
      }
      still_waiting.push_back(w);
    }
    waiting = std::move(still_waiting);
  };

  while (next_arrival < txns.size() || !running.empty() || !waiting.empty()) {
    int64_t next_time = INT64_MAX;
    if (next_arrival < txns.size()) {
      next_time = txns[next_arrival].arrival;
    }
    if (!running.empty()) next_time = std::min(next_time, running.top().finish);
    // Waiters with expired deadlines need a chance to abort even when no
    // release is coming (everyone deadlocked/waiting).
    if (running.empty() && next_arrival >= txns.size() && !waiting.empty()) {
      int64_t min_deadline = INT64_MAX;
      for (const Waiter& w : waiting) {
        min_deadline = std::min(min_deadline, w.deadline);
      }
      next_time = std::min(next_time, min_deadline);
    }
    now = next_time;
    while (!running.empty() && running.top().finish <= now) {
      Running r = running.top();
      running.pop();
      locks.ReleaseAll(r.txn);
      ++committed;
      total_latency += now - txns[static_cast<size_t>(r.txn)].arrival;
      makespan = std::max(makespan, now);
    }
    while (next_arrival < txns.size() &&
           txns[next_arrival].arrival <= now) {
      admit(static_cast<int>(next_arrival));
      ++next_arrival;
    }
    drain_waiters();
  }

  SimResult result = Summarize(committed, aborted, makespan, total_latency);
  result.lock_denials = locks.stats().denied;
  return result;
}

SimResult RunCompensationSimulation(const WorkloadConfig& config) {
  Rng rng(config.seed);
  std::vector<TxnSpec> txns = GenerateWorkload(config, &rng);

  int committed = 0;
  int aborted = 0;
  int64_t total_latency = 0;
  int64_t makespan = 0;
  int64_t compensation_ops = 0;

  for (const TxnSpec& txn : txns) {
    if (rng.Bernoulli(config.fault_probability)) {
      // Fault partway through: roll back by executing the compensating
      // operations for the work done so far (reverse order, §3.1). No other
      // transaction was ever blocked by this one.
      int done =
          1 + static_cast<int>(rng.Uniform(
                  static_cast<uint64_t>(std::max(1, config.ops_per_txn))));
      compensation_ops += done;
      int64_t finish = txn.arrival + config.service_duration +
                       config.service_duration / 2;  // undo costs time too
      makespan = std::max(makespan, finish);
      ++aborted;
      continue;
    }
    int64_t finish = txn.arrival + config.service_duration;
    ++committed;
    total_latency += config.service_duration;
    makespan = std::max(makespan, finish);
  }

  SimResult result = Summarize(committed, aborted, makespan, total_latency);
  result.compensation_ops = compensation_ops;
  return result;
}

}  // namespace axmlx::baseline
