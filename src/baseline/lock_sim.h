#ifndef AXMLX_BASELINE_LOCK_SIM_H_
#define AXMLX_BASELINE_LOCK_SIM_H_

#include <cstdint>

#include "common/rng.h"

namespace axmlx::baseline {

/// Workload for the lock-vs-compensation comparison (experiment E8):
/// `num_txns` transactions arrive Poisson-ish over time; each touches
/// `ops_per_txn` paths drawn from a universe of `num_players` player
/// subtrees (Zipf-lite: a fraction of accesses hit a hot subset), each
/// access is a write with probability `write_fraction`, and the transaction
/// occupies `service_duration` ticks — the paper's point being that AXML
/// service calls (and thus lock hold times) "can be very long (in hours)".
struct WorkloadConfig {
  int num_txns = 100;
  int ops_per_txn = 3;
  int num_players = 50;
  double hot_fraction = 0.2;     ///< Fraction of accesses on a hot subtree.
  int hot_players = 5;
  double write_fraction = 0.5;
  int64_t service_duration = 10;
  int64_t arrival_gap = 1;       ///< Mean ticks between txn arrivals.
  int64_t lock_wait_timeout = 0; ///< 0 = derive from service_duration.
  double fault_probability = 0;  ///< Compensation model: chance of abort.
  uint64_t seed = 42;
};

/// Outcome of one simulated run.
struct SimResult {
  int committed = 0;
  int aborted = 0;          ///< Lock timeouts (locking) / faults (comp).
  int64_t makespan = 0;     ///< Time until the last commit.
  double avg_latency = 0;   ///< Mean submit-to-commit latency.
  double throughput = 0;    ///< Committed txns per 1000 ticks.
  int64_t lock_denials = 0; ///< Lock conflicts encountered (locking only).
  int64_t compensation_ops = 0;  ///< Compensating operations run (comp only).
};

/// Strict two-phase XPath locking (baseline, after [5]): a transaction
/// acquires all its path locks up front (retrying while blocked), holds
/// them for the full service duration, then releases. Blocked transactions
/// that exceed the wait timeout abort and retry once.
SimResult RunLockingSimulation(const WorkloadConfig& config);

/// The paper's compensation model: transactions never block — they execute
/// optimistically and, with `fault_probability`, abort and pay the
/// compensation cost (re-traversing the touched paths). This is what makes
/// long-duration services harmless to concurrency (§1, §2).
SimResult RunCompensationSimulation(const WorkloadConfig& config);

}  // namespace axmlx::baseline

#endif  // AXMLX_BASELINE_LOCK_SIM_H_
