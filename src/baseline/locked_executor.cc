#include "baseline/locked_executor.h"

#include <utility>

#include "query/eval.h"
#include "query/parser.h"

namespace axmlx::baseline {

LockedExecutor::LockedExecutor(xml::Document* doc,
                               axml::ServiceInvoker invoker,
                               PathLockManager* locks)
    : doc_(doc), executor_(doc, std::move(invoker)), locks_(locks) {}

Result<std::vector<std::string>> LockedExecutor::PredicatePaths(
    const ops::Operation& op) {
  std::vector<std::string> paths;
  if (op.location.empty() || op.target_node != xml::kNullNode) return paths;
  AXMLX_ASSIGN_OR_RETURN(query::Query q, query::ParseQuery(op.location));
  if (q.where == nullptr) return paths;
  // The candidates the predicate will test — [5]'s short-lived P locks.
  std::vector<xml::NodeId> candidates =
      query::EvaluatePathFrom(*doc_, doc_->root(), q.source);
  paths.reserve(candidates.size());
  for (xml::NodeId id : candidates) paths.push_back(doc_->PathOf(id));
  return paths;
}

Result<std::vector<std::string>> LockedExecutor::TargetPaths(
    const ops::Operation& op) {
  std::vector<std::string> paths;
  if (op.target_node != xml::kNullNode) {
    if (!doc_->Contains(op.target_node)) {
      return NotFound("locked executor: unknown target node");
    }
    paths.push_back(doc_->PathOf(op.target_node));
    return paths;
  }
  AXMLX_ASSIGN_OR_RETURN(query::Query q, query::ParseQuery(op.location));
  // Lock what is currently visible; results materialized during execution
  // are inserted under these targets and inherit their lock coverage.
  AXMLX_ASSIGN_OR_RETURN(query::QueryResult result,
                         query::EvaluateQuery(*doc_, q));
  for (xml::NodeId id : result.AllSelected()) {
    paths.push_back(doc_->PathOf(id));
  }
  // An insert with no selected nodes targets the bindings themselves.
  if (paths.empty()) {
    AXMLX_ASSIGN_OR_RETURN(auto bindings, query::EvaluateBindings(*doc_, q));
    for (xml::NodeId id : bindings) paths.push_back(doc_->PathOf(id));
  }
  return paths;
}

Result<ops::OpEffect> LockedExecutor::Execute(TxnId txn,
                                              const ops::Operation& op) {
  // Phase 1: P locks on predicate candidates, held only for the test.
  AXMLX_ASSIGN_OR_RETURN(std::vector<std::string> p_paths, PredicatePaths(op));
  std::vector<std::string> p_taken;
  for (const std::string& path : p_paths) {
    if (!locks_->TryLock(txn, path, LockMode::kP)) {
      for (const std::string& undo : p_taken) {
        locks_->Unlock(txn, undo, LockMode::kP);
      }
      ++stats_.conflicts;
      return Conflict("P lock denied on " + path);
    }
    p_taken.push_back(path);
    ++stats_.p_locks_taken;
  }
  // Phase 2: S/X locks on the target nodes, held until Release(txn).
  LockMode mode = op.type == ops::ActionType::kQuery ? LockMode::kShared
                                                     : LockMode::kExclusive;
  auto release_p = [this, txn, &p_taken]() {
    for (const std::string& path : p_taken) {
      locks_->Unlock(txn, path, LockMode::kP);
    }
  };
  auto targets_or = TargetPaths(op);
  if (!targets_or.ok()) {
    release_p();
    return targets_or.status();
  }
  std::vector<std::string> taken;
  for (const std::string& path : *targets_or) {
    if (!locks_->TryLock(txn, path, mode)) {
      for (const std::string& undo : taken) locks_->Unlock(txn, undo, mode);
      release_p();
      ++stats_.conflicts;
      return Conflict("lock denied on " + path);
    }
    taken.push_back(path);
  }
  // "The nodes referred by the where part ... are only accessed for a short
  // time (for testing)" — drop the P locks before the long part.
  release_p();
  return executor_.Execute(op);
}

void LockedExecutor::Release(TxnId txn) { locks_->ReleaseAll(txn); }

}  // namespace axmlx::baseline
