#ifndef AXMLX_BASELINE_XPATH_LOCK_H_
#define AXMLX_BASELINE_XPATH_LOCK_H_

#include <map>
#include <string>
#include <vector>

namespace axmlx::baseline {

/// Lock modes for the XPath locking baseline, after Jea et al.'s "XPath
/// Locking Protocol" ([5] in the paper):
/// - kShared: read lock on a path (and implicitly its subtree);
/// - kExclusive: write lock;
/// - kP: the protocol's "P lock" for nodes referenced by the `where` part
///   of a select — held only briefly "for testing", compatible with reads
///   and other P locks but not with writes.
enum class LockMode { kShared, kExclusive, kP };

const char* LockModeName(LockMode mode);

/// Path-granularity lock table. Two locks conflict when their paths overlap
/// (equal, or one is an ancestor prefix of the other) and their modes are
/// incompatible. Locks are not re-entrant across modes; the same
/// transaction never conflicts with itself.
///
/// This is the concurrency-control style the paper argues against for AXML
/// ("due to the 'active' nature of AXML documents, lock-based protocols are
/// not well suited", §2): the E8 bench quantifies that claim.
class PathLockManager {
 public:
  using TxnId = int64_t;

  /// Attempts to acquire `mode` on `path` (slash-separated, e.g.
  /// "/ATPList/player[3]/points"). Returns true on success; false means the
  /// caller must wait (no queueing is done here).
  bool TryLock(TxnId txn, const std::string& path, LockMode mode);

  /// Releases one lock (no-op if not held).
  void Unlock(TxnId txn, const std::string& path, LockMode mode);

  /// Releases everything `txn` holds (commit/abort).
  void ReleaseAll(TxnId txn);

  /// True if the two mode/path pairs conflict (ignoring ownership).
  static bool Conflicts(const std::string& path_a, LockMode mode_a,
                        const std::string& path_b, LockMode mode_b);

  /// Number of locks currently held.
  size_t HeldCount() const;

  struct Stats {
    int64_t acquired = 0;
    int64_t denied = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Held {
    TxnId txn;
    LockMode mode;
  };
  /// path -> holders.
  std::map<std::string, std::vector<Held>> table_;
  Stats stats_;
};

/// True if `ancestor` equals `path` or is a proper path-prefix of it
/// ("/a/b" covers "/a/b/c" but not "/a/bc").
bool PathCovers(const std::string& ancestor, const std::string& path);

}  // namespace axmlx::baseline

#endif  // AXMLX_BASELINE_XPATH_LOCK_H_
