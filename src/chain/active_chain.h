#ifndef AXMLX_CHAIN_ACTIVE_CHAIN_H_
#define AXMLX_CHAIN_ACTIVE_CHAIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "overlay/network.h"

namespace axmlx::chain {

/// The paper's "list of active peers" (§3.3): the transaction's invocation
/// tree annotated with super-peer marks, written
///   [AP1* -> AP2 -> [AP3 -> AP6] || [AP4 -> AP5]]
/// Passing this chain along with every invocation is the paper's mechanism
/// for efficient disconnection handling: any peer can find the parent,
/// children, siblings, ancestors, and nearest super peer of any other peer
/// without extra communication.
struct ChainNode {
  overlay::PeerId peer;
  bool super = false;
  std::string service;  ///< Service this peer executes (label only).
  std::vector<ChainNode> children;
};

class ActivePeerChain {
 public:
  ActivePeerChain() = default;
  explicit ActivePeerChain(ChainNode root) : root_(std::move(root)) {}

  const ChainNode& root() const { return root_; }
  bool empty() const { return root_.peer.empty(); }

  /// Serializes to the paper's bracket syntax, e.g.
  /// "[AP1* -> [AP2 -> [[AP3 -> [AP6]] || [AP4 -> [AP5]]]]]". Children are
  /// always bracketed; `*` marks super peers.
  std::string Serialize() const;

  /// Parses the Serialize() syntax.
  static Result<ActivePeerChain> Parse(const std::string& text);

  // --- Topology queries (all return empty/kNullId when `peer` is absent) --

  bool Contains(const overlay::PeerId& peer) const;

  /// Invoking peer of `peer`; empty for the root or unknown peers.
  overlay::PeerId ParentOf(const overlay::PeerId& peer) const;

  /// Peers whose services `peer` invoked.
  std::vector<overlay::PeerId> ChildrenOf(const overlay::PeerId& peer) const;

  /// Other children of `peer`'s parent.
  std::vector<overlay::PeerId> SiblingsOf(const overlay::PeerId& peer) const;

  /// Ancestors of `peer`, closest first (parent, grandparent, ..., root).
  /// §3.3(b): "AP6 can try the next closest peer (AP1)".
  std::vector<overlay::PeerId> AncestorsOf(const overlay::PeerId& peer) const;

  /// Closest super-peer ancestor of `peer` (may be `peer` itself), or empty.
  overlay::PeerId NearestSuperPeer(const overlay::PeerId& peer) const;

  /// All peers, pre-order.
  std::vector<overlay::PeerId> AllPeers() const;

  /// Subtree peers under (and including) `peer` — the descendants to notify
  /// in disconnection case (c).
  std::vector<overlay::PeerId> SubtreeOf(const overlay::PeerId& peer) const;

  /// Spheres-of-Atomicity check (§3.3, after [18]): atomicity "may still be
  /// guaranteed for a transaction if all the involved peers are super
  /// peers". True iff every peer in the chain is a super peer.
  bool AtomicityGuaranteed() const;

  /// All other peers of the chain ordered by tree distance from `peer`
  /// (parent and children first, then siblings/grandparents, then uncles,
  /// cousins, ...). Implements the paper's future-work extension of
  /// chaining "to uncles, cousins, etc." (§4): the order in which a peer
  /// should try collateral relatives once its direct relatives are gone.
  std::vector<overlay::PeerId> RelativesByDistance(
      const overlay::PeerId& peer) const;

 private:
  const ChainNode* Find(const overlay::PeerId& peer) const;
  const ChainNode* FindParent(const overlay::PeerId& peer) const;

  ChainNode root_;
};

}  // namespace axmlx::chain

#endif  // AXMLX_CHAIN_ACTIVE_CHAIN_H_
