#include "chain/active_chain.h"

#include <cctype>
#include <sstream>

namespace axmlx::chain {

namespace {

void SerializeNode(const ChainNode& node, std::ostringstream* os) {
  *os << "[" << node.peer;
  if (node.super) *os << "*";
  if (!node.service.empty()) *os << ":" << node.service;
  if (!node.children.empty()) {
    *os << " -> ";
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) *os << " || ";
      SerializeNode(node.children[i], os);
    }
  }
  *os << "]";
}

class ChainParser {
 public:
  explicit ChainParser(const std::string& text) : text_(text) {}

  Result<ChainNode> Run() {
    AXMLX_ASSIGN_OR_RETURN(ChainNode root, ParseNode());
    SkipSpace();
    if (pos_ != text_.size()) {
      return ParseError("chain: trailing characters");
    }
    return root;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(const std::string& token) {
    SkipSpace();
    if (text_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  Result<ChainNode> ParseNode() {
    if (!Consume("[")) return ParseError("chain: expected '['");
    SkipSpace();
    ChainNode node;
    size_t start = pos_;
    // '-' is allowed in ids but "->" is the child separator.
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' ||
            (text_[pos_] == '-' &&
             (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '>')))) {
      ++pos_;
    }
    node.peer = text_.substr(start, pos_ - start);
    if (node.peer.empty()) return ParseError("chain: expected a peer id");
    if (pos_ < text_.size() && text_[pos_] == '*') {
      node.super = true;
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == ':') {
      ++pos_;
      size_t sstart = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' ||
              (text_[pos_] == '-' &&
               (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '>')))) {
        ++pos_;
      }
      node.service = text_.substr(sstart, pos_ - sstart);
    }
    if (Consume("->")) {
      while (true) {
        AXMLX_ASSIGN_OR_RETURN(ChainNode child, ParseNode());
        node.children.push_back(std::move(child));
        if (!Consume("||")) break;
      }
    }
    if (!Consume("]")) return ParseError("chain: expected ']'");
    return node;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

const ChainNode* FindRec(const ChainNode& node, const overlay::PeerId& peer) {
  if (node.peer == peer) return &node;
  for (const ChainNode& c : node.children) {
    if (const ChainNode* found = FindRec(c, peer)) return found;
  }
  return nullptr;
}

const ChainNode* FindParentRec(const ChainNode& node,
                               const overlay::PeerId& peer) {
  for (const ChainNode& c : node.children) {
    if (c.peer == peer) return &node;
    if (const ChainNode* found = FindParentRec(c, peer)) return found;
  }
  return nullptr;
}

void CollectRec(const ChainNode& node, std::vector<overlay::PeerId>* out) {
  out->push_back(node.peer);
  for (const ChainNode& c : node.children) CollectRec(c, out);
}

bool AllSuperRec(const ChainNode& node) {
  if (!node.super) return false;
  for (const ChainNode& c : node.children) {
    if (!AllSuperRec(c)) return false;
  }
  return true;
}

}  // namespace

std::string ActivePeerChain::Serialize() const {
  if (empty()) return "[]";
  std::ostringstream os;
  SerializeNode(root_, &os);
  return os.str();
}

Result<ActivePeerChain> ActivePeerChain::Parse(const std::string& text) {
  if (text == "[]" || text.empty()) return ActivePeerChain();
  ChainParser parser(text);
  AXMLX_ASSIGN_OR_RETURN(ChainNode root, parser.Run());
  return ActivePeerChain(std::move(root));
}

const ChainNode* ActivePeerChain::Find(const overlay::PeerId& peer) const {
  if (empty()) return nullptr;
  return FindRec(root_, peer);
}

const ChainNode* ActivePeerChain::FindParent(
    const overlay::PeerId& peer) const {
  if (empty()) return nullptr;
  return FindParentRec(root_, peer);
}

bool ActivePeerChain::Contains(const overlay::PeerId& peer) const {
  return Find(peer) != nullptr;
}

overlay::PeerId ActivePeerChain::ParentOf(const overlay::PeerId& peer) const {
  const ChainNode* parent = FindParent(peer);
  return parent == nullptr ? overlay::PeerId() : parent->peer;
}

std::vector<overlay::PeerId> ActivePeerChain::ChildrenOf(
    const overlay::PeerId& peer) const {
  std::vector<overlay::PeerId> out;
  const ChainNode* node = Find(peer);
  if (node == nullptr) return out;
  for (const ChainNode& c : node->children) out.push_back(c.peer);
  return out;
}

std::vector<overlay::PeerId> ActivePeerChain::SiblingsOf(
    const overlay::PeerId& peer) const {
  std::vector<overlay::PeerId> out;
  const ChainNode* parent = FindParent(peer);
  if (parent == nullptr) return out;
  for (const ChainNode& c : parent->children) {
    if (c.peer != peer) out.push_back(c.peer);
  }
  return out;
}

std::vector<overlay::PeerId> ActivePeerChain::AncestorsOf(
    const overlay::PeerId& peer) const {
  std::vector<overlay::PeerId> out;
  overlay::PeerId current = peer;
  while (true) {
    const ChainNode* parent = FindParent(current);
    if (parent == nullptr) break;
    out.push_back(parent->peer);
    current = parent->peer;
  }
  return out;
}

overlay::PeerId ActivePeerChain::NearestSuperPeer(
    const overlay::PeerId& peer) const {
  const ChainNode* node = Find(peer);
  if (node != nullptr && node->super) return peer;
  overlay::PeerId current = peer;
  while (true) {
    const ChainNode* parent = FindParent(current);
    if (parent == nullptr) return overlay::PeerId();
    if (parent->super) return parent->peer;
    current = parent->peer;
  }
}

std::vector<overlay::PeerId> ActivePeerChain::AllPeers() const {
  std::vector<overlay::PeerId> out;
  if (!empty()) CollectRec(root_, &out);
  return out;
}

std::vector<overlay::PeerId> ActivePeerChain::SubtreeOf(
    const overlay::PeerId& peer) const {
  std::vector<overlay::PeerId> out;
  const ChainNode* node = Find(peer);
  if (node != nullptr) CollectRec(*node, &out);
  return out;
}

bool ActivePeerChain::AtomicityGuaranteed() const {
  if (empty()) return false;
  return AllSuperRec(root_);
}

std::vector<overlay::PeerId> ActivePeerChain::RelativesByDistance(
    const overlay::PeerId& peer) const {
  std::vector<overlay::PeerId> out;
  if (Find(peer) == nullptr) return out;
  // BFS over the undirected tree induced by parent/child edges.
  std::vector<overlay::PeerId> frontier = {peer};
  std::vector<overlay::PeerId> visited = {peer};
  auto seen = [&visited](const overlay::PeerId& p) {
    for (const overlay::PeerId& v : visited) {
      if (v == p) return true;
    }
    return false;
  };
  while (!frontier.empty()) {
    std::vector<overlay::PeerId> next;
    for (const overlay::PeerId& cur : frontier) {
      std::vector<overlay::PeerId> neighbors = ChildrenOf(cur);
      overlay::PeerId parent = ParentOf(cur);
      if (!parent.empty()) neighbors.push_back(parent);
      for (const overlay::PeerId& n : neighbors) {
        if (seen(n)) continue;
        visited.push_back(n);
        next.push_back(n);
        out.push_back(n);
      }
    }
    frontier = std::move(next);
  }
  return out;
}

}  // namespace axmlx::chain
