#ifndef AXMLX_AXML_SERVICE_CALL_H_
#define AXMLX_AXML_SERVICE_CALL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/document.h"

namespace axmlx::axml {

/// Result-application mode of an embedded service call (paper §1):
/// - kReplace: "the previous results are replaced by the current invocation
///   results";
/// - kMerge: "the invocation results are appended as siblings of the
///   previous invocation results".
enum class ScMode { kReplace, kMerge };

/// One `<axml:param>` of a service call. Parameters can be literals,
/// external values (`$year (external value)` in the paper's ATPList.xml),
/// or — per the paper's "local nesting" — another embedded service call
/// whose materialized result supplies the value.
struct ScParam {
  enum class Kind { kLiteral, kExternal, kNestedCall };
  std::string name;
  Kind kind = Kind::kLiteral;
  std::string value;             ///< kLiteral: the value; kExternal: var name.
  xml::NodeId nested_call = xml::kNullNode;  ///< kNestedCall.
};

/// `<axml:retry times=".." wait=".."  [serviceURL=".."]>` fault-handler
/// action (§3.2): retry the invocation, optionally against a replica peer.
struct RetrySpec {
  int times = 0;
  int64_t wait = 0;
  std::string replica_url;  ///< Empty = retry the original peer.
};

/// An `<axml:catch faultName="..">` or `<axml:catchAll>` handler attached to
/// an embedded service call (§3.2). A handler without a retry spec simply
/// absorbs the fault (application-specific forward recovery); with a retry
/// spec it re-invokes first.
struct FaultHandler {
  std::string fault_name;  ///< Empty for catchAll.
  bool has_retry = false;
  RetrySpec retry;

  bool Matches(const std::string& fault) const {
    return fault_name.empty() || fault_name == fault;
  }
};

/// Parsed view of an `<axml:sc>` element.
struct ServiceCallInfo {
  xml::NodeId element = xml::kNullNode;
  ScMode mode = ScMode::kReplace;
  std::string service_namespace;
  std::string service_url;
  std::string method_name;
  /// Declared name of the result elements, when present as an `outputName`
  /// attribute. Lazy evaluation also infers output names from existing
  /// result children.
  std::string output_name;
  /// Re-invocation period for continuous/subscription services (§3.3(d));
  /// 0 = invoke on demand only.
  int64_t frequency = 0;
  std::vector<ScParam> params;
  std::vector<FaultHandler> handlers;
  /// Current materialized result children (non-bookkeeping children).
  std::vector<xml::NodeId> results;

  /// All element names this call is known to produce: `output_name` plus the
  /// names of current result elements plus the method name.
  std::vector<std::string> OutputNames(const xml::Document& doc) const;
};

/// Parses the `<axml:sc>` element at `id`.
Result<ServiceCallInfo> ParseServiceCall(const xml::Document& doc,
                                         xml::NodeId id);

/// Returns all embedded service-call elements in the subtree rooted at
/// `from`, in document order. Calls nested inside `axml:params` (parameter
/// calls) or fault handlers are excluded — they are materialized as part of
/// their enclosing call.
std::vector<xml::NodeId> FindServiceCalls(const xml::Document& doc,
                                          xml::NodeId from);

/// Returns the current result children (non-bookkeeping children) of the
/// service call at `sc`.
std::vector<xml::NodeId> ResultChildren(const xml::Document& doc,
                                        xml::NodeId sc);

/// Declarative spec for building an `<axml:sc>` element programmatically.
struct ScSpec {
  ScMode mode = ScMode::kReplace;
  std::string service_namespace;
  std::string service_url;
  std::string method_name;
  std::string output_name;
  int64_t frequency = 0;
  struct Param {
    std::string name;
    std::string literal;       ///< "$var" marks an external value.
    bool nested = false;       ///< true: `nested_spec` supplies the value.
    std::vector<ScSpec> nested_spec;  ///< 0 or 1 entries (vector to allow
                                      ///< incomplete type recursion).
  };
  std::vector<Param> params;
  struct Handler {
    std::string fault_name;  ///< Empty for catchAll.
    bool has_retry = false;
    RetrySpec retry;
  };
  std::vector<Handler> handlers;
};

/// Creates an `<axml:sc>` element from `spec` and appends it under `parent`.
/// Returns the new element's id.
Result<xml::NodeId> BuildServiceCall(xml::Document* doc, xml::NodeId parent,
                                     const ScSpec& spec);

}  // namespace axmlx::axml

#endif  // AXMLX_AXML_SERVICE_CALL_H_
