#ifndef AXMLX_AXML_MATERIALIZER_H_
#define AXMLX_AXML_MATERIALIZER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "axml/service_call.h"
#include "common/status.h"
#include "query/ast.h"
#include "xml/document.h"
#include "xml/edit.h"

namespace axmlx::axml {

/// A fully resolved service invocation request, handed to the invoker
/// callback. The materializer resolves literal, external, and nested-call
/// parameters before building this.
struct ServiceRequest {
  std::string service_namespace;
  std::string service_url;
  std::string method_name;
  std::vector<std::pair<std::string, std::string>> params;
};

/// A successful invocation result: an XML fragment whose root's children are
/// the result nodes. Per the paper, results "may be static XML nodes or
/// another service call" — in the latter case the fragment simply contains
/// an `<axml:sc>` element, which becomes a new embedded call.
struct ServiceResponse {
  std::unique_ptr<xml::Document> fragment;
};

/// Callback that performs a service invocation. In the full system this is
/// wired to the overlay/service registry; tests can supply lambdas. Faults
/// are reported as `kServiceFault` statuses whose message begins with the
/// fault name ("FaultA: ...").
using ServiceInvoker =
    std::function<Result<ServiceResponse>(const ServiceRequest&)>;

/// Extracts the fault name from a kServiceFault status message
/// ("FaultA: detail" -> "FaultA").
std::string FaultNameOf(const Status& status);

/// Counters for evaluation-mode experiments (E7: lazy vs eager).
struct MaterializeStats {
  int calls_invoked = 0;
  int calls_skipped = 0;   ///< Present but not needed by the query (lazy).
  int retries = 0;
  int faults_handled = 0;  ///< Absorbed by a catch/catchAll handler.
  size_t nodes_inserted = 0;
  size_t nodes_removed = 0;
};

/// Materializes embedded service calls in a document (paper §1, §3.1).
///
/// Every document mutation performed while applying invocation results is
/// recorded in the supplied `EditLog`, which is what makes dynamic
/// compensation of *query* operations possible: "the compensating operation
/// for an AXML query cannot be pre-defined statically (has to be constructed
/// dynamically)" (§3.1).
class Materializer {
 public:
  /// Does not take ownership; `doc`, `log` must outlive the materializer.
  Materializer(xml::Document* doc, ServiceInvoker invoker, xml::EditLog* log)
      : doc_(doc), invoker_(std::move(invoker)), log_(log) {}

  /// Supplies a value for `$name` external parameters.
  void SetExternal(const std::string& name, const std::string& value) {
    externals_[name] = value;
  }

  /// Materializes the single call at `sc`: resolves parameters (recursively
  /// materializing nested parameter calls), invokes the service, applies the
  /// results per the call's mode, and runs fault handlers on failure.
  /// Returns the ids of the newly inserted result nodes. A fault absorbed by
  /// a handler without retry yields an empty id list.
  Result<std::vector<xml::NodeId>> MaterializeCall(xml::NodeId sc);

  /// Lazy evaluation (§3.1): materializes only the embedded calls in the
  /// subtree at `scope` whose output names intersect the names mentioned by
  /// `q` — so the paper's Query A triggers `getGrandSlamsWonbyYear` but not
  /// `getPoints`, and Query B the reverse. Returns materialized call ids.
  Result<std::vector<xml::NodeId>> MaterializeForQuery(const query::Query& q,
                                                       xml::NodeId scope);

  /// Eager evaluation: materializes every embedded call under `scope`,
  /// including calls that arrive as results of other calls (bounded depth).
  Result<std::vector<xml::NodeId>> MaterializeAll(xml::NodeId scope);

  const MaterializeStats& stats() const { return stats_; }

 private:
  Result<ServiceRequest> ResolveRequest(const ServiceCallInfo& info);
  Result<std::vector<xml::NodeId>> ApplyResults(const ServiceCallInfo& info,
                                                const xml::Document& fragment);
  Result<ServiceResponse> InvokeWithHandlers(const ServiceCallInfo& info,
                                             const ServiceRequest& request,
                                             bool* fault_absorbed);

  xml::Document* doc_;
  ServiceInvoker invoker_;
  xml::EditLog* log_;
  std::map<std::string, std::string> externals_;
  MaterializeStats stats_;
  int depth_ = 0;
};

}  // namespace axmlx::axml

#endif  // AXMLX_AXML_MATERIALIZER_H_
