#include "axml/materializer.h"

#include <algorithm>
#include <unordered_set>

#include "query/eval.h"

namespace axmlx::axml {

namespace {
constexpr int kMaxNestingDepth = 16;
}  // namespace

std::string FaultNameOf(const Status& status) {
  const std::string& m = status.message();
  size_t colon = m.find(':');
  return colon == std::string::npos ? m : m.substr(0, colon);
}

Result<ServiceRequest> Materializer::ResolveRequest(
    const ServiceCallInfo& info) {
  ServiceRequest req;
  req.service_namespace = info.service_namespace;
  req.service_url = info.service_url;
  req.method_name = info.method_name;
  for (const ScParam& p : info.params) {
    switch (p.kind) {
      case ScParam::Kind::kLiteral:
        req.params.emplace_back(p.name, p.value);
        break;
      case ScParam::Kind::kExternal: {
        auto it = externals_.find(p.value);
        if (it == externals_.end()) {
          return FailedPrecondition("external parameter '$" + p.value +
                                    "' has no supplied value");
        }
        req.params.emplace_back(p.name, it->second);
        break;
      }
      case ScParam::Kind::kNestedCall: {
        // "The service call parameters may themselves be defined as service
        // calls. As such, evaluating a service call may require evaluating
        // the parameters' service calls first." (§1, local nesting)
        AXMLX_ASSIGN_OR_RETURN(std::vector<xml::NodeId> produced,
                               MaterializeCall(p.nested_call));
        std::string value;
        for (xml::NodeId id : produced) value += doc_->TextContent(id);
        req.params.emplace_back(p.name, value);
        break;
      }
    }
  }
  return req;
}

Result<ServiceResponse> Materializer::InvokeWithHandlers(
    const ServiceCallInfo& info, const ServiceRequest& request,
    bool* fault_absorbed) {
  *fault_absorbed = false;
  Result<ServiceResponse> response = invoker_(request);
  ++stats_.calls_invoked;
  if (response.ok()) return response;
  if (response.status().code() != StatusCode::kServiceFault) {
    return response;  // Transport/abort errors are not application faults.
  }
  std::string fault = FaultNameOf(response.status());
  for (const FaultHandler& handler : info.handlers) {
    if (!handler.Matches(fault)) continue;
    if (!handler.has_retry) {
      // Application-specific forward recovery: the fault is handled and the
      // call simply produces no new results.
      ++stats_.faults_handled;
      *fault_absorbed = true;
      return response;
    }
    ServiceRequest retry_request = request;
    if (!handler.retry.replica_url.empty()) {
      retry_request.service_url = handler.retry.replica_url;
    }
    for (int attempt = 0; attempt < handler.retry.times; ++attempt) {
      ++stats_.retries;
      Result<ServiceResponse> retried = invoker_(retry_request);
      ++stats_.calls_invoked;
      if (retried.ok()) return retried;
      if (retried.status().code() != StatusCode::kServiceFault) return retried;
      response = std::move(retried);
    }
    // Retries exhausted; fall through to the next matching handler.
  }
  return response;
}

Result<std::vector<xml::NodeId>> Materializer::ApplyResults(
    const ServiceCallInfo& info, const xml::Document& fragment) {
  std::vector<xml::NodeId> inserted;
  if (info.mode == ScMode::kReplace) {
    // Remove the previous results, logging each removal so compensation can
    // reinstate the old values (§3.1, Query B example: points 890 -> 475).
    for (xml::NodeId old : ResultChildren(*doc_, info.element)) {
      AXMLX_ASSIGN_OR_RETURN(xml::DetachResult detached,
                             xml::DetachSubtree(doc_, old));
      xml::Edit edit;
      edit.kind = xml::Edit::Kind::kRemoveSubtree;
      edit.node = detached.subtree.root;
      edit.parent = detached.parent;
      edit.index = detached.index;
      edit.nodes_affected = detached.subtree.size();
      stats_.nodes_removed += detached.subtree.size();
      edit.removed = std::move(detached.subtree);
      log_->Append(std::move(edit));
    }
  }
  const xml::Node* frag_root = fragment.Find(fragment.root());
  for (xml::NodeId child : frag_root->children) {
    AXMLX_ASSIGN_OR_RETURN(xml::NodeId copy,
                           doc_->ImportSubtree(fragment, child));
    AXMLX_RETURN_IF_ERROR(doc_->AppendChild(info.element, copy));
    xml::Edit edit;
    edit.kind = xml::Edit::Kind::kInsertSubtree;
    edit.node = copy;
    edit.parent = info.element;
    edit.index = doc_->IndexInParent(copy);
    edit.nodes_affected = doc_->SubtreeSize(copy);
    stats_.nodes_inserted += edit.nodes_affected;
    log_->Append(std::move(edit));
    inserted.push_back(copy);
  }
  return inserted;
}

Result<std::vector<xml::NodeId>> Materializer::MaterializeCall(
    xml::NodeId sc) {
  if (depth_ >= kMaxNestingDepth) {
    return FailedPrecondition("service-call nesting exceeds the depth limit");
  }
  ++depth_;
  auto done = [this](Result<std::vector<xml::NodeId>> r) {
    --depth_;
    return r;
  };
  auto info_or = ParseServiceCall(*doc_, sc);
  if (!info_or.ok()) return done(info_or.status());
  ServiceCallInfo info = std::move(info_or).value();
  auto request_or = ResolveRequest(info);
  if (!request_or.ok()) return done(request_or.status());
  bool fault_absorbed = false;
  auto response_or = InvokeWithHandlers(info, *request_or, &fault_absorbed);
  if (!response_or.ok()) {
    if (fault_absorbed) return done(std::vector<xml::NodeId>{});
    return done(response_or.status());
  }
  if (response_or->fragment == nullptr) {
    return done(std::vector<xml::NodeId>{});
  }
  return done(ApplyResults(info, *response_or->fragment));
}

Result<std::vector<xml::NodeId>> Materializer::MaterializeForQuery(
    const query::Query& q, xml::NodeId scope) {
  // Lazy evaluation (§3.1): "only those embedded service calls are
  // materialized whose results are required for evaluating the query".
  // Two passes:
  //  1. calls whose outputs the `where` clause tests, under every candidate
  //     source node (the predicate must be evaluable);
  //  2. calls whose outputs the select paths read, under the *bindings that
  //     survived the predicate* only.
  std::vector<std::string> where_names;
  if (q.where != nullptr) {
    // MentionedNames covers selects + where; recompute just the where part
    // by parsing the predicate tree.
    std::vector<const query::Predicate*> stack = {q.where.get()};
    while (!stack.empty()) {
      const query::Predicate* p = stack.back();
      stack.pop_back();
      if (p == nullptr) continue;
      if (p->kind == query::Predicate::Kind::kCompare) {
        for (const query::Step& s : p->path.steps) {
          if (s.axis != query::Step::Axis::kParent &&
              s.axis != query::Step::Axis::kAttribute && s.name != "*") {
            where_names.push_back(s.name);
          }
        }
      } else {
        stack.push_back(p->left.get());
        stack.push_back(p->right.get());
      }
    }
  }
  std::unordered_set<std::string> where_set(where_names.begin(),
                                            where_names.end());
  std::vector<std::string> select_names;
  for (const query::PathExpr& sel : q.selects) {
    for (const query::Step& s : sel.steps) {
      if (s.axis != query::Step::Axis::kParent &&
              s.axis != query::Step::Axis::kAttribute && s.name != "*") {
        select_names.push_back(s.name);
      }
    }
  }
  std::unordered_set<std::string> select_set(select_names.begin(),
                                             select_names.end());

  auto needed_by = [this](xml::NodeId sc,
                          const std::unordered_set<std::string>& wanted)
      -> Result<bool> {
    AXMLX_ASSIGN_OR_RETURN(ServiceCallInfo info, ParseServiceCall(*doc_, sc));
    for (const std::string& name : info.OutputNames(*doc_)) {
      if (wanted.count(name) > 0) return true;
    }
    return false;
  };

  std::vector<xml::NodeId> materialized;
  std::unordered_set<xml::NodeId> done;
  // Pass 1: predicate inputs under all candidate source nodes.
  std::vector<xml::NodeId> sources =
      query::EvaluatePathFrom(*doc_, scope, q.source);
  if (!where_set.empty()) {
    for (xml::NodeId src : sources) {
      for (xml::NodeId sc : FindServiceCalls(*doc_, src)) {
        if (done.count(sc) > 0) continue;
        AXMLX_ASSIGN_OR_RETURN(bool needed, needed_by(sc, where_set));
        if (!needed) continue;
        AXMLX_RETURN_IF_ERROR(MaterializeCall(sc).status());
        done.insert(sc);
        materialized.push_back(sc);
      }
    }
  }
  // Pass 2: select inputs under surviving bindings only.
  for (xml::NodeId src : sources) {
    if (q.where != nullptr && !query::EvaluatePredicate(*doc_, src, *q.where)) {
      continue;
    }
    for (xml::NodeId sc : FindServiceCalls(*doc_, src)) {
      if (done.count(sc) > 0) continue;
      AXMLX_ASSIGN_OR_RETURN(bool needed, needed_by(sc, select_set));
      if (!needed) {
        ++stats_.calls_skipped;
        continue;
      }
      AXMLX_RETURN_IF_ERROR(MaterializeCall(sc).status());
      done.insert(sc);
      materialized.push_back(sc);
    }
  }
  return materialized;
}

Result<std::vector<xml::NodeId>> Materializer::MaterializeAll(
    xml::NodeId scope) {
  std::vector<xml::NodeId> materialized;
  std::unordered_set<xml::NodeId> seen;
  // Results may introduce new service calls; iterate to a fixed point with a
  // round bound to tame pathological self-reproducing services.
  for (int round = 0; round < kMaxNestingDepth; ++round) {
    bool progress = false;
    for (xml::NodeId sc : FindServiceCalls(*doc_, scope)) {
      if (!seen.insert(sc).second) continue;
      AXMLX_RETURN_IF_ERROR(MaterializeCall(sc).status());
      materialized.push_back(sc);
      progress = true;
    }
    if (!progress) break;
  }
  return materialized;
}

}  // namespace axmlx::axml
