#include "axml/periodic.h"

#include <utility>

#include "axml/service_call.h"

namespace axmlx::axml {

PeriodicRefresher::PeriodicRefresher(xml::Document* doc,
                                     ServiceInvoker invoker,
                                     xml::EditLog* log,
                                     overlay::Network* net,
                                     overlay::PeerId owner)
    : state_(std::make_shared<State>()) {
  state_->doc = doc;
  state_->materializer =
      std::make_unique<Materializer>(doc, std::move(invoker), log);
  state_->net = net;
  state_->owner = std::move(owner);
}

int PeriodicRefresher::Start(xml::NodeId scope) {
  state_->running = true;
  int armed = 0;
  for (xml::NodeId sc : FindServiceCalls(*state_->doc, scope)) {
    auto info = ParseServiceCall(*state_->doc, sc);
    if (!info.ok() || info->frequency <= 0) continue;
    overlay::Tick frequency = info->frequency;
    std::shared_ptr<State> state = state_;
    state_->net->ScheduleAfter(frequency, [state, sc, frequency](
                                              overlay::Network*) {
      Refresh(state, sc, frequency);
    });
    ++armed;
  }
  return armed;
}

void PeriodicRefresher::Stop() { state_->running = false; }

void PeriodicRefresher::Refresh(std::shared_ptr<State> state, xml::NodeId sc,
                                overlay::Tick frequency) {
  if (!state->running) return;
  // A disconnected owner performs no refreshes (its silence is what stream
  // subscribers detect, §3.3(d)).
  if (!state->owner.empty() && !state->net->IsConnected(state->owner)) {
    return;
  }
  if (!state->doc->Contains(sc)) return;  // the call was deleted
  auto result = state->materializer->MaterializeCall(sc);
  if (result.ok()) {
    ++state->refreshes;
    if (state->net->trace() != nullptr) {
      state->net->trace()->Add(state->net->now(), state->owner, kEvRefresh,
                               "periodic materialization of call " +
                                   std::to_string(sc));
    }
  } else {
    ++state->failures;
  }
  state->net->ScheduleAfter(frequency, [state, sc, frequency](
                                           overlay::Network*) {
    Refresh(state, sc, frequency);
  });
}

}  // namespace axmlx::axml
