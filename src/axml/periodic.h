#ifndef AXMLX_AXML_PERIODIC_H_
#define AXMLX_AXML_PERIODIC_H_

#include <memory>
#include <string>

#include "axml/materializer.h"
#include "overlay/network.h"
#include "xml/document.h"
#include "xml/edit.h"

namespace axmlx::axml {

/// Drives periodic materialization of embedded service calls: "An embedded
/// service call may be invoked ... periodically (specified by the
/// 'frequency' attribute of the AXML service call tag <axml:sc>)" (paper
/// §1).
///
/// On Start(), every service call under `scope` with frequency > 0 is
/// scheduled on the overlay clock and re-materialized each period (replace
/// mode refreshes, merge mode accumulates — the subscription/continuous
/// pattern of §3.3(d)). Every refresh's edits land in the shared edit log,
/// so refreshes remain compensable like any other materialization.
class PeriodicRefresher {
 public:
  /// `doc`, `log` and `net` must outlive the refresher. `owner` labels
  /// trace events and makes refreshes stop when that peer disconnects.
  PeriodicRefresher(xml::Document* doc, ServiceInvoker invoker,
                    xml::EditLog* log, overlay::Network* net,
                    overlay::PeerId owner);

  /// Scans `scope` for periodic calls and schedules them. Returns the
  /// number of calls armed.
  int Start(xml::NodeId scope);

  /// Stops all periodic refreshing.
  void Stop();

  int refreshes_performed() const { return state_->refreshes; }
  int failures() const { return state_->failures; }

 private:
  struct State {
    xml::Document* doc = nullptr;
    std::unique_ptr<Materializer> materializer;
    overlay::Network* net = nullptr;
    overlay::PeerId owner;
    bool running = false;
    int refreshes = 0;
    int failures = 0;
  };
  static void Refresh(std::shared_ptr<State> state, xml::NodeId sc,
                      overlay::Tick frequency);

  std::shared_ptr<State> state_;
};

}  // namespace axmlx::axml

#endif  // AXMLX_AXML_PERIODIC_H_
