#include "axml/service_call.h"

#include <cstdlib>

#include "common/strings.h"
#include "query/eval.h"
#include "xml/builder.h"

namespace axmlx::axml {
namespace {

bool IsScElement(const xml::Node& n) {
  return n.is_element() && n.name == "axml:sc";
}

Result<ScParam> ParseParam(const xml::Document& doc, xml::NodeId param_id) {
  const xml::Node* p = doc.Find(param_id);
  ScParam out;
  const std::string* name = p->FindAttribute("name");
  if (name == nullptr) {
    return ParseError("axml:param is missing the 'name' attribute");
  }
  out.name = *name;
  // A param holds either an <axml:value> child, a nested <axml:sc>, or (for
  // compatibility with the paper's terser listing) direct text.
  for (xml::NodeId c : p->children) {
    const xml::Node* child = doc.Find(c);
    if (child->is_element() && child->name == "axml:value") {
      std::string text = doc.TextContent(c);
      if (StartsWith(text, "$")) {
        out.kind = ScParam::Kind::kExternal;
        // "$year (external value)" -> "year"
        std::string var = text.substr(1);
        size_t space = var.find_first_of(" \t(");
        if (space != std::string::npos) var = var.substr(0, space);
        out.value = var;
      } else {
        out.kind = ScParam::Kind::kLiteral;
        out.value = text;
      }
      return out;
    }
    if (IsScElement(*child)) {
      out.kind = ScParam::Kind::kNestedCall;
      out.nested_call = c;
      return out;
    }
    if (child->is_text()) {
      out.kind = ScParam::Kind::kLiteral;
      out.value = child->text;
      return out;
    }
  }
  out.kind = ScParam::Kind::kLiteral;
  out.value = "";
  return out;
}

Result<RetrySpec> ParseRetry(const xml::Document& doc, xml::NodeId retry_id) {
  const xml::Node* r = doc.Find(retry_id);
  RetrySpec spec;
  if (const std::string* t = r->FindAttribute("times")) {
    spec.times = std::atoi(t->c_str());
  }
  if (const std::string* w = r->FindAttribute("wait")) {
    spec.wait = std::atoll(w->c_str());
  }
  if (const std::string* u = r->FindAttribute("serviceURL")) {
    spec.replica_url = *u;
  }
  // The paper allows `<axml:retry ...><axml:sc .../></axml:retry>` to name a
  // replicated peer; we model the replica by its serviceURL attribute on
  // either the retry element or the nested sc.
  for (xml::NodeId c : r->children) {
    const xml::Node* child = doc.Find(c);
    if (IsScElement(*child)) {
      if (const std::string* u = child->FindAttribute("serviceURL")) {
        spec.replica_url = *u;
      }
    }
  }
  return spec;
}

Result<FaultHandler> ParseHandler(const xml::Document& doc,
                                  xml::NodeId handler_id) {
  const xml::Node* h = doc.Find(handler_id);
  FaultHandler out;
  if (h->name == "axml:catch") {
    const std::string* fault = h->FindAttribute("faultName");
    if (fault == nullptr) {
      return ParseError("axml:catch is missing the 'faultName' attribute");
    }
    out.fault_name = *fault;
  }
  for (xml::NodeId c : h->children) {
    const xml::Node* child = doc.Find(c);
    if (child->is_element() && child->name == "axml:retry") {
      AXMLX_ASSIGN_OR_RETURN(out.retry, ParseRetry(doc, c));
      out.has_retry = true;
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> ServiceCallInfo::OutputNames(
    const xml::Document& doc) const {
  std::vector<std::string> names;
  auto add = [&names](const std::string& n) {
    if (n.empty()) return;
    for (const std::string& e : names) {
      if (e == n) return;
    }
    names.push_back(n);
  };
  add(output_name);
  add(method_name);
  for (xml::NodeId r : results) {
    const xml::Node* n = doc.Find(r);
    if (n != nullptr && n->is_element()) add(n->name);
  }
  return names;
}

Result<ServiceCallInfo> ParseServiceCall(const xml::Document& doc,
                                         xml::NodeId id) {
  const xml::Node* n = doc.Find(id);
  if (n == nullptr) return NotFound("ParseServiceCall: unknown node");
  if (!IsScElement(*n)) {
    return InvalidArgument("ParseServiceCall: node is not an axml:sc element");
  }
  ServiceCallInfo info;
  info.element = id;
  if (const std::string* mode = n->FindAttribute("mode")) {
    if (*mode == "merge") {
      info.mode = ScMode::kMerge;
    } else if (*mode == "replace") {
      info.mode = ScMode::kReplace;
    } else {
      return ParseError("axml:sc has unknown mode '" + *mode + "'");
    }
  }
  if (const std::string* v = n->FindAttribute("serviceNameSpace")) {
    info.service_namespace = *v;
  }
  if (const std::string* v = n->FindAttribute("serviceURL")) {
    info.service_url = *v;
  }
  if (const std::string* v = n->FindAttribute("methodName")) {
    info.method_name = *v;
  }
  if (const std::string* v = n->FindAttribute("outputName")) {
    info.output_name = *v;
  }
  if (const std::string* v = n->FindAttribute("frequency")) {
    info.frequency = std::atoll(v->c_str());
  }
  for (xml::NodeId c : n->children) {
    const xml::Node* child = doc.Find(c);
    if (child->type == xml::NodeType::kComment) continue;
    if (child->is_element() && child->name == "axml:params") {
      for (xml::NodeId pc : child->children) {
        const xml::Node* param = doc.Find(pc);
        if (param->is_element() && param->name == "axml:param") {
          AXMLX_ASSIGN_OR_RETURN(ScParam p, ParseParam(doc, pc));
          info.params.push_back(std::move(p));
        }
      }
      continue;
    }
    if (child->is_element() &&
        (child->name == "axml:catch" || child->name == "axml:catchAll")) {
      AXMLX_ASSIGN_OR_RETURN(FaultHandler h, ParseHandler(doc, c));
      info.handlers.push_back(std::move(h));
      continue;
    }
    info.results.push_back(c);
  }
  return info;
}

std::vector<xml::NodeId> FindServiceCalls(const xml::Document& doc,
                                          xml::NodeId from) {
  std::vector<xml::NodeId> out;
  doc.Walk(from, [&doc, &out](const xml::Node& n) {
    if (query::IsBookkeepingElement(n)) return false;  // prune params etc.
    if (n.is_element() && n.name == "axml:sc") {
      out.push_back(n.id);
      // Result children may themselves embed service calls ("the invocation
      // results may be ... another service call") — keep walking, the prune
      // above keeps parameter calls out.
    }
    return true;
  });
  (void)doc;
  return out;
}

std::vector<xml::NodeId> ResultChildren(const xml::Document& doc,
                                        xml::NodeId sc) {
  std::vector<xml::NodeId> out;
  const xml::Node* n = doc.Find(sc);
  if (n == nullptr) return out;
  for (xml::NodeId c : n->children) {
    const xml::Node* child = doc.Find(c);
    if (child->type == xml::NodeType::kComment) continue;
    if (query::IsBookkeepingElement(*child)) continue;
    out.push_back(c);
  }
  return out;
}

Result<xml::NodeId> BuildServiceCall(xml::Document* doc, xml::NodeId parent,
                                     const ScSpec& spec) {
  if (doc->Find(parent) == nullptr) {
    return NotFound("BuildServiceCall: unknown parent");
  }
  xml::NodeId sc = xml::AddElement(doc, parent, "axml:sc");
  AXMLX_RETURN_IF_ERROR(doc->SetAttribute(
      sc, "mode", spec.mode == ScMode::kMerge ? "merge" : "replace"));
  if (!spec.service_namespace.empty()) {
    AXMLX_RETURN_IF_ERROR(
        doc->SetAttribute(sc, "serviceNameSpace", spec.service_namespace));
  }
  if (!spec.service_url.empty()) {
    AXMLX_RETURN_IF_ERROR(doc->SetAttribute(sc, "serviceURL", spec.service_url));
  }
  if (!spec.method_name.empty()) {
    AXMLX_RETURN_IF_ERROR(doc->SetAttribute(sc, "methodName", spec.method_name));
  }
  if (!spec.output_name.empty()) {
    AXMLX_RETURN_IF_ERROR(doc->SetAttribute(sc, "outputName", spec.output_name));
  }
  if (spec.frequency != 0) {
    AXMLX_RETURN_IF_ERROR(
        doc->SetAttribute(sc, "frequency", std::to_string(spec.frequency)));
  }
  if (!spec.params.empty()) {
    xml::NodeId params = xml::AddElement(doc, sc, "axml:params");
    for (const ScSpec::Param& p : spec.params) {
      xml::NodeId param = xml::AddElement(doc, params, "axml:param");
      AXMLX_RETURN_IF_ERROR(doc->SetAttribute(param, "name", p.name));
      if (p.nested) {
        if (p.nested_spec.empty()) {
          return InvalidArgument("BuildServiceCall: nested param '" + p.name +
                                 "' has no nested spec");
        }
        AXMLX_RETURN_IF_ERROR(
            BuildServiceCall(doc, param, p.nested_spec.front()).status());
      } else {
        xml::AddTextElement(doc, param, "axml:value", p.literal);
      }
    }
  }
  for (const ScSpec::Handler& h : spec.handlers) {
    xml::NodeId handler;
    if (h.fault_name.empty()) {
      handler = xml::AddElement(doc, sc, "axml:catchAll");
    } else {
      handler = xml::AddElement(doc, sc, "axml:catch");
      AXMLX_RETURN_IF_ERROR(doc->SetAttribute(handler, "faultName", h.fault_name));
    }
    if (h.has_retry) {
      xml::NodeId retry = xml::AddElement(doc, handler, "axml:retry");
      AXMLX_RETURN_IF_ERROR(
          doc->SetAttribute(retry, "times", std::to_string(h.retry.times)));
      AXMLX_RETURN_IF_ERROR(
          doc->SetAttribute(retry, "wait", std::to_string(h.retry.wait)));
      if (!h.retry.replica_url.empty()) {
        AXMLX_RETURN_IF_ERROR(
            doc->SetAttribute(retry, "serviceURL", h.retry.replica_url));
      }
    }
  }
  return sc;
}

}  // namespace axmlx::axml
