#include "runtime/job_queue.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/rng.h"
#include "obs/flight_recorder.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace axmlx::runtime {

namespace {

/// Real elapsed time for the job.<type>.run_us histograms — observability
/// only. Nothing protocol-visible reads it: ordering, WAL bytes, and
/// decisions all derive from submission order.
int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             // lint:allow(R7): wall clock feeds latency histograms only.
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock run-latency buckets for job.<type>.run_us. Local work in the
/// simulator is microsecond-scale; service stubs and flushes reach
/// milliseconds.
std::vector<int64_t> RunUsBuckets() {
  return {1, 2, 4, 7, 12, 20, 35, 60, 100, 170, 300, 500,
          850, 1400, 2400, 4000, 7000, 12000, 20000, 35000, 60000, 100000};
}

}  // namespace

const char* JobTypeName(JobType type) {
  switch (type) {
    case JobType::kJobRecovery:
      return "recovery";
    case JobType::kJobCompensation:
      return "compensation";
    case JobType::kJobConflictCheck:
      return "conflict_check";
    case JobType::kJobWalAppend:
      return "wal_append";
    case JobType::kJobFlush:
      return "flush";
    case JobType::kJobEval:
      return "eval";
    case JobType::kJobServiceCall:
      return "service_call";
  }
  return "unknown";
}

const char* JobTypeQueueDepthMetric(JobType type) {
  switch (type) {
    case JobType::kJobRecovery:
      return obs::kMetricJobRecoveryQueueDepth;
    case JobType::kJobCompensation:
      return obs::kMetricJobCompensationQueueDepth;
    case JobType::kJobConflictCheck:
      return obs::kMetricJobConflictCheckQueueDepth;
    case JobType::kJobWalAppend:
      return obs::kMetricJobWalAppendQueueDepth;
    case JobType::kJobFlush:
      return obs::kMetricJobFlushQueueDepth;
    case JobType::kJobEval:
      return obs::kMetricJobEvalQueueDepth;
    case JobType::kJobServiceCall:
      return obs::kMetricJobServiceCallQueueDepth;
  }
  return obs::kMetricJobEvalQueueDepth;
}

const char* JobTypeRunUsMetric(JobType type) {
  switch (type) {
    case JobType::kJobRecovery:
      return obs::kMetricJobRecoveryRunUs;
    case JobType::kJobCompensation:
      return obs::kMetricJobCompensationRunUs;
    case JobType::kJobConflictCheck:
      return obs::kMetricJobConflictCheckRunUs;
    case JobType::kJobWalAppend:
      return obs::kMetricJobWalAppendRunUs;
    case JobType::kJobFlush:
      return obs::kMetricJobFlushRunUs;
    case JobType::kJobEval:
      return obs::kMetricJobEvalRunUs;
    case JobType::kJobServiceCall:
      return obs::kMetricJobServiceCallRunUs;
  }
  return obs::kMetricJobEvalRunUs;
}

JobQueue::JobQueue(JobQueueOptions options) : options_(options) {
  if (options_.workers < 0) options_.workers = 0;
  const int contexts = options_.workers > 0 ? options_.workers : 1;
  worker_eval_.reserve(static_cast<size_t>(contexts));
  for (int i = 0; i < contexts; ++i) {
    worker_eval_.push_back(std::make_unique<query::EvalContext>());
  }
  threads_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

JobQueue::~JobQueue() {
  // Best effort: run whatever is still queued so no submitter's jobs
  // dangle. Owners (repository, drill harness) destroy the queue after
  // quiescence, where this is a no-op.
  if (!draining_) Drain();
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wave_ready_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
}

void JobQueue::AttachMetrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  std::fill(std::begin(run_us_hist_), std::end(run_us_hist_), nullptr);
  if (metrics_ == nullptr) return;
  metrics_->GetGauge(obs::kMetricRuntimeWorkers)
      ->Set(static_cast<double>(options_.workers));
  for (int i = 0; i < kJobTypeCount; ++i) {
    const JobType type = static_cast<JobType>(i);
    run_us_hist_[i] =
        metrics_->GetHistogram(JobTypeRunUsMetric(type), RunUsBuckets());
    metrics_->GetGauge(JobTypeQueueDepthMetric(type))
        ->Set(static_cast<double>(depth_[i]));
  }
}

void JobQueue::Submit(Job job) {
  const int type = static_cast<int>(job.type);
  if (timeline_ != nullptr && !job.txn.empty()) {
    timeline_->Enter(job.txn, obs::kPhaseQueueWait, timeline_->now());
  }
  Queued q;
  q.job = std::move(job);
  q.seq = next_seq_++;
  pending_.push_back(std::move(q));
  ++stats_.submitted;
  ++depth_[type];
  if (metrics_ != nullptr) {
    ++*metrics_->GetCounter(obs::kMetricRuntimeJobsSubmitted);
    metrics_->GetGauge(JobTypeQueueDepthMetric(static_cast<JobType>(type)))
        ->Set(static_cast<double>(depth_[type]));
  }
}

void JobQueue::Drain() {
  if (draining_) return;  // the outer drain owns the loop
  draining_ = true;
  while (!pending_.empty()) {
    std::vector<Queued> wave;
    wave.swap(pending_);
    for (int i = 0; i < kJobTypeCount; ++i) depth_[i] = 0;
    if (metrics_ != nullptr) {
      for (int i = 0; i < kJobTypeCount; ++i) {
        metrics_->GetGauge(JobTypeQueueDepthMetric(static_cast<JobType>(i)))
            ->Set(0.0);
      }
    }
    RunWave(std::move(wave));
  }
  draining_ = false;
}

void JobQueue::RunWave(std::vector<Queued> wave) {
  ++stats_.waves;
  if (metrics_ != nullptr) ++*metrics_->GetCounter(obs::kMetricRuntimeWaves);
  // Canonical order: type priority, then submission order. Stable by
  // construction since (type, seq) pairs are unique.
  std::sort(wave.begin(), wave.end(), [](const Queued& a, const Queued& b) {
    if (a.job.type != b.job.type) return a.job.type < b.job.type;
    return a.seq < b.seq;
  });

  // --- Work stages: wave-start state, order must not matter ---------------
  if (options_.workers > 0) {
    RunWorkStagesParallel(&wave);
  } else {
    // Deterministic mode probes order-independence: the seed permutes the
    // order work stages run in, and the differential suite holds results
    // constant across seeds. The permutation never reaches the apply order.
    std::vector<size_t> order(wave.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    Rng rng(options_.seed ^ static_cast<uint64_t>(stats_.waves));
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.Uniform(i)]);
    }
    WorkerContext ctx{0, worker_eval_[0].get()};
    for (size_t idx : order) {
      Queued& q = wave[idx];
      if (!q.job.work) continue;
      const int64_t t0 = NowUs();
      q.job.work(ctx);
      q.work_us = NowUs() - t0;
      q.worker = 0;
    }
  }

  // --- Apply stages: coordinator, canonical order -------------------------
  for (Queued& q : wave) {
    if (timeline_ != nullptr && !q.job.txn.empty()) {
      timeline_->Exit(q.job.txn, obs::kPhaseQueueWait, timeline_->now());
    }
    const int64_t t0 = NowUs();
    if (q.job.apply) q.job.apply();
    const int64_t apply_us = NowUs() - t0;
    ++stats_.executed;
    if (metrics_ != nullptr) {
      ++*metrics_->GetCounter(obs::kMetricRuntimeJobsExecuted);
    }
    ObserveRun(q.job.type, q.work_us + apply_us);
    if (recorders_ != nullptr && !q.job.peer.empty()) {
      recorders_->ForPeer(q.job.peer)
          ->Record(obs::kEvFrJobRun, JobTypeName(q.job.type), /*span=*/0,
                   /*arg=*/q.worker);
    }
  }
}

void JobQueue::RunWorkStagesParallel(std::vector<Queued>* wave) {
  bool any_work = false;
  for (const Queued& q : *wave) {
    if (q.job.work) {
      any_work = true;
      break;
    }
  }
  if (!any_work) return;  // skip the barrier round-trip for apply-only waves
  std::unique_lock<std::mutex> lock(mu_);
  wave_ = wave;
  next_index_ = 0;
  done_count_ = 0;
  ++generation_;
  wave_ready_cv_.notify_all();
  wave_done_cv_.wait(lock, [this] { return done_count_ == wave_->size(); });
  wave_ = nullptr;
}

void JobQueue::WorkerLoop(int worker) {
  WorkerContext ctx{worker, worker_eval_[static_cast<size_t>(worker)].get()};
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wave_ready_cv_.wait(lock, [this, seen_generation] {
      return stop_ || generation_ != seen_generation;
    });
    if (stop_) return;
    seen_generation = generation_;
    while (wave_ != nullptr && next_index_ < wave_->size()) {
      const size_t i = next_index_++;
      Queued& q = (*wave_)[i];
      lock.unlock();
      // Outside the lock: this worker owns entry i exclusively; the
      // coordinator only reads it after the done_count_ barrier below.
      if (q.job.work) {
        const int64_t t0 = NowUs();
        q.job.work(ctx);
        q.work_us = NowUs() - t0;
      }
      q.worker = worker;
      lock.lock();
      ++done_count_;
      if (done_count_ == wave_->size()) wave_done_cv_.notify_one();
    }
  }
}

void JobQueue::RunInline(JobType type, const std::string& txn,
                         const std::function<void()>& fn) {
  (void)txn;  // reserved: inline runs are already inside a claimed phase
  const int64_t t0 = NowUs();
  fn();
  const int64_t run_us = NowUs() - t0;
  ++stats_.inline_runs;
  if (metrics_ != nullptr) {
    ++*metrics_->GetCounter(obs::kMetricRuntimeInlineRuns);
  }
  ObserveRun(type, run_us);
}

void JobQueue::ObserveRun(JobType type, int64_t run_us) {
  obs::Histogram* hist = run_us_hist_[static_cast<int>(type)];
  if (hist != nullptr) hist->Observe(run_us);
}

}  // namespace axmlx::runtime
