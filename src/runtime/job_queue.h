#ifndef AXMLX_RUNTIME_JOB_QUEUE_H_
#define AXMLX_RUNTIME_JOB_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "runtime/job.h"

namespace axmlx::obs {
class FlightRecorderSet;
class Histogram;
class MetricsRegistry;
class Timeline;
}  // namespace axmlx::obs

namespace axmlx::runtime {

struct JobQueueOptions {
  /// 0 = deterministic mode: Drain() runs everything on the calling thread,
  /// with work stages in a seed-shuffled order (the differential oracle —
  /// varying the seed proves work stages are order-independent, exactly as
  /// query::naive is the oracle for the indexed evaluator). N >= 1 =
  /// parallel mode: N persistent worker threads run work stages
  /// concurrently.
  int workers = 0;

  /// Permutes deterministic-mode work order. Ignored in parallel mode,
  /// where the interleaving is scheduler-chosen — the point of the
  /// differential suite is that results never depend on it.
  uint64_t seed = 1;
};

/// Typed-priority worker pool under the deterministic simulator
/// (DESIGN.md §11).
///
/// Work is organized in *waves*: Drain() repeatedly takes everything
/// currently queued as one wave, runs every job's work stage against the
/// wave-start state (concurrently in parallel mode), then — after a barrier
/// — runs every apply stage serialized on the coordinator in canonical
/// (type priority, submission order) order. Jobs submitted during a wave's
/// apply stages form the next wave. Because both scheduling modes execute
/// the same waves with the same apply order, and work stages may only read
/// shared state, parallel mode is observationally identical to
/// deterministic mode: same documents, same WAL bytes, same commit/abort
/// decisions (tests/runtime_diff_test.cc holds this at 1/2/4/8 workers).
///
/// Threading contract: Submit(), Drain(), and RunInline() are
/// coordinator-only (the simulator thread, or apply stages running on it);
/// work stages run on pool threads and must not touch the queue. The only
/// cross-thread state is the wave hand-off protected by `mu_`.
class JobQueue {
 public:
  explicit JobQueue(JobQueueOptions options = {});
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueues `job` for the next wave and opens its QUEUE_WAIT timeline
  /// claim. Coordinator-only (callable from apply stages).
  void Submit(Job job);

  /// Runs waves until the queue is empty. Reentrant calls (from an apply
  /// stage, or a component flushing its own jobs mid-drain) are no-ops:
  /// the outer drain already owns the loop. overlay::Network calls this
  /// after every dispatched event, making the queue empty at every event
  /// boundary — the determinism argument's crash-point invariant.
  void Drain();

  /// Runs `fn` immediately on the coordinator with typed accounting (the
  /// job.<type>.run_us histogram, runtime.inline_runs) but without
  /// queueing. For peer work that is synchronous by protocol contract —
  /// conflict checks and compensation inside an apply stage, service-call
  /// dispatch — so it shows up in the same job taxonomy as queued work.
  void RunInline(JobType type, const std::string& txn,
                 const std::function<void()>& fn);

  /// True while Drain() is executing (apply stages observe true).
  [[nodiscard]] bool draining() const { return draining_; }

  [[nodiscard]] int workers() const { return options_.workers; }
  [[nodiscard]] uint64_t seed() const { return options_.seed; }
  [[nodiscard]] bool parallel() const { return options_.workers > 0; }

  /// Jobs currently queued (pending the next wave).
  [[nodiscard]] size_t pending() const { return pending_.size(); }

  struct Stats {
    int64_t submitted = 0;
    int64_t executed = 0;
    int64_t inline_runs = 0;
    int64_t waves = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Publishes runtime.* counters, the runtime.workers gauge, and the
  /// per-type job.* gauges/histograms into `metrics` (not owned; null
  /// detaches). Coordinator-only, like every registry in this codebase.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  /// Attaches the repository phase timeline (not owned; null detaches):
  /// Submit opens a QUEUE_WAIT claim for the job's txn, released when the
  /// job's wave starts applying.
  void AttachTimeline(obs::Timeline* timeline) { timeline_ = timeline; }

  /// Attaches the per-peer flight-recorder set (not owned; null detaches).
  /// Each executed job stamps one JOB_RUN event into its peer's ring — at
  /// apply time, on the coordinator, carrying the worker id as `arg` — so
  /// worker activity merges into the existing (time, seq) order.
  void AttachRecorders(obs::FlightRecorderSet* recorders) {
    recorders_ = recorders;
  }

 private:
  /// A job plus its submission bookkeeping.
  struct Queued {
    Job job;
    int64_t seq = 0;        ///< Submission order (canonical tie-break).
    int worker = 0;         ///< Which worker ran the work stage.
    int64_t work_us = 0;    ///< Wall-clock work-stage duration.
  };

  /// Runs one wave: all work stages (mode-dependent order), barrier, all
  /// apply stages in canonical order.
  void RunWave(std::vector<Queued> wave);

  /// Parallel mode: hands `wave` to the pool and blocks until every work
  /// stage finished. Results (worker, work_us) land in the wave entries.
  void RunWorkStagesParallel(std::vector<Queued>* wave);

  void WorkerLoop(int worker);

  /// Coordinator-side accounting after a job or inline run finished.
  void ObserveRun(JobType type, int64_t run_us);

  // Everything except the wave hand-off block below is coordinator-only by
  // the threading contract (workers see only their wave slice and their own
  // eval slot), so GUARDED_BY(mu_) would overstate the discipline — the
  // per-member lint:allow(R9) markers record that deliberately.
  JobQueueOptions options_;                      // lint:allow(R9)
  obs::MetricsRegistry* metrics_ = nullptr;      // lint:allow(R9)
  obs::Timeline* timeline_ = nullptr;            // lint:allow(R9)
  obs::FlightRecorderSet* recorders_ = nullptr;  // lint:allow(R9)

  // Cached metric handles (rebuilt by AttachMetrics).
  obs::Histogram* run_us_hist_[kJobTypeCount] = {};  // lint:allow(R9)

  std::vector<Queued> pending_;  // lint:allow(R9)
  int64_t next_seq_ = 0;         // lint:allow(R9)
  // Queued jobs per type (gauges). lint:allow(R9)
  int depth_[kJobTypeCount] = {};
  bool draining_ = false;  // lint:allow(R9)
  Stats stats_;            // lint:allow(R9)

  /// Per-worker EvalContext scratch; slot 0 doubles as the deterministic
  /// mode's single context. Workers only touch their own slot, and only
  /// between the wave hand-off and the completion barrier. lint:allow(R9)
  std::vector<std::unique_ptr<query::EvalContext>> worker_eval_;

  // Wave hand-off (the only cross-thread state). The condition variables
  // are internally synchronized and always used with mu_ held.
  std::mutex mu_;
  std::condition_variable wave_ready_cv_;  // lint:allow(R9)
  std::condition_variable wave_done_cv_;   // lint:allow(R9)
  std::vector<Queued>* wave_ AXMLX_GUARDED_BY(mu_) = nullptr;
  size_t next_index_ AXMLX_GUARDED_BY(mu_) = 0;
  size_t done_count_ AXMLX_GUARDED_BY(mu_) = 0;
  uint64_t generation_ AXMLX_GUARDED_BY(mu_) = 0;
  bool stop_ AXMLX_GUARDED_BY(mu_) = false;

  // Joined by the destructor after stop_; only the coordinator touches the
  // vector itself. lint:allow(R9)
  std::vector<std::thread> threads_;
};

}  // namespace axmlx::runtime

#endif  // AXMLX_RUNTIME_JOB_QUEUE_H_
