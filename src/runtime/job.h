#ifndef AXMLX_RUNTIME_JOB_H_
#define AXMLX_RUNTIME_JOB_H_

#include <functional>
#include <string>

#include "query/eval.h"

namespace axmlx::runtime {

/// Typed job priorities for the worker-pool runtime (DESIGN.md §11).
///
/// Table order IS scheduling priority: within one wave the queue runs apply
/// stages in ascending (type, submission) order, so recovery work preempts
/// compensation, compensation preempts conflict checking, and so on down to
/// service calls — deliberately the same ranking as the obs/timeline.h
/// kPhase* attribution table, so "what ran first" and "what the latency is
/// attributed to" never disagree. Every JobType has a `job.<name>.*` metric
/// family (queue-depth gauge + run-latency histogram) registered in
/// obs/metric_names.h.
enum class JobType {
  kJobRecovery = 0,
  kJobCompensation,
  kJobConflictCheck,
  kJobWalAppend,
  kJobFlush,
  kJobEval,
  kJobServiceCall,
};

inline constexpr int kJobTypeCount = 7;

/// Lowercase metric segment for `type` ("eval", "wal_append", ...), a
/// static string.
const char* JobTypeName(JobType type);

/// The `job.<type>.queue_depth` / `job.<type>.run_us` metric names for
/// `type` (kMetric* constants from obs/metric_names.h).
const char* JobTypeQueueDepthMetric(JobType type);
const char* JobTypeRunUsMetric(JobType type);

/// Per-worker execution context handed to a job's work stage. `eval` is the
/// worker-private query::EvalContext scratch (stable for the worker's
/// lifetime); jobs must set its view and invalidate its memos before
/// evaluating, and must not share it with other jobs in flight.
struct WorkerContext {
  int worker = 0;
  query::EvalContext* eval = nullptr;
};

/// One schedulable unit of peer work.
///
/// The two-stage contract is what makes parallel execution a pure
/// optimization (DESIGN.md §11): `work` runs concurrently in parallel mode
/// (in seed-shuffled order in deterministic mode) and must only read shared
/// state and write job-local state through its WorkerContext; `apply` runs
/// on the coordinator, serialized in canonical (type, submission) order,
/// and is where all shared-state mutation, metrics, timeline, and
/// flight-recorder activity belongs. Either stage may be empty.
struct Job {
  JobType type = JobType::kJobEval;

  /// Timeline key: the transaction this work belongs to (empty = none). A
  /// QUEUE_WAIT claim is opened at Submit and released when the job leaves
  /// the queue, so queueing delay is attributed (obs/timeline.h).
  std::string txn;

  /// Flight-recorder key: the peer whose ring records the JOB_RUN event
  /// (empty = none). Events are stamped by the coordinator at apply time
  /// and carry the executing worker id as `arg`, so per-worker activity
  /// merges into the existing (time, seq) order.
  std::string peer;

  /// Concurrent stage: read-only over shared state (see class comment).
  std::function<void(WorkerContext&)> work;

  /// Serialized stage: runs on the coordinator in canonical order.
  std::function<void()> apply;
};

}  // namespace axmlx::runtime

#endif  // AXMLX_RUNTIME_JOB_H_
