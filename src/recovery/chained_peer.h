#ifndef AXMLX_RECOVERY_CHAINED_PEER_H_
#define AXMLX_RECOVERY_CHAINED_PEER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "overlay/keepalive.h"
#include "overlay/stream.h"
#include "recovery/recovering_peer.h"

namespace axmlx::recovery {

/// A peer implementing the paper's chain-based disconnection handling
/// (§3.3) on top of the nested recovery protocol. Requires
/// Options::use_chaining so the active-peer chain travels with INVOKEs.
///
/// Covered cases (paper's lettering, Fig. 2 topology):
/// - (a) leaf disconnection detected by its parent: keep-alive detection
///   feeds the nested recovery protocol (inherited).
/// - (b) parent disconnection detected by a child returning results: the
///   child walks the chain ("the next closest peer... or the closest super
///   peer") and sends the results to the first reachable ancestor, tagged
///   with the disconnection info. The ancestor stores the orphaned result
///   and, when it re-invokes the dead peer's service on a replica, ships it
///   along so the subcall is not re-executed (work reuse).
/// - (c) child disconnection detected by its parent via keep-alive: before
///   recovering, the parent notifies the dead peer's descendants (from the
///   chain) so they stop wasting effort; descendants that already finished
///   reroute their results as in (b).
/// - (d) sibling disconnection detected by a sibling (missed data stream):
///   the sibling notifies the dead peer's parent and children, which then
///   proceed as in (c) and (b) respectively.
class ChainedPeer : public RecoveringPeer {
 public:
  using RecoveringPeer::RecoveringPeer;

  /// Case (d): starts watching `sibling` for transaction `txn`, modelling a
  /// subscription/continuous data stream between siblings; on detection the
  /// dead peer's parent and children are notified using the chain.
  void WatchSibling(overlay::Network* net, const std::string& txn,
                    const overlay::PeerId& sibling, overlay::Tick interval);

  /// Starts publishing a continuous data stream from this peer to `to`
  /// every `interval` ticks ("subscription based continuous services",
  /// §3.3(d); the `frequency` attribute of embedded calls). Returns the
  /// publisher index for stream accounting.
  size_t PublishStream(overlay::Network* net, const overlay::PeerId& to,
                       overlay::Tick interval, const std::string& stream_id);

  /// Message-driven variant of WatchSibling: expects real STREAM data from
  /// `sibling` every `interval` ticks and treats `grace` missed intervals
  /// as a disconnection, then notifies the dead peer's parent and children
  /// from the chain.
  void WatchSiblingStream(overlay::Network* net, const std::string& txn,
                          const overlay::PeerId& sibling,
                          overlay::Tick interval, int grace = 2);

  int64_t StreamMessagesSent(size_t publisher_index) const;

 protected:
  void OnParentUnreachable(Ctx* ctx, overlay::Network* net) override;
  void OnRedirectedResult(const overlay::Message& message,
                          overlay::Network* net) override;
  void OnNotifyDisconnect(const overlay::Message& message,
                          overlay::Network* net) override;
  void OnChildFailure(Ctx* ctx, ChildEdge* edge, const std::string& fault,
                      overlay::Network* net) override;
  void OnStream(const overlay::Message& message,
                overlay::Network* net) override;
  std::shared_ptr<const txn::ReusedResults> ReuseFor(const Ctx& ctx) override;
  void OnTxnResolved(const std::string& txn, bool committed,
                     overlay::Network* net) override;

 private:
  /// Sends NOTIFY_DISCONNECT about `dead` to every live peer in its chain
  /// subtree (case (c): "inform the descendants (of AP3) about the
  /// disconnection... prevent them from wasting effort").
  void NotifySubtree(const Ctx& ctx, const overlay::PeerId& dead,
                     overlay::Network* net);

  /// Case (d) notification: tells `dead`'s parent and children (from the
  /// chain held in `txn`'s context) about the disconnection.
  void NotifyRelativesOfDeath(const std::string& txn,
                              const overlay::PeerId& dead,
                              overlay::Network* net);

  /// Orphaned results rerouted around dead parents: txn -> service -> result.
  std::map<std::string, std::shared_ptr<txn::ReusedResults>> orphan_results_;
  std::unique_ptr<overlay::KeepAliveMonitor> sibling_monitor_;
  std::vector<std::unique_ptr<overlay::StreamPublisher>> publishers_;
  std::unique_ptr<overlay::StreamWatcher> stream_watcher_;
  /// Network used by sibling-stream callbacks (set by WatchSibling; the
  /// simulator has exactly one network per run).
  overlay::Network* watch_net_ = nullptr;
};

}  // namespace axmlx::recovery

#endif  // AXMLX_RECOVERY_CHAINED_PEER_H_
