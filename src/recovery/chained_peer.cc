#include "recovery/chained_peer.h"

namespace axmlx::recovery {

void ChainedPeer::OnParentUnreachable(Ctx* ctx, overlay::Network* net) {
  // Case (b): walk the chain past the dead parent — "AP6 can try the next
  // closest peer (AP1) or the closest super peer in the list".
  ctx->parent_dead = true;  // a later NOTIFY about it needs no second reroute
  const overlay::PeerId dead_parent = ctx->parent;
  overlay::PeerId target;
  for (const overlay::PeerId& ancestor : ctx->chain.AncestorsOf(id())) {
    if (ancestor == dead_parent) continue;
    if (net->CanReach(id(), ancestor)) {
      target = ancestor;
      break;
    }
  }
  if (target.empty()) {
    // The whole ancestor line — including the origin — is unreachable: the
    // transaction can never commit. Presume abort; with the extended
    // chaining of §4 (uncles, cousins, ...), first spread the death notice
    // so collateral relatives holding finished work compensate too instead
    // of waiting for a decision that cannot come.
    if (options().extended_chaining) {
      const std::string txn = ctx->txn;
      for (const overlay::PeerId& relative :
           ctx->chain.RelativesByDistance(id())) {
        if (!net->CanReach(id(), relative)) continue;
        overlay::Message m;
        m.from = id();
        m.to = relative;
        m.type = txn::kMsgAbort;
        m.headers[txn::kHdrTxn] = txn;
        m.headers[txn::kHdrFault] = "OriginUnreachable";
        ++counters()->aborts_sent;
        BestEffortSend(std::move(m), net);
      }
    }
    RecoveringPeer::OnParentUnreachable(ctx, net);  // presumed abort
    return;
  }
  auto payload = std::make_shared<txn::ResultPayload>();
  payload->service = ctx->service;
  payload->executed_by = id();
  if (ctx->local.result_fragment != nullptr) {
    payload->fragment_xml = ctx->local.result_fragment->Serialize();
  }
  payload->participants = ctx->participants;
  payload->plans = ctx->plans;
  payload->subtree_nodes_affected = ctx->subtree_nodes_affected;
  overlay::Message m;
  m.from = id();
  m.to = target;
  m.type = txn::kMsgResult;
  m.headers[txn::kHdrTxn] = ctx->txn;
  m.headers[txn::kHdrService] = ctx->service;
  m.headers[txn::kHdrRedirectFor] = dead_parent;
  m.headers[txn::kHdrDisconnected] = dead_parent;
  m.attachment = payload;
  if (net->Send(std::move(m)).ok()) {
    ++counters()->results_rerouted;
    ctx->state = Ctx::State::kDone;  // await COMMIT/ABORT as usual
  } else {
    RecoveringPeer::OnParentUnreachable(ctx, net);
  }
}

void ChainedPeer::OnRedirectedResult(const overlay::Message& message,
                                     overlay::Network* net) {
  auto payload =
      std::static_pointer_cast<const txn::ResultPayload>(message.attachment);
  if (payload == nullptr) return;
  const std::string& txn = message.headers.at(txn::kHdrTxn);
  if (FindContext(txn) == nullptr) {
    // A late duplicate of a reroute for a transaction that committed here
    // must not trigger a rollback of committed work.
    auto resolved = ResolvedOutcome(txn);
    if (resolved.has_value() && *resolved) return;
    // Presumed abort: the transaction is already dead here — the rerouted
    // work is stale and its producer must roll back.
    overlay::Message reply;
    reply.from = id();
    reply.to = message.from;
    reply.type = txn::kMsgAbort;
    reply.headers[txn::kHdrTxn] = txn;
    reply.headers[txn::kHdrFault] = "TxnUnknown";
    ++counters()->aborts_sent;
    BestEffortSend(std::move(reply), net);
    return;
  }
  const overlay::PeerId& dead = message.headers.at(txn::kHdrDisconnected);
  auto& bundle = orphan_results_[txn];
  if (bundle == nullptr) bundle = std::make_shared<txn::ReusedResults>();
  bundle->by_service[payload->service] = payload;
  // The redirected result doubles as a disconnection report: if we hold the
  // edge that invoked the dead peer, start recovery for it now.
  Ctx* ctx = FindContext(txn);
  if (ctx == nullptr || ctx->state != Ctx::State::kRunning) return;
  for (ChildEdge& edge : ctx->children) {
    if (edge.invoked_peer == dead &&
        edge.state == ChildEdge::State::kInvoked) {
      OnChildFailure(ctx, &edge, "PeerDisconnected", net);
      return;
    }
  }
}

void ChainedPeer::OnNotifyDisconnect(const overlay::Message& message,
                                     overlay::Network* net) {
  const std::string& txn = message.headers.at(txn::kHdrTxn);
  const overlay::PeerId& dead = message.headers.at(txn::kHdrDisconnected);
  Ctx* ctx = FindContext(txn);
  if (ctx == nullptr) return;
  if (dead == ctx->parent) {
    if (ctx->parent_dead) return;  // already rerouted / already known
    ctx->parent_dead = true;
    if (!options().reuse_work && ctx->state == Ctx::State::kRunning) {
      // No reuse planned for our branch: stop now rather than finish work
      // that is "ultimately going to be discarded" (§3.3(c)).
      ++counters()->early_aborts;
      AbortContext(ctx, "ParentDisconnected", /*notify_parent=*/false, net);
      return;
    }
    if (ctx->state == Ctx::State::kDone) {
      // Our results went to the dead parent and died with it. Re-route them
      // to a live ancestor: it will reuse them if it is still recovering the
      // transaction, or answer with a presumed-abort so we roll back.
      ctx->state = Ctx::State::kRunning;
      OnParentUnreachable(ctx, net);
    }
    // Running contexts keep going; completion will reroute via the chain
    // and the work stays usable.
    return;
  }
  if (ctx->state != Ctx::State::kRunning) return;
  for (ChildEdge& edge : ctx->children) {
    if (edge.invoked_peer == dead &&
        edge.state == ChildEdge::State::kInvoked) {
      // Case (d) notification to the dead peer's parent: same handling as a
      // keep-alive detection (case (c)).
      OnChildFailure(ctx, &edge, "PeerDisconnected", net);
      return;
    }
  }
}

void ChainedPeer::NotifySubtree(const Ctx& ctx, const overlay::PeerId& dead,
                                overlay::Network* net) {
  for (const overlay::PeerId& peer : ctx.chain.SubtreeOf(dead)) {
    if (peer == dead || peer == id() || !net->CanReach(id(), peer)) continue;
    overlay::Message m;
    m.from = id();
    m.to = peer;
    m.type = txn::kMsgNotifyDisconnect;
    m.headers[txn::kHdrTxn] = ctx.txn;
    m.headers[txn::kHdrDisconnected] = dead;
    if (net->Send(std::move(m)).ok()) ++counters()->notifications_sent;
  }
}

std::shared_ptr<const txn::ReusedResults> ChainedPeer::ReuseFor(
    const Ctx& ctx) {
  if (!options().reuse_work) return nullptr;
  auto it = orphan_results_.find(ctx.txn);
  return it == orphan_results_.end() ? nullptr : it->second;
}

void ChainedPeer::OnTxnResolved(const std::string& txn, bool committed,
                                overlay::Network* net) {
  auto it = orphan_results_.find(txn);
  if (it == orphan_results_.end()) return;
  if (!committed && net != nullptr) {
    // Orphaned rerouted results we could not reuse belong to subtrees that
    // are still live; their producers must learn about the abort directly
    // (their own parent is the disconnected peer).
    for (const auto& [service, payload] : it->second->by_service) {
      if (!net->CanReach(id(), payload->executed_by)) continue;
      overlay::Message m;
      m.from = id();
      m.to = payload->executed_by;
      m.type = txn::kMsgAbort;
      m.headers[txn::kHdrTxn] = txn;
      m.headers[txn::kHdrFault] = "TxnAborted";
      ++counters()->aborts_sent;
      BestEffortSend(std::move(m), net);
    }
  }
  orphan_results_.erase(it);
}

void ChainedPeer::OnChildFailure(Ctx* ctx, ChildEdge* edge,
                                 const std::string& fault,
                                 overlay::Network* net) {
  if (fault == "PeerDisconnected") {
    overlay::PeerId dead =
        edge->invoked_peer.empty() ? edge->def.peer : edge->invoked_peer;
    // Case (c): tell the dead peer's descendants before recovering, so they
    // either stop early or reroute their finished work to us.
    NotifySubtree(*ctx, dead, net);
  }
  RecoveringPeer::OnChildFailure(ctx, edge, fault, net);
}

void ChainedPeer::NotifyRelativesOfDeath(const std::string& txn,
                                         const overlay::PeerId& dead,
                                         overlay::Network* net) {
  Ctx* ctx = FindContext(txn);
  if (ctx == nullptr || net == nullptr) return;
  // Notify the dead peer's parent and children from the chain; they then
  // follow cases (c) and (b) respectively (§3.3(d)).
  std::vector<overlay::PeerId> targets;
  overlay::PeerId parent = ctx->chain.ParentOf(dead);
  if (!parent.empty()) targets.push_back(parent);
  for (const overlay::PeerId& child : ctx->chain.ChildrenOf(dead)) {
    targets.push_back(child);
  }
  for (const overlay::PeerId& t : targets) {
    if (!net->CanReach(id(), t)) continue;
    overlay::Message m;
    m.from = id();
    m.to = t;
    m.type = txn::kMsgNotifyDisconnect;
    m.headers[txn::kHdrTxn] = txn;
    m.headers[txn::kHdrDisconnected] = dead;
    if (net->Send(std::move(m)).ok()) ++counters()->notifications_sent;
  }
}

void ChainedPeer::WatchSibling(overlay::Network* net, const std::string& txn,
                               const overlay::PeerId& sibling,
                               overlay::Tick interval) {
  // Case (d): "a sibling would be aware of another sibling's disconnection
  // if it doesn't receive data at the specified interval" — modelled as a
  // keep-alive on the data stream. See WatchSiblingStream for the
  // message-driven variant with real STREAM data.
  if (sibling_monitor_ == nullptr) {
    sibling_monitor_ = std::make_unique<overlay::KeepAliveMonitor>(
        net, id(), interval);
  }
  sibling_monitor_->Watch(
      sibling, [this, txn](const overlay::PeerId& dead, overlay::Tick) {
        NotifyRelativesOfDeath(txn, dead, watch_net_);
      });
  sibling_monitor_->Start();
  watch_net_ = net;
}

size_t ChainedPeer::PublishStream(overlay::Network* net,
                                  const overlay::PeerId& to,
                                  overlay::Tick interval,
                                  const std::string& stream_id) {
  publishers_.push_back(std::make_unique<overlay::StreamPublisher>(
      net, id(), to, interval, stream_id));
  publishers_.back()->Start();
  return publishers_.size() - 1;
}

int64_t ChainedPeer::StreamMessagesSent(size_t publisher_index) const {
  if (publisher_index >= publishers_.size()) return 0;
  return publishers_[publisher_index]->messages_sent();
}

void ChainedPeer::WatchSiblingStream(overlay::Network* net,
                                     const std::string& txn,
                                     const overlay::PeerId& sibling,
                                     overlay::Tick interval, int grace) {
  if (stream_watcher_ == nullptr) {
    stream_watcher_ = std::make_unique<overlay::StreamWatcher>(
        net, id(), interval, grace);
  }
  watch_net_ = net;
  stream_watcher_->Expect(
      sibling, [this, txn](const overlay::PeerId& dead, overlay::Tick) {
        NotifyRelativesOfDeath(txn, dead, watch_net_);
      });
}

void ChainedPeer::OnStream(const overlay::Message& message,
                           overlay::Network* /*net*/) {
  if (stream_watcher_ != nullptr) stream_watcher_->OnStreamMessage(message);
}

}  // namespace axmlx::recovery
