#ifndef AXMLX_RECOVERY_RECOVERING_PEER_H_
#define AXMLX_RECOVERY_RECOVERING_PEER_H_

#include <string>

#include "txn/peer.h"

namespace axmlx::recovery {

/// A peer implementing the paper's nested recovery protocol (§3.2).
///
/// On a child failure it consults the fault handlers defined for the
/// embedded service call (the subcall's `handlers`), in order:
/// - a matching handler with a retry spec re-invokes the service, up to
///   `times` attempts, optionally on a replica peer ("the optional
///   <axml:sc> allows retrying the invocation using a replicated peer");
///   for disconnection failures with no explicit replica, the directory's
///   replica of the failed peer is used;
/// - a matching handler without a retry spec absorbs the fault — the
///   application-specific forward recovery succeeds and the subcall is
///   treated as complete with no results;
/// - if no handler matches (or retries are exhausted), the failure
///   propagates: the context aborts and "Abort TA" flows to the remaining
///   children and the parent — the paper's backward recovery step, repeated
///   up the tree until some ancestor recovers or the origin aborts.
class RecoveringPeer : public txn::AxmlPeer {
 public:
  using AxmlPeer::AxmlPeer;

 protected:
  void OnChildFailure(Ctx* ctx, ChildEdge* edge, const std::string& fault,
                      overlay::Network* net) override;

  /// Picks the retry target for `edge` after `fault`: the handler's replica
  /// URL if given; the directory replica of the failed peer when it
  /// disconnected; otherwise the same peer again.
  overlay::PeerId RetryTarget(const ChildEdge& edge,
                              const axml::RetrySpec& retry,
                              const std::string& fault,
                              overlay::Network* net);
};

}  // namespace axmlx::recovery

#endif  // AXMLX_RECOVERY_RECOVERING_PEER_H_
