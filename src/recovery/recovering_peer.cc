#include "recovery/recovering_peer.h"

namespace axmlx::recovery {

overlay::PeerId RecoveringPeer::RetryTarget(const ChildEdge& edge,
                                            const axml::RetrySpec& retry,
                                            const std::string& fault,
                                            overlay::Network* net) {
  if (!retry.replica_url.empty()) return retry.replica_url;
  const overlay::PeerId& original = edge.def.peer;
  // Crashed and partitioned-away peers look disconnected too; a retry must
  // go where the invocation can actually land.
  if (fault == "PeerDisconnected" || !net->CanReach(id(), original)) {
    return directory()->ReplicaOf(original);
  }
  return original;
}

void RecoveringPeer::OnChildFailure(Ctx* ctx, ChildEdge* edge,
                                    const std::string& fault,
                                    overlay::Network* net) {
  if (options().use_fault_handlers) {
    for (const axml::FaultHandler& handler : edge->def.handlers) {
      if (!handler.Matches(fault)) continue;
      if (handler.has_retry) {
        if (edge->retries_used < handler.retry.times) {
          overlay::PeerId target =
              RetryTarget(*edge, handler.retry, fault, net);
          if (!target.empty() && net->CanReach(id(), target)) {
            ++edge->retries_used;
            ++counters()->retries;
            if (spans() != nullptr) {
              // Instant span: the recovery decision happens at detection
              // time; the re-invocation itself becomes a fresh SERVICE span
              // on the retry target.
              uint64_t rec = spans()->OpenSpan(ctx->txn, id(),
                                              obs::kSpanRecovery,
                                              ctx->span_id, net->now(), fault);
              spans()->CloseSpan(rec, net->now(), obs::kOutcomeRetried);
            }
            // Record the new target immediately so duplicate failure
            // detections (keep-alive + redirected results) for the old peer
            // no longer match this edge.
            edge->invoked_peer = target;
            const std::string txn = ctx->txn;
            const size_t edge_index =
                static_cast<size_t>(edge - ctx->children.data());
            std::weak_ptr<void> alive = AliveToken();
            // Honour the handler's wait before re-invoking.
            net->ScheduleAfter(
                handler.retry.wait,
                [this, txn, edge_index, target,
                 alive](overlay::Network* n) {
                  if (alive.expired() || !n->IsConnected(id())) return;
                  Ctx* live = FindContext(txn);
                  if (live == nullptr || live->state != Ctx::State::kRunning ||
                      edge_index >= live->children.size()) {
                    return;
                  }
                  ChildEdge* live_edge = &live->children[edge_index];
                  if (live_edge->state == ChildEdge::State::kDone ||
                      live_edge->state == ChildEdge::State::kAbsorbed) {
                    return;
                  }
                  InvokeChild(live, live_edge, target, n);
                });
            return;
          }
        }
        // Retries exhausted or no viable target: try further handlers.
        continue;
      }
      // Handler without retry: the application absorbs the fault — forward
      // recovery succeeds here and undoing stops ("undo only as much as
      // required", §3.2).
      edge->state = ChildEdge::State::kAbsorbed;
      edge->invoked_peer.clear();
      ++counters()->forward_recoveries;
      if (spans() != nullptr) {
        uint64_t rec = spans()->OpenSpan(ctx->txn, id(), obs::kSpanRecovery,
                                         ctx->span_id, net->now(), fault);
        spans()->CloseSpan(rec, net->now(), obs::kOutcomeAbsorbed);
      }
      TryComplete(ctx, net);
      return;
    }
  }
  // No handler matched: backward recovery, same as the base protocol.
  AxmlPeer::OnChildFailure(ctx, edge, fault, net);
}

}  // namespace axmlx::recovery
