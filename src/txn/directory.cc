#include "txn/directory.h"

namespace axmlx::txn {

void ServiceDirectory::Register(const overlay::PeerId& peer,
                                service::Repository* repo, bool super_peer) {
  entries_[peer] = {repo, super_peer};
}

void ServiceDirectory::Deregister(const overlay::PeerId& peer) {
  entries_.erase(peer);
}

service::Repository* ServiceDirectory::MutableRepo(
    const overlay::PeerId& peer) const {
  auto it = entries_.find(peer);
  return it == entries_.end() ? nullptr : it->second.repo;
}

void ServiceDirectory::SetReplica(const overlay::PeerId& original,
                                  const overlay::PeerId& replica) {
  replicas_[original] = replica;
}

overlay::PeerId ServiceDirectory::ReplicaOf(
    const overlay::PeerId& original) const {
  auto it = replicas_.find(original);
  return it == replicas_.end() ? overlay::PeerId() : it->second;
}

bool ServiceDirectory::IsSuperPeer(const overlay::PeerId& peer) const {
  auto it = entries_.find(peer);
  return it != entries_.end() && it->second.super_peer;
}

const service::ServiceDefinition* ServiceDirectory::Lookup(
    const overlay::PeerId& peer, const std::string& service) const {
  auto it = entries_.find(peer);
  if (it == entries_.end() || it->second.repo == nullptr) return nullptr;
  return it->second.repo->FindService(service);
}

Result<chain::ChainNode> ServiceDirectory::BuildNode(
    const overlay::PeerId& peer, const std::string& service,
    int depth) const {
  if (depth > 64) {
    return FailedPrecondition("service composition exceeds depth 64 (cycle?)");
  }
  const service::ServiceDefinition* def = Lookup(peer, service);
  if (def == nullptr) {
    return NotFound("peer " + peer + " does not host service " + service);
  }
  chain::ChainNode node;
  node.peer = peer;
  node.super = IsSuperPeer(peer);
  node.service = service;
  for (const service::ServiceDefinition::SubCall& sub : def->subcalls) {
    AXMLX_ASSIGN_OR_RETURN(chain::ChainNode child,
                           BuildNode(sub.peer, sub.service, depth + 1));
    node.children.push_back(std::move(child));
  }
  return node;
}

Result<chain::ActivePeerChain> ServiceDirectory::BuildChain(
    const overlay::PeerId& peer, const std::string& service) const {
  AXMLX_ASSIGN_OR_RETURN(chain::ChainNode root, BuildNode(peer, service, 0));
  return chain::ActivePeerChain(std::move(root));
}

}  // namespace axmlx::txn
