#ifndef AXMLX_TXN_PEER_H_
#define AXMLX_TXN_PEER_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "axml/materializer.h"
#include "baseline/xpath_lock.h"
#include "chain/active_chain.h"
#include "common/rng.h"
#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "overlay/keepalive.h"
#include "overlay/network.h"
#include "service/repository.h"
#include "txn/directory.h"
#include "txn/payload.h"

namespace axmlx::txn {

/// Per-peer transaction statistics, aggregated across transactions. The
/// benches read these to quantify the paper's qualitative claims.
struct PeerStats {
  int txns_committed = 0;      ///< Origin-side successful transactions.
  int txns_aborted = 0;        ///< Origin-side aborted transactions.
  int contexts_aborted = 0;    ///< Participant contexts rolled back.
  int aborts_sent = 0;         ///< "Abort TA" messages emitted (§3.2).
  int forward_recoveries = 0;  ///< Faults absorbed by fault handlers.
  int retries = 0;             ///< Re-invocations (same peer or replica).
  int compensations_executed = 0;  ///< COMPENSATE plans run here.
  int compensation_failures = 0;   ///< Compensation impossible (peer gone).
  size_t nodes_compensated = 0;    ///< Cost of local rollbacks (§3.2 measure).
  size_t wasted_nodes = 0;         ///< Work done then discarded.
  int results_rerouted = 0;        ///< Case (b): results sent past a dead parent.
  int subcalls_reused = 0;         ///< Re-invocations that skipped a subcall.
  int adoptions = 0;               ///< Re-INVOKEs answered from existing work.
  int notifications_sent = 0;      ///< NOTIFY_DISCONNECT messages emitted.
  int early_aborts = 0;            ///< Contexts stopped by a notification.
  int comp_acks_ok = 0;            ///< COMP_ACK confirmations received.
  int comp_acks_failed = 0;        ///< COMP_ACK rejections (ok="0") received.
  /// Fire-and-forget protocol sends that failed at the overlay. The overlay
  /// traces each one (kEvSendFail); this keeps the loss visible per peer so
  /// drills can assert nothing important vanished silently.
  int sends_best_effort_failed = 0;
};

/// Cached registry handles (`txn.*` counters) for the protocol hot paths.
/// The registry is the source of truth; PeerStats is assembled from these on
/// demand so existing readers keep their field-access spelling.
struct PeerCounters {
  explicit PeerCounters(obs::MetricsRegistry* metrics);
  obs::Counter& txns_committed;
  obs::Counter& txns_aborted;
  obs::Counter& contexts_aborted;
  obs::Counter& aborts_sent;
  obs::Counter& forward_recoveries;
  obs::Counter& retries;
  obs::Counter& compensations_executed;
  obs::Counter& compensation_failures;
  obs::Counter& nodes_compensated;
  obs::Counter& wasted_nodes;
  obs::Counter& results_rerouted;
  obs::Counter& subcalls_reused;
  obs::Counter& adoptions;
  obs::Counter& notifications_sent;
  obs::Counter& early_aborts;
  obs::Counter& comp_acks_ok;
  obs::Counter& comp_acks_failed;
  obs::Counter& sends_best_effort_failed;
};

/// Observer interface for durable journaling of a peer's transactional
/// writes. The fault-drill harness wires a storage::DurableStore-backed
/// adapter here; the peer reports every applied forward operation and every
/// final decision, which is exactly what WAL-based crash recovery needs: on
/// restart the store replays its log and rolls back unresolved (in-flight)
/// transactions, and the peer is rebuilt from the recovered documents.
class WriteJournal {
 public:
  virtual ~WriteJournal() = default;

  /// `ops` are the fully parameter-substituted operations this peer just
  /// applied to `document` under `txn`, in execution order.
  virtual void OnApply(const std::string& txn, const std::string& document,
                      const std::vector<ops::Operation>& ops) = 0;

  /// `txn` reached a final local decision: committed (keep the work) or
  /// aborted (the journal must undo the journaled forward operations).
  virtual void OnResolved(const std::string& txn, bool committed) = 0;

  /// The peer admitted an effectful message (compensate/abort/commit) into
  /// its at-most-once dedup window. Journals that persist this key can
  /// rebuild the window on restart (SeedDedupKey) so a retransmission
  /// arriving at the restarted incarnation is still suppressed — without
  /// it, a redelivered COMPENSATE would re-apply its plan. Default: no-op
  /// (in-memory-only peers keep the old behaviour).
  virtual void OnDedup(const std::string& key) { (void)key; }
};

/// A transactional AXML peer (paper §3.2).
///
/// `AxmlPeer` implements the invocation protocol — transaction contexts,
/// nested (distributed) service invocation, results/commit flow — and the
/// *baseline* recovery behaviour: any failure aborts the whole transaction,
/// with each involved peer compensating its own work when the "Abort TA"
/// message reaches it (backward recovery all the way to the origin).
///
/// The paper's richer behaviours are layered on by subclasses:
/// - `recovery::RecoveringPeer`: nested recovery with per-call fault
///   handlers (forward recovery), and peer-independent compensation;
/// - `recovery::ChainedPeer`: active-peer-chain handling of peer
///   disconnection (§3.3, cases a-d).
///
/// One context per transaction per peer ("On submission of a transaction TA
/// at a peer AP1, the peer creates a transaction context TCA1").
class AxmlPeer : public overlay::PeerNode {
 public:
  struct Options {
    /// Ship compensating-service definitions with results and use them for
    /// recovery (§3.2, peer-independent compensation).
    bool peer_independent = false;
    /// Honour per-subcall fault handlers (forward recovery). When false,
    /// every child fault propagates as an abort.
    bool use_fault_handlers = true;
    /// Ping/keep-alive interval for watching invoked children; 0 disables
    /// watching (a child crash then leaves the transaction stuck, which the
    /// disconnection benches measure).
    overlay::Tick keepalive_interval = 0;
    /// Ship and use the active-peer chain (§3.3). The base peer only ships
    /// it; ChainedPeer acts on it.
    bool use_chaining = false;
    /// Reuse already-performed work during disconnection recovery (§3.3(b));
    /// false models the paper's "traditional recovery" that discards it.
    bool reuse_work = true;
    /// Origin-side transaction deadline in ticks: an undecided transaction
    /// aborts when it expires (a blunt fallback for losses no detection
    /// mechanism catches). 0 disables — the paper's protocols are the
    /// intended remedy, so the default leaves undetected losses visible.
    overlay::Tick txn_timeout = 0;
    /// Run local service operations under the XPath-locking baseline
    /// (after [5]): conflicting concurrent transactions fault with
    /// "LockConflict" instead of interleaving. Off by default — the paper's
    /// position is that compensation, not locking, suits AXML.
    bool use_locking = false;
    /// The paper's §4 future-work extension: when a peer finds its *entire*
    /// ancestor line unreachable (the transaction can never commit), it
    /// presumes abort and spreads the death notice to its collateral
    /// relatives — uncles, cousins, ... in chain distance order — so they
    /// compensate instead of waiting forever. ChainedPeer only.
    bool extended_chaining = false;
    /// At-least-once delivery for decision-carrying control messages
    /// (ABORT / COMMIT / COMPENSATE): they are sent with an "rsvp" header,
    /// acknowledged by the receiver, and resent every this-many ticks until
    /// acknowledged (or `control_resend_limit` attempts). 0 disables —
    /// the default, matching the paper's reliable-channel assumption; fault
    /// drills enable it so dropped/partitioned decisions still land.
    overlay::Tick control_resend_interval = 0;
    int control_resend_limit = 50;
  };

  using DoneCallback = std::function<void(const std::string& txn, Status)>;

  /// `directory` must outlive the peer and have this peer Register()ed by
  /// the harness after construction.
  AxmlPeer(overlay::PeerId id, bool super_peer, uint64_t seed, Options options,
           ServiceDirectory* directory);
  ~AxmlPeer() override;

  service::Repository& repository() { return repo_; }
  /// Thin view over the metrics registry's `txn.*` counters.
  PeerStats stats() const;
  const Options& options() const { return options_; }
  /// The registry backing this peer's counters.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Submits transaction `txn` at this (origin) peer: runs `service` (hosted
  /// here) with `params`. `on_done` fires at commit or abort.
  Status Submit(overlay::Network* net, const std::string& txn,
                const std::string& service, const Params& params,
                DoneCallback on_done);

  void OnMessage(const overlay::Message& message, overlay::Network* net) final;

  /// True if this peer currently holds a context for `txn`.
  bool HasContext(const std::string& txn) const {
    return contexts_.count(txn) > 0;
  }

  /// Attaches a durable write journal (not owned; null detaches). Must be
  /// set before the peer does transactional work.
  void AttachJournal(WriteJournal* journal) { journal_ = journal; }

  /// Pre-populates the at-most-once dedup window (crash-restart recovery:
  /// keys come from the journal's WAL). Does not echo back to OnDedup.
  void SeedDedupKey(const std::string& key) { seen_messages_.insert(key); }

  /// Pre-populates a recovered resolution (crash-restart recovery). Does
  /// not echo back to OnResolved.
  void SeedResolution(const std::string& txn, bool committed) {
    resolved_txns_[txn] = committed;
  }

  /// Attaches a causal span tracker (not owned; null detaches). Shared by
  /// every peer of a repository so cross-peer parent links resolve; must be
  /// set before the peer does transactional work.
  void AttachSpans(obs::SpanTracker* spans) { spans_ = spans; }

  /// Attaches this peer's flight recorder (not owned; null detaches). The
  /// peer stamps txn state transitions, injected-fault decisions, and
  /// compensation steps, correlated to the context's SERVICE span id.
  void AttachRecorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  /// Attaches the repository-wide phase timeline (not owned; null detaches).
  /// The origin peer opens the transaction's window at Submit and closes it
  /// when the origin callback fires; every peer places EVAL claims while a
  /// local service execution is waiting out its duration, and stamps
  /// zero-width COMPENSATION markers for local rollbacks and shipped plans.
  void AttachTimeline(obs::Timeline* timeline) { timeline_ = timeline; }

  /// Control messages still awaiting acknowledgement (reliable-control
  /// mode); 0 when idle or when control_resend_interval is 0.
  size_t PendingControlMessages() const { return pending_control_.size(); }

  /// Invoker for data-plane use (embedded service-call materialization
  /// against this peer's services, or — when serviceURL names another peer
  /// — a synchronous cross-peer call through the directory). Suitable for
  /// wiring into ops::Executor / repo::LocalTransaction.
  axml::ServiceInvoker DataPlaneInvoker() { return MakeLocalInvoker(); }

 protected:
  /// State of one subcall edge.
  struct ChildEdge {
    service::ServiceDefinition::SubCall def;
    enum class State { kPending, kInvoked, kDone, kAbsorbed } state =
        State::kPending;
    overlay::PeerId invoked_peer;  ///< Actual target (replica after retry).
    std::shared_ptr<const ResultPayload> result;
    int retries_used = 0;
  };

  /// Transaction context (the paper's TCAx).
  struct Ctx {
    std::string txn;
    overlay::PeerId parent;  ///< Invoker; empty at the origin peer.
    std::string service;
    Params params;
    enum class State { kRunning, kDone, kAborted } state = State::kRunning;
    bool local_done = false;
    bool local_compensated = false;
    service::InvocationOutcome local;
    std::vector<ChildEdge> children;
    chain::ActivePeerChain chain;
    overlay::Tick ready_time = 0;
    DoneCallback on_done;  ///< Origin only.
    /// Learned via NOTIFY_DISCONNECT that the parent is gone (case (d));
    /// completion will reroute instead of attempting the parent.
    bool parent_dead = false;
    /// Subcall results shipped with the INVOKE (reuse, §3.3(b)).
    std::shared_ptr<const ReusedResults> reused;
    /// Injected fault to raise at completion (fault_after_subcalls timing).
    std::string pending_fault;
    /// Aggregated recovery metadata from completed children.
    std::vector<overlay::PeerId> participants;
    std::vector<ParticipantPlan> plans;
    size_t subtree_nodes_affected = 0;
    /// This context currently holds an EVAL timeline claim (placed when the
    /// local execution starts waiting out its duration, released at
    /// completion or abort — the flag prevents a double release).
    bool in_eval = false;
    /// SERVICE span covering this context's execution (0 = no tracker).
    uint64_t span_id = 0;
    /// Origin only: the enclosing TXN span.
    uint64_t txn_span_id = 0;
  };

  // --- Hook points for recovery subclasses ---------------------------------

  /// A child edge reported a fault (ABORT from below) or was found
  /// unreachable. Base behaviour: abort the whole context (backward
  /// recovery). `fault` is the fault name ("PeerDisconnected" for
  /// connectivity failures).
  virtual void OnChildFailure(Ctx* ctx, ChildEdge* edge,
                              const std::string& fault,
                              overlay::Network* net);

  /// The parent was unreachable while returning results. Base behaviour:
  /// discard this subtree's work (compensate + abort children).
  virtual void OnParentUnreachable(Ctx* ctx, overlay::Network* net);

  /// A NOTIFY_DISCONNECT message arrived (chain protocols only).
  virtual void OnNotifyDisconnect(const overlay::Message& message,
                                  overlay::Network* net);

  /// A STREAM (continuous-service data) message arrived. Base: ignored.
  virtual void OnStream(const overlay::Message& message,
                        overlay::Network* net);

  /// A RESULT carrying a "redirect_for" header arrived: a descendant routed
  /// its results around a disconnected intermediate peer (§3.3(b)). Base
  /// peers ignore it (and the work is wasted).
  virtual void OnRedirectedResult(const overlay::Message& message,
                                  overlay::Network* net);

  /// Completed subcall results to ship with INVOKEs for this context —
  /// ChainedPeer supplies rerouted orphan results here so re-invocations on
  /// replicas skip finished subcalls. Base: none.
  virtual std::shared_ptr<const ReusedResults> ReuseFor(const Ctx& ctx);

  /// Called when this peer's context for `txn` reaches a final decision
  /// (local commit-release or abort). ChainedPeer uses it to resolve
  /// orphaned rerouted results: on abort, their producers are told to roll
  /// back. Base: nothing.
  virtual void OnTxnResolved(const std::string& txn, bool committed,
                             overlay::Network* net);

  // --- Protocol actions usable by subclasses -------------------------------

  /// Creates and begins a context. Returns null on duplicate txn. `reused`
  /// optionally supplies completed subcall results (reuse on re-invocation).
  /// `parent_span` is the caller's span id (cross-peer: parsed from the
  /// INVOKE's span header), parent of the SERVICE span opened here.
  Ctx* StartContext(const std::string& txn, const overlay::PeerId& parent,
                    const std::string& service, Params params,
                    chain::ActivePeerChain chain_info, DoneCallback on_done,
                    overlay::Network* net,
                    std::shared_ptr<const ReusedResults> reused = nullptr,
                    uint64_t parent_span = 0);

  /// Sends INVOKE for `edge` to `target`. On unreachable target, reports
  /// through OnChildFailure (with fault "PeerDisconnected").
  void InvokeChild(Ctx* ctx, ChildEdge* edge, const overlay::PeerId& target,
                   overlay::Network* net);

  /// Compensates this peer's local effects for `ctx` (once). `net` is used
  /// for span timestamps only and may be null.
  void CompensateLocal(Ctx* ctx, overlay::Network* net);

  /// Aborts the context: compensates locally, sends ABORT to all invoked
  /// children, optionally notifies the parent, finishes the origin callback.
  /// `notify_parent` is false when the abort *came from* the parent.
  void AbortContext(Ctx* ctx, const std::string& fault, bool notify_parent,
                    overlay::Network* net);

  /// Marks `edge` absorbed/done and completes the context if ready.
  void TryComplete(Ctx* ctx, overlay::Network* net);

  /// Issues COMPENSATE messages for every stored participant plan (peer-
  /// independent recovery). Plans for disconnected peers are redirected to
  /// their replicas when the directory knows one; otherwise they count as
  /// compensation failures.
  void CompensateParticipants(Ctx* ctx, overlay::Network* net);

  Ctx* FindContext(const std::string& txn);
  void EraseContext(const std::string& txn);

  /// Final decision this peer recorded for `txn`: unset = never resolved
  /// here, true = committed, false = aborted. Lets handlers distinguish a
  /// stale duplicate/misrouted RESULT for a committed transaction (ignore)
  /// from genuinely stale work (presumed-abort reply).
  std::optional<bool> ResolvedOutcome(const std::string& txn) const;


  /// Sends `m` as a decision-carrying control message. In reliable-control
  /// mode (control_resend_interval > 0) the message carries "rsvp" and
  /// "dedup" headers and is resent until the target acknowledges it;
  /// otherwise this is a plain Send. Returns the first attempt's status.
  Status SendControl(overlay::Message m, overlay::Network* net);

  /// Sends a fire-and-forget protocol message (ACK, presumed-abort reply,
  /// cascade ABORT, ...). A failed send is not an error for the caller —
  /// retransmission, detection, or presumed-abort covers the loss — but it
  /// is never silently dropped either: the overlay traces it and
  /// `sends_best_effort_failed` accounts it here.
  void BestEffortSend(overlay::Message m, overlay::Network* net);

  ServiceDirectory* directory() { return directory_; }
  PeerCounters* counters() { return &counters_; }
  Rng* rng() { return &rng_; }
  WriteJournal* journal() { return journal_; }
  obs::SpanTracker* spans() { return spans_; }
  obs::FlightRecorder* recorder() { return recorder_; }
  obs::Timeline* timeline() { return timeline_; }

  /// Releases `ctx`'s EVAL claim if it holds one (idempotent).
  void ExitEval(Ctx* ctx, overlay::Network* net);

  /// Stamps a zero-width COMPENSATION marker for `txn` (no-op without an
  /// attached timeline). Local rollbacks take zero simulated ticks, so the
  /// marker records occurrence, not duration — see DESIGN.md §7.
  void MarkCompensation(const std::string& txn, overlay::Network* net);

  /// Stamps one flight-recorder event correlated to `ctx`'s SERVICE span
  /// (no-op without an attached recorder; null `ctx` records span 0).
  void RecordFr(const Ctx* ctx, const char* kind, std::string_view what,
                int64_t arg = 0);

  /// Invoker wired into the local executor for embedded service-call
  /// materializations: looks the method up in the local repository first.
  axml::ServiceInvoker MakeLocalInvoker();

  /// Liveness token for closures scheduled on the network: a crash-stop
  /// (Network::Crash) destroys the peer while its scheduled closures are
  /// still queued, so every closure capturing `this` must also capture this
  /// token and bail out when it has expired.
  std::weak_ptr<void> AliveToken() const { return alive_; }

 private:
  /// Dedup key of a delivered message: the explicit "dedup" header when
  /// present (stable across control retransmissions), else the overlay
  /// message id (stable across fault-injected duplicates).
  static std::string DedupKeyOf(const overlay::Message& message);
  /// Records the final decision for `txn` and journals it.
  void RecordResolution(const std::string& txn, bool committed);
  void HandleAck(const overlay::Message& message);
  /// Schedules the next retransmission of the pending control message
  /// `key` after the resend interval.
  void ArmControlResend(const std::string& key, overlay::Network* net);

  void HandleInvoke(const overlay::Message& message, overlay::Network* net);
  void HandleResult(const overlay::Message& message, overlay::Network* net);
  void HandleAbort(const overlay::Message& message, overlay::Network* net);
  void HandleCommit(const overlay::Message& message, overlay::Network* net);
  void HandleCompensate(const overlay::Message& message,
                        overlay::Network* net);
  void HandleCompAck(const overlay::Message& message);

  /// Closes the context's SERVICE span (idempotent: zeroes ctx->span_id).
  /// `net` supplies the close timestamp; null closes at the span's start.
  void CloseCtxSpan(Ctx* ctx, overlay::Network* net,
                    const std::string& outcome,
                    const std::string& fault = std::string());

  void Begin(Ctx* ctx, overlay::Network* net);
  void Complete(Ctx* ctx, overlay::Network* net);
  /// Sends this context's RESULT to `ctx->parent`; on unreachable parent
  /// invokes OnParentUnreachable. Used by Complete and by adoption resends.
  void SendResult(Ctx* ctx, overlay::Network* net);
  /// Pushes the service's document to this peer's replica (eager
  /// replication) after local work.
  void PushToReplica(const std::string& document, overlay::Network* net);
  void WatchChild(Ctx* ctx, const overlay::PeerId& child,
                  overlay::Network* net);

  /// Stable lock id for a transaction name (used with use_locking).
  static int64_t LockIdFor(const std::string& txn);

  service::Repository repo_;
  std::unique_ptr<service::ServiceHost> host_;
  baseline::PathLockManager locks_;
  ServiceDirectory* directory_;
  Options options_;
  Rng rng_;
  obs::MetricsRegistry metrics_;      ///< Must precede counters_.
  PeerCounters counters_{&metrics_};
  obs::SpanTracker* spans_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
  std::map<std::string, Ctx> contexts_;
  std::unique_ptr<overlay::KeepAliveMonitor> keepalive_;
  WriteJournal* journal_ = nullptr;
  /// Delivered-message dedup keys (duplicate suppression, at-most-once
  /// processing on top of the overlay's at-least-once faults).
  std::set<std::string> seen_messages_;
  /// Final decisions recorded here, by transaction (true = committed).
  std::map<std::string, bool> resolved_txns_;
  /// Unacknowledged reliable control messages by dedup key.
  struct PendingControl {
    overlay::Message message;
    int attempts = 0;
  };
  std::map<std::string, PendingControl> pending_control_;
  std::shared_ptr<void> alive_ = std::make_shared<int>(0);
};

}  // namespace axmlx::txn

#endif  // AXMLX_TXN_PEER_H_
