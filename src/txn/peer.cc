#include "txn/peer.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "axml/materializer.h"
#include "obs/metric_names.h"
#include "ops/executor.h"
#include "runtime/job_queue.h"

namespace axmlx::txn {

PeerCounters::PeerCounters(obs::MetricsRegistry* metrics)
    : txns_committed(*metrics->GetCounter(obs::kMetricTxnTxnsCommitted)),
      txns_aborted(*metrics->GetCounter(obs::kMetricTxnTxnsAborted)),
      contexts_aborted(*metrics->GetCounter(obs::kMetricTxnContextsAborted)),
      aborts_sent(*metrics->GetCounter(obs::kMetricTxnAbortsSent)),
      forward_recoveries(
          *metrics->GetCounter(obs::kMetricTxnForwardRecoveries)),
      retries(*metrics->GetCounter(obs::kMetricTxnRetries)),
      compensations_executed(
          *metrics->GetCounter(obs::kMetricTxnCompensationsExecuted)),
      compensation_failures(
          *metrics->GetCounter(obs::kMetricTxnCompensationFailures)),
      nodes_compensated(*metrics->GetCounter(obs::kMetricTxnNodesCompensated)),
      wasted_nodes(*metrics->GetCounter(obs::kMetricTxnWastedNodes)),
      results_rerouted(*metrics->GetCounter(obs::kMetricTxnResultsRerouted)),
      subcalls_reused(*metrics->GetCounter(obs::kMetricTxnSubcallsReused)),
      adoptions(*metrics->GetCounter(obs::kMetricTxnAdoptions)),
      notifications_sent(
          *metrics->GetCounter(obs::kMetricTxnNotificationsSent)),
      early_aborts(*metrics->GetCounter(obs::kMetricTxnEarlyAborts)),
      comp_acks_ok(*metrics->GetCounter(obs::kMetricTxnCompAcksOk)),
      comp_acks_failed(*metrics->GetCounter(obs::kMetricTxnCompAcksFailed)),
      sends_best_effort_failed(
          *metrics->GetCounter(obs::kMetricTxnSendsBestEffortFailed)) {}

PeerStats AxmlPeer::stats() const {
  PeerStats s;
  s.txns_committed = static_cast<int>(counters_.txns_committed.value());
  s.txns_aborted = static_cast<int>(counters_.txns_aborted.value());
  s.contexts_aborted = static_cast<int>(counters_.contexts_aborted.value());
  s.aborts_sent = static_cast<int>(counters_.aborts_sent.value());
  s.forward_recoveries =
      static_cast<int>(counters_.forward_recoveries.value());
  s.retries = static_cast<int>(counters_.retries.value());
  s.compensations_executed =
      static_cast<int>(counters_.compensations_executed.value());
  s.compensation_failures =
      static_cast<int>(counters_.compensation_failures.value());
  s.nodes_compensated =
      static_cast<size_t>(counters_.nodes_compensated.value());
  s.wasted_nodes = static_cast<size_t>(counters_.wasted_nodes.value());
  s.results_rerouted = static_cast<int>(counters_.results_rerouted.value());
  s.subcalls_reused = static_cast<int>(counters_.subcalls_reused.value());
  s.adoptions = static_cast<int>(counters_.adoptions.value());
  s.notifications_sent =
      static_cast<int>(counters_.notifications_sent.value());
  s.early_aborts = static_cast<int>(counters_.early_aborts.value());
  s.comp_acks_ok = static_cast<int>(counters_.comp_acks_ok.value());
  s.comp_acks_failed = static_cast<int>(counters_.comp_acks_failed.value());
  s.sends_best_effort_failed =
      static_cast<int>(counters_.sends_best_effort_failed.value());
  return s;
}

void AxmlPeer::CloseCtxSpan(Ctx* ctx, overlay::Network* net,
                            const std::string& outcome,
                            const std::string& fault) {
  if (spans_ == nullptr || ctx->span_id == 0) return;
  const obs::SpanRecord* rec = spans_->Find(ctx->span_id);
  const int64_t end =
      net != nullptr ? net->now() : (rec != nullptr ? rec->start : 0);
  spans_->CloseSpan(ctx->span_id, end, outcome, fault);
  ctx->span_id = 0;
}

void AxmlPeer::RecordFr(const Ctx* ctx, const char* kind, std::string_view what,
                        int64_t arg) {
  if (recorder_ == nullptr) return;
  recorder_->Record(kind, what, ctx != nullptr ? ctx->span_id : 0, arg);
}

AxmlPeer::AxmlPeer(overlay::PeerId id, bool super_peer, uint64_t seed,
                   Options options, ServiceDirectory* directory)
    : overlay::PeerNode(std::move(id), super_peer),
      directory_(directory),
      options_(options),
      rng_(seed) {
  host_ = std::make_unique<service::ServiceHost>(&repo_, MakeLocalInvoker(),
                                                 &rng_);
  if (options_.use_locking) host_->EnableLocking(&locks_);
}

int64_t AxmlPeer::LockIdFor(const std::string& txn) {
  int64_t id = static_cast<int64_t>(std::hash<std::string>{}(txn));
  return id == 0 ? 1 : id;
}

AxmlPeer::~AxmlPeer() = default;

axml::ServiceInvoker AxmlPeer::MakeLocalInvoker() {
  // Resolves embedded service-call materializations against the local
  // repository. Cross-peer data-plane calls (serviceURL naming another
  // peer) are resolved through the directory as a synchronous RPC — a
  // simulator shortcut appropriate for read-mostly data services; the
  // transactional control plane always goes through INVOKE messages.
  return [this](const axml::ServiceRequest& request)
             -> Result<axml::ServiceResponse> {
    service::Repository* target_repo = &repo_;
    if (!request.service_url.empty() && request.service_url != id()) {
      target_repo = directory_->MutableRepo(request.service_url);
      if (target_repo == nullptr) {
        return ServiceFault("UnknownPeer: " + request.service_url);
      }
    }
    if (target_repo->FindService(request.method_name) == nullptr) {
      return ServiceFault("UnknownService: " + request.method_name);
    }
    service::ServiceHost host(target_repo, nullptr, &rng_);
    AXMLX_ASSIGN_OR_RETURN(service::InvocationOutcome outcome,
                           host.Invoke(request.method_name, request.params));
    axml::ServiceResponse response;
    response.fragment = std::move(outcome.result_fragment);
    return response;
  };
}

Status AxmlPeer::Submit(overlay::Network* net, const std::string& txn,
                        const std::string& service, const Params& params,
                        DoneCallback on_done) {
  AXMLX_ASSIGN_OR_RETURN(chain::ActivePeerChain chain_info,
                         directory_->BuildChain(id(), service));
  if (HasContext(txn)) {
    return AlreadyExists("transaction " + txn + " already has a context at " +
                         id());
  }
  uint64_t txn_span = 0;
  if (spans_ != nullptr) {
    txn_span = spans_->OpenSpan(txn, id(), obs::kSpanTxn, /*parent_span_id=*/0,
                                net->now(), service);
    // Close the TXN span with the transaction's final outcome by wrapping
    // the origin callback. The network outlives every peer, so capturing it
    // here is safe.
    obs::SpanTracker* spans = spans_;
    DoneCallback inner = std::move(on_done);
    on_done = [spans, txn_span, net, inner = std::move(inner)](
                  const std::string& done_txn, Status status) {
      spans->CloseSpan(txn_span, net->now(),
                       status.ok() ? obs::kOutcomeCommitted
                                   : obs::kOutcomeAborted,
                       status.ok() ? std::string()
                                   : axml::FaultNameOf(status));
      if (inner) inner(done_txn, std::move(status));
    };
  }
  if (timeline_ != nullptr) {
    // Open the phase-accounting window. It closes when the origin callback
    // fires — the transaction's decision point; claims placed by messages
    // still draining afterwards (commit releases, compensation acks) land
    // on a closed window and are ignored by design.
    timeline_->BeginTxn(txn, net->now());
    obs::Timeline* timeline = timeline_;
    DoneCallback inner = std::move(on_done);
    on_done = [timeline, net, inner = std::move(inner)](
                  const std::string& done_txn, Status status) {
      timeline->EndTxn(done_txn, net->now());
      if (inner) inner(done_txn, std::move(status));
    };
  }
  // The context may decide synchronously (e.g. an immediate local fault);
  // StartContext returning null then just means the callback already fired.
  Ctx* created =
      StartContext(txn, /*parent=*/"", service, params, std::move(chain_info),
                   std::move(on_done), net, /*reused=*/nullptr,
                   /*parent_span=*/txn_span);
  if (created != nullptr) created->txn_span_id = txn_span;
  if (options_.txn_timeout > 0) {
    std::weak_ptr<void> alive = AliveToken();
    net->ScheduleAfter(
        options_.txn_timeout, [this, txn, alive](overlay::Network* n) {
          if (alive.expired() || !n->IsConnected(id())) return;
          Ctx* live = FindContext(txn);
          if (live == nullptr || live->state != Ctx::State::kRunning) return;
          AbortContext(live, "TxnTimeout", /*notify_parent=*/false, n);
        });
  }
  return Status::Ok();
}

AxmlPeer::Ctx* AxmlPeer::StartContext(
    const std::string& txn, const overlay::PeerId& parent,
    const std::string& service, Params params,
    chain::ActivePeerChain chain_info, DoneCallback on_done,
    overlay::Network* net, std::shared_ptr<const ReusedResults> reused,
    uint64_t parent_span) {
  if (contexts_.count(txn) > 0) return nullptr;
  Ctx& ctx = contexts_[txn];
  ctx.txn = txn;
  ctx.parent = parent;
  ctx.service = service;
  ctx.params = std::move(params);
  ctx.chain = std::move(chain_info);
  ctx.on_done = std::move(on_done);
  ctx.reused = std::move(reused);
  if (spans_ != nullptr) {
    ctx.span_id = spans_->OpenSpan(txn, id(), obs::kSpanService, parent_span,
                                   net->now(), service);
  }
  Begin(&ctx, net);
  return FindContext(txn);
}

void AxmlPeer::Begin(Ctx* ctx, overlay::Network* net) {
  const std::string txn = ctx->txn;
  RecordFr(ctx, obs::kEvFrTxnState, "begin");
  const service::ServiceDefinition* def = repo_.FindService(ctx->service);
  if (def == nullptr) {
    AbortContext(ctx, "UnknownService", /*notify_parent=*/true, net);
    return;
  }
  // The local service body is the peer's dominant compute cost; run it
  // under kJobServiceCall accounting when the network carries a worker
  // pool. RunInline keeps execution here — the invocation mutates the
  // peer's documents, so it is apply-stage work by nature — but types and
  // times it like any other job.
  std::optional<Result<service::InvocationOutcome>> outcome_slot;
  auto invoke = [&] {
    outcome_slot.emplace(host_->Invoke(
        ctx->service, ctx->params,
        options_.use_locking ? LockIdFor(ctx->txn) : 0));
  };
  runtime::JobQueue* rt = net != nullptr ? net->runtime() : nullptr;
  if (rt != nullptr) {
    rt->RunInline(runtime::JobType::kJobServiceCall, txn, invoke);
  } else {
    invoke();
  }
  Result<service::InvocationOutcome>& outcome_or = *outcome_slot;
  if (!outcome_or.ok()) {
    // This peer failed while processing its service — the paper's AP5
    // failing in S5 (§3.2 step 1): abort the local context and send
    // "Abort TA" to invoked peers (none yet) and the invoking peer.
    AbortContext(ctx, axml::FaultNameOf(outcome_or.status()),
                 /*notify_parent=*/true, net);
    return;
  }
  ctx->local = std::move(outcome_or).value();
  ctx->local_done = true;
  if (journal_ != nullptr && !def->document.empty() &&
      !ctx->local.effects.empty()) {
    std::vector<ops::Operation> applied;
    applied.reserve(ctx->local.effects.size());
    for (const ops::OpEffect& effect : ctx->local.effects.effects()) {
      applied.push_back(effect.op);
    }
    journal_->OnApply(ctx->txn, def->document, applied);
  }
  // Injected failure (experiments): either fail now — partial local work
  // already done and compensated — or arm a fault that strikes after the
  // subcalls complete (the paper's Figure 1 timing).
  if (def->fault_probability > 0 &&
      rng_.Bernoulli(def->fault_probability)) {
    if (def->fault_after_subcalls) {
      ctx->pending_fault = def->fault_name;
      RecordFr(ctx, obs::kEvFrFault, "armed after subcalls");
    } else {
      RecordFr(ctx, obs::kEvFrFault, def->fault_name);
      AbortContext(ctx, def->fault_name, /*notify_parent=*/true, net);
      return;
    }
  }
  ctx->ready_time = net->now() + def->duration;
  if (timeline_ != nullptr) {
    // The local execution now waits out its simulated duration; the claim
    // covers exactly [now, ready_time] so transport ticks spent waiting on
    // subcalls still attribute to NET_INFLIGHT rather than being shadowed
    // by EVAL. Complete/AbortContext keep a guarded release as a backstop
    // for windows cut short.
    ctx->in_eval = true;
    timeline_->Enter(ctx->txn, obs::kPhaseEval, net->now());
    const std::string txn = ctx->txn;
    std::weak_ptr<void> alive = AliveToken();
    net->ScheduleAt(ctx->ready_time, [this, txn, alive](overlay::Network* n) {
      if (alive.expired()) return;
      Ctx* live = FindContext(txn);
      if (live != nullptr) ExitEval(live, n);
    });
  }
  ctx->participants.push_back(id());
  ctx->subtree_nodes_affected = ctx->local.nodes_affected;
  if (options_.peer_independent && !ctx->local.compensation.empty()) {
    ParticipantPlan plan;
    plan.peer = id();
    plan.document = def->document;
    plan.plan = ctx->local.compensation;
    plan.nodes = ctx->local.nodes_affected;
    ctx->plans.push_back(std::move(plan));
  }
  for (const service::ServiceDefinition::SubCall& sub : def->subcalls) {
    ChildEdge edge;
    edge.def = sub;
    // Results shipped with the INVOKE (work reuse, §3.3(b)): the subcall is
    // already satisfied and must not be re-invoked.
    if (ctx->reused != nullptr) {
      auto it = ctx->reused->by_service.find(sub.service);
      if (it != ctx->reused->by_service.end()) {
        edge.state = ChildEdge::State::kDone;
        edge.result = it->second;
        edge.invoked_peer = it->second->executed_by;
        for (const overlay::PeerId& p : it->second->participants) {
          ctx->participants.push_back(p);
        }
        for (const ParticipantPlan& plan : it->second->plans) {
          ctx->plans.push_back(plan);
        }
        ctx->subtree_nodes_affected += it->second->subtree_nodes_affected;
        ++counters_.subcalls_reused;
      }
    }
    ctx->children.push_back(std::move(edge));
  }
  for (size_t i = 0; i < ctx->children.size(); ++i) {
    Ctx* live = FindContext(txn);
    if (live == nullptr || live->state != Ctx::State::kRunning) return;
    ChildEdge* edge = &live->children[i];
    if (edge->state == ChildEdge::State::kPending) {
      InvokeChild(live, edge, edge->def.peer, net);
    }
  }
  Ctx* live = FindContext(txn);
  if (live != nullptr) TryComplete(live, net);
}

void AxmlPeer::InvokeChild(Ctx* ctx, ChildEdge* edge,
                           const overlay::PeerId& target,
                           overlay::Network* net) {
  edge->state = ChildEdge::State::kInvoked;
  edge->invoked_peer = target;
  overlay::Message m;
  m.from = id();
  m.to = target;
  m.type = kMsgInvoke;
  m.headers[kHdrTxn] = ctx->txn;
  m.headers[kHdrService] = edge->def.service;
  if (ctx->span_id != 0) {
    m.headers[kHdrSpan] = std::to_string(ctx->span_id);
  }
  if (options_.use_chaining) {
    m.headers[kHdrChain] = ctx->chain.Serialize();
  }
  m.body = EncodeParams(edge->def.params);
  m.attachment = ReuseFor(*ctx);
  auto sent = net->Send(std::move(m));
  if (!sent.ok()) {
    OnChildFailure(ctx, edge, "PeerDisconnected", net);
    return;
  }
  if (options_.keepalive_interval > 0) WatchChild(ctx, target, net);
}

void AxmlPeer::WatchChild(Ctx* ctx, const overlay::PeerId& child,
                          overlay::Network* net) {
  (void)ctx;
  if (keepalive_ == nullptr) {
    keepalive_ = std::make_unique<overlay::KeepAliveMonitor>(
        net, id(), options_.keepalive_interval);
  }
  keepalive_->Watch(
      child, [this, net](const overlay::PeerId& down, overlay::Tick) {
        // A watched child vanished: fail every running edge that targets it,
        // across all transactions (§3.3(c), detection by the parent).
        std::vector<std::string> txns;
        for (auto& [txn, ctx2] : contexts_) txns.push_back(txn);
        for (const std::string& txn : txns) {
          Ctx* ctx2 = FindContext(txn);
          if (ctx2 == nullptr || ctx2->state != Ctx::State::kRunning) continue;
          for (ChildEdge& edge : ctx2->children) {
            if (edge.invoked_peer == down &&
                edge.state == ChildEdge::State::kInvoked) {
              OnChildFailure(ctx2, &edge, "PeerDisconnected", net);
              break;
            }
          }
        }
      });
  keepalive_->Start();  // re-arms an idle monitor
}

std::string AxmlPeer::DedupKeyOf(const overlay::Message& message) {
  auto it = message.headers.find(kHdrDedup);
  if (it != message.headers.end()) return it->second;
  if (message.id != 0) return "m/" + std::to_string(message.id);
  return std::string();
}

std::optional<bool> AxmlPeer::ResolvedOutcome(const std::string& txn) const {
  auto it = resolved_txns_.find(txn);
  if (it == resolved_txns_.end()) return std::nullopt;
  return it->second;
}

void AxmlPeer::RecordResolution(const std::string& txn, bool committed) {
  resolved_txns_[txn] = committed;
  if (journal_ != nullptr) journal_->OnResolved(txn, committed);
}

Status AxmlPeer::SendControl(overlay::Message m, overlay::Network* net) {
  if (options_.control_resend_interval <= 0) {
    return net->Send(std::move(m)).status();
  }
  std::string txn;
  auto txn_it = m.headers.find(kHdrTxn);
  if (txn_it != m.headers.end()) txn = txn_it->second;
  const std::string key = "c/" + id() + "/" + m.type + "/" + txn + "/" + m.to;
  m.headers[kHdrRsvp] = "1";
  m.headers[kHdrDedup] = key;
  auto [it, inserted] = pending_control_.try_emplace(key);
  if (inserted) {
    it->second.message = m;
    it->second.attempts = 1;
    ArmControlResend(key, net);
  }
  // Duplicate logical sends (e.g. an abort raced with a timeout) collapse
  // onto the already-pending entry; the retransmission loop covers them.
  return net->Send(std::move(m)).status();
}

void AxmlPeer::ArmControlResend(const std::string& key,
                                overlay::Network* net) {
  std::weak_ptr<void> alive = AliveToken();
  net->ScheduleAfter(
      options_.control_resend_interval,
      [this, key, alive](overlay::Network* n) {
        if (alive.expired()) return;
        auto it = pending_control_.find(key);
        if (it == pending_control_.end()) return;  // acknowledged
        if (it->second.attempts >= options_.control_resend_limit) {
          pending_control_.erase(it);
          return;
        }
        // A disconnected sender skips the attempt but keeps the message
        // pending — retransmission resumes once it reconnects.
        if (n->IsConnected(id())) {
          ++it->second.attempts;
          overlay::Message copy = it->second.message;
          BestEffortSend(std::move(copy), n);
        }
        ArmControlResend(key, n);
      });
}

void AxmlPeer::HandleAck(const overlay::Message& message) {
  auto it = message.headers.find(kHdrAckOf);
  if (it == message.headers.end()) return;
  auto pending = pending_control_.find(it->second);
  // Only the intended target's acknowledgement counts — a misrouted copy
  // acked by a bystander must not stop retransmission to the real target.
  if (pending != pending_control_.end() &&
      pending->second.message.to == message.from) {
    pending_control_.erase(pending);
  }
}

void AxmlPeer::OnMessage(const overlay::Message& message,
                         overlay::Network* net) {
  if (message.type == kMsgAck) {
    HandleAck(message);
    return;
  }
  // Reliable control delivery: acknowledge every copy (the sender may have
  // missed an earlier ACK), even ones suppressed as duplicates below.
  if (message.headers.count(kHdrRsvp) > 0) {
    overlay::Message ack;
    ack.from = id();
    ack.to = message.from;
    ack.type = kMsgAck;
    auto dedup_it = message.headers.find(kHdrDedup);
    if (dedup_it != message.headers.end()) {
      ack.headers[kHdrAckOf] = dedup_it->second;
    }
    auto txn_it = message.headers.find(kHdrTxn);
    if (txn_it != message.headers.end()) ack.headers[kHdrTxn] = txn_it->second;
    BestEffortSend(std::move(ack), net);
  }
  // Duplicate suppression: the overlay can deliver one logical send twice
  // (fault-injected duplicates share a message id, control retransmissions
  // share a "dedup" header). Handlers below may assume at-most-once.
  const std::string key = DedupKeyOf(message);
  if (!key.empty() && !seen_messages_.insert(key).second) return;
  // Effectful control messages get their dedup key journaled durably: a
  // retransmission that lands after a crash-restart must hit a rebuilt
  // window, or its plan/decision would be applied twice (fault_drill_test
  // CompensateRedeliveryAfterRestart).
  if (journal_ != nullptr && !key.empty() &&
      (message.type == kMsgCompensate || message.type == kMsgAbort ||
       message.type == kMsgCommit)) {
    journal_->OnDedup(key);
  }
  if (message.type == kMsgInvoke) {
    HandleInvoke(message, net);
  } else if (message.type == kMsgResult) {
    HandleResult(message, net);
  } else if (message.type == kMsgAbort) {
    HandleAbort(message, net);
  } else if (message.type == kMsgCommit) {
    HandleCommit(message, net);
  } else if (message.type == kMsgCompensate) {
    HandleCompensate(message, net);
  } else if (message.type == kMsgNotifyDisconnect) {
    OnNotifyDisconnect(message, net);
  } else if (message.type == kMsgStream) {
    OnStream(message, net);
  } else if (message.type == kMsgCompAck) {
    HandleCompAck(message);
  }
}

void AxmlPeer::HandleCompAck(const overlay::Message& message) {
  // The outcome of a shipped compensation plan. No protocol action hangs on
  // it (the decision is already final), but a rejected plan means a
  // participant could not undo its work — drills assert these counters.
  auto it = message.headers.find(kHdrOk);
  if (it != message.headers.end() && it->second == "0") {
    ++counters_.comp_acks_failed;
  } else {
    ++counters_.comp_acks_ok;
  }
}

void AxmlPeer::BestEffortSend(overlay::Message m, overlay::Network* net) {
  if (!net->Send(std::move(m)).ok()) ++counters_.sends_best_effort_failed;
}

void AxmlPeer::HandleInvoke(const overlay::Message& message,
                            overlay::Network* net) {
  const std::string& txn = message.headers.at(kHdrTxn);
  const std::string& service = message.headers.at(kHdrService);
  // Re-invocation of work we already hold (the original parent died and an
  // ancestor re-drove the call): adopt the new parent and reuse the work
  // instead of re-executing (§3.3(c), "see if any part of their work can be
  // reused").
  Ctx* existing = FindContext(txn);
  if (existing != nullptr) {
    if (existing->service != service) return;
    if (options_.reuse_work) {
      existing->parent = message.from;
      existing->parent_dead = false;
      ++counters_.adoptions;
      if (existing->state == Ctx::State::kDone) {
        SendResult(existing, net);
      }
      // kRunning contexts reply when they complete, as usual.
      return;
    }
    // Reuse disabled (ablation): discard the old execution and redo the
    // service from scratch for the new invoker.
    CompensateLocal(existing, net);
    for (ChildEdge& edge : existing->children) {
      if (edge.state == ChildEdge::State::kInvoked ||
          edge.state == ChildEdge::State::kDone) {
        overlay::Message abort;
        abort.from = id();
        abort.to = edge.invoked_peer;
        abort.type = kMsgAbort;
        abort.headers[kHdrTxn] = txn;
        abort.headers[kHdrFault] = "Superseded";
        ++counters_.aborts_sent;
        BestEffortSend(std::move(abort), net);
      }
    }
    // The discarded execution's journaled writes are stale — roll them
    // back before the fresh execution journals its own.
    CloseCtxSpan(existing, net, obs::kOutcomeAborted, "Superseded");
    RecordResolution(txn, /*committed=*/false);
    EraseContext(txn);
    // Fall through to a fresh StartContext below.
  }
  auto params_or = DecodeParams(message.body);
  if (!params_or.ok()) return;
  chain::ActivePeerChain chain_info;
  auto chain_it = message.headers.find(kHdrChain);
  if (chain_it != message.headers.end()) {
    auto parsed = chain::ActivePeerChain::Parse(chain_it->second);
    if (parsed.ok()) chain_info = std::move(parsed).value();
  }
  auto reused =
      std::static_pointer_cast<const ReusedResults>(message.attachment);
  // The caller's span id rides in the message header; it becomes the parent
  // of the SERVICE span opened here, linking the tree across peers.
  uint64_t parent_span = 0;
  auto span_it = message.headers.find(kHdrSpan);
  if (span_it != message.headers.end()) {
    parent_span = std::strtoull(span_it->second.c_str(), nullptr, 10);
  }
  StartContext(txn, message.from, service, std::move(params_or).value(),
               std::move(chain_info), nullptr, net, std::move(reused),
               parent_span);
}

void AxmlPeer::HandleResult(const overlay::Message& message,
                            overlay::Network* net) {
  if (message.headers.count(kHdrRedirectFor) > 0) {
    OnRedirectedResult(message, net);
    return;
  }
  Ctx* ctx = FindContext(message.headers.at(kHdrTxn));
  if (ctx == nullptr) {
    // A late duplicate (or misrouted copy) of a result for a transaction
    // that committed here is stale chatter, not stale work — replying with
    // a presumed abort would wrongly roll back committed effects.
    auto resolved = ResolvedOutcome(message.headers.at(kHdrTxn));
    if (resolved.has_value() && *resolved) return;
    // Presumed abort: a result for a transaction we no longer know means
    // our context aborted (commit keeps contexts until all results are in).
    // The sender's subtree is stale work — tell it to roll back.
    overlay::Message reply;
    reply.from = id();
    reply.to = message.from;
    reply.type = kMsgAbort;
    reply.headers[kHdrTxn] = message.headers.at(kHdrTxn);
    reply.headers[kHdrFault] = "TxnUnknown";
    ++counters_.aborts_sent;
    BestEffortSend(std::move(reply), net);
    return;
  }
  if (ctx->state != Ctx::State::kRunning) return;
  auto payload =
      std::static_pointer_cast<const ResultPayload>(message.attachment);
  if (payload == nullptr) return;
  for (ChildEdge& edge : ctx->children) {
    if (edge.state == ChildEdge::State::kInvoked &&
        edge.def.service == payload->service &&
        (edge.invoked_peer == message.from ||
         edge.invoked_peer == payload->executed_by)) {
      edge.state = ChildEdge::State::kDone;
      edge.result = payload;
      // The child answered; stop pinging it so the monitor can go idle
      // (disconnection after completion is handled by compensation, not
      // detection).
      if (keepalive_ != nullptr) keepalive_->Unwatch(message.from);
      for (const overlay::PeerId& p : payload->participants) {
        ctx->participants.push_back(p);
      }
      for (const ParticipantPlan& plan : payload->plans) {
        ctx->plans.push_back(plan);
      }
      ctx->subtree_nodes_affected += payload->subtree_nodes_affected;
      TryComplete(ctx, net);
      return;
    }
  }
}

void AxmlPeer::HandleAbort(const overlay::Message& message,
                           overlay::Network* net) {
  Ctx* ctx = FindContext(message.headers.at(kHdrTxn));
  if (ctx == nullptr) return;
  std::string fault = "Abort";
  auto it = message.headers.find(kHdrFault);
  if (it != message.headers.end()) fault = it->second;
  if (message.from == ctx->parent) {
    // §3.2 step 2: abort received from above — roll back and cascade down.
    AbortContext(ctx, fault, /*notify_parent=*/false, net);
    return;
  }
  for (ChildEdge& edge : ctx->children) {
    if (edge.invoked_peer == message.from &&
        edge.state != ChildEdge::State::kDone) {
      OnChildFailure(ctx, &edge, fault, net);
      return;
    }
  }
  // Neither our parent nor a live child edge: an authoritative third-party
  // abort (presumed-abort reply after a reroute, or an orphan resolution
  // from an ancestor). Roll back and cascade down; the sender already
  // considers the transaction dead, so there is nobody to notify upward.
  AbortContext(ctx, fault, /*notify_parent=*/false, net);
}

void AxmlPeer::HandleCommit(const overlay::Message& message,
                            overlay::Network* net) {
  // Transaction completed: discard the context (and with it the logs).
  const std::string& txn = message.headers.at(kHdrTxn);
  Ctx* ctx = FindContext(txn);
  if (ctx != nullptr) {
    RecordFr(ctx, obs::kEvFrTxnState, "commit");
    CloseCtxSpan(ctx, net, obs::kOutcomeCommitted);
  }
  EraseContext(txn);
  if (options_.use_locking) locks_.ReleaseAll(LockIdFor(txn));
  RecordResolution(txn, /*committed=*/true);
  OnTxnResolved(txn, /*committed=*/true, net);
}

void AxmlPeer::HandleCompensate(const overlay::Message& message,
                                overlay::Network* net) {
  auto payload =
      std::static_pointer_cast<const CompensatePayload>(message.attachment);
  if (payload == nullptr) return;
  const std::string& txn = message.headers.at(kHdrTxn);
  xml::Document* doc = repo_.GetDocument(payload->document);
  if (doc == nullptr) {
    // A plan for a document we do not host: a misrouted copy (or a replica
    // mapping gone stale). It says nothing about OUR work for this
    // transaction, so leave any local context alone.
    overlay::Message nack;
    nack.from = id();
    nack.to = message.from;
    nack.type = kMsgCompAck;
    nack.headers[kHdrTxn] = txn;
    nack.headers[kHdrOk] = "0";
    BestEffortSend(std::move(nack), net);
    return;
  }
  bool ok = false;
  {
    ops::Executor executor(doc, MakeLocalInvoker());
    size_t nodes = 0;
    Status s = comp::ApplyPlan(&executor, payload->plan, &nodes);
    ok = s.ok();
    if (ok) {
      ++counters_.compensations_executed;
      counters_.nodes_compensated += static_cast<int64_t>(nodes);
      PushToReplica(payload->document, net);
    }
    RecordFr(nullptr, obs::kEvFrCompStep, payload->document,
             ok ? static_cast<int64_t>(nodes) : int64_t{-1});
  }
  if (!ok) ++counters_.compensation_failures;
  MarkCompensation(txn, net);
  if (spans_ != nullptr) {
    // Instant span: a shipped plan executes within one delivery. Its parent
    // is the sender's context span, carried in the message header.
    uint64_t parent_span = 0;
    auto span_it = message.headers.find(kHdrSpan);
    if (span_it != message.headers.end()) {
      parent_span = std::strtoull(span_it->second.c_str(), nullptr, 10);
    }
    uint64_t comp_span =
        spans_->OpenSpan(txn, id(), obs::kSpanCompensation, parent_span,
                         net->now(), payload->document);
    spans_->CloseSpan(comp_span, net->now(),
                      ok ? obs::kOutcomeOk : obs::kOutcomeFailed);
  }
  // Our own context for this transaction (if any) is superseded by the
  // shipped plan — discard it without double-compensating.
  Ctx* ctx = FindContext(txn);
  if (ctx != nullptr) {
    ctx->local_compensated = true;
    ++counters_.contexts_aborted;
    CloseCtxSpan(ctx, net, obs::kOutcomeAborted, "Superseded");
    EraseContext(txn);
    if (options_.use_locking) locks_.ReleaseAll(LockIdFor(txn));
  }
  RecordResolution(txn, /*committed=*/false);
  overlay::Message ack;
  ack.from = id();
  ack.to = message.from;
  ack.type = kMsgCompAck;
  ack.headers[kHdrTxn] = txn;
  ack.headers[kHdrOk] = ok ? "1" : "0";
  BestEffortSend(std::move(ack), net);
}

void AxmlPeer::TryComplete(Ctx* ctx, overlay::Network* net) {
  if (ctx->state != Ctx::State::kRunning || !ctx->local_done) return;
  for (const ChildEdge& edge : ctx->children) {
    if (edge.state != ChildEdge::State::kDone &&
        edge.state != ChildEdge::State::kAbsorbed) {
      return;
    }
  }
  if (net->now() < ctx->ready_time) {
    const std::string txn = ctx->txn;
    std::weak_ptr<void> alive = AliveToken();
    net->ScheduleAt(ctx->ready_time, [this, txn, alive](overlay::Network* n) {
      // A peer that has since left the overlay (or crashed) is inert: it
      // neither completes nor touches shared state.
      if (alive.expired() || !n->IsConnected(id())) return;
      Ctx* live = FindContext(txn);
      if (live != nullptr) TryComplete(live, n);
    });
    return;
  }
  Complete(ctx, net);
}

void AxmlPeer::ExitEval(Ctx* ctx, overlay::Network* net) {
  if (timeline_ == nullptr || !ctx->in_eval) return;
  ctx->in_eval = false;
  timeline_->Exit(ctx->txn, obs::kPhaseEval,
                  net != nullptr ? net->now() : timeline_->now());
}

void AxmlPeer::MarkCompensation(const std::string& txn,
                                overlay::Network* net) {
  if (timeline_ == nullptr) return;
  const int64_t now = net != nullptr ? net->now() : timeline_->now();
  timeline_->Enter(txn, obs::kPhaseCompensation, now);
  timeline_->Exit(txn, obs::kPhaseCompensation, now);
}

void AxmlPeer::Complete(Ctx* ctx, overlay::Network* net) {
  ExitEval(ctx, net);
  if (!ctx->pending_fault.empty()) {
    // The injected fault strikes now, with all subcalls finished — the
    // whole subtree's work must be undone (§3.2 steps 1-2).
    RecordFr(ctx, obs::kEvFrFault, ctx->pending_fault);
    AbortContext(ctx, ctx->pending_fault, /*notify_parent=*/true, net);
    return;
  }
  ctx->state = Ctx::State::kDone;
  // Replicate this service's completed document state (a retry on the
  // replica must not see half-done work from an incomplete execution).
  {
    const service::ServiceDefinition* def = repo_.FindService(ctx->service);
    if (def != nullptr) PushToReplica(def->document, net);
  }
  if (ctx->parent.empty()) {
    // Origin: the whole transaction committed. Release every participant.
    std::vector<overlay::PeerId> released;
    for (const overlay::PeerId& p : ctx->participants) {
      if (p == id()) continue;
      bool seen = false;
      for (const overlay::PeerId& r : released) seen = seen || (r == p);
      if (seen) continue;
      released.push_back(p);
      overlay::Message m;
      m.from = id();
      m.to = p;
      m.type = kMsgCommit;
      m.headers[kHdrTxn] = ctx->txn;
      if (!SendControl(std::move(m), net).ok()) ++counters_.sends_best_effort_failed;
    }
    ++counters_.txns_committed;
    RecordFr(ctx, obs::kEvFrTxnState, "commit");
    CloseCtxSpan(ctx, net, obs::kOutcomeCommitted);
    if (ctx->on_done) ctx->on_done(ctx->txn, Status::Ok());
    const std::string txn = ctx->txn;
    EraseContext(txn);
    if (options_.use_locking) locks_.ReleaseAll(LockIdFor(txn));
    RecordResolution(txn, /*committed=*/true);
    OnTxnResolved(txn, /*committed=*/true, net);
    return;
  }
  SendResult(ctx, net);
}

void AxmlPeer::SendResult(Ctx* ctx, overlay::Network* net) {
  auto payload = std::make_shared<ResultPayload>();
  payload->service = ctx->service;
  payload->executed_by = id();
  if (ctx->local.result_fragment != nullptr) {
    payload->fragment_xml = ctx->local.result_fragment->Serialize();
  }
  payload->participants = ctx->participants;
  payload->plans = ctx->plans;
  payload->subtree_nodes_affected = ctx->subtree_nodes_affected;
  overlay::Message m;
  m.from = id();
  m.to = ctx->parent;
  m.type = kMsgResult;
  m.headers[kHdrTxn] = ctx->txn;
  m.headers[kHdrService] = ctx->service;
  m.attachment = payload;
  auto sent = net->Send(std::move(m));
  if (!sent.ok()) {
    // §3.3(b): the parent disconnected while we were returning results.
    ctx->state = Ctx::State::kRunning;  // recovery hooks may re-route
    OnParentUnreachable(ctx, net);
  }
}

void AxmlPeer::PushToReplica(const std::string& document,
                             overlay::Network* net) {
  (void)net;
  if (document.empty()) return;
  overlay::PeerId replica = directory_->ReplicaOf(id());
  if (replica.empty()) return;
  service::Repository* replica_repo = directory_->MutableRepo(replica);
  xml::Document* doc = repo_.GetDocument(document);
  if (replica_repo == nullptr || doc == nullptr) return;
  // Eager replication (simulator shortcut for the replication layer of
  // [Abiteboul et al. 2003], which the paper assumes): ids are preserved so
  // compensating operations remain valid on the replica.
  replica_repo->PutDocument(doc->Clone());
}

void AxmlPeer::CompensateLocal(Ctx* ctx, overlay::Network* net) {
  if (!ctx->local_done || ctx->local_compensated) return;
  ctx->local_compensated = true;
  const service::ServiceDefinition* def = repo_.FindService(ctx->service);
  if (def == nullptr || def->document.empty()) return;
  xml::Document* doc = repo_.GetDocument(def->document);
  if (doc == nullptr) return;
  ops::Executor executor(doc, MakeLocalInvoker());
  size_t nodes = 0;
  Status s = comp::ApplyPlan(&executor, ctx->local.compensation, &nodes);
  if (s.ok()) {
    counters_.nodes_compensated += static_cast<int64_t>(nodes);
    counters_.wasted_nodes += static_cast<int64_t>(ctx->local.nodes_affected);
  } else {
    ++counters_.compensation_failures;
  }
  RecordFr(ctx, obs::kEvFrCompStep, ctx->service,
           s.ok() ? static_cast<int64_t>(nodes) : int64_t{-1});
  MarkCompensation(ctx->txn, net);
  if (spans_ != nullptr) {
    // Instant span parented under this context's SERVICE span: the local
    // rollback is part of the abort narrative, not a separate execution.
    const int64_t now = net != nullptr ? net->now() : 0;
    uint64_t comp_span = spans_->OpenSpan(
        ctx->txn, id(), obs::kSpanCompensation, ctx->span_id, now,
        ctx->service);
    spans_->CloseSpan(comp_span, now,
                      s.ok() ? obs::kOutcomeOk : obs::kOutcomeFailed,
                      s.ok() ? std::string() : axml::FaultNameOf(s));
  }
  PushToReplica(def->document, nullptr);
}

void AxmlPeer::CompensateParticipants(Ctx* ctx, overlay::Network* net) {
  const bool reliable = options_.control_resend_interval > 0;
  for (const ParticipantPlan& plan : ctx->plans) {
    if (plan.peer == id()) continue;  // local plan handled by CompensateLocal
    overlay::PeerId target = plan.peer;
    if (!net->CanReach(id(), target)) {
      // §3.3: peer-independent compensation lets us run the compensating
      // service on a replica of the disconnected (or crashed, or
      // partitioned-away) peer's document.
      overlay::PeerId replica = directory_->ReplicaOf(plan.peer);
      if (!replica.empty() && net->CanReach(id(), replica)) {
        target = replica;
      } else if (!reliable) {
        ++counters_.compensation_failures;
        continue;
      }
      // Reliable-control mode: keep the original target — retransmission
      // rides out crashes and partitions until the peer is back.
    }
    auto payload = std::make_shared<CompensatePayload>();
    payload->document = plan.document;
    payload->plan = plan.plan;
    overlay::Message m;
    m.from = id();
    m.to = target;
    m.type = kMsgCompensate;
    m.headers[kHdrTxn] = ctx->txn;
    if (ctx->span_id != 0) {
      m.headers[kHdrSpan] = std::to_string(ctx->span_id);
    }
    m.attachment = payload;
    if (!SendControl(std::move(m), net).ok() && !reliable) {
      ++counters_.compensation_failures;
    }
  }
}

void AxmlPeer::AbortContext(Ctx* ctx, const std::string& fault,
                            bool notify_parent, overlay::Network* net) {
  if (ctx->state == Ctx::State::kAborted) return;
  ctx->state = Ctx::State::kAborted;
  ExitEval(ctx, net);
  const std::string txn = ctx->txn;
  if (recorder_ != nullptr) {
    char what[40];
    std::snprintf(what, sizeof(what), "abort:%s", fault.c_str());
    RecordFr(ctx, obs::kEvFrTxnState, what);
  }
  CompensateLocal(ctx, net);
  if (options_.peer_independent) {
    // Undo completed subtrees by invoking their compensating services
    // directly (§3.2); abort only the still-running children.
    CompensateParticipants(ctx, net);
    for (ChildEdge& edge : ctx->children) {
      if (edge.state == ChildEdge::State::kInvoked) {
        overlay::Message m;
        m.from = id();
        m.to = edge.invoked_peer;
        m.type = kMsgAbort;
        m.headers[kHdrTxn] = txn;
        m.headers[kHdrFault] = fault;
        ++counters_.aborts_sent;
        if (!SendControl(std::move(m), net).ok()) ++counters_.sends_best_effort_failed;
      }
    }
  } else {
    // Peer-dependent: every invoked child (running or done) must roll back
    // its own subtree on receiving "Abort TA" (§3.2 steps 1-2).
    for (ChildEdge& edge : ctx->children) {
      if (edge.state != ChildEdge::State::kInvoked &&
          edge.state != ChildEdge::State::kDone) {
        continue;
      }
      overlay::Message m;
      m.from = id();
      m.to = edge.invoked_peer;
      m.type = kMsgAbort;
      m.headers[kHdrTxn] = txn;
      m.headers[kHdrFault] = fault;
      ++counters_.aborts_sent;
      if (!SendControl(std::move(m), net).ok() &&
          edge.state == ChildEdge::State::kDone &&
          options_.control_resend_interval <= 0) {
        // The child completed work and is now unreachable: its effects
        // cannot be compensated (motivates peer-independent mode, §3.2).
        // In reliable-control mode the retransmission loop keeps trying,
        // so this is not yet a failure.
        ++counters_.compensation_failures;
      }
    }
  }
  if (notify_parent && !ctx->parent.empty()) {
    overlay::Message m;
    m.from = id();
    m.to = ctx->parent;
    m.type = kMsgAbort;
    m.headers[kHdrTxn] = txn;
    m.headers[kHdrFault] = fault;
    m.headers[kHdrFailedService] = ctx->service;
    ++counters_.aborts_sent;
    if (!SendControl(std::move(m), net).ok()) ++counters_.sends_best_effort_failed;
  }
  CloseCtxSpan(ctx, net, obs::kOutcomeAborted, fault);
  if (ctx->parent.empty()) {
    ++counters_.txns_aborted;
    if (ctx->on_done) ctx->on_done(txn, Aborted(fault));
  }
  ++counters_.contexts_aborted;
  EraseContext(txn);
  if (options_.use_locking) locks_.ReleaseAll(LockIdFor(txn));
  RecordResolution(txn, /*committed=*/false);
  OnTxnResolved(txn, /*committed=*/false, net);
}

void AxmlPeer::OnChildFailure(Ctx* ctx, ChildEdge* edge,
                              const std::string& fault,
                              overlay::Network* net) {
  // Baseline behaviour: no forward recovery — propagate the abort. The
  // failed child's own subtree has already rolled itself back (or is
  // unreachable); mark the edge failed so no abort is sent to it.
  edge->state = ChildEdge::State::kPending;
  edge->invoked_peer.clear();
  AbortContext(ctx, fault, /*notify_parent=*/true, net);
}

void AxmlPeer::OnParentUnreachable(Ctx* ctx, overlay::Network* net) {
  // Baseline (no chaining): "traditional recovery would lead to AP6
  // (aborting) discarding its work" (§3.3(b)).
  AbortContext(ctx, "ParentDisconnected", /*notify_parent=*/false, net);
}

void AxmlPeer::OnNotifyDisconnect(const overlay::Message& /*message*/,
                                  overlay::Network* /*net*/) {
  // Base peers do not participate in chain-based disconnection handling.
}

void AxmlPeer::OnRedirectedResult(const overlay::Message& /*message*/,
                                  overlay::Network* /*net*/) {
  // Without chaining, a redirected result has no taker; the work is wasted.
}

std::shared_ptr<const ReusedResults> AxmlPeer::ReuseFor(const Ctx& /*ctx*/) {
  return nullptr;
}

void AxmlPeer::OnTxnResolved(const std::string& /*txn*/, bool /*committed*/,
                             overlay::Network* /*net*/) {}

void AxmlPeer::OnStream(const overlay::Message& /*message*/,
                        overlay::Network* /*net*/) {}

AxmlPeer::Ctx* AxmlPeer::FindContext(const std::string& txn) {
  auto it = contexts_.find(txn);
  return it == contexts_.end() ? nullptr : &it->second;
}

void AxmlPeer::EraseContext(const std::string& txn) {
  auto it = contexts_.find(txn);
  if (it == contexts_.end()) return;
  std::vector<overlay::PeerId> invoked;
  for (const ChildEdge& edge : it->second.children) {
    if (!edge.invoked_peer.empty()) invoked.push_back(edge.invoked_peer);
  }
  contexts_.erase(it);
  if (keepalive_ == nullptr) return;
  // Stop watching children no other live context still waits on — a leaked
  // watch keeps the keepalive monitor rescheduling itself forever, pinning
  // the event queue (and the simulated clock) long after the transaction
  // is resolved.
  for (const overlay::PeerId& child : invoked) {
    bool still_needed = false;
    for (const auto& [other_txn, other_ctx] : contexts_) {
      for (const ChildEdge& edge : other_ctx.children) {
        if (edge.invoked_peer == child &&
            edge.state == ChildEdge::State::kInvoked) {
          still_needed = true;
          break;
        }
      }
      if (still_needed) break;
    }
    if (!still_needed) keepalive_->Unwatch(child);
  }
}

}  // namespace axmlx::txn
