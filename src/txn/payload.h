#ifndef AXMLX_TXN_PAYLOAD_H_
#define AXMLX_TXN_PAYLOAD_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "compensation/compensation.h"
#include "overlay/network.h"
#include "overlay/stream.h"

namespace axmlx::txn {

/// Message types used by the transactional protocol. Every constant here
/// must have a dispatch arm in AxmlPeer::OnMessage (lint rule R1); peers
/// must never compare `message.type` against a raw string literal.
inline constexpr char kMsgInvoke[] = "INVOKE";
inline constexpr char kMsgResult[] = "RESULT";
inline constexpr char kMsgAbort[] = "ABORT";
inline constexpr char kMsgCommit[] = "COMMIT";
inline constexpr char kMsgCompensate[] = "COMPENSATE";
inline constexpr char kMsgCompAck[] = "COMP_ACK";
inline constexpr char kMsgNotifyDisconnect[] = "NOTIFY_DISCONNECT";
/// STREAM is the overlay data-plane heartbeat and is owned by
/// overlay/stream.h; aliased here (not redeclared) so the publisher and the
/// txn dispatcher cannot drift apart.
inline constexpr const char* kMsgStream = overlay::kStreamMessage;
/// Delivery acknowledgement for control messages sent with an "rsvp"
/// header (at-least-once control delivery under fault injection). The ACK
/// echoes the message's "dedup" key in its "ack_of" header.
inline constexpr char kMsgAck[] = "ACK";

/// Protocol header names. Shared constants rather than string literals at
/// each call site: a sender writing "ack-of" while the receiver reads
/// "ack_of" would silently disable control-channel retransmission cleanup.
inline constexpr char kHdrTxn[] = "txn";
inline constexpr char kHdrService[] = "service";
inline constexpr char kHdrFault[] = "fault";
inline constexpr char kHdrFailedService[] = "failed_service";
inline constexpr char kHdrChain[] = "chain";
inline constexpr char kHdrRsvp[] = "rsvp";
inline constexpr char kHdrDedup[] = "dedup";
inline constexpr char kHdrAckOf[] = "ack_of";
inline constexpr char kHdrRedirectFor[] = "redirect_for";
inline constexpr char kHdrDisconnected[] = "disconnected";
inline constexpr char kHdrOk[] = "ok";
/// Sender's causal span id, carried on INVOKE and COMPENSATE so the
/// receiver's span parents into the caller's — the cross-peer invocation
/// tree (paper Figures 1/2) reconstructs from these links.
inline constexpr char kHdrSpan[] = "span";

using Params = std::vector<std::pair<std::string, std::string>>;

/// Encodes invocation parameters as the body of an INVOKE message
/// ("<params><param name="k">v</param>...</params>").
std::string EncodeParams(const Params& params);
Result<Params> DecodeParams(const std::string& body);

/// One participant's compensating-service definition (§3.2, peer
/// independent compensation): the plan that undoes `peer`'s work on
/// `document`. Shipped upward with results so that the recovering peer can
/// invoke compensation directly on original peers (or on a replica of the
/// document if the original disconnected).
struct ParticipantPlan {
  overlay::PeerId peer;
  std::string document;
  comp::CompensationPlan plan;
  size_t nodes = 0;
};

/// Attachment of a RESULT message: the invocation results plus recovery
/// metadata aggregated over the subtree that produced them.
struct ResultPayload {
  std::string service;
  overlay::PeerId executed_by;
  std::string fragment_xml;

  /// Peers that did work for this subtree (executed_by + descendants).
  std::vector<overlay::PeerId> participants;

  /// Compensating-service definitions for the subtree; empty unless
  /// peer-independent compensation is enabled.
  std::vector<ParticipantPlan> plans;

  /// Total nodes affected in this subtree (the paper's cost measure).
  size_t subtree_nodes_affected = 0;
};

/// Attachment of an INVOKE message carrying already-completed subcall
/// results (§3.3(b): "it might be possible to reuse AP6's work by passing
/// the materialized results directly while invoking S3 on APX"). The
/// receiving peer marks matching subcall edges done without re-invoking.
struct ReusedResults {
  std::map<std::string, std::shared_ptr<const ResultPayload>> by_service;
};

/// Attachment of a COMPENSATE message: execute `plan` against `document`.
/// "The original peers do not even need to be aware that the services they
/// are executing are, basically, compensating services." (§3.2)
struct CompensatePayload {
  std::string document;
  comp::CompensationPlan plan;
};

}  // namespace axmlx::txn

#endif  // AXMLX_TXN_PAYLOAD_H_
