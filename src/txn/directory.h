#ifndef AXMLX_TXN_DIRECTORY_H_
#define AXMLX_TXN_DIRECTORY_H_

#include <map>
#include <string>

#include "chain/active_chain.h"
#include "common/status.h"
#include "overlay/network.h"
#include "service/repository.h"

namespace axmlx::txn {

/// Simulator-level view of which peer hosts which services, which peers are
/// super peers, and which peer replicates which peer's documents.
///
/// Two uses:
/// - building the transaction's active-peer chain up front (§3.3 assumes the
///   full list `[AP1* -> AP2 -> ...]` is known and passed along with
///   invocations; with statically composed services the origin can derive it
///   from the service definitions);
/// - resolving replica peers for forward recovery ("retrying the invocation
///   using a replicated peer", §3.2) and for peer-independent compensation
///   after the original peer disconnected (§3.3).
class ServiceDirectory {
 public:
  /// Registers a peer's repository and super-peer flag. Not owned.
  void Register(const overlay::PeerId& peer, service::Repository* repo,
                bool super_peer);

  /// Removes a peer's entry (crash-stop: its repository is being destroyed
  /// and must not be handed out). Replica mappings are kept — they name
  /// peers, not repositories, and the crashed peer's replica stays useful.
  void Deregister(const overlay::PeerId& peer);

  /// Mutable repository access for simulator-level synchronous data-plane
  /// calls (embedded service calls whose serviceURL names another peer).
  service::Repository* MutableRepo(const overlay::PeerId& peer) const;

  /// Declares `replica` as hosting replicas of `original`'s documents and
  /// services.
  void SetReplica(const overlay::PeerId& original,
                  const overlay::PeerId& replica);

  /// Returns the replica of `original`, or an empty id.
  overlay::PeerId ReplicaOf(const overlay::PeerId& original) const;

  bool IsSuperPeer(const overlay::PeerId& peer) const;

  const service::ServiceDefinition* Lookup(const overlay::PeerId& peer,
                                           const std::string& service) const;

  /// Builds the full invocation tree for running `service` on `peer` by
  /// walking subcall definitions. Fails on unknown services or cyclic
  /// compositions deeper than 64 levels.
  Result<chain::ActivePeerChain> BuildChain(const overlay::PeerId& peer,
                                            const std::string& service) const;

 private:
  Result<chain::ChainNode> BuildNode(const overlay::PeerId& peer,
                                     const std::string& service,
                                     int depth) const;

  struct Entry {
    service::Repository* repo = nullptr;
    bool super_peer = false;
  };
  std::map<overlay::PeerId, Entry> entries_;
  std::map<overlay::PeerId, overlay::PeerId> replicas_;
};

}  // namespace axmlx::txn

#endif  // AXMLX_TXN_DIRECTORY_H_
