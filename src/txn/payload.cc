#include "txn/payload.h"

#include "common/strings.h"
#include "xml/builder.h"
#include "xml/parser.h"

namespace axmlx::txn {

std::string EncodeParams(const Params& params) {
  std::string out = "<params>";
  for (const auto& [key, value] : params) {
    out += "<param name=\"" + XmlEscape(key) + "\">" + XmlEscape(value) +
           "</param>";
  }
  out += "</params>";
  return out;
}

Result<Params> DecodeParams(const std::string& body) {
  Params params;
  if (body.empty()) return params;
  AXMLX_ASSIGN_OR_RETURN(auto doc, xml::Parse(body));
  const xml::Node* root = doc->Find(doc->root());
  if (root->name != "params") {
    return ParseError("DecodeParams: expected a <params> element");
  }
  for (xml::NodeId c : root->children) {
    const xml::Node* child = doc->Find(c);
    if (!child->is_element() || child->name != "param") continue;
    const std::string* name = child->FindAttribute("name");
    if (name == nullptr) {
      return ParseError("DecodeParams: <param> without a name");
    }
    params.emplace_back(*name, doc->TextContent(c));
  }
  return params;
}

}  // namespace axmlx::txn
