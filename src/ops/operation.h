#ifndef AXMLX_OPS_OPERATION_H_
#define AXMLX_OPS_OPERATION_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/status.h"
#include "xml/document.h"
#include "xml/edit.h"

namespace axmlx::ops {

/// The possible operations on AXML documents (paper §3): "queries, updates,
/// inserts and deletes (update operations with action types 'replace',
/// 'insert' and 'delete', respectively)".
enum class ActionType { kQuery, kInsert, kDelete, kReplace };

const char* ActionTypeName(ActionType type);

/// One AXML operation. "AXML update operations can be divided into two
/// parts: 1) the <location> query to locate the target nodes, and 2) the
/// actual update actions." (§3.1)
///
/// Operations are plain data and serialize to the paper's `<action>` XML so
/// they can be shipped between peers — including compensating operations
/// shipped for peer-independent compensation (§3.2). Compensating
/// operations constructed from the log target nodes *directly by id*
/// (`target_node`), which is how the paper compensates inserts ("a delete
/// operation to delete the node having the corresponding ID").
struct Operation {
  ActionType type = ActionType::kQuery;

  /// `<location>` select statement (see query/parser.h). Empty when the
  /// operation targets a node directly via `target_node`.
  std::string location;

  /// `<data>` payload for insert/replace: serialized XML of the node(s) to
  /// insert. Multiple top-level nodes are allowed.
  std::string data_xml;

  /// Direct target (compensating operations): for kDelete the node to
  /// delete, for kInsert the parent to insert under.
  xml::NodeId target_node = xml::kNullNode;

  /// For kInsert with a direct target: insert at this child index, restoring
  /// the original ordering (the paper's ordered-document caveat, §3.1).
  bool has_position = false;
  size_t position = 0;

  /// Sibling-relative insertion for ordered documents: "the situation is
  /// simplified if the insert operation allows insertion 'before/after' a
  /// specific node [16]" (§3.1). With kBefore/kAfter the <location> query
  /// selects the anchor sibling(s) and the data is inserted adjacent to
  /// each anchor, under the anchor's parent.
  enum class Anchor { kInto, kBefore, kAfter };
  Anchor anchor = Anchor::kInto;

  /// Query evaluation mode (§3.1): lazy materializes only the embedded
  /// calls the query needs; eager materializes everything in scope.
  bool eager = false;

  /// Optional exact-restore payload for compensating inserts built from the
  /// log: the deleted subtree with its original node ids. When present (and
  /// the target is direct) the executor re-attaches it id-preservingly, so
  /// chains of compensating operations that reference ids inside earlier
  /// deleted subtrees stay valid. Not serialized by ToXml — a plan shipped
  /// as XML degrades to fresh-id insertion of `data_xml`, which is the
  /// paper's semantic (not physical) compensation.
  std::shared_ptr<const xml::DetachedSubtree> restore;

  /// Serializes to the paper's syntax:
  ///   <action type="delete"><location>Select ...</location></action>
  std::string ToXml() const;

  /// Parses an `<action>` element (as produced by ToXml).
  static Result<Operation> FromXml(const std::string& xml_text);
};

/// Convenience constructors.
Operation MakeQuery(std::string location, bool eager = false);
Operation MakeInsert(std::string location, std::string data_xml);
Operation MakeDelete(std::string location);
Operation MakeReplace(std::string location, std::string data_xml);
Operation MakeDeleteById(xml::NodeId node);
Operation MakeInsertAt(xml::NodeId parent, size_t position,
                       std::string data_xml);
/// Inserts `data_xml` immediately before/after the sibling(s) located by
/// `location` (ordered-document insertion, §3.1).
Operation MakeInsertBefore(std::string location, std::string data_xml);
Operation MakeInsertAfter(std::string location, std::string data_xml);

}  // namespace axmlx::ops

#endif  // AXMLX_OPS_OPERATION_H_
