#include "ops/executor.h"

#include <utility>

#include "obs/flight_recorder.h"
#include "query/parser.h"
#include "xml/parser.h"

namespace axmlx::ops {

Executor::Executor(xml::Document* doc, axml::ServiceInvoker invoker)
    : doc_(doc), invoker_(std::move(invoker)) {
  if (!invoker_) {
    invoker_ = [](const axml::ServiceRequest& request)
        -> Result<axml::ServiceResponse> {
      return FailedPrecondition("no service invoker configured for call to " +
                                request.method_name);
    };
  }
}

void Executor::SetExternal(const std::string& name, const std::string& value) {
  externals_.emplace_back(name, value);
}

Result<query::QueryResult> Executor::Evaluate(const query::Query& q) {
  if (eval_ctx_ != nullptr) return query::EvaluateQuery(*doc_, q, eval_ctx_);
  return query::EvaluateQuery(*doc_, q);
}

Result<std::vector<xml::NodeId>> Executor::ResolveLocation(const Operation& op,
                                                           OpEffect* effect) {
  if (op.target_node != xml::kNullNode) {
    if (!doc_->Contains(op.target_node)) {
      return NotFound("operation targets unknown node id " +
                      std::to_string(op.target_node));
    }
    return std::vector<xml::NodeId>{op.target_node};
  }
  if (op.location.empty()) {
    return InvalidArgument("operation has neither a location nor a target");
  }
  AXMLX_ASSIGN_OR_RETURN(query::Query q, query::ParseQuery(op.location));
  // "The <location> query evaluation may involve service call
  // materializations, and as such, updates to the AXML document." (§3.1)
  axml::Materializer materializer(doc_, invoker_, &effect->edits);
  for (const auto& [name, value] : externals_) {
    materializer.SetExternal(name, value);
  }
  if (op.eager) {
    AXMLX_RETURN_IF_ERROR(materializer.MaterializeAll(doc_->root()).status());
  } else {
    AXMLX_RETURN_IF_ERROR(
        materializer.MaterializeForQuery(q, doc_->root()).status());
  }
  effect->materialize_stats = materializer.stats();
  if (op.type == ActionType::kQuery) {
    AXMLX_ASSIGN_OR_RETURN(effect->query_result, Evaluate(q));
    return effect->query_result.AllSelected();
  }
  AXMLX_ASSIGN_OR_RETURN(query::QueryResult result, Evaluate(q));
  return result.AllSelected();
}

Status Executor::InsertData(const xml::Document& fragment, xml::NodeId parent,
                            bool has_index, size_t index, OpEffect* effect) {
  const xml::Node* frag_root = fragment.Find(fragment.root());
  size_t offset = 0;
  for (xml::NodeId child : frag_root->children) {
    AXMLX_ASSIGN_OR_RETURN(xml::NodeId copy,
                           doc_->ImportSubtree(fragment, child));
    if (has_index) {
      AXMLX_RETURN_IF_ERROR(doc_->InsertAt(parent, index + offset, copy));
      ++offset;
    } else {
      AXMLX_RETURN_IF_ERROR(doc_->AppendChild(parent, copy));
    }
    xml::Edit edit;
    edit.kind = xml::Edit::Kind::kInsertSubtree;
    edit.node = copy;
    edit.parent = parent;
    edit.index = doc_->IndexInParent(copy);
    edit.nodes_affected = doc_->SubtreeSize(copy);
    effect->edits.Append(std::move(edit));
    effect->inserted.push_back(copy);
  }
  return Status::Ok();
}

PreparedOp Executor::Prepare(const xml::Document& doc, const Operation& op,
                             query::EvalContext* ctx) {
  PreparedOp prep;
  // Fall back to the full synchronous path whenever execution could do more
  // than read-then-mutate: compensating restores (exact-id reattach), direct
  // target ids (live Contains check at execute time), eager materialization,
  // or any embedded service call the <location> evaluation might
  // materialize. Prepare-time failures also fall back so the synchronous
  // path reproduces the exact error.
  if (op.restore != nullptr || op.eager || op.target_node != xml::kNullNode ||
      op.location.empty()) {
    return prep;
  }
  std::vector<xml::NodeId> calls;
  doc.CollectElementsNamed(xml::kNameAxmlSc, &calls);
  if (!calls.empty()) return prep;
  auto q_or = query::ParseQuery(op.location);
  if (!q_or.ok()) return prep;
  Result<query::QueryResult> result_or =
      ctx != nullptr ? query::EvaluateQuery(doc, q_or.value(), ctx)
                     : query::EvaluateQuery(doc, q_or.value());
  if (!result_or.ok()) return prep;
  if (op.type == ActionType::kInsert || op.type == ActionType::kReplace) {
    auto fragment_or = xml::Parse("<data>" + op.data_xml + "</data>");
    if (!fragment_or.ok()) return prep;
    prep.fragment = std::move(fragment_or).value();
  }
  if (op.type == ActionType::kQuery) {
    prep.query_result = std::move(result_or).value();
    prep.targets = prep.query_result.AllSelected();
  } else {
    prep.targets = result_or.value().AllSelected();
  }
  prep.prepared = true;
  return prep;
}

Result<OpEffect> Executor::Execute(const Operation& op) {
  return ExecutePrepared(op, PreparedOp{});
}

Result<OpEffect> Executor::ExecutePrepared(const Operation& op,
                                           PreparedOp prep) {
  Result<OpEffect> result = ExecuteInternal(op, &prep);
  if (recorder_ != nullptr) {
    // `what` is the lowercase action name; `arg` carries the paper's cost
    // measure (nodes affected), or -1 for a failed operation.
    recorder_->Record(
        obs::kEvFrOpExec, result.ok() ? ActionTypeName(op.type) : "failed",
        /*span=*/0,
        result.ok() ? static_cast<int64_t>(result.value().NodesAffected())
                    : int64_t{-1});
  }
  return result;
}

Result<OpEffect> Executor::ExecuteInternal(const Operation& op,
                                           PreparedOp* prep) {
  const bool use_prep = prep != nullptr && prep->prepared;
  OpEffect effect;
  effect.op = op;
  auto fail = [this, &effect](Status status) -> Status {
    // Leave the document untouched on error.
    Status rollback = xml::RollbackAll(doc_, effect.edits);
    if (!rollback.ok()) {
      return Internal("rollback after failed operation also failed: " +
                      rollback.message() + " (original: " + status.message() +
                      ")");
    }
    return status;
  };

  if (use_prep) {
    effect.targets = std::move(prep->targets);
    if (op.type == ActionType::kQuery) {
      effect.query_result = std::move(prep->query_result);
    }
  } else {
    auto targets_or = ResolveLocation(op, &effect);
    if (!targets_or.ok()) return fail(targets_or.status());
    effect.targets = std::move(targets_or).value();
  }

  switch (op.type) {
    case ActionType::kQuery:
      return effect;

    case ActionType::kDelete: {
      for (xml::NodeId target : effect.targets) {
        // A previous deletion may have removed this target already (nested
        // targets); skip silently, matching set-oriented delete semantics.
        if (!doc_->Contains(target)) continue;
        auto detached_or = xml::DetachSubtree(doc_, target);
        if (!detached_or.ok()) return fail(detached_or.status());
        xml::DetachResult detached = std::move(detached_or).value();
        xml::Edit edit;
        edit.kind = xml::Edit::Kind::kRemoveSubtree;
        edit.node = detached.subtree.root;
        edit.parent = detached.parent;
        edit.index = detached.index;
        edit.nodes_affected = detached.subtree.size();
        edit.removed = std::move(detached.subtree);
        effect.edits.Append(std::move(edit));
      }
      return effect;
    }

    case ActionType::kInsert: {
      // Compensating inserts built from the log carry the deleted subtree
      // with original ids; restore it exactly when possible.
      if (op.restore != nullptr && op.target_node != xml::kNullNode) {
        xml::NodeId parent = op.target_node;
        size_t index = op.has_position
                           ? op.position
                           : doc_->Find(parent)->children.size();
        Status s = xml::Reattach(doc_, *op.restore, parent, index);
        if (s.ok()) {
          xml::Edit edit;
          edit.kind = xml::Edit::Kind::kInsertSubtree;
          edit.node = op.restore->root;
          edit.parent = parent;
          edit.index = index;
          edit.nodes_affected = op.restore->size();
          effect.edits.Append(std::move(edit));
          effect.inserted.push_back(op.restore->root);
          return effect;
        }
        // Ids already live again (e.g. the plan ran twice): fall back to
        // fresh-id insertion of the serialized payload below.
      }
      std::unique_ptr<xml::Document> fragment;
      if (use_prep && prep->fragment != nullptr) {
        fragment = std::move(prep->fragment);
      } else {
        auto fragment_or = xml::Parse("<data>" + op.data_xml + "</data>");
        if (!fragment_or.ok()) return fail(fragment_or.status());
        fragment = std::move(fragment_or).value();
      }
      if (op.anchor != Operation::Anchor::kInto) {
        // Ordered-document insertion (§3.1): the located nodes are anchor
        // siblings; insert adjacent to each under its physical parent.
        for (xml::NodeId sibling : effect.targets) {
          if (!doc_->Contains(sibling)) continue;
          const xml::Node* anchor_node = doc_->Find(sibling);
          if (anchor_node->parent == xml::kNullNode) {
            return fail(
                FailedPrecondition("cannot insert beside the document root"));
          }
          size_t index = doc_->IndexInParent(sibling);
          if (op.anchor == Operation::Anchor::kAfter) ++index;
          Status s = InsertData(*fragment, anchor_node->parent,
                                /*has_index=*/true, index, &effect);
          if (!s.ok()) return fail(s);
        }
        return effect;
      }
      for (xml::NodeId parent : effect.targets) {
        if (!doc_->Contains(parent)) continue;
        Status s = InsertData(*fragment, parent, op.has_position,
                              op.position, &effect);
        if (!s.ok()) return fail(s);
      }
      return effect;
    }

    case ActionType::kReplace: {
      // "An AXML replace operation is usually implemented as a combination
      // of a delete and update operation, i.e., delete the node to be
      // replaced followed by insertion of a node (having the updated value)
      // at the same position." (§3.1)
      std::unique_ptr<xml::Document> fragment;
      if (use_prep && prep->fragment != nullptr) {
        fragment = std::move(prep->fragment);
      } else {
        auto fragment_or = xml::Parse("<data>" + op.data_xml + "</data>");
        if (!fragment_or.ok()) return fail(fragment_or.status());
        fragment = std::move(fragment_or).value();
      }
      for (xml::NodeId target : effect.targets) {
        if (!doc_->Contains(target)) continue;
        auto detached_or = xml::DetachSubtree(doc_, target);
        if (!detached_or.ok()) return fail(detached_or.status());
        xml::DetachResult detached = std::move(detached_or).value();
        xml::NodeId parent = detached.parent;
        size_t index = detached.index;
        xml::Edit edit;
        edit.kind = xml::Edit::Kind::kRemoveSubtree;
        edit.node = detached.subtree.root;
        edit.parent = parent;
        edit.index = index;
        edit.nodes_affected = detached.subtree.size();
        edit.removed = std::move(detached.subtree);
        effect.edits.Append(std::move(edit));
        Status s = InsertData(*fragment, parent, /*has_index=*/true, index,
                              &effect);
        if (!s.ok()) return fail(s);
      }
      return effect;
    }
  }
  return Internal("unknown action type");
}

}  // namespace axmlx::ops
