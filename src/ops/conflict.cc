#include "ops/conflict.h"

#include <algorithm>

namespace axmlx::ops {

void ConflictTable::BeginWriter(uint64_t writer, uint64_t snapshot) {
  active_[writer] = snapshot;
}

void ConflictTable::EndWriter(uint64_t writer) { active_.erase(writer); }

bool ConflictTable::IsActive(uint64_t writer) const {
  return active_.count(writer) != 0;
}

uint64_t ConflictTable::OldestSnapshot(uint64_t fallback) const {
  uint64_t oldest = fallback;
  for (const auto& [writer, snapshot] : active_) {
    oldest = std::min(oldest, snapshot);
  }
  return oldest;
}

void ConflictTable::FootprintOf(const OpEffect& effect,
                                std::vector<xml::NodeId>* out) {
  for (const xml::Edit& edit : effect.edits.edits()) {
    switch (edit.kind) {
      case xml::Edit::Kind::kInsertSubtree:
        out->push_back(edit.parent);
        out->push_back(edit.node);
        break;
      case xml::Edit::Kind::kRemoveSubtree:
        out->push_back(edit.parent);
        out->push_back(edit.node);
        for (const xml::Node& n : edit.removed.nodes) out->push_back(n.id);
        break;
      case xml::Edit::Kind::kSetText:
        out->push_back(edit.node);
        break;
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

std::optional<Conflict> ConflictTable::CheckEffect(const xml::Document& doc,
                                                   const OpEffect& effect,
                                                   uint64_t writer,
                                                   uint64_t snapshot) const {
  std::vector<xml::NodeId> footprint;
  FootprintOf(effect, &footprint);
  std::optional<Conflict> found;
  for (xml::NodeId id : footprint) {
    if (found.has_value()) break;
    doc.ForEachWriteSince(
        id, 0, [&](uint64_t version, uint64_t rec_writer) {
          if (found.has_value()) return;
          if (rec_writer == writer || rec_writer == 0) return;
          // (a) committed-after-my-snapshot, or (b) still-active (dirty
          // write) — either way first-writer-wins says we lose.
          if (version > snapshot || IsActive(rec_writer)) {
            found = Conflict{id, rec_writer, version};
          }
        });
  }
  return found;
}

}  // namespace axmlx::ops
