#ifndef AXMLX_OPS_OP_LOG_H_
#define AXMLX_OPS_OP_LOG_H_

#include <vector>

#include "ops/executor.h"

namespace axmlx::ops {

/// Per-transaction log of executed operations and their effects, in
/// execution order. Compensation executes the inverses "in the reverse
/// order of the execution of their respective forward operations" (§3.1).
class OpLog {
 public:
  void Append(OpEffect effect) { effects_.push_back(std::move(effect)); }

  const std::vector<OpEffect>& effects() const { return effects_; }
  bool empty() const { return effects_.empty(); }
  size_t size() const { return effects_.size(); }
  void Clear() { effects_.clear(); }

  /// Total nodes affected across all logged operations — the transaction's
  /// cost under the paper's cost model (§3.2).
  size_t TotalNodesAffected() const {
    size_t total = 0;
    for (const OpEffect& e : effects_) total += e.NodesAffected();
    return total;
  }

 private:
  std::vector<OpEffect> effects_;
};

}  // namespace axmlx::ops

#endif  // AXMLX_OPS_OP_LOG_H_
