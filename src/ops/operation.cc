#include "ops/operation.h"

#include <cstdlib>
#include <sstream>

#include "common/strings.h"
#include "xml/builder.h"
#include "xml/parser.h"

namespace axmlx::ops {

const char* ActionTypeName(ActionType type) {
  switch (type) {
    case ActionType::kQuery:
      return "query";
    case ActionType::kInsert:
      return "insert";
    case ActionType::kDelete:
      return "delete";
    case ActionType::kReplace:
      return "replace";
  }
  return "?";
}

std::string Operation::ToXml() const {
  std::ostringstream os;
  os << "<action type=\"" << ActionTypeName(type) << "\"";
  if (target_node != xml::kNullNode) {
    os << " targetNode=\"" << target_node << "\"";
  }
  if (has_position) os << " position=\"" << position << "\"";
  if (anchor == Anchor::kBefore) os << " anchor=\"before\"";
  if (anchor == Anchor::kAfter) os << " anchor=\"after\"";
  if (eager) os << " eval=\"eager\"";
  os << ">";
  if (!data_xml.empty()) os << "<data>" << data_xml << "</data>";
  if (!location.empty()) {
    os << "<location>" << XmlEscape(location) << "</location>";
  }
  os << "</action>";
  return os.str();
}

Result<Operation> Operation::FromXml(const std::string& xml_text) {
  AXMLX_ASSIGN_OR_RETURN(auto doc, xml::Parse(xml_text));
  const xml::Node* root = doc->Find(doc->root());
  if (root->name != "action") {
    return ParseError("Operation::FromXml: expected an <action> element");
  }
  Operation op;
  const std::string* type = root->FindAttribute("type");
  if (type == nullptr) {
    return ParseError("Operation::FromXml: missing 'type' attribute");
  }
  if (*type == "query") {
    op.type = ActionType::kQuery;
  } else if (*type == "insert") {
    op.type = ActionType::kInsert;
  } else if (*type == "delete") {
    op.type = ActionType::kDelete;
  } else if (*type == "replace") {
    op.type = ActionType::kReplace;
  } else {
    return ParseError("Operation::FromXml: unknown action type '" + *type +
                      "'");
  }
  if (const std::string* t = root->FindAttribute("targetNode")) {
    op.target_node = std::strtoull(t->c_str(), nullptr, 10);
  }
  if (const std::string* p = root->FindAttribute("position")) {
    op.has_position = true;
    op.position = std::strtoull(p->c_str(), nullptr, 10);
  }
  if (const std::string* e = root->FindAttribute("eval")) {
    op.eager = (*e == "eager");
  }
  if (const std::string* a = root->FindAttribute("anchor")) {
    if (*a == "before") {
      op.anchor = Operation::Anchor::kBefore;
    } else if (*a == "after") {
      op.anchor = Operation::Anchor::kAfter;
    }
  }
  xml::NodeId loc = xml::FirstChildElement(*doc, doc->root(), "location");
  if (loc != xml::kNullNode) {
    op.location = std::string(StripWhitespace(doc->TextContent(loc)));
  }
  xml::NodeId data = xml::FirstChildElement(*doc, doc->root(), "data");
  if (data != xml::kNullNode) {
    // Re-serialize the data children to get a canonical payload.
    std::string payload;
    for (xml::NodeId c : doc->Find(data)->children) {
      payload += doc->Serialize(c);
    }
    op.data_xml = payload;
  }
  return op;
}

Operation MakeQuery(std::string location, bool eager) {
  Operation op;
  op.type = ActionType::kQuery;
  op.location = std::move(location);
  op.eager = eager;
  return op;
}

Operation MakeInsert(std::string location, std::string data_xml) {
  Operation op;
  op.type = ActionType::kInsert;
  op.location = std::move(location);
  op.data_xml = std::move(data_xml);
  return op;
}

Operation MakeDelete(std::string location) {
  Operation op;
  op.type = ActionType::kDelete;
  op.location = std::move(location);
  return op;
}

Operation MakeReplace(std::string location, std::string data_xml) {
  Operation op;
  op.type = ActionType::kReplace;
  op.location = std::move(location);
  op.data_xml = std::move(data_xml);
  return op;
}

Operation MakeDeleteById(xml::NodeId node) {
  Operation op;
  op.type = ActionType::kDelete;
  op.target_node = node;
  return op;
}

Operation MakeInsertAt(xml::NodeId parent, size_t position,
                       std::string data_xml) {
  Operation op;
  op.type = ActionType::kInsert;
  op.target_node = parent;
  op.has_position = true;
  op.position = position;
  op.data_xml = std::move(data_xml);
  return op;
}

Operation MakeInsertBefore(std::string location, std::string data_xml) {
  Operation op = MakeInsert(std::move(location), std::move(data_xml));
  op.anchor = Operation::Anchor::kBefore;
  return op;
}

Operation MakeInsertAfter(std::string location, std::string data_xml) {
  Operation op = MakeInsert(std::move(location), std::move(data_xml));
  op.anchor = Operation::Anchor::kAfter;
  return op;
}

}  // namespace axmlx::ops
