#ifndef AXMLX_OPS_EXECUTOR_H_
#define AXMLX_OPS_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "axml/materializer.h"
#include "common/status.h"
#include "ops/operation.h"
#include "query/eval.h"
#include "xml/document.h"
#include "xml/edit.h"

namespace axmlx::obs {
class FlightRecorder;
}  // namespace axmlx::obs

namespace axmlx::ops {

/// Everything logged about one executed operation. This is the run-time
/// information §3.1 requires for dynamic compensation: "the delete
/// operations as well as the results of the <location> queries of the
/// delete operations need to be logged to enable compensation". Deleted
/// subtrees, inserted node ids, and all materialization side-effects live in
/// `edits`; `targets` are the nodes the <location> query resolved to.
struct OpEffect {
  Operation op;

  /// Nodes the <location> query (or direct id) resolved to.
  std::vector<xml::NodeId> targets;

  /// Ids of subtree roots inserted by this operation ("we assume that the
  /// [insert] operation returns the (unique) ID of the inserted node").
  std::vector<xml::NodeId> inserted;

  /// Primitive edits in execution order, including service-call
  /// materializations triggered by <location>/query evaluation.
  xml::EditLog edits;

  /// For kQuery: the full evaluation result.
  query::QueryResult query_result;

  /// Materialization counters for this operation.
  axml::MaterializeStats materialize_stats;

  /// The paper's cost measure: total XML nodes affected.
  size_t NodesAffected() const { return edits.TotalNodesAffected(); }
};

/// The precomputed read-only half of one operation's execution: resolved
/// <location> targets and the parsed data fragment. Built by
/// Executor::Prepare (pure — never touches the document) and consumed by
/// Executor::ExecutePrepared, which runs only the mutation half. This is
/// the split the worker-pool runtime parallelizes across (DESIGN.md §11):
/// work stages Prepare concurrently against a wave-start snapshot, apply
/// stages ExecutePrepared serially in canonical order.
///
/// `prepared == false` means the operation was not preparable (embedded
/// service calls that may materialize, eager ops, compensating restores,
/// direct target ids, or a prepare-time parse/eval failure) —
/// ExecutePrepared then falls back to the full synchronous Execute path,
/// preserving its exact semantics.
struct PreparedOp {
  bool prepared = false;
  std::vector<xml::NodeId> targets;
  std::unique_ptr<xml::Document> fragment;  ///< Parsed `<data>` wrapper.
  query::QueryResult query_result;          ///< kQuery only.
};

/// Executes operations against one document, logging effects.
///
/// Query evaluation materializes embedded service calls through `invoker`
/// (lazily by default, §3.1), so even read queries can modify the document;
/// every mutation is recorded in the returned `OpEffect`.
class Executor {
 public:
  /// `doc` must outlive the executor. `invoker` handles embedded
  /// service-call invocations; pass a null invoker to forbid
  /// materialization (calls then fail with kFailedPrecondition).
  Executor(xml::Document* doc, axml::ServiceInvoker invoker);

  /// Supplies a value for `$name` external service-call parameters.
  void SetExternal(const std::string& name, const std::string& value);

  /// Evaluates location queries through `ctx` (caller-owned scratch +
  /// stats; must outlive the executor). Lets long-lived callers like
  /// DurableStore reuse evaluation buffers across operations.
  void SetEvalContext(query::EvalContext* ctx) { eval_ctx_ = ctx; }

  /// Stamps an OP_EXEC flight-recorder event per executed operation (not
  /// owned; null — the default — records nothing).
  void SetRecorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  /// Executes `op`, returning the logged effect. On error the document is
  /// left untouched (partial work is rolled back internally).
  Result<OpEffect> Execute(const Operation& op);

  /// Resolves `op`'s read-only half against `doc` without mutating it:
  /// parses the <location> query, evaluates it through `ctx` (whose view
  /// selects the snapshot; may be null for live standalone evaluation), and
  /// parses the data fragment. Returns `prepared == false` whenever the
  /// operation needs the full synchronous path (see PreparedOp). Safe to
  /// run concurrently from several threads against one document when the
  /// document is in concurrent-read mode and each caller owns its `ctx`.
  ///
  /// Prepare-time targets equal execute-time targets only when reads are
  /// stable between the two — either nothing mutates the document in
  /// between, or `ctx->view` pins an MVCC snapshot and every interleaved
  /// mutation is version-recorded (the ConcurrentExecutor wave contract).
  static PreparedOp Prepare(const xml::Document& doc, const Operation& op,
                            query::EvalContext* ctx);

  /// Executes `op` using `prep`'s precomputed targets/fragment, skipping
  /// location resolution. Falls back to Execute(op) semantics when `prep`
  /// is unprepared. Error handling matches Execute: the document is left
  /// untouched on failure.
  Result<OpEffect> ExecutePrepared(const Operation& op, PreparedOp prep);

  xml::Document* doc() { return doc_; }

 private:
  /// Evaluates through eval_ctx_ when one is set, else standalone.
  Result<query::QueryResult> Evaluate(const query::Query& q);

  /// Execute() minus the flight-recorder stamp. `prep` (nullable) supplies
  /// precomputed targets/fragment from Prepare.
  Result<OpEffect> ExecuteInternal(const Operation& op, PreparedOp* prep);

  /// Parses `op.location` and evaluates it, materializing needed service
  /// calls into `effect->edits` first. Returns the selected target nodes.
  Result<std::vector<xml::NodeId>> ResolveLocation(const Operation& op,
                                                   OpEffect* effect);

  /// Inserts the parsed `data_xml` fragment under `parent` (at `index` or
  /// appended), recording edits into `effect`.
  Status InsertData(const xml::Document& fragment, xml::NodeId parent,
                    bool has_index, size_t index, OpEffect* effect);

  xml::Document* doc_;
  axml::ServiceInvoker invoker_;
  std::vector<std::pair<std::string, std::string>> externals_;
  query::EvalContext* eval_ctx_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace axmlx::ops

#endif  // AXMLX_OPS_EXECUTOR_H_
