#ifndef AXMLX_OPS_CONFLICT_H_
#define AXMLX_OPS_CONFLICT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "ops/executor.h"
#include "xml/document.h"

namespace axmlx::ops {

/// One detected write-write conflict: `node` was written by `other_writer`
/// at document version `version`, and that write is invisible to (or
/// concurrent with) the requesting transaction's snapshot.
struct Conflict {
  xml::NodeId node = xml::kNullNode;
  uint64_t other_writer = 0;
  uint64_t version = 0;
};

/// Tracks which writers (transactions) are active against one document and
/// decides write-write conflicts at node granularity from the document's
/// MVCC version chains (DESIGN.md §10).
///
/// The rule is first-writer-wins without blocking: a write by transaction T
/// over node n conflicts iff n carries a version record by another writer
/// that either (a) postdates T's snapshot — the classic snapshot-isolation
/// first-committer check, evaluated eagerly at write time — or (b) belongs
/// to a writer that is still active, which forbids dirty writes: if T
/// overwrote an uncommitted write and that writer later compensated, the
/// compensation would clobber T's update.
class ConflictTable {
 public:
  /// Registers `writer` as active with its begin snapshot version.
  void BeginWriter(uint64_t writer, uint64_t snapshot);

  /// Unregisters `writer` (committed or aborted).
  void EndWriter(uint64_t writer);

  [[nodiscard]] bool IsActive(uint64_t writer) const;

  /// Oldest snapshot any active writer still reads through, or `fallback`
  /// when no writer is active. Version records at or below this are
  /// unreachable and safe to prune.
  [[nodiscard]] uint64_t OldestSnapshot(uint64_t fallback) const;

  /// Checks the write footprint of `effect` (applied to `doc` by `writer`,
  /// whose snapshot is `snapshot`) against all other writers' version
  /// records. Returns the first conflict found, or nullopt. The check runs
  /// *after* the effect applied, so the caller must roll the effect back on
  /// conflict; the effect's own version records are skipped via `writer`.
  [[nodiscard]] std::optional<Conflict> CheckEffect(const xml::Document& doc,
                                                    const OpEffect& effect,
                                                    uint64_t writer,
                                                    uint64_t snapshot) const;

  /// The node-granularity write footprint of an effect: for inserts the
  /// parent and inserted root, for removals the parent plus every removed
  /// node, for text edits the text node. Deduplicated, order unspecified.
  static void FootprintOf(const OpEffect& effect,
                          std::vector<xml::NodeId>* out);

 private:
  std::map<uint64_t, uint64_t> active_;  ///< writer -> snapshot version.
};

}  // namespace axmlx::ops

#endif  // AXMLX_OPS_CONFLICT_H_
