#ifndef AXMLX_REPO_SCENARIOS_H_
#define AXMLX_REPO_SCENARIOS_H_

#include <string>

#include "repo/axml_repository.h"

namespace axmlx::repo {

/// Configuration for the paper's example topologies.
struct ScenarioOptions {
  AxmlRepository::Protocol protocol = AxmlRepository::Protocol::kRecovering;
  txn::AxmlPeer::Options peer_options;

  /// Per-service simulated execution time.
  overlay::Tick duration = 5;

  /// Probability that AP5 faults while processing S5 (Figure 1's failure;
  /// set to 1.0 for the deterministic paper scenario).
  double s5_fault_probability = 0.0;

  /// Figure 1 timing: AP5 fails with S6 already invoked and finished, so
  /// the abort must cascade to AP6 (§3.2 steps 1-2).
  bool s5_fault_after_subcalls = true;

  /// Attach a catchAll absorb handler to AP3's embedded call of S5 — the
  /// paper's "AP3 tries to recover using the (application specific) fault
  /// handlers defined for the embedded service call S5" (§3.2 step 3).
  bool s5_handler_at_ap3 = false;

  /// Attach a catchAll absorb handler to AP1's embedded call of S3 — the
  /// next nesting level of forward recovery (§3.2 step 4).
  bool s3_handler_at_ap1 = false;

  /// Attach retry-on-replica handlers (times=1) instead of absorb handlers
  /// wherever a handler is requested; requires `add_replicas`.
  bool handlers_retry_on_replica = false;

  /// Create replica peers (suffix "R") mirroring every worker peer's
  /// documents and services.
  bool add_replicas = false;

  /// Number of insert operations each service performs on its local
  /// document (the compensable work).
  int ops_per_service = 2;

  uint64_t seed = 11;
};

/// Names used by both scenarios.
inline constexpr char kTxnName[] = "TA";

/// Builds the **Figure 1** topology (nested recovery protocol):
///   AP1 (origin, runs S1) -> S2@AP2, S3@AP3;
///   AP3 -> S4@AP4, S5@AP5;  AP5 -> S6@AP6.
/// AP5's S5 is the injected failure point. Every peer hosts a document
/// "Data<peer>" and its service appends `ops_per_service` log entries to it
/// (real, compensable work).
Status BuildFigureOne(AxmlRepository* repo, const ScenarioOptions& options);

/// Builds the **Figure 2** topology (peer disconnection scenarios):
///   AP1* (origin, super peer, runs S1) -> S2@AP2;
///   AP2 -> S3@AP3, S4@AP4;  AP3 -> S6@AP6;  AP4 -> S5@AP5.
/// Disconnections are injected by the caller via
/// repo->network().DisconnectAt(...).
Status BuildFigureTwo(AxmlRepository* repo, const ScenarioOptions& options);

/// Builds a uniform tree topology for parameter sweeps (E4): `depth` levels
/// with `fanout` children per level; peer ids "P", "P0", "P00", ... Each
/// peer runs service "S" doing `ops_per_service` inserts. Returns the id of
/// the origin peer through `origin`.
Status BuildUniformTree(AxmlRepository* repo, const ScenarioOptions& options,
                        int depth, int fanout, overlay::PeerId* origin);

/// The document hosted by peer `id` in these scenarios.
std::string ScenarioDocName(const overlay::PeerId& id);

}  // namespace axmlx::repo

#endif  // AXMLX_REPO_SCENARIOS_H_
