#include "repo/scenarios.h"

#include <utility>
#include <vector>

namespace axmlx::repo {
namespace {

/// Adds a peer with the scenario's protocol and options.
Status AddScenarioPeer(AxmlRepository* repo, const ScenarioOptions& options,
                       const overlay::PeerId& id, bool super_peer) {
  AxmlRepository::PeerConfig config;
  config.id = id;
  config.super_peer = super_peer;
  config.protocol = options.protocol;
  config.options = options.peer_options;
  config.seed = options.seed ^ std::hash<std::string>{}(id);
  return repo->AddPeer(config).status();
}

/// Hosts "Data<id>" on `id`: a store with a few items plus an empty log.
Status HostScenarioDocument(AxmlRepository* repo, const overlay::PeerId& id) {
  std::string doc = "<" + ScenarioDocName(id) + "><store>";
  for (int i = 1; i <= 3; ++i) {
    doc += "<item id=\"" + std::to_string(i) + "\">v" + std::to_string(i) +
           "</item>";
  }
  doc += "</store><log/></" + ScenarioDocName(id) + ">";
  return repo->HostDocument(id, doc);
}

/// The local workload of every scenario service: `ops_per_service` inserts
/// into the peer's log (compensable work with a measurable node cost).
std::vector<ops::Operation> ScenarioOps(const overlay::PeerId& id,
                                        const std::string& service,
                                        int ops_per_service) {
  std::vector<ops::Operation> out;
  for (int i = 0; i < ops_per_service; ++i) {
    out.push_back(ops::MakeInsert(
        "Select d from d in " + ScenarioDocName(id) + "//log",
        "<entry service=\"" + service + "\" seq=\"" + std::to_string(i) +
            "\">work</entry>"));
  }
  return out;
}

service::ServiceDefinition MakeScenarioService(
    const ScenarioOptions& options, const overlay::PeerId& id,
    const std::string& name) {
  service::ServiceDefinition def;
  def.name = name;
  def.document = ScenarioDocName(id);
  def.ops = ScenarioOps(id, name, options.ops_per_service);
  def.duration = options.duration;
  return def;
}

/// Builds the fault handler attached to an embedded call when a scenario
/// asks for one: absorb by default, retry-on-replica when configured.
axml::FaultHandler ScenarioHandler(const ScenarioOptions& options,
                                   const overlay::PeerId& failed_peer) {
  axml::FaultHandler handler;  // catchAll
  if (options.handlers_retry_on_replica) {
    handler.has_retry = true;
    handler.retry.times = 1;
    handler.retry.wait = 0;
    handler.retry.replica_url = failed_peer + "R";
  }
  return handler;
}

Status AddReplicas(AxmlRepository* repo, const ScenarioOptions& options,
                   const std::vector<overlay::PeerId>& peers) {
  if (!options.add_replicas) return Status::Ok();
  for (const overlay::PeerId& id : peers) {
    AXMLX_RETURN_IF_ERROR(
        AddScenarioPeer(repo, options, id + "R", /*super_peer=*/false));
    AXMLX_RETURN_IF_ERROR(repo->SetReplica(id, id + "R"));
  }
  return Status::Ok();
}

}  // namespace

std::string ScenarioDocName(const overlay::PeerId& id) { return "Data" + id; }

Status BuildFigureOne(AxmlRepository* repo, const ScenarioOptions& options) {
  const std::vector<overlay::PeerId> peers = {"AP1", "AP2", "AP3",
                                              "AP4", "AP5", "AP6"};
  for (const overlay::PeerId& id : peers) {
    AXMLX_RETURN_IF_ERROR(AddScenarioPeer(repo, options, id, id == "AP1"));
    AXMLX_RETURN_IF_ERROR(HostScenarioDocument(repo, id));
  }

  // Leaf services.
  AXMLX_RETURN_IF_ERROR(
      repo->HostService("AP2", MakeScenarioService(options, "AP2", "S2")));
  AXMLX_RETURN_IF_ERROR(
      repo->HostService("AP4", MakeScenarioService(options, "AP4", "S4")));
  AXMLX_RETURN_IF_ERROR(
      repo->HostService("AP6", MakeScenarioService(options, "AP6", "S6")));

  // S5@AP5 invokes S6@AP6 and is the failure point.
  {
    service::ServiceDefinition s5 = MakeScenarioService(options, "AP5", "S5");
    s5.fault_probability = options.s5_fault_probability;
    s5.fault_name = "S5Fault";
    s5.fault_after_subcalls = options.s5_fault_after_subcalls;
    s5.subcalls.push_back({"AP6", "S6", {}, {}});
    AXMLX_RETURN_IF_ERROR(repo->HostService("AP5", std::move(s5)));
  }
  // S3@AP3 invokes S4@AP4 and S5@AP5.
  {
    service::ServiceDefinition s3 = MakeScenarioService(options, "AP3", "S3");
    s3.subcalls.push_back({"AP4", "S4", {}, {}});
    service::ServiceDefinition::SubCall s5_call{"AP5", "S5", {}, {}};
    if (options.s5_handler_at_ap3) {
      s5_call.handlers.push_back(ScenarioHandler(options, "AP5"));
    }
    s3.subcalls.push_back(std::move(s5_call));
    AXMLX_RETURN_IF_ERROR(repo->HostService("AP3", std::move(s3)));
  }
  // S1@AP1 (the transaction root) invokes S2@AP2 and S3@AP3.
  {
    service::ServiceDefinition s1 = MakeScenarioService(options, "AP1", "S1");
    s1.subcalls.push_back({"AP2", "S2", {}, {}});
    service::ServiceDefinition::SubCall s3_call{"AP3", "S3", {}, {}};
    if (options.s3_handler_at_ap1) {
      s3_call.handlers.push_back(ScenarioHandler(options, "AP3"));
    }
    s1.subcalls.push_back(std::move(s3_call));
    AXMLX_RETURN_IF_ERROR(repo->HostService("AP1", std::move(s1)));
  }

  return AddReplicas(repo, options, {"AP2", "AP3", "AP4", "AP5", "AP6"});
}

Status BuildFigureTwo(AxmlRepository* repo, const ScenarioOptions& options) {
  const std::vector<overlay::PeerId> peers = {"AP1", "AP2", "AP3",
                                              "AP4", "AP5", "AP6"};
  for (const overlay::PeerId& id : peers) {
    // "super peers ... are highlighted by an * following their identifiers
    // (AP1*)" — AP1 is the scenario's super peer.
    AXMLX_RETURN_IF_ERROR(AddScenarioPeer(repo, options, id, id == "AP1"));
    AXMLX_RETURN_IF_ERROR(HostScenarioDocument(repo, id));
  }

  AXMLX_RETURN_IF_ERROR(
      repo->HostService("AP6", MakeScenarioService(options, "AP6", "S6")));
  AXMLX_RETURN_IF_ERROR(
      repo->HostService("AP5", MakeScenarioService(options, "AP5", "S5")));
  {
    service::ServiceDefinition s3 = MakeScenarioService(options, "AP3", "S3");
    s3.subcalls.push_back({"AP6", "S6", {}, {}});
    AXMLX_RETURN_IF_ERROR(repo->HostService("AP3", std::move(s3)));
  }
  {
    service::ServiceDefinition s4 = MakeScenarioService(options, "AP4", "S4");
    s4.subcalls.push_back({"AP5", "S5", {}, {}});
    AXMLX_RETURN_IF_ERROR(repo->HostService("AP4", std::move(s4)));
  }
  {
    service::ServiceDefinition s2 = MakeScenarioService(options, "AP2", "S2");
    service::ServiceDefinition::SubCall s3_call{"AP3", "S3", {}, {}};
    service::ServiceDefinition::SubCall s4_call{"AP4", "S4", {}, {}};
    // Recovery of S3 on a replica is case (b)/(c)'s forward path.
    s3_call.handlers.push_back(ScenarioHandler(options, "AP3"));
    s4_call.handlers.push_back(ScenarioHandler(options, "AP4"));
    s2.subcalls.push_back(std::move(s3_call));
    s2.subcalls.push_back(std::move(s4_call));
    AXMLX_RETURN_IF_ERROR(repo->HostService("AP2", std::move(s2)));
  }
  {
    service::ServiceDefinition s1 = MakeScenarioService(options, "AP1", "S1");
    s1.subcalls.push_back({"AP2", "S2", {}, {}});
    AXMLX_RETURN_IF_ERROR(repo->HostService("AP1", std::move(s1)));
  }

  return AddReplicas(repo, options, {"AP2", "AP3", "AP4", "AP5", "AP6"});
}

namespace {

Status BuildTreeRec(AxmlRepository* repo, const ScenarioOptions& options,
                    const overlay::PeerId& id, int depth, int fanout) {
  AXMLX_RETURN_IF_ERROR(AddScenarioPeer(repo, options, id, /*super=*/false));
  AXMLX_RETURN_IF_ERROR(HostScenarioDocument(repo, id));
  service::ServiceDefinition def = MakeScenarioService(options, id, "S");
  if (depth > 0) {
    for (int i = 0; i < fanout; ++i) {
      overlay::PeerId child = id + std::to_string(i);
      AXMLX_RETURN_IF_ERROR(
          BuildTreeRec(repo, options, child, depth - 1, fanout));
      def.subcalls.push_back({child, "S", {}, {}});
    }
  }
  return repo->HostService(id, std::move(def));
}

}  // namespace

Status BuildUniformTree(AxmlRepository* repo, const ScenarioOptions& options,
                        int depth, int fanout, overlay::PeerId* origin) {
  *origin = "P";
  return BuildTreeRec(repo, options, *origin, depth, fanout);
}

}  // namespace axmlx::repo
