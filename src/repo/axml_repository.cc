#include "repo/axml_repository.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <fstream>
#include <utility>

#include "recovery/chained_peer.h"
#include "recovery/recovering_peer.h"
#include "xml/diff.h"
#include "xml/parser.h"

namespace axmlx::repo {

LocalTransaction::LocalTransaction(xml::Document* doc,
                                   axml::ServiceInvoker invoker)
    : executor_(doc, std::move(invoker)) {}

void LocalTransaction::SetExternal(const std::string& name,
                                   const std::string& value) {
  executor_.SetExternal(name, value);
}

Result<const ops::OpEffect*> LocalTransaction::Execute(
    const ops::Operation& op) {
  if (!active_) {
    return FailedPrecondition("transaction is no longer active");
  }
  AXMLX_ASSIGN_OR_RETURN(ops::OpEffect effect, executor_.Execute(op));
  log_.Append(std::move(effect));
  return &log_.effects().back();
}

Status LocalTransaction::Commit() {
  if (!active_) return FailedPrecondition("transaction is no longer active");
  active_ = false;
  log_.Clear();
  return Status::Ok();
}

Status LocalTransaction::Abort() {
  if (!active_) return FailedPrecondition("transaction is no longer active");
  active_ = false;
  comp::CompensationPlan plan = comp::CompensationBuilder::ForLog(log_);
  return comp::ApplyPlan(&executor_, plan);
}

comp::CompensationPlan LocalTransaction::PendingCompensation() const {
  return comp::CompensationBuilder::ForLog(log_);
}

AxmlRepository::AxmlRepository(uint64_t seed) {
  network_ = std::make_unique<overlay::Network>(seed, &trace_);
  network_->SetRecorders(&recorders_);
  // The overlay learns the txn-layer header key here so it can charge
  // in-flight messages to the right transaction window.
  network_->SetTimeline(&timeline_, txn::kHdrTxn);
  spans_.AttachRecorders(&recorders_);
}

std::unique_ptr<txn::AxmlPeer> AxmlRepository::MakePeer(
    const PeerConfig& config) {
  switch (config.protocol) {
    case Protocol::kBaseline:
      return std::make_unique<txn::AxmlPeer>(config.id, config.super_peer,
                                             config.seed, config.options,
                                             &directory_);
    case Protocol::kRecovering:
      return std::make_unique<recovery::RecoveringPeer>(
          config.id, config.super_peer, config.seed, config.options,
          &directory_);
    case Protocol::kChained:
      return std::make_unique<recovery::ChainedPeer>(
          config.id, config.super_peer, config.seed, config.options,
          &directory_);
  }
  return nullptr;
}

Result<txn::AxmlPeer*> AxmlRepository::AddPeer(const PeerConfig& config) {
  if (FindPeer(config.id) != nullptr) {
    return AlreadyExists("peer " + config.id + " already exists");
  }
  std::unique_ptr<txn::AxmlPeer> peer = MakePeer(config);
  txn::AxmlPeer* raw = peer.get();
  raw->AttachSpans(&spans_);
  raw->AttachRecorder(recorders_.ForPeer(config.id));
  raw->AttachTimeline(&timeline_);
  directory_.Register(config.id, &raw->repository(), config.super_peer);
  network_->AddPeer(std::move(peer));
  peers_.push_back(raw);
  return raw;
}

Status AxmlRepository::CrashPeer(const overlay::PeerId& id) {
  txn::AxmlPeer* peer = FindPeer(id);
  if (peer == nullptr) return NotFound("unknown peer " + id);
  // Deregister before the repository object dies with the peer.
  directory_.Deregister(id);
  AXMLX_RETURN_IF_ERROR(network_->Crash(id));
  for (auto it = peers_.begin(); it != peers_.end(); ++it) {
    if (*it == peer) {
      peers_.erase(it);
      break;
    }
  }
  obs::ForensicDumpOptions dump;
  dump.reason = "crash";
  dump.peer = id;
  dump.time = network_->now();
  DumpForensics(dump);
  return Status::Ok();
}

Result<txn::AxmlPeer*> AxmlRepository::RestartPeer(const PeerConfig& config) {
  if (!network_->IsCrashed(config.id)) {
    return FailedPrecondition("peer " + config.id + " is not crashed");
  }
  std::unique_ptr<txn::AxmlPeer> peer = MakePeer(config);
  txn::AxmlPeer* raw = peer.get();
  raw->AttachSpans(&spans_);
  raw->AttachRecorder(recorders_.ForPeer(config.id));
  raw->AttachTimeline(&timeline_);
  directory_.Register(config.id, &raw->repository(), config.super_peer);
  AXMLX_RETURN_IF_ERROR(network_->Restart(std::move(peer)));
  peers_.push_back(raw);
  return raw;
}

txn::AxmlPeer* AxmlRepository::FindPeer(const overlay::PeerId& id) {
  for (txn::AxmlPeer* p : peers_) {
    if (p->id() == id) return p;
  }
  return nullptr;
}

Status AxmlRepository::HostDocument(const overlay::PeerId& peer,
                                    const std::string& xml_text) {
  txn::AxmlPeer* p = FindPeer(peer);
  if (p == nullptr) return NotFound("unknown peer " + peer);
  AXMLX_ASSIGN_OR_RETURN(auto doc, xml::Parse(xml_text));
  return p->repository().AddDocument(std::move(doc));
}

Status AxmlRepository::HostService(const overlay::PeerId& peer,
                                   service::ServiceDefinition service) {
  txn::AxmlPeer* p = FindPeer(peer);
  if (p == nullptr) return NotFound("unknown peer " + peer);
  return p->repository().AddService(std::move(service));
}

Status AxmlRepository::SetReplica(const overlay::PeerId& original,
                                  const overlay::PeerId& replica) {
  txn::AxmlPeer* orig = FindPeer(original);
  txn::AxmlPeer* rep = FindPeer(replica);
  if (orig == nullptr || rep == nullptr) {
    return NotFound("unknown peer in replica mapping");
  }
  // Clone the documents (replication of "AXML documents ... on multiple
  // peers", §1) and mirror the service definitions.
  for (const std::string& name : orig->repository().DocumentNames()) {
    const xml::Document* doc = orig->repository().GetDocument(name);
    AXMLX_RETURN_IF_ERROR(rep->repository().AddDocument(doc->Clone()));
  }
  for (const std::string& name : orig->repository().ServiceNames()) {
    if (rep->repository().FindService(name) != nullptr) continue;
    AXMLX_RETURN_IF_ERROR(
        rep->repository().AddService(*orig->repository().FindService(name)));
  }
  directory_.SetReplica(original, replica);
  return Status::Ok();
}

Result<size_t> AxmlRepository::ResyncFromReplica(const overlay::PeerId& peer) {
  txn::AxmlPeer* original = FindPeer(peer);
  if (original == nullptr) return NotFound("unknown peer " + peer);
  overlay::PeerId replica_id = directory_.ReplicaOf(peer);
  if (replica_id.empty()) {
    return FailedPrecondition("peer " + peer + " has no replica");
  }
  txn::AxmlPeer* replica = FindPeer(replica_id);
  if (replica == nullptr) return NotFound("unknown replica " + replica_id);
  size_t total = 0;
  for (const std::string& name : original->repository().DocumentNames()) {
    xml::Document* mine = original->repository().GetDocument(name);
    const xml::Document* theirs = replica->repository().GetDocument(name);
    if (theirs == nullptr) continue;  // never replicated
    AXMLX_ASSIGN_OR_RETURN(xml::DocumentDiff diff,
                           xml::ComputeDiff(*mine, *theirs));
    AXMLX_RETURN_IF_ERROR(xml::ApplyDiff(mine, diff));
    total += diff.NodesAffected();
  }
  return total;
}

Result<TxnOutcome> AxmlRepository::RunTransaction(
    const overlay::PeerId& origin, const std::string& txn,
    const std::string& service, const txn::Params& params) {
  txn::AxmlPeer* p = FindPeer(origin);
  if (p == nullptr) return NotFound("unknown peer " + origin);
  TxnOutcome outcome;
  overlay::Tick start = network_->now();
  int64_t messages_before = network_->stats().messages_sent;
  overlay::Network* net = network_.get();
  AXMLX_RETURN_IF_ERROR(p->Submit(
      net, txn, service, params,
      [&outcome, net, start](const std::string&, Status status) {
        outcome.decided = true;
        outcome.status = std::move(status);
        outcome.duration = net->now() - start;  // time-to-decision
      }));
  network_->RunUntilQuiescent();
  if (!outcome.decided) outcome.duration = network_->now() - start;
  outcome.messages = network_->stats().messages_sent - messages_before;
  if (!outcome.decided) {
    outcome.status = Timeout("transaction " + txn +
                             " reached quiescence without a decision");
  }
  if (!outcome.status.ok()) {
    // Abort cascade (or a stuck transaction): capture the black box while
    // the involved peers' rings still hold the failure neighbourhood.
    obs::ForensicDumpOptions dump;
    dump.reason = outcome.decided ? "abort-cascade" : "undecided";
    dump.peer = origin;
    dump.txn = txn;
    dump.time = network_->now();
    DumpForensics(dump);
  }
  return outcome;
}

std::string AxmlRepository::DumpForensics(
    const obs::ForensicDumpOptions& options) {
  last_forensic_dump_ = obs::BuildForensicDump(recorders_, options, &spans_);
  if (forensics_dir_.empty()) return std::string();
  ::mkdir(forensics_dir_.c_str(), 0755);
  std::string path = forensics_dir_ + "/forensic-" +
                     std::to_string(++dump_counter_) + "-" + options.reason +
                     ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return std::string();
  out << last_forensic_dump_;
  forensic_paths_.push_back(path);
  return path;
}

}  // namespace axmlx::repo
