#ifndef AXMLX_REPO_AXML_REPOSITORY_H_
#define AXMLX_REPO_AXML_REPOSITORY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/trace.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "obs/timeline.h"
#include "compensation/compensation.h"
#include "ops/executor.h"
#include "ops/op_log.h"
#include "overlay/network.h"
#include "runtime/job_queue.h"
#include "service/repository.h"
#include "txn/directory.h"
#include "txn/peer.h"
#include "xml/document.h"

namespace axmlx::repo {

/// A single-peer atomic unit of work: execute AXML operations against one
/// document, then Commit (keep) or Abort (dynamically compensate in reverse
/// order, §3.1). This is the entry-level public API — see
/// examples/quickstart.cpp.
class LocalTransaction {
 public:
  /// `doc` must outlive the transaction. `invoker` resolves embedded
  /// service-call materializations (may be null to forbid them).
  LocalTransaction(xml::Document* doc, axml::ServiceInvoker invoker);

  /// Supplies `$name` external parameter values for service calls.
  void SetExternal(const std::string& name, const std::string& value);

  /// Executes one operation; its effects are logged for compensation.
  Result<const ops::OpEffect*> Execute(const ops::Operation& op);

  /// Ends the transaction keeping its effects.
  Status Commit();

  /// Ends the transaction, undoing all effects by executing the
  /// dynamically constructed compensating operations in reverse order.
  Status Abort();

  bool active() const { return active_; }

  /// The compensation plan that Abort() would run now.
  comp::CompensationPlan PendingCompensation() const;

  /// Nodes affected so far (the paper's cost measure).
  size_t NodesAffected() const { return log_.TotalNodesAffected(); }

 private:
  ops::Executor executor_;
  ops::OpLog log_;
  bool active_ = true;
};

/// Outcome of a distributed transaction driven to quiescence.
struct TxnOutcome {
  Status status;                 ///< OK = committed; kAborted/kTimeout else.
  overlay::Tick duration = 0;    ///< Submit-to-decision simulation time.
  int64_t messages = 0;          ///< Messages sent while it ran.
  bool decided = false;          ///< False = stuck (no commit and no abort).
};

/// The full P2P AXML repository: a set of transactional peers on a
/// simulated overlay. This facade owns the network, the service directory,
/// and the trace; peers are added with a chosen protocol level:
/// - kBaseline: abort-everything recovery (no fault handlers);
/// - kRecovering: nested recovery + fault handlers (§3.2);
/// - kChained: + chain-based disconnection handling (§3.3).
class AxmlRepository {
 public:
  enum class Protocol { kBaseline, kRecovering, kChained };

  struct PeerConfig {
    overlay::PeerId id;
    bool super_peer = false;
    Protocol protocol = Protocol::kRecovering;
    txn::AxmlPeer::Options options;
    uint64_t seed = 7;
  };

  explicit AxmlRepository(uint64_t seed = 1);

  // The network holds a pointer to the repository's trace; moving or
  // copying would dangle it.
  AxmlRepository(const AxmlRepository&) = delete;
  AxmlRepository& operator=(const AxmlRepository&) = delete;

  /// Adds a peer. The repository keeps ownership; the returned pointer is
  /// valid for the repository's lifetime.
  Result<txn::AxmlPeer*> AddPeer(const PeerConfig& config);

  txn::AxmlPeer* FindPeer(const overlay::PeerId& id);

  /// Crash-stops `peer`: removes it from the directory and destroys the
  /// in-memory peer object (contexts, repository documents, dedup state —
  /// everything volatile is gone, exactly like a process kill). The overlay
  /// slot is kept so the peer can be rebuilt and restarted later.
  Status CrashPeer(const overlay::PeerId& id);

  /// Rebuilds a previously crashed peer from scratch (empty repository) and
  /// rejoins it to the overlay. The caller re-hosts documents/services —
  /// typically from recovered durable state — before using it.
  Result<txn::AxmlPeer*> RestartPeer(const PeerConfig& config);

  /// Parses `xml_text` and hosts it on `peer` under its root element name.
  Status HostDocument(const overlay::PeerId& peer,
                      const std::string& xml_text);

  /// Registers `service` on `peer`.
  Status HostService(const overlay::PeerId& peer,
                     service::ServiceDefinition service);

  /// Declares `replica` as replicating `original`: clones every document
  /// and service definition of `original` onto `replica` and records the
  /// mapping in the directory (used for replica retry and peer-independent
  /// compensation after disconnection).
  Status SetReplica(const overlay::PeerId& original,
                    const overlay::PeerId& replica);

  /// Reconnection catch-up: after `peer` rejoins the overlay, synchronizes
  /// every document it hosts from its replica using id-based diff scripts
  /// (the replica served retries while the peer was away, so its copies are
  /// authoritative). Returns the total nodes the sync scripts touched.
  Result<size_t> ResyncFromReplica(const overlay::PeerId& peer);

  /// Submits `service` at `origin` as transaction `txn` and runs the
  /// network to quiescence. Returns the decision (or decided=false when the
  /// transaction is stuck — e.g. an undetected disconnection).
  Result<TxnOutcome> RunTransaction(const overlay::PeerId& origin,
                                    const std::string& txn,
                                    const std::string& service,
                                    const txn::Params& params = {});

  /// Creates the repository's typed-priority worker pool and attaches it to
  /// the overlay (drained at every event boundary), the phase timeline, the
  /// flight recorders, and the network's metrics registry (runtime.*/job.*
  /// series). `options.workers == 0` is the deterministic single-thread
  /// scheduler, `> 0` spawns that many real worker threads — outcomes are
  /// identical by construction (DESIGN.md §11). Call before peers start
  /// doing work; calling again replaces the pool.
  void EnableRuntime(const runtime::JobQueueOptions& options) {
    network_->SetRuntime(nullptr);
    runtime_ = std::make_unique<runtime::JobQueue>(options);
    runtime_->AttachMetrics(&network_->metrics());
    runtime_->AttachTimeline(&timeline_);
    runtime_->AttachRecorders(&recorders_);
    network_->SetRuntime(runtime_.get());
  }

  /// The worker pool, or null when EnableRuntime was never called.
  runtime::JobQueue* runtime() { return runtime_.get(); }

  overlay::Network& network() { return *network_; }
  txn::ServiceDirectory& directory() { return directory_; }
  Trace& trace() { return trace_; }
  /// Causal span log shared by every peer of this repository — the
  /// cross-peer invocation tree (TXN/SERVICE/COMPENSATION/RECOVERY spans)
  /// reconstructs from it; render with tools/axmlx_report.
  obs::SpanTracker& spans() { return spans_; }

  /// Per-peer always-on flight recorders: the overlay stamps message
  /// events, each peer stamps txn/compensation events, and the span tracker
  /// mirrors span open/close — all into one (time, seq)-ordered set.
  obs::FlightRecorderSet& recorders() { return recorders_; }

  /// Per-transaction phase timeline (critical-path attribution): the origin
  /// peer opens each transaction's window, and the overlay, peers, and any
  /// attached DurableStore place phase claims inside it. Phases partition
  /// every window by construction — see DESIGN.md §7.
  obs::Timeline& timeline() { return timeline_; }

  /// Renders the repository's flight-recorder, span, and timeline state as
  /// an "axmlx-trace-v1" Chrome trace_event JSON document (Perfetto-
  /// loadable); see obs::BuildTraceJson.
  std::string BuildTrace() const {
    return obs::BuildTraceJson(&recorders_, &spans_, &timeline_);
  }

  // --- Crash forensics -----------------------------------------------------

  /// Directory to write forensic dumps into (created on demand). Empty — the
  /// default — keeps dumps in memory only (see last_forensic_dump()).
  void SetForensicsDir(const std::string& dir) { forensics_dir_ = dir; }

  /// Builds the "axmlx-forensics-v1" black-box artifact for the current
  /// recorder/span state and, when a forensics directory is set, writes it
  /// as forensic-<n>-<reason>.json. Returns the written path (empty when
  /// kept in memory only). Called automatically on CrashPeer and on an
  /// aborted RunTransaction; harnesses call it directly for their own
  /// triggers (e.g. a fault drill's atomicity violation).
  std::string DumpForensics(const obs::ForensicDumpOptions& options);

  /// The most recent dump's JSON (empty before the first dump).
  const std::string& last_forensic_dump() const { return last_forensic_dump_; }

  /// Paths of all dumps written to the forensics directory, in dump order.
  const std::vector<std::string>& forensic_paths() const {
    return forensic_paths_;
  }

 private:
  std::unique_ptr<txn::AxmlPeer> MakePeer(const PeerConfig& config);

  Trace trace_;
  obs::SpanTracker spans_;
  obs::Timeline timeline_;            ///< Must precede network_.
  obs::FlightRecorderSet recorders_;  ///< Must precede network_.
  std::unique_ptr<overlay::Network> network_;
  std::unique_ptr<runtime::JobQueue> runtime_;  ///< Joined before the rest.
  txn::ServiceDirectory directory_;
  std::vector<txn::AxmlPeer*> peers_;
  std::string forensics_dir_;
  std::string last_forensic_dump_;
  std::vector<std::string> forensic_paths_;
  int dump_counter_ = 0;
};

}  // namespace axmlx::repo

#endif  // AXMLX_REPO_AXML_REPOSITORY_H_
