#ifndef AXMLX_REPO_INTROSPECTION_H_
#define AXMLX_REPO_INTROSPECTION_H_

#include <string>

#include "common/status.h"
#include "overlay/network.h"
#include "repo/axml_repository.h"

namespace axmlx::repo {

/// Root element (and hence hosted-document name) of the per-peer
/// introspection document.
inline constexpr char kStatsDocumentName[] = "AxmlStats";

/// Name of the native service backing the stats document.
inline constexpr char kStatsServiceName[] = "getStats";

/// How many trailing flight-recorder events the stats document exposes.
inline constexpr size_t kStatsRecorderTail = 16;

/// Installs the read-only `AxmlStats` introspection document on `peer_id`:
///
///   <AxmlStats><snapshot><axml:sc methodName="getStats"
///                                 outputName="stats" .../></snapshot>
///   </AxmlStats>
///
/// The embedded `getStats` call (replace mode) materializes a fresh
/// snapshot of the peer's own observability state — metrics counters and
/// gauges, its open spans, and the tail of its flight recorder — whenever a
/// query reads `stats` under the static `snapshot` binding site, e.g.
///
///   Select s/stats from s in AxmlStats//snapshot
///
/// The repository introspects itself through its own service-call
/// mechanism: no side channel, the same lazy materialization and query
/// machinery as any data document.
///
/// Opt-in per peer. The service definition and document live in the peer's
/// repository, so a crash destroys them like any other volatile state;
/// reinstall after RestartPeer when introspection should survive restarts.
Status InstallStatsDocument(AxmlRepository* repo,
                            const overlay::PeerId& peer_id);

}  // namespace axmlx::repo

#endif  // AXMLX_REPO_INTROSPECTION_H_
