#include "repo/fault_drill.h"

#include <filesystem>
#include <iostream>
#include <set>
#include <utility>

#include "obs/metric_names.h"
#include "repo/scenarios.h"

namespace axmlx::repo {
namespace {

/// WriteJournal adapter: mirrors a peer's transactional writes into its
/// durable store. The store keeps its *own* document copies (ids preserved
/// by cloning at seed time), journals every forward operation before
/// applying it, and on a final decision either commits or rolls back using
/// its own effect log — so a crash between any two steps recovers to a
/// consistent state from the WAL alone.
class StoreJournal : public txn::WriteJournal {
 public:
  /// `errors` (drill-registry-owned, outlives the journal) counts store
  /// operations that failed: the journal interface is fire-and-forget, but a
  /// WAL that diverges from the in-memory documents must not go unnoticed —
  /// the drill report surfaces the count and tests assert it is zero.
  StoreJournal(storage::DurableStore* store, obs::Counter* errors)
      : store_(store), errors_(errors) {}

  void OnApply(const std::string& txn, const std::string& document,
               const std::vector<ops::Operation>& ops) override {
    if (begun_.insert(txn).second) {
      if (!store_->Begin(txn).ok()) {
        begun_.erase(txn);
        ++*errors_;
        return;
      }
    }
    for (const ops::Operation& op : ops) {
      if (!store_->Execute(txn, document, op).ok()) ++*errors_;
    }
  }

  void OnResolved(const std::string& txn, bool committed) override {
    // Resolutions repeat (duplicate COMMITs, compensate-after-abort); only
    // the first one after journaled work does anything.
    if (begun_.erase(txn) == 0) return;
    Status s = committed ? store_->Commit(txn) : store_->Abort(txn);
    if (!s.ok()) ++*errors_;
  }

  void OnDedup(const std::string& key) override {
    if (!store_->JournalDedupKey(key).ok()) ++*errors_;
  }

 private:
  storage::DurableStore* store_;
  obs::Counter* errors_;
  std::set<std::string> begun_;
};

bool IsReplicaId(const overlay::PeerId& id) {
  return !id.empty() && id.back() == 'R';
}

size_t CountEntries(const xml::Document* doc) {
  size_t count = 0;
  doc->Walk(doc->root(), [&count](const xml::Node& n) {
    if (n.is_element() && n.name == "entry") ++count;
    return true;
  });
  return count;
}

}  // namespace

FaultDrill::FaultDrill(FaultDrillOptions options)
    : options_(std::move(options)) {}

FaultDrill::~FaultDrill() = default;

std::string FaultDrill::StoreDir(const overlay::PeerId& id,
                                 int incarnation) const {
  return storage_root_ + "/" + id + "-inc" + std::to_string(incarnation);
}

Status FaultDrill::AttachStorage(const overlay::PeerId& id,
                                 const std::vector<std::string>& docs) {
  PeerStorage& ps = storage_[id];
  ps.store = std::make_unique<storage::DurableStore>(
      StoreDir(id, ps.incarnation), /*invoker=*/nullptr);
  ps.store->AttachTimeline(&repo_->timeline());
  AXMLX_RETURN_IF_ERROR(ps.store->Open());
  // Post-Open: recovery replay stays synchronous; only live WAL traffic
  // goes through the pool.
  if (repo_->runtime() != nullptr) {
    ps.store->AttachRuntime(repo_->runtime(), id);
  }
  for (const std::string& xml_text : docs) {
    AXMLX_RETURN_IF_ERROR(ps.store->CreateDocument(xml_text));
  }
  ps.journal = std::make_unique<StoreJournal>(
      ps.store.get(), metrics_.GetCounter(obs::kMetricDrillJournalErrors));
  txn::AxmlPeer* peer = repo_->FindPeer(id);
  if (peer == nullptr) return NotFound("no peer " + id + " to journal");
  peer->AttachJournal(ps.journal.get());
  return Status::Ok();
}

Status FaultDrill::SetUp() {
  storage_root_ = options_.storage_dir.empty()
                      ? std::filesystem::temp_directory_path().string() +
                            "/axmlx_fault_drill_" +
                            std::to_string(options_.seed)
                      : options_.storage_dir;
  std::error_code ec;
  std::filesystem::remove_all(storage_root_, ec);  // stale WALs poison runs
  std::filesystem::create_directories(storage_root_, ec);
  if (ec) {
    return Internal("cannot create storage root " + storage_root_ + ": " +
                    ec.message());
  }

  repo_ = std::make_unique<AxmlRepository>(options_.seed);
  if (options_.runtime_workers >= 0) {
    runtime::JobQueueOptions rt;
    rt.workers = options_.runtime_workers;
    rt.seed = options_.runtime_seed;
    repo_->EnableRuntime(rt);
  }
  // Black boxes land next to the WALs they explain.
  repo_->SetForensicsDir(storage_root_ + "/forensics");
  repo_->network().SetLatency(/*base=*/1, /*jitter=*/2);
  // Per-phase txn.latency.* histograms land in the drill's registry, next
  // to the drill counters the report is assembled from.
  repo_->timeline().AttachMetrics(&metrics_);
  repo_->spans().AttachMetrics(&metrics_);

  ScenarioOptions scen;
  scen.protocol = AxmlRepository::Protocol::kChained;
  scen.peer_options.peer_independent = true;
  scen.peer_options.use_chaining = true;
  scen.peer_options.keepalive_interval = options_.keepalive_interval;
  scen.peer_options.txn_timeout = options_.txn_timeout;
  scen.peer_options.control_resend_interval =
      options_.control_resend_interval;
  scen.ops_per_service = options_.ops_per_service;
  scen.seed = options_.seed;
  AXMLX_RETURN_IF_ERROR(BuildUniformTree(repo_.get(), scen, options_.depth,
                                         options_.fanout, &origin_));

  workers_.clear();
  for (const overlay::PeerId& id : repo_->network().peer_ids()) {
    if (!IsReplicaId(id)) workers_.push_back(id);
  }
  // Replicas for every tree peer (BuildUniformTree has no add_replicas
  // path of its own): retry targets, compensation fallbacks, and the
  // resync source after a crash.
  for (const overlay::PeerId& id : workers_) {
    AxmlRepository::PeerConfig rc;
    rc.id = id + "R";
    rc.protocol = scen.protocol;
    rc.options = scen.peer_options;
    rc.seed = scen.seed ^ std::hash<std::string>{}(rc.id);
    AXMLX_RETURN_IF_ERROR(repo_->AddPeer(rc).status());
    AXMLX_RETURN_IF_ERROR(repo_->SetReplica(id, id + "R"));
  }

  for (const overlay::PeerId& id : workers_) {
    const xml::Document* doc = repo_->FindPeer(id)->repository().GetDocument(
        ScenarioDocName(id));
    if (doc == nullptr) return NotFound("no scenario doc on " + id);
    AXMLX_RETURN_IF_ERROR(AttachStorage(id, {doc->Serialize()}));
  }

  plan_ = std::make_unique<overlay::FaultPlan>(options_.seed ^ 0x5eedULL);
  if (options_.drop_rate > 0 || options_.dup_rate > 0 ||
      options_.misroute_rate > 0 || options_.delay_max > 0) {
    overlay::FaultRule rule;  // wildcard: every link, every type
    rule.drop_rate = options_.drop_rate;
    rule.dup_rate = options_.dup_rate;
    rule.misroute_rate = options_.misroute_rate;
    rule.delay_max = options_.delay_max;
    plan_->AddRule(rule);
  }
  repo_->network().SetFaultPlan(plan_.get());
  return Status::Ok();
}

Status FaultDrill::CrashNow(const overlay::PeerId& id) {
  AXMLX_RETURN_IF_ERROR(repo_->CrashPeer(id));
  // The process died: its store object (buffers, open handles) dies with
  // it. The WAL already on disk is all that survives.
  PeerStorage& ps = storage_[id];
  ps.journal.reset();
  ps.store.reset();
  ++*metrics_.GetCounter(obs::kMetricDrillCrashes);
  return Status::Ok();
}

Status FaultDrill::RestartNow(const overlay::PeerId& id) {
  PeerStorage& ps = storage_[id];
  std::vector<std::string> recovered_docs;
  std::vector<std::string> recovered_dedup_keys;
  std::map<std::string, bool> recovered_outcomes;
  {
    // Recovery proper: reopen the crashed incarnation's store. Open()
    // replays the WAL in order and rolls back transactions that were
    // in-flight at the crash — the peer's documents are rebuilt from this
    // and nothing else.
    storage::DurableStore recovery(StoreDir(id, ps.incarnation),
                                   /*invoker=*/nullptr);
    // Loser rollbacks during replay stamp RECOVERY markers into the open
    // transaction windows they interrupt.
    recovery.AttachTimeline(&repo_->timeline());
    AXMLX_RETURN_IF_ERROR(recovery.Open());
    *metrics_.GetCounter(obs::kMetricDrillWalReplayedOps) +=
        recovery.stats().replayed_ops;
    *metrics_.GetCounter(obs::kMetricDrillWalRecoveredTxns) +=
        recovery.stats().recovered_txns;
    for (const std::string& name : recovery.DocumentNames()) {
      recovered_docs.push_back(recovery.Get(name)->Serialize());
    }
    // The at-most-once window and decision map must survive the restart:
    // a control retransmission (e.g. COMPENSATE) that lands on the new
    // incarnation would otherwise be applied a second time.
    recovered_dedup_keys = recovery.seen_dedup_keys();
    recovered_outcomes = recovery.resolved_outcomes();

    AxmlRepository::PeerConfig config;
    config.id = id;
    config.protocol = AxmlRepository::Protocol::kChained;
    config.options = repo_->FindPeer(origin_)->options();
    config.seed = options_.seed ^ std::hash<std::string>{}(id);
    AXMLX_ASSIGN_OR_RETURN(txn::AxmlPeer * peer,
                           repo_->RestartPeer(config));

    for (const std::string& name : recovery.DocumentNames()) {
      AXMLX_RETURN_IF_ERROR(
          peer->repository().AddDocument(recovery.Get(name)->Clone()));
    }
    // Service definitions are code, not volatile state: reinstall them from
    // the replica's mirror (the simulator's stand-in for redeployment).
    overlay::PeerId replica = repo_->directory().ReplicaOf(id);
    service::Repository* mirror = repo_->directory().MutableRepo(replica);
    if (mirror == nullptr) {
      return FailedPrecondition("no replica mirror for " + id);
    }
    for (const std::string& name : mirror->ServiceNames()) {
      AXMLX_RETURN_IF_ERROR(
          peer->repository().AddService(*mirror->FindService(name)));
    }
  }

  // Distributed catch-up: transactions that committed while this peer was
  // down ran on (and were pushed to) its replica; diff-sync from it.
  AXMLX_ASSIGN_OR_RETURN(size_t nodes, repo_->ResyncFromReplica(id));
  *metrics_.GetCounter(obs::kMetricDrillResyncNodes) +=
      static_cast<int64_t>(nodes);
  ++*metrics_.GetCounter(obs::kMetricDrillRestarts);

  // Fresh durable incarnation seeded from the caught-up live state.
  ++ps.incarnation;
  std::vector<std::string> seeded;
  txn::AxmlPeer* peer = repo_->FindPeer(id);
  for (const std::string& name : peer->repository().DocumentNames()) {
    seeded.push_back(peer->repository().GetDocument(name)->Serialize());
  }
  AXMLX_RETURN_IF_ERROR(AttachStorage(id, seeded));
  // Rebuild the rebuilt peer's dedup window and decision map from the WAL,
  // and re-journal both into the new incarnation so a *second* crash still
  // has them.
  for (const std::string& key : recovered_dedup_keys) {
    peer->SeedDedupKey(key);
    AXMLX_RETURN_IF_ERROR(ps.store->JournalDedupKey(key));
  }
  for (const auto& [txn, committed] : recovered_outcomes) {
    peer->SeedResolution(txn, committed);
    AXMLX_RETURN_IF_ERROR(ps.store->SeedResolution(txn, committed));
  }
  return Status::Ok();
}

void FaultDrill::CheckInvariant(const std::string& txn,
                                FaultDrillReport* report) {
  const size_t expected = static_cast<size_t>(committed_so_far_) *
                          static_cast<size_t>(options_.ops_per_service);
  const int before = report->violations;
  overlay::PeerId first_bad;
  for (const overlay::PeerId& id : workers_) {
    txn::AxmlPeer* peer = repo_->FindPeer(id);
    if (peer == nullptr) continue;  // crashed and not restarted (shouldn't be)
    const xml::Document* doc =
        peer->repository().GetDocument(ScenarioDocName(id));
    if (doc == nullptr) continue;
    size_t entries = CountEntries(doc);
    if (entries != expected) {
      ++report->violations;
      if (first_bad.empty()) first_bad = id;
      if (report->violation_details.size() < 20) {
        report->violation_details.push_back(
            "after " + txn + ": peer " + id + " holds " +
            std::to_string(entries) + " entries, expected " +
            std::to_string(expected));
      }
    }
  }
  if (report->violations > before) {
    // Atomicity just broke: capture the black box while every involved
    // ring still holds the neighbourhood of the failure. `txn` carries a
    // " (verdict)" suffix for the human-readable details; the dump wants
    // the bare transaction name for span correlation.
    obs::ForensicDumpOptions dump;
    dump.reason = "atomicity-violation";
    dump.peer = first_bad;
    dump.txn = txn.substr(0, txn.find(' '));
    dump.time = repo_->network().now();
    repo_->DumpForensics(dump);
  }
}

Status FaultDrill::TamperWorkerDocument() {
  // Prefer a non-origin worker so the damage is remote from the submitter.
  overlay::PeerId victim = workers_.size() > 1 ? workers_[1] : workers_[0];
  txn::AxmlPeer* peer = repo_->FindPeer(victim);
  if (peer == nullptr) return NotFound("no peer " + victim + " to tamper");
  xml::Document* doc = peer->repository().GetDocument(ScenarioDocName(victim));
  if (doc == nullptr) return NotFound("no scenario doc on " + victim);
  repo_->recorders().ForPeer(victim)->Record(obs::kEvFrFault,
                                             "harness tamper: entries wiped");
  ops::Executor executor(doc, /*invoker=*/nullptr);
  AXMLX_RETURN_IF_ERROR(
      executor
          .Execute(ops::MakeDelete("Select e from e in " +
                                   ScenarioDocName(victim) + "//entry"))
          .status());
  tampered_ = true;
  return Status::Ok();
}

Result<FaultDrillReport> FaultDrill::Run() {
  AXMLX_RETURN_IF_ERROR(SetUp());
  FaultDrillReport report;
  // Per-transaction submit-to-decision time, in ticks. The bounds cover the
  // spread between clean commits (tens of ticks) and timeout-decided aborts.
  obs::Histogram* durations = metrics_.GetHistogram(
      obs::kMetricDrillTxnDurationTicks,
      {10, 25, 50, 100, 200, 400, 800, 1600, 3200});

  std::vector<overlay::PeerId> victims;
  for (const overlay::PeerId& id : workers_) {
    if (id != origin_) victims.push_back(id);
  }
  int crash_rotation = 0;
  overlay::Network* net = &repo_->network();

  for (int t = 0; t < options_.transactions; ++t) {
    const std::string txn = "T" + std::to_string(t);
    txn_names_.push_back(txn);

    if (options_.partition_every > 0 &&
        (t + 1) % options_.partition_every == 0) {
      // Split the overlay in two: origin plus every even-indexed worker
      // (and their replicas) on one side, the rest on the other.
      std::vector<overlay::PeerId> near = {origin_, origin_ + "R"};
      std::vector<overlay::PeerId> far;
      int i = 0;
      for (const overlay::PeerId& v : victims) {
        auto& side = (i++ % 2 == 0) ? near : far;
        side.push_back(v);
        side.push_back(v + "R");
      }
      overlay::FaultPlan* plan = plan_.get();
      net->ScheduleAfter(options_.partition_at,
                         [plan, near, far](overlay::Network*) {
                           plan->Partition({near, far});
                         });
      net->ScheduleAfter(options_.partition_at + options_.partition_length,
                         [plan](overlay::Network*) { plan->Heal(); });
    }

    if (options_.crash_every > 0 && (t + 1) % options_.crash_every == 0 &&
        !victims.empty()) {
      overlay::PeerId victim =
          victims[static_cast<size_t>(crash_rotation++) % victims.size()];
      // A refused scheduled crash/restart (peer already down, replica
      // missing, ...) is a harness defect, not a protocol outcome; the
      // defensive healing loop below retries restarts, so count and go on.
      net->ScheduleAfter(options_.crash_at,
                         [this, victim](overlay::Network*) {
                           if (!CrashNow(victim).ok()) {
                             ++*metrics_.GetCounter(
                                 obs::kMetricDrillHarnessErrors);
                           }
                         });
      net->ScheduleAfter(options_.crash_at + options_.restart_after,
                         [this, victim](overlay::Network*) {
                           if (!RestartNow(victim).ok()) {
                             ++*metrics_.GetCounter(
                                 obs::kMetricDrillHarnessErrors);
                           }
                         });
    }

    if (options_.debug) repo_->trace().Clear();
    AXMLX_ASSIGN_OR_RETURN(TxnOutcome outcome,
                           repo_->RunTransaction(origin_, txn, "S"));
    durations->Observe(outcome.duration);
    std::string verdict;
    if (!outcome.decided) {
      ++*metrics_.GetCounter(obs::kMetricDrillUndecided);
      verdict = "undecided";
    } else if (outcome.status.ok()) {
      ++*metrics_.GetCounter(obs::kMetricDrillCommitted);
      ++committed_so_far_;
      verdict = "committed";
    } else {
      ++*metrics_.GetCounter(obs::kMetricDrillAborted);
      verdict = "aborted";
    }

    // Defensive post-txn healing; the scheduled events normally already ran
    // (quiescence drains them), so these are no-ops.
    plan_->Heal();
    for (const overlay::PeerId& v : victims) {
      if (net->IsCrashed(v)) AXMLX_RETURN_IF_ERROR(RestartNow(v));
    }
    net->RunUntilQuiescent();

    if (options_.force_violation && !tampered_ && committed_so_far_ > 0) {
      AXMLX_RETURN_IF_ERROR(TamperWorkerDocument());
    }

    CheckInvariant(txn + " (" + verdict + ")", &report);

    if (options_.debug) {
      std::cerr << "=== " << txn << " -> " << verdict << " ("
                << outcome.status << ")\n";
      for (const overlay::PeerId& id : workers_) {
        txn::AxmlPeer* peer = repo_->FindPeer(id);
        if (peer == nullptr) continue;
        const xml::Document* doc =
            peer->repository().GetDocument(ScenarioDocName(id));
        std::cerr << "  " << id << ": ctx=" << peer->HasContext(txn)
                  << " entries=" << (doc ? CountEntries(doc) : 0)
                  << " pending_control=" << peer->PendingControlMessages()
                  << "\n";
      }
      std::cerr << repo_->trace().ToString() << "\n";
    }
  }

  for (const overlay::PeerId& id : repo_->network().peer_ids()) {
    txn::AxmlPeer* peer = repo_->FindPeer(id);
    if (peer == nullptr) continue;
    report.pending_control += peer->PendingControlMessages();
    for (const std::string& txn : txn_names_) {
      if (peer->HasContext(txn)) ++report.dangling_contexts;
    }
  }
  // The report is a thin view over the registry; the registry itself stays
  // available (with the duration histogram) through metrics().
  report.committed = static_cast<int>(
      metrics_.GetCounter(obs::kMetricDrillCommitted)->value());
  report.aborted =
      static_cast<int>(metrics_.GetCounter(obs::kMetricDrillAborted)->value());
  report.undecided = static_cast<int>(
      metrics_.GetCounter(obs::kMetricDrillUndecided)->value());
  report.crashes =
      static_cast<int>(metrics_.GetCounter(obs::kMetricDrillCrashes)->value());
  report.restarts =
      static_cast<int>(metrics_.GetCounter(obs::kMetricDrillRestarts)->value());
  report.wal_replayed_ops =
      metrics_.GetCounter(obs::kMetricDrillWalReplayedOps)->value();
  report.wal_recovered_txns =
      metrics_.GetCounter(obs::kMetricDrillWalRecoveredTxns)->value();
  report.resync_nodes = static_cast<size_t>(
      metrics_.GetCounter(obs::kMetricDrillResyncNodes)->value());
  report.harness_errors = static_cast<int>(
      metrics_.GetCounter(obs::kMetricDrillHarnessErrors)->value());
  report.net = net->stats();
  report.faults = plan_->stats();
  report.journal_errors =
      metrics_.GetCounter(obs::kMetricDrillJournalErrors)->value();
  report.forensic_dumps = repo_->forensic_paths();
  return report;
}

}  // namespace axmlx::repo
