#ifndef AXMLX_REPO_FAULT_DRILL_H_
#define AXMLX_REPO_FAULT_DRILL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "overlay/fault_injection.h"
#include "repo/axml_repository.h"
#include "storage/durable_store.h"

namespace axmlx::repo {

/// Configuration of a fault drill: a uniform service tree driven through a
/// sequence of transactions while the overlay injects message faults,
/// partitions, and peer crash-restarts.
struct FaultDrillOptions {
  /// Topology: a uniform tree of depth `depth` and fanout `fanout` (peer
  /// "P" is the origin). Every worker gets a replica peer ("<id>R").
  int depth = 1;
  int fanout = 3;

  int transactions = 10;
  int ops_per_service = 2;

  // --- Message-level faults (wildcard, all links / all types) --------------
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  double misroute_rate = 0.0;
  overlay::Tick delay_max = 0;

  /// Every `partition_every`-th transaction (1-based; 0 = never) the overlay
  /// splits into two halves `partition_at` ticks after submission and heals
  /// `partition_length` ticks later.
  int partition_every = 0;
  overlay::Tick partition_at = 4;
  overlay::Tick partition_length = 160;

  /// Every `crash_every`-th transaction (0 = never) one worker (rotating,
  /// never the origin) crash-stops `crash_at` ticks after submission —
  /// destroying all of its in-memory state — and restarts `restart_after`
  /// ticks later, rebuilt solely from its durable WAL plus a replica resync.
  int crash_every = 0;
  overlay::Tick crash_at = 6;
  overlay::Tick restart_after = 80;

  // --- Protocol knobs ------------------------------------------------------
  overlay::Tick txn_timeout = 300;
  overlay::Tick keepalive_interval = 25;
  overlay::Tick control_resend_interval = 20;

  uint64_t seed = 20070415;

  /// Worker-pool mode: -1 (default) runs without a runtime — the original
  /// fully synchronous path; 0 enables the deterministic single-thread
  /// scheduler; N > 0 spawns N worker threads. All modes produce identical
  /// WAL bytes and decisions (DESIGN.md §11 — the differential oracle).
  int runtime_workers = -1;
  uint64_t runtime_seed = 1;

  /// Deliberately corrupt one worker's document outside any transaction
  /// after the first commit, so the next CheckInvariant() reports an
  /// atomicity violation. This exercises the forensic-dump path end to end
  /// (violation -> black box -> axmlx_report --forensics) without having to
  /// find a real protocol bug on demand.
  bool force_violation = false;

  /// Dump the full message trace plus per-transaction outcomes to stderr.
  bool debug = false;

  /// Root directory for per-peer durable stores; derived from the seed when
  /// empty. The drill wipes it at the start of Run().
  std::string storage_dir;
};

/// Outcome of a drill. `violations` is the headline number: a violation is a
/// peer whose document holds a different number of committed log entries
/// than the transaction decisions imply (atomicity broken).
struct FaultDrillReport {
  int committed = 0;
  int aborted = 0;
  int undecided = 0;

  int violations = 0;
  std::vector<std::string> violation_details;

  /// Forensic dump files written by the drill (atomicity violations plus
  /// the repository's own crash / abort-cascade triggers), in dump order.
  std::vector<std::string> forensic_dumps;

  int crashes = 0;
  int restarts = 0;
  int64_t wal_replayed_ops = 0;    ///< Ops re-executed by WAL replay.
  int64_t wal_recovered_txns = 0;  ///< In-flight txns rolled back on Open().
  size_t resync_nodes = 0;         ///< Nodes touched by replica catch-up.

  int dangling_contexts = 0;   ///< Contexts still live at drill end.
  size_t pending_control = 0;  ///< Unacked control messages at drill end.

  int64_t journal_errors = 0;  ///< WAL ops that failed (store diverged).
  int harness_errors = 0;      ///< Scheduled crash/restart steps refused.

  overlay::Network::Stats net;
  overlay::FaultPlan::Stats faults;
};

/// Drives the drill described by `options` and checks the atomicity
/// invariant after every transaction: for each worker document, the number
/// of `<entry>` elements equals committed_transactions * ops_per_service.
class FaultDrill {
 public:
  explicit FaultDrill(FaultDrillOptions options);
  ~FaultDrill();

  FaultDrill(const FaultDrill&) = delete;
  FaultDrill& operator=(const FaultDrill&) = delete;

  Result<FaultDrillReport> Run();

  AxmlRepository& repo() { return *repo_; }

  /// The registry backing the drill's `drill.*` counters and the
  /// per-transaction duration histogram; the report is a thin view over it.
  obs::MetricsRegistry& metrics() { return metrics_; }

 private:
  /// Durable storage of one peer across crash incarnations.
  struct PeerStorage {
    std::unique_ptr<storage::DurableStore> store;
    std::unique_ptr<txn::WriteJournal> journal;
    int incarnation = 0;
  };

  Status SetUp();
  std::string StoreDir(const overlay::PeerId& id, int incarnation) const;
  /// Opens incarnation `incarnation` of `id`'s store seeded with `docs`
  /// (serialized XML; empty = rely on the directory's existing WAL) and
  /// attaches a fresh journal to the peer.
  Status AttachStorage(const overlay::PeerId& id,
                       const std::vector<std::string>& docs);
  Status CrashNow(const overlay::PeerId& id);
  Status RestartNow(const overlay::PeerId& id);
  void CheckInvariant(const std::string& txn, FaultDrillReport* report);
  /// force_violation support: deletes one committed <entry> from a worker
  /// document behind the protocol's back (no txn, no journal).
  Status TamperWorkerDocument();

  FaultDrillOptions options_;
  std::string storage_root_;
  std::unique_ptr<AxmlRepository> repo_;
  std::unique_ptr<overlay::FaultPlan> plan_;
  overlay::PeerId origin_;
  std::vector<overlay::PeerId> workers_;  ///< All tree peers incl. origin.
  std::map<overlay::PeerId, PeerStorage> storage_;
  std::vector<std::string> txn_names_;
  int committed_so_far_ = 0;
  bool tampered_ = false;
  obs::MetricsRegistry metrics_;
};

}  // namespace axmlx::repo

#endif  // AXMLX_REPO_FAULT_DRILL_H_
