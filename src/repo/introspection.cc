#include "repo/introspection.h"

#include <memory>
#include <sstream>
#include <utility>

#include "axml/service_call.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "xml/builder.h"
#include "xml/parser.h"

namespace axmlx::repo {
namespace {

/// Serializes the peer's current observability state as the `getStats`
/// result fragment. Element/attribute shape (element text carries the
/// values, dotted metric names stay in attributes so they never have to be
/// legal element names):
///   <result><stats>
///     <counters><counter name="txn.committed">3</counter>...</counters>
///     <gauges><gauge name="...">0.5</gauge>...</gauges>
///     <openspans><span txn="T1" kind="SERVICE" id="5"/>...</openspans>
///     <recorder><event time="12" seq="7" kind="TXN_STATE" span="5"
///                      arg="0">begin</event>...</recorder>
///   </stats></result>
std::string BuildStatsXml(AxmlRepository* repo,
                          const overlay::PeerId& peer_id) {
  std::ostringstream os;
  os << "<result><stats peer=\"" << XmlEscape(peer_id) << "\">";

  os << "<counters>";
  txn::AxmlPeer* peer = repo->FindPeer(peer_id);
  if (peer != nullptr) {
    obs::MetricsSnapshot snap = peer->metrics().Snapshot();
    for (const auto& [name, value] : snap.counters) {
      os << "<counter name=\"" << XmlEscape(name) << "\">" << value
         << "</counter>";
    }
    os << "</counters><gauges>";
    for (const auto& [name, value] : snap.gauges) {
      os << "<gauge name=\"" << XmlEscape(name) << "\">" << value
         << "</gauge>";
    }
    os << "</gauges>";
  } else {
    os << "</counters><gauges></gauges>";
  }

  os << "<openspans>";
  for (const obs::SpanRecord& s : repo->spans().spans()) {
    if (s.end >= 0 || s.peer != peer_id) continue;
    os << "<span txn=\"" << XmlEscape(s.txn) << "\" kind=\""
       << XmlEscape(s.kind) << "\" id=\"" << s.span_id << "\"/>";
  }
  os << "</openspans>";

  os << "<recorder>";
  const obs::FlightRecorder* rec = repo->recorders().ForPeer(peer_id);
  size_t count = rec->size();
  size_t first = count > kStatsRecorderTail ? count - kStatsRecorderTail : 0;
  for (size_t i = first; i < count; ++i) {
    const obs::FlightEvent& e = rec->At(i);
    os << "<event time=\"" << e.time << "\" seq=\"" << e.seq << "\" kind=\""
       << XmlEscape(e.kind) << "\" span=\"" << e.span << "\" arg=\"" << e.arg
       << "\">" << XmlEscape(e.what) << "</event>";
  }
  os << "</recorder>";

  os << "</stats></result>";
  return os.str();
}

}  // namespace

Status InstallStatsDocument(AxmlRepository* repo,
                            const overlay::PeerId& peer_id) {
  txn::AxmlPeer* peer = repo->FindPeer(peer_id);
  if (peer == nullptr) return NotFound("unknown peer " + peer_id);

  service::ServiceDefinition def;
  def.name = kStatsServiceName;
  // The handler resolves the peer at invocation time: the captured pointers
  // outlive any peer incarnation, and a query against a crashed peer's
  // leftover document fails cleanly instead of dangling.
  def.native = [repo, peer_id](const axml::ServiceRequest&)
      -> Result<axml::ServiceResponse> {
    AXMLX_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> fragment,
                           xml::Parse(BuildStatsXml(repo, peer_id)));
    axml::ServiceResponse response;
    response.fragment = std::move(fragment);
    return response;
  };
  AXMLX_RETURN_IF_ERROR(peer->repository().AddService(std::move(def)));

  auto doc = std::make_unique<xml::Document>(kStatsDocumentName);
  // Lazy materialization only discovers calls under a query's source
  // bindings, so the sc needs a static element queries can bind before any
  // result exists: <snapshot> is that anchor.
  xml::NodeId snapshot = xml::AddElement(doc.get(), doc->root(), "snapshot");
  axml::ScSpec spec;
  spec.mode = axml::ScMode::kReplace;  // every materialization = fresh snapshot
  spec.method_name = kStatsServiceName;
  spec.output_name = "stats";
  AXMLX_RETURN_IF_ERROR(
      axml::BuildServiceCall(doc.get(), snapshot, spec).status());
  return peer->repository().AddDocument(std::move(doc));
}

}  // namespace axmlx::repo
