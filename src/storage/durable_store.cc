#include "storage/durable_store.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "compensation/compensation.h"
#include "obs/metric_names.h"
#include "runtime/job_queue.h"
#include "xml/parser.h"

namespace axmlx::storage {

namespace {

// Epoch 0 keeps the legacy file names so existing directories open cleanly.
std::string WalPath(const std::string& directory, uint64_t epoch) {
  if (epoch == 0) return directory + "/wal.log";
  return directory + "/wal_e" + std::to_string(epoch) + ".log";
}
std::string ManifestPath(const std::string& directory) {
  return directory + "/manifest.txt";
}
std::string SnapshotPath(const std::string& directory, uint64_t epoch,
                         const std::string& doc) {
  if (epoch == 0) return directory + "/snap_" + doc + ".xml";
  return directory + "/snap_e" + std::to_string(epoch) + "_" + doc + ".xml";
}

/// True for WAL/snapshot files belonging to `epoch` (either naming scheme).
bool BelongsToEpoch(const std::string& file, uint64_t epoch) {
  std::string wal_prefix =
      epoch == 0 ? "wal." : "wal_e" + std::to_string(epoch) + ".";
  std::string snap_prefix =
      epoch == 0 ? "snap_" : "snap_e" + std::to_string(epoch) + "_";
  if (file.rfind(wal_prefix, 0) == 0) return true;
  if (file.rfind(snap_prefix, 0) == 0) {
    // Epoch-0 "snap_" must not claim "snap_e<n>_..." files.
    return epoch != 0 || file.rfind("snap_e", 0) != 0;
  }
  return false;
}

/// Removes WAL/snapshot files of every epoch except `keep` (best-effort):
/// leftovers from a checkpoint that crashed mid-switch, or the retired
/// epoch after a successful switch.
void SweepForeignEpochs(const std::string& directory, uint64_t keep) {
  DIR* dir = ::opendir(directory.c_str());
  if (dir == nullptr) return;
  std::vector<std::string> doomed;
  while (dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    bool is_wal = name.rfind("wal", 0) == 0;
    bool is_snap = name.rfind("snap_", 0) == 0;
    if ((is_wal || is_snap) && name.find(".tmp") == std::string::npos &&
        !BelongsToEpoch(name, keep)) {
      doomed.push_back(name);
    }
  }
  ::closedir(dir);
  for (const std::string& name : doomed) {
    std::remove((directory + "/" + name).c_str());
  }
}

Status WriteFileAtomically(const std::string& path,
                           const std::string& content) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Internal("cannot write " + tmp);
    out << content;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFound("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

void EncodeWalPayloadTo(const std::string& raw, std::string* out) {
  out->reserve(out->size() + raw.size());
  for (char c : raw) {
    switch (c) {
      case '%':
        out->append("%25");
        break;
      case '\n':
        out->append("%0A");
        break;
      case '\r':
        out->append("%0D");
        break;
      default:
        out->push_back(c);
    }
  }
}

std::string EncodeWalPayload(const std::string& raw) {
  std::string out;
  EncodeWalPayloadTo(raw, &out);
  return out;
}

std::string DecodeWalPayload(const std::string& encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    if (encoded[i] == '%' && i + 2 < encoded.size() + 1 &&
        i + 2 < encoded.size()) {
      std::string hex = encoded.substr(i + 1, 2);
      if (hex == "25") {
        out += '%';
        i += 2;
        continue;
      }
      if (hex == "0A") {
        out += '\n';
        i += 2;
        continue;
      }
      if (hex == "0D") {
        out += '\r';
        i += 2;
        continue;
      }
    }
    out += encoded[i];
  }
  return out;
}

DurableStore::WalCounters::WalCounters(obs::MetricsRegistry* metrics)
    : flushes(*metrics->GetCounter(obs::kMetricWalFlushes)),
      records_batched(*metrics->GetCounter(obs::kMetricWalRecordsBatched)) {}

DurableStore::HotPathCounters::HotPathCounters(obs::MetricsRegistry* metrics)
    : nodes_allocated(*metrics->GetCounter(obs::kMetricDocNodesAllocated)),
      index_hits(*metrics->GetCounter(obs::kMetricQueryIndexHits)),
      index_candidates(*metrics->GetCounter(obs::kMetricQueryIndexCandidates)),
      walk_fallbacks(*metrics->GetCounter(obs::kMetricQueryWalkFallbacks)) {}

void DurableStore::PublishHotPathCounters() {
  const query::EvalStats& s = eval_ctx_.stats;
  hot_counters_.index_hits += s.index_hits - published_eval_stats_.index_hits;
  hot_counters_.index_candidates +=
      s.index_candidates - published_eval_stats_.index_candidates;
  hot_counters_.walk_fallbacks +=
      s.walk_fallbacks - published_eval_stats_.walk_fallbacks;
  published_eval_stats_ = s;
  int64_t allocated = 0;
  for (const auto& [name, doc] : documents_) {
    allocated += doc->storage_stats().nodes_allocated;
  }
  hot_counters_.nodes_allocated += allocated - published_nodes_allocated_;
  published_nodes_allocated_ = allocated;
}

DurableStore::DurableStore(std::string directory, axml::ServiceInvoker invoker,
                           FlushPolicy flush_policy)
    : directory_(std::move(directory)),
      invoker_(std::move(invoker)),
      flush_policy_(flush_policy) {}

DurableStore::~DurableStore() {
  // Best-effort durability for records still buffered under kEveryN /
  // kOnResolve; a real crash would lose them, which recovery tolerates.
  (void)FlushWal();
}

Status DurableStore::Open() {
  if (open_) return FailedPrecondition("store is already open");
  ::mkdir(directory_.c_str(), 0755);
  AXMLX_RETURN_IF_ERROR(LoadSnapshots());
  // Files of any other epoch are dead weight: either a checkpoint crashed
  // after writing next-epoch snapshots but before committing the manifest,
  // or it committed and crashed before removing the retired epoch.
  SweepForeignEpochs(directory_, epoch_);
  AXMLX_RETURN_IF_ERROR(ReplayWal());
  open_ = true;
  if (recorder_ != nullptr && stats_.replayed_ops > 0) {
    recorder_->Record(obs::kEvFrRecovery, "wal replayed", /*span=*/0,
                      stats_.replayed_ops);
  }
  // Roll back transactions that were in flight at the crash: execute their
  // dynamically constructed compensating operations (journaled, so a crash
  // during recovery re-converges) and resolve them.
  std::vector<std::string> losers;
  for (const auto& [txn, state] : active_txns_) losers.push_back(txn);
  for (const std::string& txn : losers) {
    if (recorder_ != nullptr) {
      recorder_->Record(obs::kEvFrRecovery, txn);
    }
    MarkPhase(txn, obs::kPhaseRecovery);
    AXMLX_RETURN_IF_ERROR(CompensateTxn(txn, /*journal=*/true));
    TxnState& state = active_txns_[txn];
    AXMLX_RETURN_IF_ERROR(AppendWal(
        "RESOLVED " + txn + " A " + std::to_string(state.wal_ops) + " " +
            std::to_string(clock_),
        /*force_flush=*/true));
    resolved_outcomes_[txn] = false;
    active_txns_.erase(txn);
    ++stats_.recovered_txns;
  }
  return Status::Ok();
}

Status DurableStore::LoadSnapshots() {
  if (!FileExists(ManifestPath(directory_))) return Status::Ok();
  AXMLX_ASSIGN_OR_RETURN(std::string manifest,
                         ReadFile(ManifestPath(directory_)));
  std::istringstream lines(manifest);
  std::string name;
  bool first = true;
  while (std::getline(lines, name)) {
    if (name.empty()) continue;
    if (first) {
      first = false;
      // New manifests lead with "epoch <n>"; legacy manifests are epoch 0
      // and their first line is already a document name.
      if (name.rfind("epoch ", 0) == 0) {
        epoch_ = std::stoull(name.substr(6));
        continue;
      }
    }
    AXMLX_ASSIGN_OR_RETURN(std::string xml_text,
                           ReadFile(SnapshotPath(directory_, epoch_, name)));
    AXMLX_ASSIGN_OR_RETURN(auto doc, xml::Parse(xml_text));
    documents_[name] = std::move(doc);
  }
  return Status::Ok();
}

Status DurableStore::ReplayWal() {
  if (!FileExists(WalPath(directory_, epoch_))) return Status::Ok();
  AXMLX_ASSIGN_OR_RETURN(std::string wal,
                         ReadFile(WalPath(directory_, epoch_)));
  std::istringstream lines(wal);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    size_t sp1 = line.find(' ');
    std::string kind = line.substr(0, sp1);
    if (kind == "BEGIN") {
      // "BEGIN <txn> <version>"; legacy form has no version.
      std::string rest = line.substr(sp1 + 1);
      size_t sp2 = rest.find(' ');
      std::string txn = rest.substr(0, sp2);
      TxnState& state = active_txns_[txn];
      if (sp2 != std::string::npos) {
        state.begin_version = std::stoull(rest.substr(sp2 + 1));
      }
    } else if (kind == "RESOLVED") {
      // "RESOLVED <txn> <C|A> <ops> <version>"; legacy form is just <txn>.
      std::istringstream fields(line.substr(sp1 + 1));
      std::string txn, outcome, ops_text, version_text;
      fields >> txn >> outcome >> ops_text >> version_text;
      if (!outcome.empty()) {
        size_t expected = std::stoull(ops_text);
        auto it = active_txns_.find(txn);
        size_t replayed = it == active_txns_.end() ? 0 : it->second.wal_ops;
        if (replayed != expected) {
          // The group-commit contract is that a RESOLVED record is durable
          // no earlier than the OP records it covers. Seeing it with part
          // of its payload missing means the log tail was torn (partial
          // batch write, or replay over the wrong snapshot epoch) — the
          // document state replay built is not the state that committed.
          return Internal("torn WAL: txn " + txn + " resolved with " +
                          ops_text + " ops but " + std::to_string(replayed) +
                          " replayed");
        }
        resolved_outcomes_[txn] = outcome == "C";
        if (!version_text.empty()) {
          clock_ = std::max<uint64_t>(clock_, std::stoull(version_text));
        }
      }
      active_txns_.erase(txn);
    } else if (kind == "DEDUP") {
      seen_dedup_keys_.push_back(DecodeWalPayload(line.substr(sp1 + 1)));
    } else if (kind == "EXT") {
      size_t sp2 = line.find(' ', sp1 + 1);
      if (sp2 == std::string::npos) {
        return Internal("malformed WAL EXT record: " + line);
      }
      externals_[line.substr(sp1 + 1, sp2 - sp1 - 1)] =
          DecodeWalPayload(line.substr(sp2 + 1));
    } else if (kind == "NEWDOC") {
      std::string xml_text = DecodeWalPayload(line.substr(sp1 + 1));
      AXMLX_ASSIGN_OR_RETURN(auto doc, xml::Parse(xml_text));
      std::string name = doc->Find(doc->root())->name;
      if (documents_.count(name) == 0) documents_[name] = std::move(doc);
    } else if (kind == "OP") {
      size_t sp2 = line.find(' ', sp1 + 1);
      size_t sp3 = line.find(' ', sp2 + 1);
      if (sp2 == std::string::npos || sp3 == std::string::npos) {
        return Internal("malformed WAL OP record: " + line);
      }
      std::string txn = line.substr(sp1 + 1, sp2 - sp1 - 1);
      std::string doc = line.substr(sp2 + 1, sp3 - sp2 - 1);
      std::string op_xml = DecodeWalPayload(line.substr(sp3 + 1));
      AXMLX_ASSIGN_OR_RETURN(ops::Operation op,
                             ops::Operation::FromXml(op_xml));
      active_txns_[txn].wal_ops++;  // counts OP records for the torn-tail
                                    // check; also tolerates OP before BEGIN
      auto applied = ApplyOp(txn, doc, op);
      if (!applied.ok()) {
        return Internal("WAL replay failed for txn " + txn + ": " +
                        applied.status().message());
      }
      ++stats_.replayed_ops;
    } else {
      return Internal("unknown WAL record: " + line);
    }
  }
  return Status::Ok();
}

Status DurableStore::FlushWal() {
  // Deferred appends must reach the batch before we write it out; a nested
  // call from inside a job's apply stage skips the barrier (Drain is a
  // no-op there) and flushes what has applied so far.
  if (runtime_ != nullptr) runtime_->Drain();
  if (!wal_job_error_.ok()) return wal_job_error_;
  return FlushWalNow();
}

Status DurableStore::FlushWalNow() {
  if (wal_batch_.empty()) return Status::Ok();
  if (!wal_.is_open()) {
    wal_.open(WalPath(directory_, epoch_), std::ios::app);
    if (!wal_) return Internal("cannot open WAL for append");
  }
  wal_.write(wal_batch_.data(),
             static_cast<std::streamsize>(wal_batch_.size()));
  wal_.flush();
  if (!wal_) return Internal("cannot append to WAL");
  int64_t flushed = static_cast<int64_t>(batched_records_);
  wal_batch_.clear();
  batched_records_ = 0;
  ++wal_counters_.flushes;
  if (recorder_ != nullptr) {
    recorder_->Record(obs::kEvFrWalFlush, {}, /*span=*/0, flushed);
  }
  return Status::Ok();
}

Status DurableStore::AppendWal(const std::string& record, bool force_flush,
                               const std::string& txn) {
  if (runtime_ == nullptr) return AppendWalNow(record, force_flush);
  if (!wal_job_error_.ok()) return wal_job_error_;
  runtime::Job job;
  job.type = runtime::JobType::kJobWalAppend;
  job.txn = txn;
  job.peer = runtime_peer_;
  // No work stage: appends are pure coordinator-side batch mutations. The
  // apply stages run in submission order, so WAL bytes match the
  // synchronous path exactly.
  job.apply = [this, record, force_flush] {
    Status s = AppendWalNow(record, force_flush);
    if (!s.ok() && wal_job_error_.ok()) wal_job_error_ = s;
  };
  runtime_->Submit(std::move(job));
  return Status::Ok();
}

Status DurableStore::AppendWalNow(const std::string& record,
                                  bool force_flush) {
  wal_batch_.append(record);
  wal_batch_.push_back('\n');
  ++batched_records_;
  ++stats_.wal_records;
  ++wal_counters_.records_batched;
  if (recorder_ != nullptr) {
    // `what` is the record's keyword ("BEGIN", "OP", "RESOLVED", ...), a
    // view into `record` — no allocation on the append hot path.
    recorder_->Record(obs::kEvFrWalAppend,
                      std::string_view(record).substr(0, record.find(' ')),
                      /*span=*/0, static_cast<int64_t>(batched_records_));
  }
  bool flush_now = force_flush;
  switch (flush_policy_.mode) {
    case FlushPolicy::Mode::kEveryRecord:
      flush_now = true;
      break;
    case FlushPolicy::Mode::kEveryN:
      flush_now = flush_now || batched_records_ >= flush_policy_.n;
      break;
    case FlushPolicy::Mode::kOnResolve:
      break;
  }
  if (!flush_now) return Status::Ok();
  if (runtime_ != nullptr) {
    // Group commit as its own typed job: the flush lands in the next wave,
    // still inside the same network event, after every append already
    // queued — so it commits at least the records the synchronous path
    // would have (later same-event appends may piggyback on the batch).
    runtime::Job job;
    job.type = runtime::JobType::kJobFlush;
    job.peer = runtime_peer_;
    job.apply = [this] {
      Status s = FlushWalNow();
      if (!s.ok() && wal_job_error_.ok()) wal_job_error_ = s;
    };
    runtime_->Submit(std::move(job));
    return Status::Ok();
  }
  return FlushWalNow();
}

Status DurableStore::CreateDocument(const std::string& xml_text) {
  if (!open_) return FailedPrecondition("store is not open");
  AXMLX_ASSIGN_OR_RETURN(auto doc, xml::Parse(xml_text));
  std::string name = doc->Find(doc->root())->name;
  if (documents_.count(name) > 0) {
    return AlreadyExists("document " + name + " already exists");
  }
  AXMLX_RETURN_IF_ERROR(
      AppendWal("NEWDOC " + EncodeWalPayload(doc->Serialize())));
  documents_[name] = std::move(doc);
  return Status::Ok();
}

xml::Document* DurableStore::Get(const std::string& name) {
  auto it = documents_.find(name);
  return it == documents_.end() ? nullptr : it->second.get();
}

std::vector<std::string> DurableStore::DocumentNames() const {
  std::vector<std::string> names;
  for (const auto& [name, doc] : documents_) names.push_back(name);
  return names;
}

Status DurableStore::SetExternal(const std::string& name,
                                 const std::string& value) {
  if (!open_) return FailedPrecondition("store is not open");
  AXMLX_RETURN_IF_ERROR(
      AppendWal("EXT " + name + " " + EncodeWalPayload(value)));
  externals_[name] = value;
  return Status::Ok();
}

Status DurableStore::Begin(const std::string& txn) {
  if (!open_) return FailedPrecondition("store is not open");
  if (active_txns_.count(txn) > 0) {
    return AlreadyExists("transaction " + txn + " is already active");
  }
  AXMLX_RETURN_IF_ERROR(AppendWal("BEGIN " + txn + " " +
                                      std::to_string(clock_),
                                  /*force_flush=*/false, txn));
  active_txns_[txn].begin_version = clock_;
  return Status::Ok();
}

Result<const ops::OpEffect*> DurableStore::ApplyOp(const std::string& txn,
                                                   const std::string& doc,
                                                   const ops::Operation& op) {
  xml::Document* target = Get(doc);
  if (target == nullptr) return NotFound("unknown document " + doc);
  ops::Executor executor(target, invoker_);
  executor.SetEvalContext(&eval_ctx_);
  executor.SetRecorder(recorder_);
  for (const auto& [name, value] : externals_) {
    executor.SetExternal(name, value);
  }
  AXMLX_ASSIGN_OR_RETURN(ops::OpEffect effect, executor.Execute(op));
  ++clock_;
  PublishHotPathCounters();
  TxnState& state = active_txns_[txn];
  state.ops_by_doc[doc].push_back(state.effects.size());
  state.docs.push_back(doc);
  state.effects.Append(std::move(effect));
  return &state.effects.effects().back();
}

Result<const ops::OpEffect*> DurableStore::Execute(const std::string& txn,
                                                   const std::string& doc,
                                                   const ops::Operation& op) {
  if (!open_) return FailedPrecondition("store is not open");
  if (active_txns_.count(txn) == 0) {
    return FailedPrecondition("transaction " + txn + " is not active");
  }
  // Log first, then apply (write-ahead).
  MarkPhase(txn, obs::kPhaseWalAppend);
  AXMLX_RETURN_IF_ERROR(AppendWal("OP " + txn + " " + doc + " " +
                                      EncodeWalPayload(op.ToXml()),
                                  /*force_flush=*/false, txn));
  active_txns_[txn].wal_ops++;
  return ApplyOp(txn, doc, op);
}

Status DurableStore::Commit(const std::string& txn) {
  auto it = active_txns_.find(txn);
  if (it == active_txns_.end()) {
    return NotFound("transaction " + txn + " is not active");
  }
  MarkPhase(txn, obs::kPhaseFlushWait);
  AXMLX_RETURN_IF_ERROR(AppendWal(
      "RESOLVED " + txn + " C " + std::to_string(it->second.wal_ops) + " " +
          std::to_string(clock_),
      /*force_flush=*/true, txn));
  resolved_outcomes_[txn] = true;
  active_txns_.erase(it);
  return Status::Ok();
}

Status DurableStore::CompensateTxn(const std::string& txn, bool journal) {
  TxnState& state = active_txns_[txn];
  const std::vector<ops::OpEffect>& effects = state.effects.effects();
  for (size_t i = effects.size(); i > 0; --i) {
    const std::string& doc = state.docs[i - 1];
    comp::CompensationPlan plan =
        comp::CompensationBuilder::ForEffect(effects[i - 1]);
    for (const ops::Operation& comp_op : plan.operations) {
      if (journal) {
        AXMLX_RETURN_IF_ERROR(AppendWal("OP " + txn + " " + doc + " " +
                                            EncodeWalPayload(comp_op.ToXml()),
                                        /*force_flush=*/false, txn));
        state.wal_ops++;
      }
      xml::Document* target = Get(doc);
      if (target == nullptr) return NotFound("unknown document " + doc);
      if (recorder_ != nullptr) {
        recorder_->Record(obs::kEvFrCompStep, txn, /*span=*/0,
                          static_cast<int64_t>(i - 1));
      }
      ops::Executor executor(target, invoker_);
      executor.SetEvalContext(&eval_ctx_);
      executor.SetRecorder(recorder_);
      AXMLX_RETURN_IF_ERROR(executor.Execute(comp_op).status());
    }
  }
  PublishHotPathCounters();
  return Status::Ok();
}

Status DurableStore::Abort(const std::string& txn) {
  if (active_txns_.count(txn) == 0) {
    return NotFound("transaction " + txn + " is not active");
  }
  AXMLX_RETURN_IF_ERROR(CompensateTxn(txn, /*journal=*/true));
  MarkPhase(txn, obs::kPhaseFlushWait);
  AXMLX_RETURN_IF_ERROR(AppendWal(
      "RESOLVED " + txn + " A " +
          std::to_string(active_txns_[txn].wal_ops) + " " +
          std::to_string(clock_),
      /*force_flush=*/true, txn));
  resolved_outcomes_[txn] = false;
  active_txns_.erase(txn);
  return Status::Ok();
}

void DurableStore::MarkPhase(const std::string& txn, const char* phase) {
  if (timeline_ == nullptr) return;
  const int64_t now = timeline_->now();
  timeline_->Enter(txn, phase, now);
  timeline_->Exit(txn, phase, now);
}

Status DurableStore::JournalDedupKey(const std::string& key) {
  if (!open_) return FailedPrecondition("store is not open");
  AXMLX_RETURN_IF_ERROR(AppendWal("DEDUP " + EncodeWalPayload(key)));
  seen_dedup_keys_.push_back(key);
  return Status::Ok();
}

Status DurableStore::SeedResolution(const std::string& txn, bool committed) {
  if (!open_) return FailedPrecondition("store is not open");
  if (active_txns_.count(txn) > 0) {
    return FailedPrecondition("transaction " + txn + " is active here");
  }
  AXMLX_RETURN_IF_ERROR(AppendWal(
      "RESOLVED " + txn + std::string(committed ? " C" : " A") + " 0 " +
          std::to_string(clock_),
      /*force_flush=*/true, txn));
  resolved_outcomes_[txn] = committed;
  return Status::Ok();
}

Status DurableStore::Checkpoint() {
  if (!open_) return FailedPrecondition("store is not open");
  // Deferred WAL jobs must land before the epoch switch discards the batch.
  if (runtime_ != nullptr) runtime_->Drain();
  if (!wal_job_error_.ok()) return wal_job_error_;
  if (!active_txns_.empty()) {
    return FailedPrecondition(
        "checkpoint requires all transactions resolved");
  }
  // Epoch switch. The old scheme overwrote the shared-name snapshot files
  // and truncated the WAL afterwards; a crash between those steps replayed
  // the old WAL over the *new* snapshots, double-applying every resolved
  // transaction. Writing the new epoch beside the old one and committing
  // via a single atomic manifest rename removes that window: before the
  // rename the old epoch (snapshots + WAL) is authoritative and intact;
  // after it the new epoch is, and its WAL is empty by construction.
  const uint64_t next = epoch_ + 1;
  std::string manifest = "epoch " + std::to_string(next) + "\n";
  for (const auto& [name, doc] : documents_) {
    AXMLX_RETURN_IF_ERROR(WriteFileAtomically(
        SnapshotPath(directory_, next, name), doc->Serialize()));
    manifest += name + "\n";
  }
  if (crash_point_ == CrashPoint::kAfterSnapshots) {
    return Internal("injected crash after snapshots");
  }
  // Buffered records describe effects the new snapshots already contain.
  // Close the old append stream before the switch; it reopens lazily on
  // the next flush, against the new epoch's (empty) log.
  wal_batch_.clear();
  batched_records_ = 0;
  if (wal_.is_open()) wal_.close();
  AXMLX_RETURN_IF_ERROR(WriteFileAtomically(WalPath(directory_, next), ""));
  AXMLX_RETURN_IF_ERROR(
      WriteFileAtomically(ManifestPath(directory_), manifest));
  if (crash_point_ == CrashPoint::kAfterManifest) {
    epoch_ = next;
    return Internal("injected crash after manifest");
  }
  SweepForeignEpochs(directory_, next);
  epoch_ = next;
  ++stats_.checkpoints;
  if (recorder_ != nullptr) {
    recorder_->Record(obs::kEvFrCheckpoint, {}, /*span=*/0,
                      static_cast<int64_t>(documents_.size()));
  }
  return Status::Ok();
}

}  // namespace axmlx::storage
