#ifndef AXMLX_STORAGE_DURABLE_STORE_H_
#define AXMLX_STORAGE_DURABLE_STORE_H_

#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "axml/materializer.h"
#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "ops/executor.h"
#include "ops/op_log.h"
#include "query/eval.h"
#include "xml/document.h"

namespace axmlx::runtime {
class JobQueue;
}  // namespace axmlx::runtime

namespace axmlx::storage {

/// Controls when buffered WAL records are flushed to the log file.
///
/// Group commit trades single-record durability for throughput without
/// weakening atomicity: records always reach the file in append order, and
/// a RESOLVED record forces a flush in every mode, so a transaction's OP
/// records are durable no later than its resolution. Losing buffered
/// records of an *unresolved* transaction in a crash is equivalent to
/// crashing before those operations ran — recovery compensates either way.
struct FlushPolicy {
  enum class Mode {
    kEveryRecord,  ///< Flush after each record (classic write-ahead; default).
    kEveryN,       ///< Flush when `n` records are buffered, and on resolve.
    kOnResolve,    ///< Flush only at txn resolution / checkpoint / close.
  };
  Mode mode = Mode::kEveryRecord;
  size_t n = 8;  ///< Batch size for kEveryN.

  static FlushPolicy EveryRecord() { return {}; }
  static FlushPolicy EveryN(size_t n) {
    return {Mode::kEveryN, n == 0 ? size_t{1} : n};
  }
  static FlushPolicy OnResolve() { return {Mode::kOnResolve, 8}; }
};

/// Durable document store for an AXML peer: the "D" of the paper's relaxed
/// ACID framework. Documents live in memory; every operation is recorded in
/// a write-ahead log *before* it is applied, and `Checkpoint()` persists
/// full snapshots and truncates the log.
///
/// Recovery follows the logical-redo-then-compensate discipline that falls
/// out of the paper's compensation model (§3.1): on `Open()`, the last
/// snapshot is loaded and the WAL is replayed **in order** — regenerating
/// each operation's effect log as it goes — after which transactions with
/// no RESOLVED record (in-flight at the crash) are rolled back by executing
/// their dynamically constructed compensating operations in reverse order.
/// A completed abort is itself durable: the compensating operations are
/// logged as ordinary operations before the transaction is RESOLVED.
///
/// WAL record grammar (one record per line, payloads newline-escaped):
///   BEGIN <txn> <version>
///   OP <txn> <doc> <operation-xml>
///   RESOLVED <txn> <C|A> <ops> <version>
///                             -- C = commit, A = abort whose compensation is
///                                fully journaled as OP records; <ops> is the
///                                number of OP records this txn appended to
///                                the current log segment (torn-tail check);
///                                <version> the store's logical clock
///   NEWDOC <document-xml>
///   DEDUP <key>               -- at-most-once message key (txn::Peer dedup
///                                window), replayed into seen_dedup_keys()
/// Legacy two-token BEGIN/RESOLVED records (pre-versioning) still parse.
///
/// Checkpoints are epoch-switched, never in-place: epoch n writes
/// `snap_e<n>_<doc>.xml` + `wal_e<n>.log` and commits by atomically renaming
/// the manifest (first line `epoch <n>`). A crash anywhere during
/// checkpointing leaves either the old epoch fully intact or the new epoch
/// fully committed — the WAL can never replay over snapshots it does not
/// belong to. Epoch 0 uses the legacy names `snap_<doc>.xml` / `wal.log`.
class DurableStore {
 public:
  /// `directory` is created on Open() if missing. `invoker` resolves
  /// embedded service-call materializations during execution AND during
  /// recovery replay (pass the same deterministic invoker for exact
  /// replay; null forbids materialization). `flush_policy` selects the
  /// group-commit mode; the destructor flushes whatever is still buffered.
  DurableStore(std::string directory, axml::ServiceInvoker invoker,
               FlushPolicy flush_policy = FlushPolicy::EveryRecord());
  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Loads snapshots, replays the WAL, compensates in-flight transactions.
  Status Open();

  /// Registers a new document (durable at the next checkpoint; its creation
  /// is also journaled so recovery can rebuild it from the WAL).
  Status CreateDocument(const std::string& xml_text);

  xml::Document* Get(const std::string& name);
  std::vector<std::string> DocumentNames() const;

  // --- Transactional execution ---------------------------------------------

  /// Supplies a `$name` external service-call parameter for all future
  /// operations. Journaled ("EXT" record) so replay materializes with the
  /// same inputs.
  Status SetExternal(const std::string& name, const std::string& value);

  /// Starts transaction `txn` (journaled).
  Status Begin(const std::string& txn);

  /// Journals then applies `op` against document `doc` under `txn`.
  Result<const ops::OpEffect*> Execute(const std::string& txn,
                                       const std::string& doc,
                                       const ops::Operation& op);

  /// Makes `txn` durable (journals RESOLVED).
  Status Commit(const std::string& txn);

  /// Rolls `txn` back by executing its compensating operations (journaled
  /// as ordinary operations), then journals RESOLVED.
  Status Abort(const std::string& txn);

  /// Writes snapshots of all documents into the next epoch and switches to
  /// it (atomic manifest rename = commit point), retiring the old WAL.
  Status Checkpoint();

  /// Flushes buffered WAL records to the log file (no-op when empty).
  Status FlushWal();

  // --- At-most-once support for txn::Peer ----------------------------------

  /// Durably journals a message-dedup key so the peer's at-most-once window
  /// survives crash-restart. Flushed with the normal group-commit policy:
  /// the key reaches disk no later than the resolution it guards (same
  /// batch ordering).
  Status JournalDedupKey(const std::string& key);

  /// Dedup keys recovered from the WAL on Open(), in journal order.
  [[nodiscard]] const std::vector<std::string>& seen_dedup_keys() const {
    return seen_dedup_keys_;
  }

  /// Journals a resolution outcome for a transaction that has no OP records
  /// in this store (e.g. a restarted peer re-seeding knowledge that `txn`
  /// was decided elsewhere). Replay-safe: the record carries 0 ops.
  Status SeedResolution(const std::string& txn, bool committed);

  /// Outcome (true = committed) of every transaction resolved in the
  /// current WAL segment, including outcomes recovered by replay.
  [[nodiscard]] const std::map<std::string, bool>& resolved_outcomes() const {
    return resolved_outcomes_;
  }

  // --- Crash injection (tests) ---------------------------------------------

  /// Where Checkpoint() simulates a crash (returns Internal and leaves the
  /// directory exactly as a real crash at that point would).
  enum class CrashPoint {
    kNone,
    kAfterSnapshots,  ///< New-epoch snapshots written; manifest not renamed.
    kAfterManifest,   ///< Manifest renamed; old-epoch files not yet removed.
  };
  void InjectCheckpointCrash(CrashPoint point) { crash_point_ = point; }

  [[nodiscard]] uint64_t epoch() const { return epoch_; }
  /// Logical clock: one tick per applied operation (restored by replay).
  [[nodiscard]] uint64_t clock() const { return clock_; }

  struct Stats {
    int64_t wal_records = 0;      ///< Records appended this session.
    int64_t replayed_ops = 0;     ///< Ops re-executed during Open().
    int64_t recovered_txns = 0;   ///< In-flight txns compensated on Open().
    int64_t checkpoints = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Registry holding `wal.flushes` and `wal.records_batched`.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Attaches this peer's flight recorder (not owned; null detaches). The
  /// store stamps WAL append/flush/checkpoint, recovery, and compensation
  /// events, and threads the recorder into the executors it creates so
  /// operation execution shows up in the same ring.
  void AttachRecorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  /// Attaches the repository-wide phase timeline (not owned; null
  /// detaches). The store stamps zero-width WAL_APPEND / FLUSH_WAIT /
  /// RECOVERY markers at the timeline's convenience clock (the store is
  /// clock-less; the overlay keeps that clock at simulation time). Durable
  /// I/O takes zero simulated ticks, so these markers record occurrence
  /// rather than duration — see DESIGN.md §7.
  void AttachTimeline(obs::Timeline* timeline) { timeline_ = timeline; }

  /// Routes WAL work through the worker pool (not owned; null detaches):
  /// each append becomes a kJobWalAppend job and each group-commit flush a
  /// kJobFlush job, both applied serialized in submission order — WAL bytes
  /// are identical to the synchronous path. Appends are then deferred until
  /// the queue drains, which the owning overlay::Network does at every
  /// event boundary; since crashes are only injected at event boundaries,
  /// durability guarantees are unchanged (DESIGN.md §11). `peer` labels the
  /// jobs for the pool's flight recorders. Synchronous entry points
  /// (FlushWal, Checkpoint, the destructor) drain the pool first; a
  /// deferred append's I/O error is surfaced, sticky, by the next journaled
  /// call. Attach only after Open(), and detach before the queue dies.
  void AttachRuntime(runtime::JobQueue* rt, std::string peer = {}) {
    runtime_ = rt;
    runtime_peer_ = std::move(peer);
  }

 private:
  struct TxnState {
    ops::OpLog effects;
    /// docs[i] names the document effects()[i] applied to.
    std::vector<std::string> docs;
    std::map<std::string, std::vector<size_t>> ops_by_doc;
    /// Logical clock at BEGIN (the txn's snapshot stamp in the WAL).
    uint64_t begin_version = 0;
    /// OP records this txn appended to the current WAL segment — both
    /// forward and journaled compensating ops. RESOLVED carries this count
    /// so replay can detect a torn tail (RESOLVED present, payload lost).
    size_t wal_ops = 0;
  };

  struct WalCounters {
    explicit WalCounters(obs::MetricsRegistry* metrics);
    obs::Counter& flushes;          ///< wal.flushes
    obs::Counter& records_batched;  ///< wal.records_batched
  };

  struct HotPathCounters {
    explicit HotPathCounters(obs::MetricsRegistry* metrics);
    obs::Counter& nodes_allocated;   ///< doc.nodes_allocated
    obs::Counter& index_hits;        ///< query.index_hits
    obs::Counter& index_candidates;  ///< query.index_candidates
    obs::Counter& walk_fallbacks;    ///< query.walk_fallbacks
  };

  /// Folds the since-last-publish deltas of the eval context's stats and
  /// the documents' storage stats into the metrics registry.
  void PublishHotPathCounters();

  /// Appends `record` to the WAL batch; flushes per policy. Pass
  /// `force_flush` for records that resolve a transaction. With a runtime
  /// attached the work is submitted as a kJobWalAppend job instead; `txn`
  /// (when the record belongs to one) keys the job's queue-wait timeline
  /// claim.
  Status AppendWal(const std::string& record, bool force_flush = false,
                   const std::string& txn = {});

  /// The synchronous append body (batch + policy flush decision). Runs
  /// inline without a runtime, or as the append job's apply stage with one.
  Status AppendWalNow(const std::string& record, bool force_flush);

  /// FlushWal without the drain barrier: the actual buffered-batch write.
  Status FlushWalNow();
  Status ReplayWal();
  Status LoadSnapshots();
  Result<const ops::OpEffect*> ApplyOp(const std::string& txn,
                                       const std::string& doc,
                                       const ops::Operation& op);
  Status CompensateTxn(const std::string& txn, bool journal);

  /// Stamps a zero-width `phase` marker for `txn` at the timeline clock
  /// (no-op without an attached timeline).
  void MarkPhase(const std::string& txn, const char* phase);

  std::string directory_;
  axml::ServiceInvoker invoker_;
  FlushPolicy flush_policy_;
  std::map<std::string, std::string> externals_;
  std::map<std::string, std::unique_ptr<xml::Document>> documents_;
  std::map<std::string, TxnState> active_txns_;
  Stats stats_;
  obs::MetricsRegistry metrics_;
  WalCounters wal_counters_{&metrics_};
  HotPathCounters hot_counters_{&metrics_};
  /// Shared evaluation scratch for all operations this store applies; its
  /// cumulative stats are published as counter deltas.
  query::EvalContext eval_ctx_;
  query::EvalStats published_eval_stats_;
  int64_t published_nodes_allocated_ = 0;
  std::ofstream wal_;          ///< Kept open across appends; see Checkpoint().
  std::string wal_batch_;      ///< Serialized records awaiting flush.
  size_t batched_records_ = 0;
  bool open_ = false;
  obs::FlightRecorder* recorder_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
  runtime::JobQueue* runtime_ = nullptr;
  std::string runtime_peer_;
  /// First I/O error hit by a deferred WAL job; surfaced by the next
  /// journaled call (sticky — the WAL is suspect from that point on).
  Status wal_job_error_ = Status::Ok();
  uint64_t epoch_ = 0;   ///< Current checkpoint epoch (manifest-committed).
  uint64_t clock_ = 0;   ///< Logical clock: ticks once per applied op.
  CrashPoint crash_point_ = CrashPoint::kNone;
  std::vector<std::string> seen_dedup_keys_;
  std::map<std::string, bool> resolved_outcomes_;
};

/// Newline/percent escaping for single-line WAL payloads.
std::string EncodeWalPayload(const std::string& raw);
std::string DecodeWalPayload(const std::string& encoded);

/// Append-into variant used by the record batcher to avoid a temporary.
void EncodeWalPayloadTo(const std::string& raw, std::string* out);

}  // namespace axmlx::storage

#endif  // AXMLX_STORAGE_DURABLE_STORE_H_
