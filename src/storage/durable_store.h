#ifndef AXMLX_STORAGE_DURABLE_STORE_H_
#define AXMLX_STORAGE_DURABLE_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "axml/materializer.h"
#include "common/status.h"
#include "ops/executor.h"
#include "ops/op_log.h"
#include "xml/document.h"

namespace axmlx::storage {

/// Durable document store for an AXML peer: the "D" of the paper's relaxed
/// ACID framework. Documents live in memory; every operation is recorded in
/// a write-ahead log *before* it is applied, and `Checkpoint()` persists
/// full snapshots and truncates the log.
///
/// Recovery follows the logical-redo-then-compensate discipline that falls
/// out of the paper's compensation model (§3.1): on `Open()`, the last
/// snapshot is loaded and the WAL is replayed **in order** — regenerating
/// each operation's effect log as it goes — after which transactions with
/// no RESOLVED record (in-flight at the crash) are rolled back by executing
/// their dynamically constructed compensating operations in reverse order.
/// A completed abort is itself durable: the compensating operations are
/// logged as ordinary operations before the transaction is RESOLVED.
///
/// WAL record grammar (one record per line, payloads newline-escaped):
///   BEGIN <txn>
///   OP <txn> <doc> <operation-xml>
///   RESOLVED <txn>            -- commit, or abort whose compensation is
///                                fully journaled as OP records
///   NEWDOC <document-xml>
class DurableStore {
 public:
  /// `directory` is created on Open() if missing. `invoker` resolves
  /// embedded service-call materializations during execution AND during
  /// recovery replay (pass the same deterministic invoker for exact
  /// replay; null forbids materialization).
  DurableStore(std::string directory, axml::ServiceInvoker invoker);
  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Loads snapshots, replays the WAL, compensates in-flight transactions.
  Status Open();

  /// Registers a new document (durable at the next checkpoint; its creation
  /// is also journaled so recovery can rebuild it from the WAL).
  Status CreateDocument(const std::string& xml_text);

  xml::Document* Get(const std::string& name);
  std::vector<std::string> DocumentNames() const;

  // --- Transactional execution ---------------------------------------------

  /// Supplies a `$name` external service-call parameter for all future
  /// operations. Journaled ("EXT" record) so replay materializes with the
  /// same inputs.
  Status SetExternal(const std::string& name, const std::string& value);

  /// Starts transaction `txn` (journaled).
  Status Begin(const std::string& txn);

  /// Journals then applies `op` against document `doc` under `txn`.
  Result<const ops::OpEffect*> Execute(const std::string& txn,
                                       const std::string& doc,
                                       const ops::Operation& op);

  /// Makes `txn` durable (journals RESOLVED).
  Status Commit(const std::string& txn);

  /// Rolls `txn` back by executing its compensating operations (journaled
  /// as ordinary operations), then journals RESOLVED.
  Status Abort(const std::string& txn);

  /// Writes snapshots of all documents and truncates the WAL.
  Status Checkpoint();

  struct Stats {
    int64_t wal_records = 0;      ///< Records appended this session.
    int64_t replayed_ops = 0;     ///< Ops re-executed during Open().
    int64_t recovered_txns = 0;   ///< In-flight txns compensated on Open().
    int64_t checkpoints = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct TxnState {
    ops::OpLog effects;
    /// docs[i] names the document effects()[i] applied to.
    std::vector<std::string> docs;
    std::map<std::string, std::vector<size_t>> ops_by_doc;
  };

  Status AppendWal(const std::string& record);
  Status ReplayWal();
  Status LoadSnapshots();
  Result<const ops::OpEffect*> ApplyOp(const std::string& txn,
                                       const std::string& doc,
                                       const ops::Operation& op);
  Status CompensateTxn(const std::string& txn, bool journal);

  std::string directory_;
  axml::ServiceInvoker invoker_;
  std::map<std::string, std::string> externals_;
  std::map<std::string, std::unique_ptr<xml::Document>> documents_;
  std::map<std::string, TxnState> active_txns_;
  Stats stats_;
  bool open_ = false;
};

/// Newline/percent escaping for single-line WAL payloads.
std::string EncodeWalPayload(const std::string& raw);
std::string DecodeWalPayload(const std::string& encoded);

}  // namespace axmlx::storage

#endif  // AXMLX_STORAGE_DURABLE_STORE_H_
