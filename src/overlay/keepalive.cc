#include "overlay/keepalive.h"

#include <utility>
#include <vector>

namespace axmlx::overlay {

void KeepAliveMonitor::Watch(const PeerId& target, DownCallback on_down) {
  state_->watched[target] = std::move(on_down);
}

void KeepAliveMonitor::Unwatch(const PeerId& target) {
  state_->watched.erase(target);
}

void KeepAliveMonitor::Start() {
  if (state_->running) return;
  state_->running = true;
  std::shared_ptr<State> state = state_;
  state_->net->ScheduleAfter(state_->interval,
                             [state](Network*) { CheckRound(state); });
}

void KeepAliveMonitor::Stop() { state_->running = false; }

void KeepAliveMonitor::CheckRound(std::shared_ptr<State> state) {
  if (!state->running) return;
  // Nothing to watch: go idle instead of keeping the event queue alive
  // forever. Start() re-arms the monitor when a new watch arrives.
  if (state->watched.empty()) {
    state->running = false;
    return;
  }
  // The watcher itself may have disconnected; a dead peer pings nobody.
  // Go idle (rather than silently dropping the chain with running still
  // set) so Start() can re-arm the monitor after a reconnect.
  if (!state->net->IsConnected(state->watcher)) {
    state->running = false;
    return;
  }
  std::vector<PeerId> down;
  for (const auto& [target, cb] : state->watched) {
    // A ping needs a round trip: a crashed peer or one on the far side of a
    // partition looks exactly like a disconnected one.
    if (!state->net->CanReach(state->watcher, target)) down.push_back(target);
  }
  Tick now = state->net->now();
  for (const PeerId& target : down) {
    // An earlier callback this round may have unwatched this target (e.g.
    // by resolving the transaction that was waiting on it).
    auto it = state->watched.find(target);
    if (it == state->watched.end()) continue;
    if (state->net->trace() != nullptr) {
      state->net->trace()->Add(now, state->watcher, kEvPingTimeout,
                               "detected disconnection of " + target);
    }
    DownCallback cb = std::move(it->second);
    state->watched.erase(it);
    cb(target, now);
  }
  if (state->running) {
    state->net->ScheduleAfter(state->interval,
                              [state](Network*) { CheckRound(state); });
  }
}

}  // namespace axmlx::overlay
