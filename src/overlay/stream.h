#ifndef AXMLX_OVERLAY_STREAM_H_
#define AXMLX_OVERLAY_STREAM_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "overlay/network.h"

namespace axmlx::overlay {

/// Message type used by data streams.
inline constexpr char kStreamMessage[] = "STREAM";

/// Periodic data stream between peers, modelling the paper's
/// "subscription based continuous services which are responsible for
/// sending updated (streams of) data at regular intervals" (§3.3(d), and
/// the `frequency` attribute of embedded service calls).
///
/// The publisher emits one STREAM message per interval while its hosting
/// peer is connected; a disconnected publisher simply goes silent — which
/// is exactly the signal subscribers detect.
class StreamPublisher {
 public:
  /// `net` must outlive the publisher. `stream_id` identifies the stream in
  /// message headers (e.g. the continuous service's name).
  StreamPublisher(Network* net, PeerId from, PeerId to, Tick interval,
                  std::string stream_id);

  /// Begins emitting. Idempotent.
  void Start();

  /// Stops emitting (e.g. the subscription ended).
  void Stop();

  int64_t messages_sent() const { return state_->sent; }

 private:
  struct State {
    Network* net = nullptr;
    PeerId from;
    PeerId to;
    Tick interval = 10;
    std::string stream_id;
    bool running = false;
    int64_t sent = 0;
  };
  static void Emit(std::shared_ptr<State> state);
  std::shared_ptr<State> state_;
};

/// Subscriber-side silence detector: "a sibling would be aware of another
/// sibling's disconnection if it doesn't receive data at the specified
/// interval". Feed incoming STREAM messages via OnStreamMessage; the
/// callback fires once when a publisher misses `grace` consecutive
/// intervals.
class StreamWatcher {
 public:
  using SilenceCallback = std::function<void(const PeerId& from, Tick when)>;

  /// `grace`: how many intervals of silence mean "disconnected" (>= 1).
  StreamWatcher(Network* net, PeerId watcher, Tick interval, int grace = 2);

  /// Silence callbacks typically capture the owning peer; a crash-stop
  /// destroys it while check rounds are still queued, so drop them here.
  ~StreamWatcher() {
    if (state_ != nullptr) {
      state_->running = false;
      state_->expected.clear();
    }
  }

  StreamWatcher(StreamWatcher&&) = default;
  StreamWatcher& operator=(StreamWatcher&&) = default;

  /// Starts expecting a stream from `from`. The clock starts now.
  void Expect(const PeerId& from, SilenceCallback on_silence);

  /// Stops expecting `from`.
  void Forget(const PeerId& from);

  /// Call for every STREAM message the owning peer receives.
  void OnStreamMessage(const Message& message);

 private:
  struct Expected {
    Tick last_seen = 0;
    SilenceCallback on_silence;
  };
  struct State {
    Network* net = nullptr;
    PeerId watcher;
    Tick interval = 10;
    int grace = 2;
    bool running = false;
    std::map<PeerId, Expected> expected;
  };
  static void CheckRound(std::shared_ptr<State> state);
  void EnsureRunning();

  std::shared_ptr<State> state_;
};

}  // namespace axmlx::overlay

#endif  // AXMLX_OVERLAY_STREAM_H_
