#include "overlay/fault_injection.h"

#include <utility>

namespace axmlx::overlay {

void FaultPlan::Partition(std::vector<std::vector<PeerId>> groups) {
  side_.clear();
  partitioned_ = false;
  int group_index = 0;
  for (const std::vector<PeerId>& group : groups) {
    for (const PeerId& id : group) side_[id] = group_index;
    ++group_index;
  }
  partitioned_ = group_index > 0;
}

bool FaultPlan::SameSide(const PeerId& a, const PeerId& b) const {
  if (!partitioned_) return true;
  if (a.empty() || b.empty()) return true;  // the harness reaches everything
  // Unlisted peers share one implicit group (index -1).
  auto side_of = [this](const PeerId& id) {
    auto it = side_.find(id);
    return it == side_.end() ? -1 : it->second;
  };
  return side_of(a) == side_of(b);
}

const FaultRule* FaultPlan::Match(const Message& message) const {
  for (const FaultRule& rule : rules_) {
    if (!rule.from.empty() && rule.from != message.from) continue;
    if (!rule.to.empty() && rule.to != message.to) continue;
    if (!rule.type.empty() && rule.type != message.type) continue;
    return &rule;
  }
  return nullptr;
}

std::vector<FaultPlan::Delivery> FaultPlan::Decide(
    const Message& message, const std::vector<PeerId>& all_peers) {
  std::vector<Delivery> deliveries;
  const FaultRule* rule = Match(message);
  if (rule == nullptr) {
    deliveries.push_back({});
    return deliveries;
  }
  if (rule->drop_rate > 0 && rng_.Bernoulli(rule->drop_rate)) {
    ++stats_.dropped;
    return deliveries;  // empty: lost in transit
  }
  int copies = 1;
  if (rule->dup_rate > 0 && rng_.Bernoulli(rule->dup_rate)) {
    ++stats_.duplicated;
    copies = 2;
  }
  for (int i = 0; i < copies; ++i) {
    Delivery d;
    if (rule->delay_max > 0) {
      d.extra_delay = static_cast<Tick>(
          rng_.Uniform(static_cast<uint64_t>(rule->delay_max) + 1));
      if (d.extra_delay > 0) ++stats_.delayed;
    }
    if (rule->misroute_rate > 0 && rng_.Bernoulli(rule->misroute_rate) &&
        all_peers.size() > 1) {
      // Deliver to a uniformly random peer other than the intended one.
      PeerId wrong;
      for (int attempt = 0; attempt < 8 && wrong.empty(); ++attempt) {
        const PeerId& pick = all_peers[rng_.Uniform(all_peers.size())];
        if (pick != message.to) wrong = pick;
      }
      if (!wrong.empty()) {
        d.redirect_to = std::move(wrong);
        ++stats_.misrouted;
      }
    }
    deliveries.push_back(std::move(d));
  }
  return deliveries;
}

}  // namespace axmlx::overlay
