#ifndef AXMLX_OVERLAY_KEEPALIVE_H_
#define AXMLX_OVERLAY_KEEPALIVE_H_

#include <functional>
#include <map>
#include <memory>

#include "overlay/network.h"

namespace axmlx::overlay {

/// Periodic ping/keep-alive watcher (paper §3.3: "Related P2P research
/// relies on ping (or keep-alive) messages to detect peer disconnection",
/// and case (c): "AP2 detects the disconnection of AP3 via ping messages").
///
/// The watcher checks each watched peer every `interval` ticks; when a peer
/// is found disconnected the callback fires once with the detection time,
/// making detection latency measurable (bounded by the ping interval).
class KeepAliveMonitor {
 public:
  using DownCallback = std::function<void(const PeerId& peer, Tick detected)>;

  /// `net` must outlive the monitor (hold it in the owning peer).
  KeepAliveMonitor(Network* net, PeerId watcher, Tick interval)
      : state_(std::make_shared<State>()) {
    state_->net = net;
    state_->watcher = std::move(watcher);
    state_->interval = interval;
  }

  /// Scheduled check rounds hold the shared state, but the registered
  /// callbacks typically capture the owning peer — a crash-stop destroys
  /// that peer, so the monitor must silence itself when it goes away.
  ~KeepAliveMonitor() {
    if (state_ != nullptr) {
      state_->running = false;
      state_->watched.clear();
    }
  }

  KeepAliveMonitor(KeepAliveMonitor&&) = default;
  KeepAliveMonitor& operator=(KeepAliveMonitor&&) = default;

  /// Starts watching `target`. The callback fires at most once per target.
  void Watch(const PeerId& target, DownCallback on_down);

  /// Stops watching `target` (e.g. the protocol finished with it).
  void Unwatch(const PeerId& target);

  /// Begins periodic checking. Idempotent.
  void Start();

  /// Stops all checking.
  void Stop();

 private:
  struct State {
    Network* net = nullptr;
    PeerId watcher;
    Tick interval = 10;
    bool running = false;
    std::map<PeerId, DownCallback> watched;
  };
  static void CheckRound(std::shared_ptr<State> state);

  // Shared so scheduled closures survive monitor moves and detect Stop().
  std::shared_ptr<State> state_;
};

}  // namespace axmlx::overlay

#endif  // AXMLX_OVERLAY_KEEPALIVE_H_
