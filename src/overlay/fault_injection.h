#ifndef AXMLX_OVERLAY_FAULT_INJECTION_H_
#define AXMLX_OVERLAY_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "overlay/network.h"

namespace axmlx::overlay {

/// One link-level fault rule. Empty `from`/`to`/`type` act as wildcards;
/// the first matching rule (in AddRule order) decides a message's fate, so
/// specific rules should be added before blanket ones.
struct FaultRule {
  PeerId from;       ///< Sender filter; empty matches any sender.
  PeerId to;         ///< Destination filter; empty matches any destination.
  std::string type;  ///< Message-type filter ("RESULT", ...); empty = any.

  double drop_rate = 0.0;      ///< P(message silently lost in transit).
  double dup_rate = 0.0;       ///< P(a second copy is delivered).
  double misroute_rate = 0.0;  ///< P(delivered to a random wrong peer).
  Tick delay_max = 0;          ///< Extra delay, uniform in [0, delay_max].
};

/// Seeded, deterministic adversary for the overlay: decides per message
/// whether it is dropped, duplicated, delayed (and thereby reordered past
/// later traffic), or delivered to the wrong peer — and models network
/// partitions that split the overlay into groups that cannot talk to each
/// other until Heal().
///
/// The plan draws all randomness from its own splitmix64 stream, so a fault
/// schedule is reproducible from (seed, rule set, message sequence) alone;
/// two runs of the same workload under the same plan see byte-identical
/// fault interleavings. Attach to a network with Network::SetFaultPlan.
class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed) : rng_(seed) {}

  /// Appends a rule; earlier rules win on overlap.
  void AddRule(FaultRule rule) { rules_.push_back(std::move(rule)); }
  void ClearRules() { rules_.clear(); }

  // --- Partitions ----------------------------------------------------------

  /// Splits the overlay: peers in different groups cannot exchange messages
  /// (sends fail fast, in-flight messages are dropped at delivery time).
  /// Peers not listed in any group form one extra implicit group.
  void Partition(std::vector<std::vector<PeerId>> groups);

  /// Removes the partition; all peers can talk again.
  void Heal() { side_.clear(); partitioned_ = false; }

  bool partitioned() const { return partitioned_; }

  /// True when `a` and `b` are on the same side of the current partition
  /// (always true when no partition is active). An empty id denotes the
  /// harness/simulator itself, which reaches everything.
  bool SameSide(const PeerId& a, const PeerId& b) const;

  // --- Per-message decisions -----------------------------------------------

  /// One physical delivery of a (possibly duplicated/misrouted) message.
  struct Delivery {
    Tick extra_delay = 0;  ///< Added on top of the link latency.
    PeerId redirect_to;    ///< Non-empty: deliver here instead of `to`.
  };

  /// Decides the fate of `message`: an empty vector means the message is
  /// dropped in transit; otherwise each entry is one delivery to schedule.
  /// `all_peers` supplies misroute targets. Called once per logical send.
  std::vector<Delivery> Decide(const Message& message,
                               const std::vector<PeerId>& all_peers);

  struct Stats {
    int64_t dropped = 0;
    int64_t duplicated = 0;
    int64_t delayed = 0;
    int64_t misrouted = 0;
    int64_t partition_blocked = 0;  ///< Sends/deliveries cut by a partition.
  };
  const Stats& stats() const { return stats_; }
  Stats* mutable_stats() { return &stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  const FaultRule* Match(const Message& message) const;

  Rng rng_;
  std::vector<FaultRule> rules_;
  std::map<PeerId, int> side_;  ///< Partition group index per listed peer.
  bool partitioned_ = false;
  Stats stats_;
};

}  // namespace axmlx::overlay

#endif  // AXMLX_OVERLAY_FAULT_INJECTION_H_
