#ifndef AXMLX_OVERLAY_NETWORK_H_
#define AXMLX_OVERLAY_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace axmlx::runtime {
class JobQueue;
}  // namespace axmlx::runtime

namespace axmlx::overlay {

/// Peers are addressed by readable ids matching the paper's figures
/// ("AP1".."AP6").
using PeerId = std::string;

/// Simulation time, in abstract ticks.
using Tick = int64_t;

/// A message between peers. Payloads are carried as a header map plus an
/// optional body string (serialized XML operations etc.); `attachment` is a
/// simulator shortcut for structured in-process payloads that would be
/// serialized in a wire implementation.
struct Message {
  PeerId from;
  PeerId to;
  std::string type;  ///< e.g. "INVOKE", "RESULT", "ABORT", "FAULT".
  std::map<std::string, std::string> headers;
  std::string body;
  std::shared_ptr<const void> attachment;
  int64_t id = 0;  ///< Assigned by the network on send.
};

class Network;
class FaultPlan;

/// Base class for simulated peers. Subclasses implement the AXML peer
/// behaviour (transaction manager, recovery protocol, ...).
class PeerNode {
 public:
  PeerNode(PeerId id, bool super_peer)
      : id_(std::move(id)), super_peer_(super_peer) {}
  virtual ~PeerNode() = default;

  PeerNode(const PeerNode&) = delete;
  PeerNode& operator=(const PeerNode&) = delete;

  /// Delivered when a message addressed to this peer arrives (only while
  /// connected).
  virtual void OnMessage(const Message& message, Network* net) = 0;

  /// Called after each delivery for peers that opted in via
  /// Network::RequestTicks (periodic work such as keep-alive checks that is
  /// not driven by scheduled closures). Default: nothing. A subclass that
  /// overrides this must call RequestTicks(id()) to receive ticks.
  virtual void OnTick(Tick now, Network* net);

  const PeerId& id() const { return id_; }

  /// Super peers are "trusted peers which do not disconnect" (§3.3); the
  /// network refuses to disconnect them.
  bool super_peer() const { return super_peer_; }

 private:
  PeerId id_;
  bool super_peer_;
};

/// Deterministic discrete-event message bus connecting the peers.
///
/// Substitution note (see DESIGN.md): the paper's system ran on a real P2P
/// overlay; the protocols under study depend on message ordering, failure
/// interleavings, and detection timing — all of which this simulator
/// controls exactly, making the experiments reproducible from a seed.
class Network {
 public:
  explicit Network(uint64_t seed = 1, Trace* trace = nullptr);

  /// Registers a peer. The network owns it.
  void AddPeer(std::unique_ptr<PeerNode> peer);
  PeerNode* FindPeer(const PeerId& id);

  /// All registered peer ids, in registration order.
  std::vector<PeerId> peer_ids() const { return order_; }

  // --- Connectivity --------------------------------------------------------

  /// Marks `id` as disconnected: queued and future messages to it are
  /// dropped, and sends to it fail fast. Super peers cannot disconnect.
  Status Disconnect(const PeerId& id);
  Status Reconnect(const PeerId& id);
  bool IsConnected(const PeerId& id) const;

  /// Schedules a disconnection at an absolute time.
  void DisconnectAt(Tick when, const PeerId& id);

  /// Crash-stop: destroys the peer object — all of its in-memory state
  /// (contexts, documents, monitors) is lost — while its slot and id stay
  /// registered. Messages to a crashed peer fail/drop like a disconnected
  /// one. Super peers cannot crash. Recover with Restart().
  Status Crash(const PeerId& id);

  /// Rejoins a crashed peer with a rebuilt node (same id). The caller is
  /// responsible for having restored the node's durable state (e.g. by
  /// replaying a storage::DurableStore WAL) before rejoining.
  Status Restart(std::unique_ptr<PeerNode> peer);

  /// True when `id` is registered but its node was destroyed by Crash().
  bool IsCrashed(const PeerId& id) const;

  /// True when `from` can currently reach `to`: both connected (and not
  /// crashed) and on the same side of any active fault-plan partition. An
  /// empty `from` denotes the harness, which only needs `to` reachable.
  bool CanReach(const PeerId& from, const PeerId& to) const;

  // --- Fault injection -----------------------------------------------------

  /// Attaches `plan` (not owned; null detaches). Every subsequent send and
  /// delivery is filtered through it: messages may be dropped, duplicated,
  /// delayed, misrouted, or blocked by a partition.
  void SetFaultPlan(FaultPlan* plan) { fault_plan_ = plan; }
  FaultPlan* fault_plan() { return fault_plan_; }

  // --- Flight recording ----------------------------------------------------

  /// Attaches the per-peer flight-recorder set (not owned; null detaches).
  /// The network stamps message send/recv/drop, fault-injection, and
  /// crash/restart events into each peer's ring, and keeps the set's shared
  /// clock in step with simulation time so every component recording into
  /// the same set agrees on event timestamps.
  void SetRecorders(obs::FlightRecorderSet* recorders) {
    recorders_ = recorders;
  }
  obs::FlightRecorderSet* recorders() { return recorders_; }

  /// Attaches the per-transaction phase timeline (not owned; null
  /// detaches). Every enqueued physical copy of a message whose
  /// `txn_header` header names an open transaction places one NET_INFLIGHT
  /// claim, released when that copy is delivered or dropped — so duplicated
  /// copies hold overlapping claims and the phase stays attributed until
  /// the last one lands. The network also keeps the timeline's convenience
  /// clock in step with simulation time (like the recorder set's), which is
  /// what clock-less components such as storage::DurableStore stamp their
  /// claims with. The header key is injected by the repository layer so the
  /// overlay stays ignorant of transaction-protocol header names.
  void SetTimeline(obs::Timeline* timeline, std::string txn_header) {
    timeline_ = timeline;
    timeline_txn_header_ = std::move(txn_header);
  }
  obs::Timeline* timeline() { return timeline_; }

  /// Attaches the worker pool peers submit jobs to (not owned; null
  /// detaches). The event loop drains it after every dispatched event —
  /// scheduled closure, message delivery, and the tick fan-out — so the
  /// queue is provably empty at every event boundary. That is the parallel
  /// runtime's crash-point invariant (DESIGN.md §11): Crash() only happens
  /// between events, where no job is in flight, so the set of states a
  /// crash can observe is identical with and without worker threads.
  void SetRuntime(runtime::JobQueue* rt) { runtime_ = rt; }
  runtime::JobQueue* runtime() { return runtime_; }

  // --- Messaging -----------------------------------------------------------

  /// Enqueues `message` for delivery after the link latency. Returns
  /// kPeerDisconnected immediately when the destination is unreachable —
  /// modelling a failed connection attempt, which is how the paper's peers
  /// detect disconnection "while trying to return the results" (§3.3(b)).
  Result<int64_t> Send(Message message);

  /// Per-link latency: base + uniform jitter ticks.
  void SetLatency(Tick base, Tick jitter) {
    latency_base_ = base;
    latency_jitter_ = jitter;
  }

  // --- Scheduling and the event loop ---------------------------------------

  /// Runs `fn` at absolute time `when` (or now, if in the past).
  void ScheduleAt(Tick when, std::function<void(Network*)> fn);

  /// Runs `fn` after `delay` ticks.
  void ScheduleAfter(Tick delay, std::function<void(Network*)> fn);

  /// Processes events until the queue drains or `max_time` is reached.
  /// Returns the simulation time after the run.
  Tick RunUntilQuiescent(Tick max_time = 1'000'000);

  /// Advances through events with timestamps <= `until`.
  void RunUntil(Tick until);

  Tick now() const { return now_; }

  /// Opts `id` into OnTick dispatch after each delivery. Ticks are opt-in:
  /// delivering a message costs O(subscribers), not O(peers), so a network
  /// with no periodic work pays nothing. Dispatch order follows
  /// registration order, keeping interleavings deterministic.
  void RequestTicks(const PeerId& id);
  void CancelTicks(const PeerId& id);

  struct Stats {
    int64_t messages_sent = 0;
    int64_t messages_delivered = 0;
    int64_t messages_dropped = 0;   ///< Destination vanished in flight.
    int64_t sends_failed = 0;       ///< Destination unreachable at send.
    int64_t sends_rejected = 0;     ///< Destination id was never registered.
    int64_t faults_injected = 0;    ///< Plan-made drops/dups/delays/misroutes.
    int64_t tick_calls = 0;         ///< OnTick dispatches (perf accounting).
  };
  /// Thin view assembled from the metrics registry (`overlay.*` counters).
  Stats stats() const;
  void ResetStats() { metrics_.Reset(); }

  /// The registry backing the overlay.* counters.
  obs::MetricsRegistry& metrics() { return metrics_; }

  Trace* trace() { return trace_; }

 private:
  struct Event {
    Tick time = 0;
    int64_t seq = 0;  ///< Tie-break: FIFO among same-time events.
    // Exactly one of the two is set.
    std::shared_ptr<Message> message;
    std::function<void(Network*)> fn;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void TraceEventf(const std::string& actor, const std::string& kind,
                   const std::string& detail);

  /// Stamps one flight-recorder event for `peer` at the current simulation
  /// time (no-op without an attached set).
  void RecordFr(const PeerId& peer, const char* kind, std::string_view what,
                int64_t arg = 0);

  /// Cached registry handles for the hot send/deliver paths; the registry
  /// remains the source of truth (Stats is assembled from it on demand).
  struct NetCounters {
    explicit NetCounters(obs::MetricsRegistry* metrics);
    obs::Counter& messages_sent;
    obs::Counter& messages_delivered;
    obs::Counter& messages_dropped;
    obs::Counter& sends_failed;
    obs::Counter& sends_rejected;
    obs::Counter& faults_injected;
    obs::Counter& tick_calls;
  };

  /// Enqueues one physical delivery of `message` (already id-stamped).
  void EnqueueDelivery(Message message, Tick extra_delay);

  /// Places / releases `message`'s NET_INFLIGHT timeline claim (no-op
  /// without an attached timeline or a transaction header).
  void TimelineEnter(const Message& message);
  void TimelineExit(const Message& message);

  std::map<PeerId, std::unique_ptr<PeerNode>> peers_;
  std::vector<PeerId> order_;
  std::vector<PeerId> tick_subscribers_;  ///< Registration order.
  std::map<PeerId, bool> connected_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  Tick now_ = 0;
  int64_t next_seq_ = 0;
  int64_t next_message_id_ = 1;
  Tick latency_base_ = 1;
  Tick latency_jitter_ = 0;
  Rng rng_;
  obs::MetricsRegistry metrics_;      ///< Must precede counters_.
  NetCounters counters_{&metrics_};
  Trace* trace_;
  FaultPlan* fault_plan_ = nullptr;
  runtime::JobQueue* runtime_ = nullptr;
  obs::FlightRecorderSet* recorders_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
  std::string timeline_txn_header_;
};

}  // namespace axmlx::overlay

#endif  // AXMLX_OVERLAY_NETWORK_H_
