#include "overlay/stream.h"

#include <utility>
#include <vector>

namespace axmlx::overlay {

StreamPublisher::StreamPublisher(Network* net, PeerId from, PeerId to,
                                 Tick interval, std::string stream_id)
    : state_(std::make_shared<State>()) {
  state_->net = net;
  state_->from = std::move(from);
  state_->to = std::move(to);
  state_->interval = interval;
  state_->stream_id = std::move(stream_id);
}

void StreamPublisher::Start() {
  if (state_->running) return;
  state_->running = true;
  std::shared_ptr<State> state = state_;
  state_->net->ScheduleAfter(state_->interval,
                             [state](Network*) { Emit(state); });
}

void StreamPublisher::Stop() { state_->running = false; }

void StreamPublisher::Emit(std::shared_ptr<State> state) {
  if (!state->running) return;
  // A disconnected publisher is silent — that silence is the subscriber's
  // disconnection signal (§3.3(d)).
  if (!state->net->IsConnected(state->from)) return;
  Message m;
  m.from = state->from;
  m.to = state->to;
  m.type = kStreamMessage;
  m.headers["stream"] = state->stream_id;
  if (state->net->Send(std::move(m)).ok()) ++state->sent;
  state->net->ScheduleAfter(state->interval,
                            [state](Network*) { Emit(state); });
}

StreamWatcher::StreamWatcher(Network* net, PeerId watcher, Tick interval,
                             int grace)
    : state_(std::make_shared<State>()) {
  state_->net = net;
  state_->watcher = std::move(watcher);
  state_->interval = interval;
  state_->grace = grace < 1 ? 1 : grace;
}

void StreamWatcher::Expect(const PeerId& from, SilenceCallback on_silence) {
  Expected expected;
  expected.last_seen = state_->net->now();
  expected.on_silence = std::move(on_silence);
  state_->expected[from] = std::move(expected);
  EnsureRunning();
}

void StreamWatcher::Forget(const PeerId& from) {
  state_->expected.erase(from);
}

void StreamWatcher::OnStreamMessage(const Message& message) {
  auto it = state_->expected.find(message.from);
  if (it != state_->expected.end()) {
    it->second.last_seen = state_->net->now();
  }
}

void StreamWatcher::EnsureRunning() {
  if (state_->running) return;
  state_->running = true;
  std::shared_ptr<State> state = state_;
  state_->net->ScheduleAfter(state_->interval,
                             [state](Network*) { CheckRound(state); });
}

void StreamWatcher::CheckRound(std::shared_ptr<State> state) {
  if (!state->running) return;
  if (state->expected.empty()) {
    state->running = false;  // idle; Expect() re-arms
    return;
  }
  if (!state->net->IsConnected(state->watcher)) return;
  Tick now = state->net->now();
  std::vector<PeerId> silent;
  for (const auto& [from, expected] : state->expected) {
    if (now - expected.last_seen >
        state->interval * static_cast<Tick>(state->grace)) {
      silent.push_back(from);
    }
  }
  for (const PeerId& from : silent) {
    if (state->net->trace() != nullptr) {
      state->net->trace()->Add(now, state->watcher, kEvStreamSilence,
                               "no data from " + from);
    }
    SilenceCallback cb = std::move(state->expected[from].on_silence);
    state->expected.erase(from);
    cb(from, now);
  }
  if (state->running) {
    state->net->ScheduleAfter(state->interval,
                              [state](Network*) { CheckRound(state); });
  }
}

}  // namespace axmlx::overlay
