#include "overlay/network.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/metric_names.h"
#include "overlay/fault_injection.h"
#include "runtime/job_queue.h"

namespace axmlx::overlay {

namespace {

/// Stack-buffer "TYPE->PEER" / "TYPE<-PEER" composition so flight-recorder
/// emission stays allocation-free on the message path.
struct WhatBuf {
  char buf[40];
  const char* Compose(const std::string& type, const char* arrow,
                      const std::string& peer) {
    std::snprintf(buf, sizeof(buf), "%s%s%s", type.c_str(), arrow,
                  peer.c_str());
    return buf;
  }
  const char* Prefixed(const char* prefix, const std::string& type) {
    std::snprintf(buf, sizeof(buf), "%s%s", prefix, type.c_str());
    return buf;
  }
};

}  // namespace

void PeerNode::OnTick(Tick /*now*/, Network* /*net*/) {}

Network::NetCounters::NetCounters(obs::MetricsRegistry* metrics)
    : messages_sent(*metrics->GetCounter(obs::kMetricOverlayMessagesSent)),
      messages_delivered(
          *metrics->GetCounter(obs::kMetricOverlayMessagesDelivered)),
      messages_dropped(
          *metrics->GetCounter(obs::kMetricOverlayMessagesDropped)),
      sends_failed(*metrics->GetCounter(obs::kMetricOverlaySendsFailed)),
      sends_rejected(*metrics->GetCounter(obs::kMetricOverlaySendsRejected)),
      faults_injected(*metrics->GetCounter(obs::kMetricOverlayFaultsInjected)),
      tick_calls(*metrics->GetCounter(obs::kMetricOverlayTickCalls)) {}

Network::Stats Network::stats() const {
  Stats s;
  s.messages_sent = counters_.messages_sent.value();
  s.messages_delivered = counters_.messages_delivered.value();
  s.messages_dropped = counters_.messages_dropped.value();
  s.sends_failed = counters_.sends_failed.value();
  s.sends_rejected = counters_.sends_rejected.value();
  s.faults_injected = counters_.faults_injected.value();
  s.tick_calls = counters_.tick_calls.value();
  return s;
}

Network::Network(uint64_t seed, Trace* trace) : rng_(seed), trace_(trace) {}

void Network::AddPeer(std::unique_ptr<PeerNode> peer) {
  PeerId id = peer->id();
  connected_[id] = true;
  order_.push_back(id);
  peers_[id] = std::move(peer);
}

PeerNode* Network::FindPeer(const PeerId& id) {
  auto it = peers_.find(id);
  return it == peers_.end() ? nullptr : it->second.get();
}

Status Network::Disconnect(const PeerId& id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return NotFound("Disconnect: unknown peer " + id);
  if (it->second == nullptr) {
    return FailedPrecondition("Disconnect: " + id + " is crashed");
  }
  if (it->second->super_peer()) {
    return FailedPrecondition("Disconnect: " + id +
                              " is a super peer and never disconnects");
  }
  connected_[id] = false;
  TraceEventf(id, kEvDisconnect, "peer left the overlay");
  return Status::Ok();
}

Status Network::Reconnect(const PeerId& id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return NotFound("Reconnect: unknown peer " + id);
  if (it->second == nullptr) {
    return FailedPrecondition("Reconnect: " + id +
                              " is crashed; use Restart with a rebuilt node");
  }
  connected_[id] = true;
  TraceEventf(id, kEvReconnect, "peer rejoined the overlay");
  return Status::Ok();
}

bool Network::IsConnected(const PeerId& id) const {
  auto it = connected_.find(id);
  return it != connected_.end() && it->second;
}

Status Network::Crash(const PeerId& id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return NotFound("Crash: unknown peer " + id);
  if (it->second == nullptr) {
    return FailedPrecondition("Crash: " + id + " is already crashed");
  }
  if (it->second->super_peer()) {
    return FailedPrecondition("Crash: " + id +
                              " is a super peer and never crashes");
  }
  connected_[id] = false;
  CancelTicks(id);
  it->second.reset();  // destroy all in-memory state
  TraceEventf(id, kEvCrash, "peer crashed; in-memory state lost");
  // The crashed peer's ring outlives the peer object — that is the point of
  // a black box.
  RecordFr(id, obs::kEvFrCrash, "in-memory state lost");
  return Status::Ok();
}

Status Network::Restart(std::unique_ptr<PeerNode> peer) {
  PeerId id = peer->id();
  auto it = peers_.find(id);
  if (it == peers_.end()) return NotFound("Restart: unknown peer " + id);
  if (it->second != nullptr) {
    return FailedPrecondition("Restart: " + id + " is not crashed");
  }
  it->second = std::move(peer);
  connected_[id] = true;
  TraceEventf(id, kEvRestart, "peer rebuilt from durable state and rejoined");
  RecordFr(id, obs::kEvFrRestart, "rebuilt from durable state");
  return Status::Ok();
}

bool Network::IsCrashed(const PeerId& id) const {
  auto it = peers_.find(id);
  return it != peers_.end() && it->second == nullptr;
}

bool Network::CanReach(const PeerId& from, const PeerId& to) const {
  if (!IsConnected(to)) return false;
  if (!from.empty() && !IsConnected(from)) return false;
  if (fault_plan_ != nullptr && !fault_plan_->SameSide(from, to)) return false;
  return true;
}

void Network::DisconnectAt(Tick when, const PeerId& id) {
  ScheduleAt(when, [id](Network* net) {
    Status s = net->Disconnect(id);
    // A scheduled disconnect can be refused (super peer, already crashed,
    // never registered). Drills that scheduled it must be able to see that
    // the peer in fact stayed up.
    if (!s.ok()) net->TraceEventf(id, kEvDisconnectRefused, s.ToString());
  });
}

void Network::EnqueueDelivery(Message message, Tick extra_delay) {
  Tick jitter = latency_jitter_ > 0
                    ? static_cast<Tick>(rng_.Uniform(
                          static_cast<uint64_t>(latency_jitter_) + 1))
                    : 0;
  Event ev;
  ev.time = now_ + latency_base_ + jitter + extra_delay;
  ev.seq = next_seq_++;
  // One claim per physical copy: its matching Exit is the copy's terminal
  // event in RunUntil (delivered or dropped), so duplicates keep the phase
  // claimed until the last copy lands.
  TimelineEnter(message);
  ev.message = std::make_shared<Message>(std::move(message));
  queue_.push(std::move(ev));
}

void Network::TimelineEnter(const Message& message) {
  if (timeline_ == nullptr) return;
  auto it = message.headers.find(timeline_txn_header_);
  if (it == message.headers.end()) return;
  timeline_->Enter(it->second, obs::kPhaseNetInflight, now_);
}

void Network::TimelineExit(const Message& message) {
  if (timeline_ == nullptr) return;
  auto it = message.headers.find(timeline_txn_header_);
  if (it == message.headers.end()) return;
  timeline_->Exit(it->second, obs::kPhaseNetInflight, now_);
}

Result<int64_t> Network::Send(Message message) {
  if (peers_.find(message.to) == peers_.end()) {
    // Unknown destinations are accounted like any other failed send so
    // fault drills (and operators) can see misdirected traffic.
    ++counters_.sends_rejected;
    TraceEventf(message.from, kEvSendReject,
                message.type + " to " + message.to + " (unknown peer)");
    return NotFound("Send: unknown peer " + message.to);
  }
  if (!IsConnected(message.to)) {
    ++counters_.sends_failed;
    TraceEventf(message.from, kEvSendFail,
                message.type + " to " + message.to + " (disconnected)");
    return PeerDisconnected("Send: " + message.to + " is unreachable");
  }
  if (!message.from.empty() && !IsConnected(message.from)) {
    // A disconnected peer cannot emit messages. Symmetric with the
    // disconnected-destination path: counted and traced.
    ++counters_.sends_failed;
    TraceEventf(message.from, kEvSendFail,
                message.type + " to " + message.to +
                    " (sender disconnected)");
    return PeerDisconnected("Send: sender " + message.from +
                            " is disconnected");
  }
  if (fault_plan_ != nullptr &&
      !fault_plan_->SameSide(message.from, message.to)) {
    // A partition fails the connection attempt fast — the same signal the
    // paper's peers use to detect disconnection (§3.3(b)).
    ++counters_.sends_failed;
    ++fault_plan_->mutable_stats()->partition_blocked;
    TraceEventf(message.from, kEvSendFail,
                message.type + " to " + message.to + " (partitioned)");
    return PeerDisconnected("Send: " + message.to +
                            " is unreachable (partitioned)");
  }
  message.id = next_message_id_++;
  ++counters_.messages_sent;
  TraceEventf(message.from, kEvSend, message.type + " -> " + message.to);
  if (recorders_ != nullptr) {
    WhatBuf w;
    RecordFr(message.from, obs::kEvFrMsgSend,
             w.Compose(message.type, "->", message.to), message.id);
  }
  int64_t id = message.id;
  if (fault_plan_ == nullptr) {
    EnqueueDelivery(std::move(message), /*extra_delay=*/0);
    return id;
  }
  // Fault injection: the sender sees a successful send; what actually
  // reaches the other side is up to the plan. Duplicates keep the same
  // message id (they are copies of one logical send), which is what makes
  // receiver-side dedup by id possible.
  std::vector<FaultPlan::Delivery> deliveries =
      fault_plan_->Decide(message, order_);
  if (deliveries.empty()) {
    ++counters_.faults_injected;
    TraceEventf(message.from, kEvFaultDrop,
                message.type + " to " + message.to + " lost in transit");
    if (recorders_ != nullptr) {
      WhatBuf w;
      RecordFr(message.from, obs::kEvFrFault,
               w.Prefixed("drop:", message.type), message.id);
    }
    return id;
  }
  bool first = true;
  for (const FaultPlan::Delivery& d : deliveries) {
    Message copy = message;
    if (!d.redirect_to.empty()) {
      ++counters_.faults_injected;
      TraceEventf(copy.from, kEvFaultMisroute,
                  copy.type + " to " + copy.to + " rerouted to " +
                      d.redirect_to);
      if (recorders_ != nullptr) {
        WhatBuf w;
        RecordFr(copy.from, obs::kEvFrFault,
                 w.Prefixed("misroute:", copy.type), copy.id);
      }
      copy.to = d.redirect_to;
    }
    if (!first) {
      ++counters_.faults_injected;
      TraceEventf(copy.from, kEvFaultDup,
                  copy.type + " to " + copy.to + " duplicated");
      if (recorders_ != nullptr) {
        WhatBuf w;
        RecordFr(copy.from, obs::kEvFrFault, w.Prefixed("dup:", copy.type),
                 copy.id);
      }
    }
    if (d.extra_delay > 0) ++counters_.faults_injected;
    EnqueueDelivery(std::move(copy), d.extra_delay);
    first = false;
  }
  return id;
}

void Network::ScheduleAt(Tick when, std::function<void(Network*)> fn) {
  Event ev;
  ev.time = when < now_ ? now_ : when;
  ev.seq = next_seq_++;
  ev.fn = std::move(fn);
  queue_.push(std::move(ev));
}

void Network::ScheduleAfter(Tick delay, std::function<void(Network*)> fn) {
  ScheduleAt(now_ + delay, std::move(fn));
}

void Network::RequestTicks(const PeerId& id) {
  for (const PeerId& existing : tick_subscribers_) {
    if (existing == id) return;
  }
  tick_subscribers_.push_back(id);
}

void Network::CancelTicks(const PeerId& id) {
  tick_subscribers_.erase(
      std::remove(tick_subscribers_.begin(), tick_subscribers_.end(), id),
      tick_subscribers_.end());
}

void Network::RunUntil(Tick until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    // Keep the shared recorder clock in step so events stamped by peers,
    // storage, and executors during dispatch carry the right sim time.
    if (recorders_ != nullptr) recorders_->SetNow(now_);
    if (timeline_ != nullptr) timeline_->SetNow(now_);
    if (ev.fn) {
      ev.fn(this);
      // Jobs submitted by the closure finish inside this event: the queue
      // is empty again at every event boundary (the crash-point invariant,
      // see SetRuntime).
      if (runtime_ != nullptr) runtime_->Drain();
      continue;
    }
    const Message& msg = *ev.message;
    if (!IsConnected(msg.to) || FindPeer(msg.to) == nullptr) {
      ++counters_.messages_dropped;
      TraceEventf(msg.to, kEvDrop, msg.type + " from " + msg.from);
      if (recorders_ != nullptr) {
        WhatBuf w;
        RecordFr(msg.to, obs::kEvFrMsgDrop, w.Compose(msg.type, "<-", msg.from),
                 msg.id);
      }
      TimelineExit(msg);
      continue;
    }
    if (fault_plan_ != nullptr && !fault_plan_->SameSide(msg.from, msg.to)) {
      // The partition came up while the message was in flight.
      ++counters_.messages_dropped;
      ++fault_plan_->mutable_stats()->partition_blocked;
      TraceEventf(msg.to, kEvDrop,
                  msg.type + " from " + msg.from + " (partitioned)");
      if (recorders_ != nullptr) {
        WhatBuf w;
        RecordFr(msg.to, obs::kEvFrMsgDrop, w.Compose(msg.type, "<-", msg.from),
                 msg.id);
      }
      TimelineExit(msg);
      continue;
    }
    PeerNode* peer = FindPeer(msg.to);
    ++counters_.messages_delivered;
    TraceEventf(msg.to, kEvRecv, msg.type + " from " + msg.from);
    if (recorders_ != nullptr) {
      WhatBuf w;
      RecordFr(msg.to, obs::kEvFrMsgRecv, w.Compose(msg.type, "<-", msg.from),
               msg.id);
    }
    // Release the in-flight claim before dispatch, so handler work during
    // delivery (evaluation, WAL, compensation) is attributed to itself, not
    // to transport.
    TimelineExit(msg);
    peer->OnMessage(msg, this);
    // Periodic work interleaves deterministically after each delivery, but
    // only for peers that asked for ticks — delivery cost does not scale
    // with overlay size.
    for (const PeerId& id : tick_subscribers_) {
      if (!IsConnected(id)) continue;
      PeerNode* subscriber = FindPeer(id);
      if (subscriber == nullptr) continue;
      ++counters_.tick_calls;
      subscriber->OnTick(now_, this);
    }
    // Same boundary invariant after delivery + tick fan-out.
    if (runtime_ != nullptr) runtime_->Drain();
  }
  if (now_ < until) now_ = until;
  if (recorders_ != nullptr) recorders_->SetNow(now_);
  if (timeline_ != nullptr) timeline_->SetNow(now_);
}

Tick Network::RunUntilQuiescent(Tick max_time) {
  while (!queue_.empty() && queue_.top().time <= max_time) {
    RunUntil(queue_.top().time);
  }
  return now_;
}

void Network::TraceEventf(const std::string& actor, const std::string& kind,
                          const std::string& detail) {
  if (trace_ != nullptr) trace_->Add(now_, actor, kind, detail);
}

void Network::RecordFr(const PeerId& peer, const char* kind,
                       std::string_view what, int64_t arg) {
  if (recorders_ == nullptr) return;
  recorders_->SetNow(now_);
  recorders_->ForPeer(peer)->Record(kind, what, /*span=*/0, arg);
}

}  // namespace axmlx::overlay
