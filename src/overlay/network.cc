#include "overlay/network.h"

#include <utility>

namespace axmlx::overlay {

void PeerNode::OnTick(Tick /*now*/, Network* /*net*/) {}

Network::Network(uint64_t seed, Trace* trace) : rng_(seed), trace_(trace) {}

void Network::AddPeer(std::unique_ptr<PeerNode> peer) {
  PeerId id = peer->id();
  connected_[id] = true;
  order_.push_back(id);
  peers_[id] = std::move(peer);
}

PeerNode* Network::FindPeer(const PeerId& id) {
  auto it = peers_.find(id);
  return it == peers_.end() ? nullptr : it->second.get();
}

Status Network::Disconnect(const PeerId& id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return NotFound("Disconnect: unknown peer " + id);
  if (it->second->super_peer()) {
    return FailedPrecondition("Disconnect: " + id +
                              " is a super peer and never disconnects");
  }
  connected_[id] = false;
  TraceEventf(id, "DISCONNECT", "peer left the overlay");
  return Status::Ok();
}

Status Network::Reconnect(const PeerId& id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return NotFound("Reconnect: unknown peer " + id);
  connected_[id] = true;
  TraceEventf(id, "RECONNECT", "peer rejoined the overlay");
  return Status::Ok();
}

bool Network::IsConnected(const PeerId& id) const {
  auto it = connected_.find(id);
  return it != connected_.end() && it->second;
}

void Network::DisconnectAt(Tick when, const PeerId& id) {
  ScheduleAt(when, [id](Network* net) { (void)net->Disconnect(id); });
}

Result<int64_t> Network::Send(Message message) {
  if (peers_.find(message.to) == peers_.end()) {
    return NotFound("Send: unknown peer " + message.to);
  }
  if (!IsConnected(message.to)) {
    ++stats_.sends_failed;
    TraceEventf(message.from, "SEND_FAIL",
                message.type + " to " + message.to + " (disconnected)");
    return PeerDisconnected("Send: " + message.to + " is unreachable");
  }
  if (!message.from.empty() && !IsConnected(message.from)) {
    // A disconnected peer cannot emit messages.
    return PeerDisconnected("Send: sender " + message.from +
                            " is disconnected");
  }
  message.id = next_message_id_++;
  Tick jitter = latency_jitter_ > 0
                    ? static_cast<Tick>(rng_.Uniform(
                          static_cast<uint64_t>(latency_jitter_) + 1))
                    : 0;
  Event ev;
  ev.time = now_ + latency_base_ + jitter;
  ev.seq = next_seq_++;
  ev.message = std::make_shared<Message>(std::move(message));
  ++stats_.messages_sent;
  TraceEventf(ev.message->from, "SEND",
              ev.message->type + " -> " + ev.message->to);
  int64_t id = ev.message->id;
  queue_.push(std::move(ev));
  return id;
}

void Network::ScheduleAt(Tick when, std::function<void(Network*)> fn) {
  Event ev;
  ev.time = when < now_ ? now_ : when;
  ev.seq = next_seq_++;
  ev.fn = std::move(fn);
  queue_.push(std::move(ev));
}

void Network::ScheduleAfter(Tick delay, std::function<void(Network*)> fn) {
  ScheduleAt(now_ + delay, std::move(fn));
}

void Network::RunUntil(Tick until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    if (ev.fn) {
      ev.fn(this);
      continue;
    }
    const Message& msg = *ev.message;
    if (!IsConnected(msg.to)) {
      ++stats_.messages_dropped;
      TraceEventf(msg.to, "DROP", msg.type + " from " + msg.from);
      continue;
    }
    PeerNode* peer = FindPeer(msg.to);
    ++stats_.messages_delivered;
    TraceEventf(msg.to, "RECV", msg.type + " from " + msg.from);
    peer->OnMessage(msg, this);
    // Give every connected peer a tick after each delivery, so periodic
    // logic (keep-alive checks) interleaves deterministically.
    for (const PeerId& id : order_) {
      if (IsConnected(id)) FindPeer(id)->OnTick(now_, this);
    }
  }
  if (now_ < until) now_ = until;
}

Tick Network::RunUntilQuiescent(Tick max_time) {
  while (!queue_.empty() && queue_.top().time <= max_time) {
    RunUntil(queue_.top().time);
  }
  return now_;
}

void Network::TraceEventf(const std::string& actor, const std::string& kind,
                          const std::string& detail) {
  if (trace_ != nullptr) trace_->Add(now_, actor, kind, detail);
}

}  // namespace axmlx::overlay
