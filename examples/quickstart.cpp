// Quickstart: dynamic compensation on a single AXML peer (paper §3.1).
//
// Loads the paper's ATPList.xml, evaluates Query A and Query B — whose lazy
// evaluation *modifies* the document by materializing embedded service
// calls — then aborts the transaction and shows the dynamically constructed
// compensating operations restoring the document exactly.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "axml/materializer.h"
#include "compensation/compensation.h"
#include "ops/operation.h"
#include "repo/axml_repository.h"
#include "xml/parser.h"

namespace {

// The paper's running example (§3.1): two embedded calls on Federer,
// getPoints (mode replace) and getGrandSlamsWonbyYear (mode merge).
const char* kAtpListXml = R"(<?xml version="1.0" encoding="UTF-8"?>
<ATPList date="18042005">
  <player rank="1">
    <name><firstname>Roger</firstname><lastname>Federer</lastname></name>
    <citizenship>Swiss</citizenship>
    <axml:sc mode="replace" serviceNameSpace="getPoints"
             methodName="getPoints" outputName="points">
      <axml:params>
        <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
      </axml:params>
      <points>475</points>
    </axml:sc>
    <axml:sc mode="merge" serviceNameSpace="getGrandSlamsWonbyYear"
             methodName="getGrandSlamsWonbyYear" outputName="grandslamswon">
      <axml:params>
        <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
        <axml:param name="year"><axml:value>$year (external value)</axml:value></axml:param>
      </axml:params>
      <grandslamswon year="2003">A, W</grandslamswon>
      <grandslamswon year="2004">A, U</grandslamswon>
    </axml:sc>
  </player>
</ATPList>)";

// Simulated Web services backing the embedded calls.
axmlx::Result<axmlx::axml::ServiceResponse> InvokeService(
    const axmlx::axml::ServiceRequest& request) {
  axmlx::axml::ServiceResponse response;
  if (request.method_name == "getPoints") {
    auto frag = axmlx::xml::Parse("<r><points>890</points></r>");
    response.fragment = std::move(frag).value();
    return response;
  }
  if (request.method_name == "getGrandSlamsWonbyYear") {
    auto frag = axmlx::xml::Parse(
        "<r><grandslamswon year=\"2005\">A, F</grandslamswon></r>");
    response.fragment = std::move(frag).value();
    return response;
  }
  return axmlx::ServiceFault("UnknownService: " + request.method_name);
}

void Check(const axmlx::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  auto doc_or = axmlx::xml::Parse(kAtpListXml);
  Check(doc_or.status(), "parse ATPList.xml");
  std::unique_ptr<axmlx::xml::Document> doc = std::move(doc_or).value();
  auto snapshot = doc->Clone();

  std::printf("=== ATPList.xml (initial) ===\n%s\n",
              doc->Serialize(axmlx::xml::kNullNode, true).c_str());

  axmlx::repo::LocalTransaction txn(doc.get(), InvokeService);
  txn.SetExternal("year", "2005");

  // Query A: mentions grandslamswon -> lazily materializes only
  // getGrandSlamsWonbyYear (merge: a 2005 row is appended).
  auto query_a = txn.Execute(axmlx::ops::MakeQuery(
      "Select p/citizenship, p/grandslamswon from p in ATPList//player "
      "where p/name/lastname = Federer"));
  Check(query_a.status(), "Query A");
  std::printf("Query A materialized %d call(s), skipped %d; selected %zu "
              "node(s)\n",
              (*query_a)->materialize_stats.calls_invoked,
              (*query_a)->materialize_stats.calls_skipped,
              (*query_a)->query_result.AllSelected().size());

  // Query B: mentions points -> materializes only getPoints
  // (replace: 475 -> 890).
  auto query_b = txn.Execute(axmlx::ops::MakeQuery(
      "Select p/citizenship, p/points from p in ATPList//player "
      "where p/name/lastname = Federer"));
  Check(query_b.status(), "Query B");
  std::printf("Query B materialized %d call(s), skipped %d\n",
              (*query_b)->materialize_stats.calls_invoked,
              (*query_b)->materialize_stats.calls_skipped);

  // An explicit update too: the paper's replace example.
  auto replace = txn.Execute(axmlx::ops::MakeReplace(
      "Select p/citizenship from p in ATPList//player "
      "where p/name/lastname = Federer",
      "<citizenship>Swiss-French</citizenship>"));
  Check(replace.status(), "replace");

  std::printf("\n=== After the queries (document was modified!) ===\n%s\n",
              doc->Serialize(axmlx::xml::kNullNode, true).c_str());

  // The compensating operations cannot be known statically — they are
  // constructed from the log at run time (§3.1).
  auto plan = txn.PendingCompensation();
  std::printf("=== Dynamically constructed compensation (%zu ops, cost %zu "
              "nodes) ===\n",
              plan.operations.size(), plan.cost_nodes);
  for (const std::string& xml :
       axmlx::comp::CompensationBuilder::ToPaperXml(plan)) {
    std::printf("  %s\n", xml.c_str());
  }

  Check(txn.Abort(), "abort");
  bool restored = axmlx::xml::Document::Equals(*doc, *snapshot);
  std::printf("\nAfter abort, document restored exactly: %s\n",
              restored ? "YES" : "NO");
  return restored ? 0 : 1;
}
