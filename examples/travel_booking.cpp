// Travel booking saga: the classic compensation scenario of §3.1 ("the
// compensation of 'Book Hotel' is 'Cancel Hotel Booking'") run as a
// distributed AXML transaction.
//
// An agency peer coordinates flight, hotel and car bookings on three
// provider peers. The car provider faults, and the recovery protocol undoes
// the flight and hotel bookings via dynamically constructed compensating
// operations — executed in reverse order, without any statically defined
// "cancel" services.
//
// Build & run:  cmake --build build && ./build/examples/travel_booking

#include <cstdio>
#include <string>
#include <vector>

#include "compensation/compensation.h"
#include "ops/operation.h"
#include "repo/axml_repository.h"

namespace {

using axmlx::repo::AxmlRepository;

void Check(const axmlx::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// A provider peer hosts a bookings document and a Book<Kind> service that
/// appends a booking row — real compensable state.
void AddProvider(AxmlRepository* repo, const std::string& peer,
                 const std::string& kind, double fault_probability) {
  AxmlRepository::PeerConfig config;
  config.id = peer;
  // Ship compensating-service definitions with results (§3.2).
  config.options.peer_independent = true;
  Check(repo->AddPeer(config).status(), "add provider");
  Check(repo->HostDocument(
            peer, "<" + kind + "Bookings><open/></" + kind + "Bookings>"),
        "host bookings doc");
  axmlx::service::ServiceDefinition book;
  book.name = "Book" + kind;
  book.document = kind + "Bookings";
  book.ops.push_back(axmlx::ops::MakeInsert(
      "Select b from b in " + kind + "Bookings//open",
      "<booking customer=\"${customer}\" ref=\"${ref}\">confirmed</booking>"));
  book.duration = 3;
  book.fault_probability = fault_probability;
  book.fault_name = kind + "Unavailable";
  if (fault_probability > 0) {
    // Fail late, after the sibling bookings have completed and returned
    // their compensating-service definitions to the agency.
    book.fault_after_subcalls = true;
    book.duration = 10;
  }
  Check(repo->HostService(peer, std::move(book)), "host Book service");
}

size_t Bookings(AxmlRepository* repo, const std::string& peer,
                const std::string& kind) {
  axmlx::xml::Document* doc =
      repo->FindPeer(peer)->repository().GetDocument(kind + "Bookings");
  size_t count = 0;
  doc->Walk(doc->root(), [&count](const axmlx::xml::Node& n) {
    if (n.is_element() && n.name == "booking") ++count;
    return true;
  });
  return count;
}

void PrintState(AxmlRepository* repo, const char* label) {
  size_t car = Bookings(repo, "CarCo", "Car");
  if (repo->FindPeer("CarCo2") != nullptr) {
    car += Bookings(repo, "CarCo2", "Car2");
  }
  std::printf("%-28s flight=%zu hotel=%zu car=%zu\n", label,
              Bookings(repo, "FlightCo", "Flight"),
              Bookings(repo, "HotelCo", "Hotel"), car);
}

}  // namespace

int main() {
  AxmlRepository repo(7);

  // The agency (transaction origin).
  AxmlRepository::PeerConfig agency;
  agency.id = "Agency";
  agency.options.peer_independent = true;  // ship compensating services
  Check(repo.AddPeer(agency).status(), "add agency");
  Check(repo.HostDocument("Agency", "<Trips><log/></Trips>"), "host Trips");

  AddProvider(&repo, "FlightCo", "Flight", /*fault_probability=*/0.0);
  AddProvider(&repo, "HotelCo", "Hotel", /*fault_probability=*/0.0);
  AddProvider(&repo, "CarCo", "Car", /*fault_probability=*/1.0);  // always down

  axmlx::service::ServiceDefinition trip;
  trip.name = "BookTrip";
  trip.document = "Trips";
  trip.ops.push_back(axmlx::ops::MakeInsert(
      "Select t from t in Trips//log",
      "<trip customer=\"${customer}\">requested</trip>"));
  axmlx::txn::Params params = {{"customer", "federer"}, {"ref", "R-2005"}};
  trip.subcalls.push_back({"FlightCo", "BookFlight", {}, params});
  trip.subcalls.push_back({"HotelCo", "BookHotel", {}, params});
  trip.subcalls.push_back({"CarCo", "BookCar", {}, params});
  Check(repo.HostService("Agency", std::move(trip)), "host BookTrip");

  PrintState(&repo, "before transaction:");
  auto outcome =
      repo.RunTransaction("Agency", "TRIP-1", "BookTrip", params);
  Check(outcome.status(), "run transaction");
  std::printf("\ntransaction TRIP-1 -> %s (after %lld ticks, %lld messages)\n",
              outcome->status.ToString().c_str(),
              static_cast<long long>(outcome->duration),
              static_cast<long long>(outcome->messages));
  PrintState(&repo, "after abort + compensation:");

  const axmlx::txn::PeerStats& flight_stats =
      repo.FindPeer("FlightCo")->stats();
  std::printf(
      "\nFlightCo: compensating service executed %d time(s), "
      "%zu node(s) rolled back\n",
      flight_stats.compensations_executed, flight_stats.nodes_compensated);

  // Retry with a working car provider: the saga commits.
  AddProvider(&repo, "CarCo2", "Car2", /*fault_probability=*/0.0);
  axmlx::service::ServiceDefinition trip2;
  trip2.name = "BookTrip2";
  trip2.document = "Trips";
  trip2.subcalls.push_back({"FlightCo", "BookFlight", {}, params});
  trip2.subcalls.push_back({"HotelCo", "BookHotel", {}, params});
  trip2.subcalls.push_back({"CarCo2", "BookCar2", {}, params});
  Check(repo.HostService("Agency", std::move(trip2)), "host BookTrip2");
  auto retry = repo.RunTransaction("Agency", "TRIP-2", "BookTrip2", params);
  Check(retry.status(), "run retry");
  std::printf("\ntransaction TRIP-2 -> %s\n",
              retry->status.ToString().c_str());
  PrintState(&repo, "after successful trip:");
  return retry->status.ok() ? 0 : 1;
}
