// ATP ranking across a 3-peer overlay (the paper's motivating data setup).
//
// AP1 hosts ATPList.xml whose embedded service calls point at services
// hosted on AP2 (getPoints) and AP3 (getGrandSlamsWonbyYear), which answer
// from their own AXML documents. Evaluating a query on AP1 therefore
// triggers cross-peer invocations — the "distributed" trait of §1 — and a
// retry fault-handler covers AP2's flaky service.
//
// Build & run:  cmake --build build && ./build/examples/atp_ranking

#include <cstdio>
#include <memory>
#include <string>

#include "ops/executor.h"
#include "ops/operation.h"
#include "repo/axml_repository.h"
#include "repo/scenarios.h"
#include "xml/parser.h"

namespace {

using axmlx::repo::AxmlRepository;

const char* kAtpListXml = R"(<ATPList date="18042005">
  <player rank="1">
    <name><firstname>Roger</firstname><lastname>Federer</lastname></name>
    <citizenship>Swiss</citizenship>
    <axml:sc mode="replace" serviceURL="AP2" methodName="getPoints"
             outputName="points">
      <axml:params>
        <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
      </axml:params>
      <axml:catchAll><axml:retry times="3" wait="0"/></axml:catchAll>
      <points>475</points>
    </axml:sc>
    <axml:sc mode="merge" serviceURL="AP3" methodName="getGrandSlamsWonbyYear"
             outputName="grandslamswon">
      <axml:params>
        <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
        <axml:param name="year"><axml:value>$year</axml:value></axml:param>
      </axml:params>
      <grandslamswon year="2003">A, W</grandslamswon>
      <grandslamswon year="2004">A, U</grandslamswon>
    </axml:sc>
  </player>
</ATPList>)";

// AP2's source of truth for ranking points.
const char* kPointsDbXml = R"(<PointsDB>
  <row player="Roger Federer"><points>890</points></row>
  <row player="Rafael Nadal"><points>760</points></row>
</PointsDB>)";

void Check(const axmlx::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  AxmlRepository repo(2026);
  for (const char* id : {"AP1", "AP2", "AP3"}) {
    AxmlRepository::PeerConfig config;
    config.id = id;
    Check(repo.AddPeer(config).status(), "add peer");
  }
  Check(repo.HostDocument("AP1", kAtpListXml), "host ATPList");
  Check(repo.HostDocument("AP2", kPointsDbXml), "host PointsDB");

  // AP2: getPoints, an AXML service — a query over PointsDB (§3: "AXML
  // Services: Web services defined as queries/updates over AXML
  // documents"). It fails transiently 50% of the time; the embedded call's
  // retry handler covers it.
  axmlx::service::ServiceDefinition get_points;
  get_points.name = "getPoints";
  get_points.document = "PointsDB";
  get_points.ops.push_back(axmlx::ops::MakeQuery(
      "Select r/points from r in PointsDB//row where r/player = \"${name}\""));
  get_points.fault_probability = 0.0;  // injected faults live on the txn path
  Check(repo.HostService("AP2", get_points), "host getPoints");

  // AP3: getGrandSlamsWonbyYear as a native service with its own logic.
  axmlx::service::ServiceDefinition get_slams;
  get_slams.name = "getGrandSlamsWonbyYear";
  get_slams.native = [](const axmlx::axml::ServiceRequest& request)
      -> axmlx::Result<axmlx::axml::ServiceResponse> {
    std::string year = "?";
    for (const auto& [k, v] : request.params) {
      if (k == "year") year = v;
    }
    axmlx::axml::ServiceResponse response;
    auto frag = axmlx::xml::Parse("<r><grandslamswon year=\"" + year +
                                  "\">A, F</grandslamswon></r>");
    if (!frag.ok()) return frag.status();
    response.fragment = std::move(frag).value();
    return response;
  };
  Check(repo.HostService("AP3", get_slams), "host getGrandSlamsWonbyYear");

  // Evaluate queries on AP1; embedded calls route to AP2/AP3 by serviceURL.
  axmlx::txn::AxmlPeer* ap1 = repo.FindPeer("AP1");
  axmlx::xml::Document* atp =
      ap1->repository().GetDocument("ATPList");
  axmlx::repo::LocalTransaction txn(atp, ap1->DataPlaneInvoker());
  txn.SetExternal("year", "2005");

  std::printf("Initial Federer points (cached): ");
  {
    auto q = txn.Execute(axmlx::ops::MakeQuery(
        "Select p/grandslamswon from p in ATPList//player "
        "where p/name/lastname = Federer"));
    Check(q.status(), "slam query");
    std::printf("query A selected %zu grandslam rows "
                "(2005 fetched from AP3)\n",
                (*q)->query_result.AllSelected().size());
  }
  {
    auto q = txn.Execute(axmlx::ops::MakeQuery(
        "Select p/points from p in ATPList//player "
        "where p/name/lastname = Federer"));
    Check(q.status(), "points query");
    auto nodes = (*q)->query_result.AllSelected();
    std::printf("Federer points after refresh from AP2: %s\n",
                nodes.empty() ? "?" : atp->TextContent(nodes[0]).c_str());
  }
  std::printf("\nATPList.xml on AP1 after distributed evaluation:\n%s\n",
              atp->Serialize(axmlx::xml::kNullNode, true).c_str());
  std::printf("Transaction touched %zu nodes; committing.\n",
              txn.NodesAffected());
  Check(txn.Commit(), "commit");
  return 0;
}
