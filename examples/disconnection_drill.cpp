// Disconnection drill: runs the paper's Figure 2 peer-disconnection cases
// (a)-(d) with the chain-based protocol and prints the protocol decisions
// step by step, exactly following §3.3.
//
// Build & run:  cmake --build build && ./build/examples/disconnection_drill

#include <cstdio>
#include <string>

#include "recovery/chained_peer.h"
#include "repo/axml_repository.h"
#include "repo/scenarios.h"

namespace {

using axmlx::repo::AxmlRepository;
using axmlx::repo::BuildFigureTwo;
using axmlx::repo::kTxnName;
using axmlx::repo::ScenarioOptions;

ScenarioOptions DrillOptions(axmlx::overlay::Tick keepalive) {
  ScenarioOptions options;
  options.protocol = AxmlRepository::Protocol::kChained;
  options.duration = 10;
  options.add_replicas = true;
  options.handlers_retry_on_replica = true;
  options.peer_options.use_chaining = true;
  options.peer_options.keepalive_interval = keepalive;
  return options;
}

void PrintInterestingTrace(AxmlRepository* repo) {
  for (const axmlx::TraceEvent& e : repo->trace().events()) {
    if (e.kind == "SEND" || e.kind == "RECV") continue;  // too chatty
    std::printf("    [t=%lld] %-5s %-14s %s\n",
                static_cast<long long>(e.time), e.actor.c_str(),
                e.kind.c_str(), e.detail.c_str());
  }
}

void Banner(const char* label) {
  std::printf("\n==================== %s ====================\n", label);
}

}  // namespace

int main() {
  std::printf("Figure 2 topology: [AP1* -> AP2 -> [AP3 -> AP6] || "
              "[AP4 -> AP5]], replicas AP2R..AP6R\n");

  {
    Banner("case (a): leaf AP6 disconnects; parent AP3 detects via ping");
    AxmlRepository repo(1);
    ScenarioOptions options = DrillOptions(/*keepalive=*/4);
    if (!BuildFigureTwo(&repo, options).ok()) return 1;
    auto& ap3 = repo.FindPeer("AP3")->repository();
    axmlx::service::ServiceDefinition s3 = *ap3.FindService("S3");
    axmlx::axml::FaultHandler handler;
    handler.has_retry = true;
    handler.retry.times = 1;
    handler.retry.replica_url = "AP6R";
    s3.subcalls[0].handlers.push_back(handler);
    ap3.PutService(s3);
    repo.network().DisconnectAt(5, "AP6");
    auto outcome = repo.RunTransaction("AP1", kTxnName, "S1");
    PrintInterestingTrace(&repo);
    std::printf("  -> %s; AP3 retried S6 on the replica %d time(s)\n",
                outcome->status.ToString().c_str(),
                repo.FindPeer("AP3")->stats().retries);
  }

  {
    Banner("case (b): parent AP3 disconnects; child AP6 reroutes via chain");
    AxmlRepository repo(1);
    ScenarioOptions options = DrillOptions(/*keepalive=*/0);
    if (!BuildFigureTwo(&repo, options).ok()) return 1;
    repo.network().DisconnectAt(5, "AP3");
    auto outcome = repo.RunTransaction("AP1", kTxnName, "S1");
    PrintInterestingTrace(&repo);
    std::printf("  -> %s; AP6 rerouted %d result(s) past its dead parent, "
                "AP3R reused %d finished subcall(s)\n",
                outcome->status.ToString().c_str(),
                repo.FindPeer("AP6")->stats().results_rerouted,
                repo.FindPeer("AP3R")->stats().subcalls_reused);
    std::printf("\n  Full protocol run as a Mermaid sequence diagram:\n\n");
    std::printf("%s\n", repo.trace().ToMermaid().c_str());
  }

  {
    Banner("case (c): child AP3 disconnects; parent AP2 detects via ping");
    AxmlRepository repo(1);
    ScenarioOptions options = DrillOptions(/*keepalive=*/4);
    options.duration = 20;
    if (!BuildFigureTwo(&repo, options).ok()) return 1;
    repo.network().DisconnectAt(5, "AP3");
    auto outcome = repo.RunTransaction("AP1", kTxnName, "S1");
    PrintInterestingTrace(&repo);
    std::printf("  -> %s; AP2 notified %d descendant(s), AP6 was adopted %d "
                "time(s) (work reused, not redone)\n",
                outcome->status.ToString().c_str(),
                repo.FindPeer("AP2")->stats().notifications_sent,
                repo.FindPeer("AP6")->stats().adoptions);
  }

  {
    Banner("case (d): sibling AP4 detects AP3's silence on a data stream");
    AxmlRepository repo(1);
    ScenarioOptions options = DrillOptions(/*keepalive=*/0);
    options.duration = 30;
    if (!BuildFigureTwo(&repo, options).ok()) return 1;
    bool decided = false;
    axmlx::Status final_status;
    axmlx::txn::AxmlPeer* origin = repo.FindPeer("AP1");
    if (!origin
             ->Submit(&repo.network(), kTxnName, "S1", {},
                      [&](const std::string&, axmlx::Status s) {
                        decided = true;
                        final_status = std::move(s);
                      })
             .ok()) {
      return 1;
    }
    repo.network().RunUntil(4);
    auto* ap4 =
        dynamic_cast<axmlx::recovery::ChainedPeer*>(repo.FindPeer("AP4"));
    ap4->WatchSibling(&repo.network(), kTxnName, "AP3", /*interval=*/5);
    repo.network().DisconnectAt(8, "AP3");
    repo.network().RunUntilQuiescent();
    PrintInterestingTrace(&repo);
    std::printf("  -> %s; AP4 sent %d notification(s) to AP3's parent and "
                "child\n",
                decided ? final_status.ToString().c_str() : "UNDECIDED",
                repo.FindPeer("AP4")->stats().notifications_sent);
  }

  std::printf("\nAll four disconnection cases handled.\n");
  return 0;
}
