// Durable AXML repository: the "D" in the relaxed-ACID framework.
//
// Runs transactions against a disk-backed store (write-ahead log +
// snapshots), simulates a crash with an in-flight transaction, and shows
// recovery replaying the committed work and compensating the loser —
// using exactly the paper's dynamically constructed compensating
// operations (§3.1) as the undo mechanism.
//
// Build & run:  cmake --build build && ./build/examples/durable_repository

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "ops/operation.h"
#include "storage/durable_store.h"

namespace {

const char* kDir = "/tmp/axmlx_durable_example";

const char* kInventoryXml =
    "<Inventory>"
    "<shelf id=\"A\"><item sku=\"100\">5</item></shelf>"
    "<shelf id=\"B\"/>"
    "</Inventory>";

void Check(const axmlx::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

size_t Items(axmlx::storage::DurableStore* store) {
  axmlx::xml::Document* doc = store->Get("Inventory");
  size_t count = 0;
  doc->Walk(doc->root(), [&count](const axmlx::xml::Node& n) {
    if (n.is_element() && n.name == "item") ++count;
    return true;
  });
  return count;
}

}  // namespace

int main() {
  std::string cleanup = std::string("rm -rf ") + kDir;
  (void)std::system(cleanup.c_str());

  {
    axmlx::storage::DurableStore store(kDir, nullptr);
    Check(store.Open(), "open");
    Check(store.CreateDocument(kInventoryXml), "create document");

    // T1 commits: its effects must survive any crash.
    Check(store.Begin("T1"), "begin T1");
    Check(store
              .Execute("T1", "Inventory",
                       axmlx::ops::MakeInsert(
                           "Select s from s in Inventory//shelf "
                           "where s/@id = B",
                           "<item sku=\"200\">9</item>"))
              .status(),
          "T1 insert");
    Check(store.Commit("T1"), "commit T1");

    // T2 is in flight when the process "crashes" (we just drop the store).
    Check(store.Begin("T2"), "begin T2");
    Check(store
              .Execute("T2", "Inventory",
                       axmlx::ops::MakeDelete(
                           "Select s/item from s in Inventory//shelf "
                           "where s/@id = A"))
              .status(),
          "T2 delete");
    std::printf("before crash: %zu items (T1 committed, T2 in flight)\n",
                Items(&store));
  }  // <- crash: no Commit("T2"), no Checkpoint

  {
    axmlx::storage::DurableStore recovered(kDir, nullptr);
    Check(recovered.Open(), "recovery");
    std::printf(
        "after recovery: %zu items — replayed %lld op(s), compensated %lld "
        "in-flight txn(s)\n",
        Items(&recovered),
        static_cast<long long>(recovered.stats().replayed_ops),
        static_cast<long long>(recovered.stats().recovered_txns));
    // T1's item on shelf B survived; T2's delete of shelf A's item was
    // undone by the dynamically constructed compensating insert.
    axmlx::xml::Document* doc = recovered.Get("Inventory");
    std::printf("document:\n%s\n",
                doc->Serialize(axmlx::xml::kNullNode, true).c_str());
    Check(recovered.Checkpoint(), "checkpoint");
    std::printf("checkpointed; the WAL is truncated and restart is O(docs).\n");
    return Items(&recovered) == 2 ? 0 : 1;
  }
}
