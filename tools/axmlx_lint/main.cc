#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "axmlx_lint/lint.h"

/// CLI: `axmlx_lint [--json] <source-root>`. Scans every .h/.cc under the
/// root and reports findings — human-readable "path:line: [Rn] message"
/// lines by default, or a stable JSON array with `--json` so CI and
/// axmlx_report can consume results mechanically (the human summary then
/// goes to stderr, keeping stdout pure JSON).
///
/// Exit codes: 0 clean, 1 findings, 2 usage/load error — which is what
/// makes it usable both as a ctest and as a scripted CI gate.
int main(int argc, char** argv) {
  bool json = false;
  const char* root = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (root == nullptr) {
      root = argv[i];
    } else {
      root = nullptr;  // more than one root: usage error
      break;
    }
  }
  if (root == nullptr) {
    std::fprintf(stderr, "usage: %s [--json] <source-root>\n", argv[0]);
    return 2;
  }
  std::vector<axmlx::lint::SourceFile> files;
  std::string error;
  if (!axmlx::lint::LoadTree(root, &files, &error)) {
    std::fprintf(stderr, "axmlx-lint: %s\n", error.c_str());
    return 2;
  }
  const std::vector<axmlx::lint::Finding> findings =
      axmlx::lint::RunLint(files);
  if (json) {
    std::fputs(axmlx::lint::FormatFindingsJson(findings).c_str(), stdout);
    std::fprintf(stderr, "axmlx-lint: %zu finding(s) over %zu file(s)\n",
                 findings.size(), files.size());
  } else {
    if (!findings.empty()) {
      std::fputs(axmlx::lint::FormatFindings(findings).c_str(), stdout);
    }
    std::printf("axmlx-lint: %zu finding(s) over %zu file(s)\n",
                findings.size(), files.size());
  }
  return findings.empty() ? 0 : 1;
}
