#include <cstdio>
#include <string>
#include <vector>

#include "axmlx_lint/lint.h"

/// CLI: `axmlx_lint <source-root>`. Scans every .h/.cc under the root,
/// prints findings as "path:line: [Rn] message", and exits non-zero when any
/// rule fires — which is what makes it usable as a ctest.
int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <source-root>\n", argv[0]);
    return 2;
  }
  std::vector<axmlx::lint::SourceFile> files;
  std::string error;
  if (!axmlx::lint::LoadTree(argv[1], &files, &error)) {
    std::fprintf(stderr, "axmlx-lint: %s\n", error.c_str());
    return 2;
  }
  const std::vector<axmlx::lint::Finding> findings =
      axmlx::lint::RunLint(files);
  if (!findings.empty()) {
    std::fputs(axmlx::lint::FormatFindings(findings).c_str(), stdout);
  }
  std::printf("axmlx-lint: %zu finding(s) over %zu file(s)\n",
              findings.size(), files.size());
  return findings.empty() ? 0 : 1;
}
