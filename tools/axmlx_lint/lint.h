#ifndef AXMLX_TOOLS_AXMLX_LINT_LINT_H_
#define AXMLX_TOOLS_AXMLX_LINT_LINT_H_

#include <string>
#include <vector>

/// axmlx-lint: project-specific static analysis for the AXML repository.
///
/// The paper's correctness story (§3.1-§3.3) rests on invariants the C++
/// compiler never checks: every protocol message kind needs a dispatch arm,
/// no fallible Status may be silently dropped, every StatusCode must have a
/// printable name, trace-event kinds must come from one declared table
/// (benches assert on them by string), every mutation must leave a version
/// chain entry, and every WAL record written must be replayable. This
/// linter turns those review-time conventions into CI-enforced rules. It is
/// a lightweight tokenizer over the source tree — no libclang — which keeps
/// it dependency-free and fast enough to run as an ordinary ctest (label
/// `lint`).
///
/// Architecture: the analyzer is two-pass and cross-translation-unit.
/// Pass 1 tokenizes every file once and collects global *facts*: declared
/// name-registry tables (kEv*/kSpan*/kEvFr*/kMetric*), WAL record tags
/// appended vs. parsed in src/storage, xml::Document member definitions and
/// their intra-class call graph, and the names of every variable declared
/// with an unordered container type. Pass 2 checks each file — and the
/// facts against each other — and emits findings. That is what lets a rule
/// say "this tag is written in AppendWal but no ReplayWal arm parses it":
/// the writer and the replayer live hundreds of lines apart and must never
/// drift (the TxFS lesson: journal grammars rot unless writer and replayer
/// are checked against each other).
///
/// Rules:
///  R1  message dispatch: every `kMsg*` constant declared in txn/payload.h
///      has a dispatch arm in AxmlPeer::OnMessage (txn/peer.cc); no peer or
///      recovery code references an undeclared `kMsg*` identifier; and no
///      dispatcher compares or assigns `.type` against a raw string literal.
///  R2  [[nodiscard]]: `class Status` and `class Result` in common/status.h
///      carry a class-level [[nodiscard]], which makes every Status- or
///      Result-returning API warn when its result is ignored.
///  R3  name tables: every StatusCode enumerator has a `case` in
///      StatusCodeName (common/status.cc); every ALL_CAPS string passed
///      as a trace-event kind (Trace::Add / TraceEventf call sites) is
///      declared in the `kEv*` table in common/trace.h; every ALL_CAPS
///      string passed as a span kind (OpenSpan call sites) is declared in
///      the `kSpan*` table in obs/span.h; and every ALL_CAPS string passed
///      as a flight-recorder event kind (Record call sites) is declared in
///      the `kEvFr*` table in obs/flight_recorder.h — off-table kinds fall
///      out of forensic timelines silently.
///  R4  header hygiene: every header's include guard is AXMLX_<PATH>_H_
///      derived from its path, and headers contain no `using namespace` at
///      namespace scope.
///  R5  no assert where a Status return is available: library functions
///      returning Status/Result must report failures, not assert(); the
///      paper's recovery protocol depends on faults being propagated.
///  R6  versioning discipline: every member of xml::Document (defined in
///      xml/document.cc) that mutates node state — detected as a call to
///      FindMutable or NodeAt — must record an MVCC undo entry, either by
///      calling RecordVersion/NewNode directly or by delegating to another
///      Document member that does (computed as a fixpoint over the
///      intra-class call graph). A mutator the rule cannot see through is
///      exempted with lint:allow(R6) and a justification.
///  R7  determinism: no wall-clock time (std::chrono system/steady/
///      high_resolution clocks, gettimeofday, clock_gettime), no unseeded
///      randomness (rand, srand, *rand48, std::random_device), and no
///      iteration over unordered containers (range-for or .begin() on any
///      name pass 1 saw declared as std::unordered_map/set) in the scanned
///      tree: seeded interleavings are the differential oracle for the
///      parallel runtime, and hash-order iteration feeding a protocol,
///      serialization, or WAL path silently breaks replay. Use sim time and
///      common/rng.h; order-insensitive folds over unordered state carry
///      lint:allow(R7).
///  R8  WAL grammar completeness: every record tag appended to the WAL
///      (string literal starting an AppendWal record) has a parse arm in
///      ReplayWal (a `kind == "TAG"` comparison), and every arm parses a
///      tag that some writer appends. A written-but-unreplayable tag fails
///      recovery as "unknown WAL record"; a replayed-but-never-written tag
///      is a dead grammar arm hiding a renamed writer.
///  R9  thread-safety annotations: in obs/, storage/, and compensation/ —
///      the layers the worker-pool runtime will share across threads — any
///      class declaring a std::mutex/shared_mutex member must annotate
///      every other data member with AXMLX_GUARDED_BY(...) (macros in
///      common/thread_annotations.h, enforced by clang -Wthread-safety
///      under AXMLX_WERROR). std::atomic and const members are exempt.
///  R10 name-registry consistency: registry constants live in exactly one
///      home table (kEv* in common/trace.h, kSpan* in obs/span.h, kEvFr*
///      in obs/flight_recorder.h, kMetric* in obs/metric_names.h), no two
///      entries of a table share a string value, and every metric-name
///      literal passed to GetCounter/GetGauge/GetHistogram is declared in
///      the kMetric* table — the AxmlStats introspection document and
///      axmlx_report aggregate by these strings, so an off-table or
///      double-defined name silently splits a series.
///
/// A finding can be suppressed by putting `lint:allow(Rn)` in a comment on
/// the offending line or on the line directly above it (reserved for cases
/// the rule cannot see, e.g. a dispatch arm handled by a subclass override
/// or an order-insensitive fold over an unordered map).
namespace axmlx::lint {

/// One input to the linter. `path` is relative to the scanned root
/// (e.g. "txn/peer.cc") — rules select special files by path suffix.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One rule violation, anchored to file:line.
struct Finding {
  std::string rule;     ///< "R1".."R10".
  std::string file;     ///< SourceFile::path of the offending file.
  int line = 1;         ///< 1-based line of the violation.
  std::string message;  ///< Human-readable explanation.
};

/// Runs all rules over `files` and returns the findings, ordered by rule
/// then file then line. An empty result means the tree is clean.
std::vector<Finding> RunLint(const std::vector<SourceFile>& files);

/// Renders findings one per line: "path:line: [Rn] message".
std::string FormatFindings(const std::vector<Finding>& findings);

/// Renders findings as a stable JSON array (one object per finding with
/// "rule", "file", "line", "message" keys, ordered like FormatFindings) so
/// CI and axmlx_report can consume results mechanically.
std::string FormatFindingsJson(const std::vector<Finding>& findings);

/// Loads every .h/.cc file under `root` (recursively) with root-relative
/// paths, sorted for determinism. Returns false if `root` is not a
/// readable directory.
bool LoadTree(const std::string& root, std::vector<SourceFile>* files,
              std::string* error);

}  // namespace axmlx::lint

#endif  // AXMLX_TOOLS_AXMLX_LINT_LINT_H_
