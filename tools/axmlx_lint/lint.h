#ifndef AXMLX_TOOLS_AXMLX_LINT_LINT_H_
#define AXMLX_TOOLS_AXMLX_LINT_LINT_H_

#include <string>
#include <vector>

/// axmlx-lint: project-specific static analysis for the AXML repository.
///
/// The paper's correctness story (§3.1-§3.3) rests on invariants the C++
/// compiler never checks: every protocol message kind needs a dispatch arm,
/// no fallible Status may be silently dropped, every StatusCode must have a
/// printable name, and trace-event kinds must come from one declared table
/// (benches assert on them by string). This linter turns those review-time
/// conventions into CI-enforced rules. It is a lightweight tokenizer over
/// the source tree — no libclang — which keeps it dependency-free and fast
/// enough to run as an ordinary ctest (label `lint`).
///
/// Rules:
///  R1  message dispatch: every `kMsg*` constant declared in txn/payload.h
///      has a dispatch arm in AxmlPeer::OnMessage (txn/peer.cc); no peer or
///      recovery code references an undeclared `kMsg*` identifier; and no
///      dispatcher compares or assigns `.type` against a raw string literal.
///  R2  [[nodiscard]]: `class Status` and `class Result` in common/status.h
///      carry a class-level [[nodiscard]], which makes every Status- or
///      Result-returning API warn when its result is ignored.
///  R3  name tables: every StatusCode enumerator has a `case` in
///      StatusCodeName (common/status.cc); every ALL_CAPS string passed
///      as a trace-event kind (Trace::Add / TraceEventf call sites) is
///      declared in the `kEv*` table in common/trace.h; every ALL_CAPS
///      string passed as a span kind (OpenSpan call sites) is declared in
///      the `kSpan*` table in obs/span.h; and every ALL_CAPS string passed
///      as a flight-recorder event kind (Record call sites) is declared in
///      the `kEvFr*` table in obs/flight_recorder.h — off-table kinds fall
///      out of forensic timelines silently.
///  R4  header hygiene: every header's include guard is AXMLX_<PATH>_H_
///      derived from its path, and headers contain no `using namespace` at
///      namespace scope.
///  R5  no assert where a Status return is available: library functions
///      returning Status/Result must report failures, not assert(); the
///      paper's recovery protocol depends on faults being propagated.
///
/// A finding can be suppressed by putting `lint:allow(Rn)` in a comment on
/// the offending line (reserved for cases the rule cannot see, e.g. a
/// dispatch arm handled by a subclass override).
namespace axmlx::lint {

/// One input to the linter. `path` is relative to the scanned root
/// (e.g. "txn/peer.cc") — rules select special files by path suffix.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One rule violation, anchored to file:line.
struct Finding {
  std::string rule;     ///< "R1".."R5".
  std::string file;     ///< SourceFile::path of the offending file.
  int line = 1;         ///< 1-based line of the violation.
  std::string message;  ///< Human-readable explanation.
};

/// Runs all rules over `files` and returns the findings, ordered by rule
/// then file then line. An empty result means the tree is clean.
std::vector<Finding> RunLint(const std::vector<SourceFile>& files);

/// Renders findings one per line: "path:line: [Rn] message".
std::string FormatFindings(const std::vector<Finding>& findings);

/// Loads every .h/.cc file under `root` (recursively) with root-relative
/// paths, sorted for determinism. Returns false if `root` is not a
/// readable directory.
bool LoadTree(const std::string& root, std::vector<SourceFile>* files,
              std::string* error);

}  // namespace axmlx::lint

#endif  // AXMLX_TOOLS_AXMLX_LINT_LINT_H_
