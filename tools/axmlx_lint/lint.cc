#include "axmlx_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace axmlx::lint {
namespace {

// ---------------------------------------------------------------------------
// Lightweight tokenizer. Comments are dropped; string/char literals become
// single tokens carrying their value, so identifier rules can never match
// inside a literal and literal rules can never match inside an identifier.
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;  ///< Identifier spelling, literal value, or punctuator.
  size_t pos = 0;    ///< Byte offset in the original content.
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators the rules care about. Everything else is
/// tokenized one character at a time.
const char* const kPuncts[] = {"::", "->", "==", "!=", "<=", ">=", "&&", "||"};

std::vector<Token> Tokenize(const std::string& s) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = s.size();
  while (i < n) {
    const char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      while (i < n && s[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(s[i] == '*' && s[i + 1] == '/')) ++i;
      i = std::min(n, i + 2);
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && s[i + 1] == '"') {
      size_t d = i + 2;
      while (d < n && s[d] != '(') ++d;
      const std::string delim = s.substr(i + 2, d - (i + 2));
      const std::string close = ")" + delim + "\"";
      size_t end = s.find(close, d + 1);
      if (end == std::string::npos) end = n;
      out.push_back({Token::Kind::kString,
                     s.substr(d + 1, end - (d + 1)), i});
      i = std::min(n, end + close.size());
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      const size_t start = i++;
      std::string value;
      while (i < n && s[i] != quote) {
        if (s[i] == '\\' && i + 1 < n) {
          value += s[i + 1];
          i += 2;
        } else {
          value += s[i++];
        }
      }
      ++i;  // closing quote
      out.push_back({quote == '"' ? Token::Kind::kString : Token::Kind::kChar,
                     std::move(value), start});
      continue;
    }
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(s[i])) ++i;
      out.push_back({Token::Kind::kIdent, s.substr(start, i - start), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const size_t start = i;
      while (i < n && (IsIdentChar(s[i]) || s[i] == '.' || s[i] == '\'')) ++i;
      out.push_back({Token::Kind::kNumber, s.substr(start, i - start), start});
      continue;
    }
    for (const char* p : kPuncts) {
      if (s.compare(i, 2, p) == 0) {
        out.push_back({Token::Kind::kPunct, p, i});
        i += 2;
        goto next;
      }
    }
    out.push_back({Token::Kind::kPunct, std::string(1, c), i});
    ++i;
  next:;
  }
  return out;
}

int LineOf(const std::string& content, size_t pos) {
  return 1 + static_cast<int>(
                 std::count(content.begin(),
                            content.begin() +
                                static_cast<std::ptrdiff_t>(
                                    std::min(pos, content.size())),
                            '\n'));
}

/// True when the source line holding `pos` carries a `lint:allow(Rn)`
/// suppression comment for `rule`.
bool Suppressed(const std::string& content, size_t pos,
                const std::string& rule) {
  size_t begin = content.rfind('\n', pos);
  begin = begin == std::string::npos ? 0 : begin + 1;
  size_t end = content.find('\n', pos);
  if (end == std::string::npos) end = content.size();
  const std::string line = content.substr(begin, end - begin);
  return line.find("lint:allow(" + rule + ")") != std::string::npos;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool IsHeader(const std::string& path) { return EndsWith(path, ".h"); }

bool IsAllCaps(const std::string& s) {
  if (s.size() < 3) return false;
  if (!std::isupper(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s) {
    if (!std::isupper(static_cast<unsigned char>(c)) &&
        !std::isdigit(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

/// Index of the token matching the opener at `open` ("(" / "{"), or the
/// token count when unbalanced.
size_t MatchForward(const std::vector<Token>& toks, size_t open) {
  const std::string& o = toks[open].text;
  const std::string c = o == "(" ? ")" : "}";
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    if (toks[i].text == o) ++depth;
    if (toks[i].text == c && --depth == 0) return i;
  }
  return toks.size();
}

/// Pre-tokenized file.
struct File {
  const SourceFile* src = nullptr;
  std::vector<Token> toks;
};

void Report(std::vector<Finding>* findings, const File& f,
            const std::string& rule, size_t pos, std::string message) {
  if (Suppressed(f.src->content, pos, rule)) return;
  findings->push_back(
      {rule, f.src->path, LineOf(f.src->content, pos), std::move(message)});
}

// ---------------------------------------------------------------------------
// Scope analysis: classifies every brace so R4 can tell namespace scope
// from function bodies and R5 knows the return type of the innermost
// enclosing function. Single forward pass.
// ---------------------------------------------------------------------------

struct Scope {
  enum class Kind { kNamespace, kFunction, kType, kInitializer, kBlock };
  Kind kind = Kind::kBlock;
  bool returns_status = false;  ///< Function scope returning Status/Result.
};

bool TokIs(const std::vector<Token>& toks, size_t i, const char* text) {
  return i < toks.size() && toks[i].text == text;
}

/// Skips trailing function-signature qualifiers backwards from `i`
/// (exclusive). Returns the index of the last token of the declarator core.
size_t SkipQualifiersBack(const std::vector<Token>& toks, size_t i) {
  static const std::set<std::string> kQuals = {"const",    "noexcept",
                                               "override", "final",
                                               "mutable",  "&", "&&"};
  while (i > 0 && kQuals.count(toks[i - 1].text) > 0) --i;
  return i;
}

/// True when the return type spelled by tokens starting at `i` is Status or
/// Result<...> (optionally axmlx:: / lint:: qualified).
bool TypeIsStatusLike(const std::vector<Token>& toks, size_t i) {
  while (i + 1 < toks.size() &&
         (toks[i + 1].text == "::" ||
          (toks[i].kind == Token::Kind::kIdent && TokIs(toks, i + 1, "::")))) {
    if (!TokIs(toks, i + 1, "::")) break;
    i += 2;  // consume `ns ::`
  }
  return i < toks.size() && (toks[i].text == "Status" ||
                             toks[i].text == "Result");
}

/// Classifies the `{` at token index `open`. `matching_paren` receives the
/// index of the `(` opening the parameter list when the brace starts a
/// function body.
Scope ClassifyBrace(const std::vector<Token>& toks, size_t open,
                    const std::vector<Scope>& stack) {
  Scope scope;
  size_t i = SkipQualifiersBack(toks, open);
  // `extern "C" {` behaves like a namespace.
  if (i >= 2 && toks[i - 1].kind == Token::Kind::kString &&
      TokIs(toks, i - 2, "extern")) {
    scope.kind = Scope::Kind::kNamespace;
    return scope;
  }
  // Trailing return type: `) -> Type... {`.
  {
    size_t j = i;
    while (j > 0 && (toks[j - 1].kind == Token::Kind::kIdent ||
                     toks[j - 1].text == "::" || toks[j - 1].text == "<" ||
                     toks[j - 1].text == ">" || toks[j - 1].text == "*" ||
                     toks[j - 1].text == "&")) {
      --j;
    }
    if (j > 1 && TokIs(toks, j - 1, "->") &&
        SkipQualifiersBack(toks, j - 1) >= 1 &&
        TokIs(toks, SkipQualifiersBack(toks, j - 1) - 1, ")")) {
      scope.kind = Scope::Kind::kFunction;
      scope.returns_status = TypeIsStatusLike(toks, j);
      return scope;
    }
  }
  if (i == 0) {
    scope.kind = Scope::Kind::kBlock;
    return scope;
  }
  const Token& prev = toks[i - 1];
  if (prev.text == ")") {
    // Function body, lambda body, or a control statement (`if (...) {`);
    // control statements only occur inside functions, where the enclosing
    // scope already carries the return type, so treat uniformly.
    scope.kind = Scope::Kind::kFunction;
    // Find the matching `(` backwards, then the return type before the
    // declarator name.
    int depth = 0;
    size_t j = i - 1;
    for (;; --j) {
      if (toks[j].text == ")") ++depth;
      if (toks[j].text == "(" && --depth == 0) break;
      if (j == 0) return scope;
    }
    // j is the `(` of the parameter list; before it: the declarator name —
    // the maximal `id(::id)*` chain immediately left of the paren — and
    // before that the return type tokens.
    size_t name_end = j;  // exclusive
    size_t k = name_end;
    if (k > 0 && (toks[k - 1].kind == Token::Kind::kIdent ||
                  toks[k - 1].text == "~")) {
      --k;
      if (k > 0 && toks[k - 1].text == "~") --k;  // destructor
      while (k > 1 && toks[k - 1].text == "::" &&
             toks[k - 2].kind == Token::Kind::kIdent) {
        k -= 2;
      }
    }
    // Control statements (`if`, `for`, `while`, `switch`) inherit status
    // context from the enclosing function; mark as plain block instead.
    static const std::set<std::string> kControl = {"if",     "for", "while",
                                                   "switch", "catch"};
    if (k < name_end && kControl.count(toks[k].text) > 0) {
      scope.kind = Scope::Kind::kBlock;
      return scope;
    }
    // Scan back from the name over the return-type spelling to its first
    // token, then test whether that type is Status/Result.
    if (k >= 1) {
      size_t t = k;
      // Walk back over the full return type spelling (`Result < T > ` etc.).
      int angle = 0;
      while (t > 0) {
        const std::string& txt = toks[t - 1].text;
        if (txt == ">") ++angle;
        if (txt == "<") --angle;
        if (angle == 0 && (txt == ";" || txt == "}" || txt == "{" ||
                           txt == ":" || txt == "(" || txt == ",")) {
          break;
        }
        --t;
      }
      static const std::set<std::string> kDeclQuals = {
          "inline", "static", "virtual", "constexpr", "explicit", "friend"};
      while (t < k && (kDeclQuals.count(toks[t].text) > 0 ||
                       toks[t].text == "[" || toks[t].text == "]" ||
                       toks[t].text == "nodiscard")) {
        ++t;
      }
      scope.returns_status = t < k && TypeIsStatusLike(toks, t);
    }
    return scope;
  }
  if (prev.text == "else" || prev.text == "do" || prev.text == "try") {
    scope.kind = Scope::Kind::kBlock;
    return scope;
  }
  if (prev.text == "=" || prev.text == "," || prev.text == "(" ||
      prev.text == "{" || prev.text == "return") {
    scope.kind = Scope::Kind::kInitializer;
    return scope;
  }
  // `namespace foo {`, `namespace a::b {`, or anonymous `namespace {`.
  {
    size_t j = i;
    while (j > 0 && (toks[j - 1].kind == Token::Kind::kIdent ||
                     toks[j - 1].text == "::")) {
      --j;
    }
    if ((j < i && TokIs(toks, j - 1, "namespace")) ||
        TokIs(toks, i - 1, "namespace")) {
      scope.kind = Scope::Kind::kNamespace;
      return scope;
    }
  }
  if (!stack.empty() && (stack.back().kind == Scope::Kind::kFunction ||
                         stack.back().kind == Scope::Kind::kBlock)) {
    scope.kind = Scope::Kind::kBlock;
    return scope;
  }
  scope.kind = Scope::Kind::kType;
  return scope;
}

/// True when any enclosing scope is a function/block (i.e. NOT namespace or
/// type scope all the way down).
bool InsideFunction(const std::vector<Scope>& stack) {
  for (const Scope& s : stack) {
    if (s.kind == Scope::Kind::kFunction ||
        s.kind == Scope::Kind::kBlock ||
        s.kind == Scope::Kind::kInitializer) {
      return true;
    }
  }
  return false;
}

/// Innermost function scope's returns_status, or false when not in one.
bool InnermostReturnsStatus(const std::vector<Scope>& stack) {
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->kind == Scope::Kind::kFunction) return it->returns_status;
    if (it->kind == Scope::Kind::kInitializer) continue;
    if (it->kind == Scope::Kind::kType ||
        it->kind == Scope::Kind::kNamespace) {
      return false;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// R1: protocol message dispatch.
// ---------------------------------------------------------------------------

void CheckMessageDispatch(const std::vector<File>& files,
                          std::vector<Finding>* findings) {
  const File* payload = nullptr;
  const File* peer = nullptr;
  for (const File& f : files) {
    if (EndsWith(f.src->path, "txn/payload.h")) payload = &f;
    if (EndsWith(f.src->path, "txn/peer.cc")) peer = &f;
  }

  // Declared constants: `kMsgX[] = "..."` or the alias form `kMsgX = ...`.
  std::map<std::string, size_t> declared;  // name -> pos in payload.h
  if (payload != nullptr) {
    const std::vector<Token>& toks = payload->toks;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind == Token::Kind::kIdent &&
          StartsWith(toks[i].text, "kMsg") &&
          (toks[i + 1].text == "[" || toks[i + 1].text == "=")) {
        declared.emplace(toks[i].text, toks[i].pos);
      }
    }
  }

  // Dispatch arms: every kMsg* identifier inside AxmlPeer::OnMessage.
  std::set<std::string> handled;
  bool found_dispatcher = false;
  if (peer != nullptr) {
    const std::vector<Token>& toks = peer->toks;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].text != "OnMessage" || !TokIs(toks, i + 1, "(")) continue;
      size_t close = MatchForward(toks, i + 1);
      // Skip declarations (`OnMessage(...);`): need a body.
      size_t body = close + 1;
      while (body < toks.size() && toks[body].text != "{" &&
             toks[body].text != ";") {
        ++body;
      }
      if (body >= toks.size() || toks[body].text != "{") continue;
      found_dispatcher = true;
      size_t end = MatchForward(toks, body);
      for (size_t j = body; j < end && j < toks.size(); ++j) {
        if (toks[j].kind == Token::Kind::kIdent &&
            StartsWith(toks[j].text, "kMsg")) {
          handled.insert(toks[j].text);
        }
      }
    }
  }

  if (payload != nullptr && peer != nullptr && found_dispatcher) {
    for (const auto& [name, pos] : declared) {
      if (handled.count(name) == 0) {
        Report(findings, *payload, "R1", pos,
               name + " is declared but has no dispatch arm in "
                      "AxmlPeer::OnMessage (txn/peer.cc)");
      }
    }
  }

  for (const File& f : files) {
    const bool dispatcher_dir = StartsWith(f.src->path, "txn/") ||
                                StartsWith(f.src->path, "recovery/") ||
                                StartsWith(f.src->path, "repo/") ||
                                StartsWith(f.src->path, "overlay/");
    if (!dispatcher_dir) continue;
    const std::vector<Token>& toks = f.toks;
    for (size_t i = 0; i < toks.size(); ++i) {
      // Undeclared kMsg* identifier (only meaningful with a payload.h in
      // the file set; overlay/ owns its own constants and is exempt).
      if (payload != nullptr && !StartsWith(f.src->path, "overlay/") &&
          toks[i].kind == Token::Kind::kIdent &&
          StartsWith(toks[i].text, "kMsg") &&
          declared.count(toks[i].text) == 0) {
        Report(findings, f, "R1", toks[i].pos,
               toks[i].text +
                   " is not declared in txn/payload.h — dispatching on an "
                   "undeclared message kind");
      }
      // Raw string literal compared with / assigned to a message type:
      // `x.type == "INVOKE"`, `m.type = "ABORT"`.
      if (toks[i].text == "type" && i >= 2 && TokIs(toks, i - 1, ".") &&
          i + 2 < toks.size() &&
          (toks[i + 1].text == "==" || toks[i + 1].text == "!=" ||
           toks[i + 1].text == "=") &&
          toks[i + 2].kind == Token::Kind::kString) {
        Report(findings, f, "R1", toks[i + 2].pos,
               "message type " + std::string("\"") + toks[i + 2].text +
                   "\" spelled as a raw literal; use the kMsg* constant "
                   "from txn/payload.h");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R2: [[nodiscard]] on Status / Result.
// ---------------------------------------------------------------------------

void CheckNodiscard(const std::vector<File>& files,
                    std::vector<Finding>* findings) {
  for (const File& f : files) {
    if (!EndsWith(f.src->path, "common/status.h")) continue;
    const std::vector<Token>& toks = f.toks;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].text != "class") continue;
      // `class [[nodiscard]] Name` or `class Name`.
      bool has_attr = false;
      size_t j = i + 1;
      if (TokIs(toks, j, "[") && TokIs(toks, j + 1, "[") &&
          TokIs(toks, j + 2, "nodiscard") && TokIs(toks, j + 3, "]") &&
          TokIs(toks, j + 4, "]")) {
        has_attr = true;
        j += 5;
      }
      if (j >= toks.size() || toks[j].kind != Token::Kind::kIdent) continue;
      const std::string& name = toks[j].text;
      if (name != "Status" && name != "Result") continue;
      // Only the definition counts (next significant token `{` or `:`), so
      // forward declarations and `enum class StatusCode` stay exempt.
      if (j + 1 < toks.size() &&
          (toks[j + 1].text == "{" || toks[j + 1].text == ":")) {
        if (!has_attr) {
          Report(findings, f, "R2", toks[i].pos,
                 "class " + name +
                     " must be declared [[nodiscard]]: a silently dropped "
                     "abort status is a partial-effects bug (§3.2)");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R3: StatusCodeName completeness + declared trace-kind and span-kind tables.
// ---------------------------------------------------------------------------

void CheckNameTables(const std::vector<File>& files,
                     std::vector<Finding>* findings) {
  const File* status_h = nullptr;
  const File* status_cc = nullptr;
  const File* trace_h = nullptr;
  const File* span_h = nullptr;
  const File* recorder_h = nullptr;
  for (const File& f : files) {
    if (EndsWith(f.src->path, "common/status.h")) status_h = &f;
    if (EndsWith(f.src->path, "common/status.cc")) status_cc = &f;
    if (EndsWith(f.src->path, "common/trace.h")) trace_h = &f;
    if (EndsWith(f.src->path, "obs/span.h")) span_h = &f;
    if (EndsWith(f.src->path, "obs/flight_recorder.h")) recorder_h = &f;
  }

  // --- StatusCode enumerators vs StatusCodeName cases ---
  if (status_h != nullptr && status_cc != nullptr) {
    std::map<std::string, size_t> enumerators;
    const std::vector<Token>& ht = status_h->toks;
    for (size_t i = 0; i + 3 < ht.size(); ++i) {
      if (ht[i].text == "enum" && TokIs(ht, i + 1, "class") &&
          TokIs(ht, i + 2, "StatusCode")) {
        size_t open = i + 3;
        while (open < ht.size() && ht[open].text != "{") ++open;
        if (open >= ht.size()) break;
        size_t end = MatchForward(ht, open);
        for (size_t j = open + 1; j < end; ++j) {
          if (ht[j].kind == Token::Kind::kIdent &&
              (TokIs(ht, j + 1, ",") || TokIs(ht, j + 1, "=") ||
               TokIs(ht, j + 1, "}"))) {
            enumerators.emplace(ht[j].text, ht[j].pos);
          }
        }
        break;
      }
    }
    std::set<std::string> cased;
    const std::vector<Token>& ct = status_cc->toks;
    for (size_t i = 0; i + 3 < ct.size(); ++i) {
      if (ct[i].text == "case" && TokIs(ct, i + 1, "StatusCode") &&
          TokIs(ct, i + 2, "::")) {
        cased.insert(ct[i + 3].text);
      }
    }
    for (const auto& [name, pos] : enumerators) {
      if (cased.count(name) == 0) {
        Report(findings, *status_h, "R3", pos,
               "StatusCode::" + name +
                   " has no case in StatusCodeName (common/status.cc); its "
                   "diagnostics would print UNKNOWN");
      }
    }
  }

  // --- Trace kinds: literals at emit sites must be in the kEv* table ---
  std::set<std::string> declared_kinds;
  bool have_table = false;
  if (trace_h != nullptr) {
    const std::vector<Token>& tt = trace_h->toks;
    for (size_t i = 0; i + 3 < tt.size(); ++i) {
      if (tt[i].kind == Token::Kind::kIdent &&
          StartsWith(tt[i].text, "kEv") && TokIs(tt, i + 1, "[") &&
          TokIs(tt, i + 2, "]") && TokIs(tt, i + 3, "=") &&
          i + 4 < tt.size() && tt[i + 4].kind == Token::Kind::kString) {
        declared_kinds.insert(tt[i + 4].text);
        have_table = true;
      }
    }
  }
  // --- Span kinds: literals at OpenSpan sites must be in the kSpan* table ---
  std::set<std::string> declared_span_kinds;
  bool have_span_table = false;
  if (span_h != nullptr) {
    const std::vector<Token>& st = span_h->toks;
    for (size_t i = 0; i + 4 < st.size(); ++i) {
      if (st[i].kind == Token::Kind::kIdent &&
          StartsWith(st[i].text, "kSpan") && TokIs(st, i + 1, "[") &&
          TokIs(st, i + 2, "]") && TokIs(st, i + 3, "=") &&
          st[i + 4].kind == Token::Kind::kString) {
        declared_span_kinds.insert(st[i + 4].text);
        have_span_table = true;
      }
    }
  }

  // --- Recorder kinds: literals at Record sites must be in kEvFr* ---
  std::set<std::string> declared_rec_kinds;
  bool have_rec_table = false;
  if (recorder_h != nullptr) {
    const std::vector<Token>& rt = recorder_h->toks;
    for (size_t i = 0; i + 4 < rt.size(); ++i) {
      if (rt[i].kind == Token::Kind::kIdent &&
          StartsWith(rt[i].text, "kEvFr") && TokIs(rt, i + 1, "[") &&
          TokIs(rt, i + 2, "]") && TokIs(rt, i + 3, "=") &&
          rt[i + 4].kind == Token::Kind::kString) {
        declared_rec_kinds.insert(rt[i + 4].text);
        have_rec_table = true;
      }
    }
  }

  if (!have_table && !have_span_table && !have_rec_table) return;
  for (const File& f : files) {
    const std::vector<Token>& toks = f.toks;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent || !TokIs(toks, i + 1, "(")) {
        continue;
      }
      const bool member_call =
          i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
      const bool trace_site =
          have_table &&
          (toks[i].text == "TraceEventf" ||
           // `Add` must be a member call on a trace (`.Add(` / `->Add(`) so
           // unrelated Add methods are not inspected.
           (toks[i].text == "Add" && member_call));
      // `OpenSpan` / `Record` must likewise be member calls so the tracker
      // and recorder definitions (and forward declarations) stay exempt.
      const bool span_site =
          have_span_table && toks[i].text == "OpenSpan" && member_call;
      const bool rec_site =
          have_rec_table && toks[i].text == "Record" && member_call;
      if (!trace_site && !span_site && !rec_site) continue;
      const std::set<std::string>& table =
          span_site ? declared_span_kinds
                    : rec_site ? declared_rec_kinds : declared_kinds;
      size_t close = MatchForward(toks, i + 1);
      for (size_t j = i + 2; j < close; ++j) {
        if (toks[j].kind == Token::Kind::kString && IsAllCaps(toks[j].text) &&
            table.count(toks[j].text) == 0) {
          Report(findings, f, "R3", toks[j].pos,
                 span_site
                     ? "span kind \"" + toks[j].text +
                           "\" is not declared in the kSpan* table "
                           "(obs/span.h); axmlx_report rollups cannot "
                           "group it"
                 : rec_site
                     ? "flight-recorder kind \"" + toks[j].text +
                           "\" is not declared in the kEvFr* table "
                           "(obs/flight_recorder.h); forensic timelines "
                           "cannot group it"
                     : "trace kind \"" + toks[j].text +
                           "\" is not declared in the kEv* table "
                           "(common/trace.h); CountKind assertions cannot "
                           "see it");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R4: header hygiene.
// ---------------------------------------------------------------------------

std::string ExpectedGuard(const std::string& path) {
  std::string g = "AXMLX_";
  for (char c : path) {
    if (c == '/' || c == '.' || c == '-') {
      g += '_';
    } else {
      g += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    }
  }
  g += '_';
  return g;
}

void CheckHeaderHygiene(const std::vector<File>& files,
                        std::vector<Finding>* findings) {
  for (const File& f : files) {
    if (!IsHeader(f.src->path)) continue;
    const std::vector<Token>& toks = f.toks;

    // Include guard: the first two directives must be
    // `#ifndef <guard>` / `#define <guard>` with the path-derived name.
    const std::string guard = ExpectedGuard(f.src->path);
    bool guard_ok = false;
    if (toks.size() >= 6 && toks[0].text == "#" &&
        TokIs(toks, 1, "ifndef") && toks[2].kind == Token::Kind::kIdent &&
        toks[3].text == "#" && TokIs(toks, 4, "define") &&
        toks[5].text == toks[2].text) {
      guard_ok = toks[2].text == guard;
    }
    if (!guard_ok) {
      Report(findings, f, "R4", toks.empty() ? 0 : toks[0].pos,
             "include guard must be `#ifndef " + guard + "` / `#define " +
                 guard + "` derived from the header path");
    }

    // `using namespace` at namespace scope leaks into every includer.
    std::vector<Scope> stack;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].text == "{") {
        stack.push_back(ClassifyBrace(toks, i, stack));
      } else if (toks[i].text == "}") {
        if (!stack.empty()) stack.pop_back();
      } else if (toks[i].text == "using" && TokIs(toks, i + 1, "namespace") &&
                 !InsideFunction(stack)) {
        Report(findings, f, "R4", toks[i].pos,
               "`using namespace` at namespace scope in a header leaks the "
               "namespace into every includer");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R5: assert() inside Status/Result-returning library functions.
// ---------------------------------------------------------------------------

void CheckAsserts(const std::vector<File>& files,
                  std::vector<Finding>* findings) {
  for (const File& f : files) {
    const std::vector<Token>& toks = f.toks;
    std::vector<Scope> stack;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].text == "{") {
        stack.push_back(ClassifyBrace(toks, i, stack));
      } else if (toks[i].text == "}") {
        if (!stack.empty()) stack.pop_back();
      } else if (toks[i].text == "assert" && TokIs(toks, i + 1, "(") &&
                 InnermostReturnsStatus(stack)) {
        Report(findings, f, "R5", toks[i].pos,
               "assert() inside a Status/Result-returning function; return "
               "the error instead so the recovery protocol can propagate "
               "and compensate it (§3.2)");
      }
    }
  }
}

}  // namespace

std::vector<Finding> RunLint(const std::vector<SourceFile>& files) {
  std::vector<File> prepared;
  prepared.reserve(files.size());
  for (const SourceFile& src : files) {
    prepared.push_back({&src, Tokenize(src.content)});
  }
  std::vector<Finding> findings;
  CheckMessageDispatch(prepared, &findings);
  CheckNodiscard(prepared, &findings);
  CheckNameTables(prepared, &findings);
  CheckHeaderHygiene(prepared, &findings);
  CheckAsserts(prepared, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.rule != b.rule) return a.rule < b.rule;
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  return findings;
}

std::string FormatFindings(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  }
  return os.str();
}

bool LoadTree(const std::string& root, std::vector<SourceFile>* files,
              std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    if (error != nullptr) *error = "not a directory: " + root;
    return false;
  }
  std::vector<fs::path> paths;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       !ec && it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc") paths.push_back(it->path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      if (error != nullptr) *error = "cannot read " + p.string();
      return false;
    }
    std::ostringstream content;
    content << in.rdbuf();
    files->push_back({fs::relative(p, root).generic_string(),
                      content.str()});
  }
  return true;
}

}  // namespace axmlx::lint
