#include "axmlx_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace axmlx::lint {
namespace {

// ---------------------------------------------------------------------------
// Lightweight tokenizer. Comments are dropped; string/char literals become
// single tokens carrying their value, so identifier rules can never match
// inside a literal and literal rules can never match inside an identifier.
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;  ///< Identifier spelling, literal value, or punctuator.
  size_t pos = 0;    ///< Byte offset in the original content.
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators the rules care about. Everything else is
/// tokenized one character at a time.
const char* const kPuncts[] = {"::", "->", "==", "!=", "<=", ">=", "&&", "||"};

std::vector<Token> Tokenize(const std::string& s) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = s.size();
  while (i < n) {
    const char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      while (i < n && s[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(s[i] == '*' && s[i + 1] == '/')) ++i;
      i = std::min(n, i + 2);
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && s[i + 1] == '"') {
      size_t d = i + 2;
      while (d < n && s[d] != '(') ++d;
      const std::string delim = s.substr(i + 2, d - (i + 2));
      const std::string close = ")" + delim + "\"";
      size_t end = s.find(close, d + 1);
      if (end == std::string::npos) end = n;
      out.push_back({Token::Kind::kString,
                     s.substr(d + 1, end - (d + 1)), i});
      i = std::min(n, end + close.size());
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      const size_t start = i++;
      std::string value;
      while (i < n && s[i] != quote) {
        if (s[i] == '\\' && i + 1 < n) {
          value += s[i + 1];
          i += 2;
        } else {
          value += s[i++];
        }
      }
      ++i;  // closing quote
      out.push_back({quote == '"' ? Token::Kind::kString : Token::Kind::kChar,
                     std::move(value), start});
      continue;
    }
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(s[i])) ++i;
      out.push_back({Token::Kind::kIdent, s.substr(start, i - start), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const size_t start = i;
      while (i < n && (IsIdentChar(s[i]) || s[i] == '.' || s[i] == '\'')) ++i;
      out.push_back({Token::Kind::kNumber, s.substr(start, i - start), start});
      continue;
    }
    for (const char* p : kPuncts) {
      if (s.compare(i, 2, p) == 0) {
        out.push_back({Token::Kind::kPunct, p, i});
        i += 2;
        goto next;
      }
    }
    out.push_back({Token::Kind::kPunct, std::string(1, c), i});
    ++i;
  next:;
  }
  return out;
}

int LineOf(const std::string& content, size_t pos) {
  return 1 + static_cast<int>(
                 std::count(content.begin(),
                            content.begin() +
                                static_cast<std::ptrdiff_t>(
                                    std::min(pos, content.size())),
                            '\n'));
}

/// True when the source line holding `pos` — or the line directly above
/// it, so a finding on a long expression can carry its justification on a
/// comment line of its own — has a `lint:allow(Rn)` comment for `rule`.
bool Suppressed(const std::string& content, size_t pos,
                const std::string& rule) {
  const std::string marker = "lint:allow(" + rule + ")";
  size_t begin = content.rfind('\n', pos);
  begin = begin == std::string::npos ? 0 : begin + 1;
  size_t end = content.find('\n', pos);
  if (end == std::string::npos) end = content.size();
  if (content.substr(begin, end - begin).find(marker) != std::string::npos) {
    return true;
  }
  if (begin >= 2) {
    const size_t prev_end = begin - 1;  // the '\n' ending the previous line
    size_t prev_begin = content.rfind('\n', prev_end - 1);
    prev_begin = prev_begin == std::string::npos ? 0 : prev_begin + 1;
    if (content.substr(prev_begin, prev_end - prev_begin).find(marker) !=
        std::string::npos) {
      return true;
    }
  }
  return false;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool IsHeader(const std::string& path) { return EndsWith(path, ".h"); }

bool IsAllCaps(const std::string& s) {
  if (s.size() < 3) return false;
  if (!std::isupper(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s) {
    if (!std::isupper(static_cast<unsigned char>(c)) &&
        !std::isdigit(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

/// Index of the token matching the opener at `open` ("(" / "{"), or the
/// token count when unbalanced.
size_t MatchForward(const std::vector<Token>& toks, size_t open) {
  const std::string& o = toks[open].text;
  const std::string c = o == "(" ? ")" : "}";
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    if (toks[i].text == o) ++depth;
    if (toks[i].text == c && --depth == 0) return i;
  }
  return toks.size();
}

/// Pre-tokenized file.
struct File {
  const SourceFile* src = nullptr;
  std::vector<Token> toks;
};

void Report(std::vector<Finding>* findings, const File& f,
            const std::string& rule, size_t pos, std::string message) {
  if (Suppressed(f.src->content, pos, rule)) return;
  findings->push_back(
      {rule, f.src->path, LineOf(f.src->content, pos), std::move(message)});
}

// ---------------------------------------------------------------------------
// Scope analysis: classifies every brace so R4 can tell namespace scope
// from function bodies and R5 knows the return type of the innermost
// enclosing function. Single forward pass.
// ---------------------------------------------------------------------------

struct Scope {
  enum class Kind { kNamespace, kFunction, kType, kInitializer, kBlock };
  Kind kind = Kind::kBlock;
  bool returns_status = false;  ///< Function scope returning Status/Result.
};

bool TokIs(const std::vector<Token>& toks, size_t i, const char* text) {
  return i < toks.size() && toks[i].text == text;
}

/// Skips trailing function-signature qualifiers backwards from `i`
/// (exclusive). Returns the index of the last token of the declarator core.
size_t SkipQualifiersBack(const std::vector<Token>& toks, size_t i) {
  static const std::set<std::string> kQuals = {"const",    "noexcept",
                                               "override", "final",
                                               "mutable",  "&", "&&"};
  while (i > 0 && kQuals.count(toks[i - 1].text) > 0) --i;
  return i;
}

/// True when the return type spelled by tokens starting at `i` is Status or
/// Result<...> (optionally axmlx:: / lint:: qualified).
bool TypeIsStatusLike(const std::vector<Token>& toks, size_t i) {
  while (i + 1 < toks.size() &&
         (toks[i + 1].text == "::" ||
          (toks[i].kind == Token::Kind::kIdent && TokIs(toks, i + 1, "::")))) {
    if (!TokIs(toks, i + 1, "::")) break;
    i += 2;  // consume `ns ::`
  }
  return i < toks.size() && (toks[i].text == "Status" ||
                             toks[i].text == "Result");
}

/// Classifies the `{` at token index `open`. `matching_paren` receives the
/// index of the `(` opening the parameter list when the brace starts a
/// function body.
Scope ClassifyBrace(const std::vector<Token>& toks, size_t open,
                    const std::vector<Scope>& stack) {
  Scope scope;
  size_t i = SkipQualifiersBack(toks, open);
  // `extern "C" {` behaves like a namespace.
  if (i >= 2 && toks[i - 1].kind == Token::Kind::kString &&
      TokIs(toks, i - 2, "extern")) {
    scope.kind = Scope::Kind::kNamespace;
    return scope;
  }
  // Trailing return type: `) -> Type... {`.
  {
    size_t j = i;
    while (j > 0 && (toks[j - 1].kind == Token::Kind::kIdent ||
                     toks[j - 1].text == "::" || toks[j - 1].text == "<" ||
                     toks[j - 1].text == ">" || toks[j - 1].text == "*" ||
                     toks[j - 1].text == "&")) {
      --j;
    }
    if (j > 1 && TokIs(toks, j - 1, "->") &&
        SkipQualifiersBack(toks, j - 1) >= 1 &&
        TokIs(toks, SkipQualifiersBack(toks, j - 1) - 1, ")")) {
      scope.kind = Scope::Kind::kFunction;
      scope.returns_status = TypeIsStatusLike(toks, j);
      return scope;
    }
  }
  if (i == 0) {
    scope.kind = Scope::Kind::kBlock;
    return scope;
  }
  const Token& prev = toks[i - 1];
  if (prev.text == ")") {
    // Function body, lambda body, or a control statement (`if (...) {`);
    // control statements only occur inside functions, where the enclosing
    // scope already carries the return type, so treat uniformly.
    scope.kind = Scope::Kind::kFunction;
    // Find the matching `(` backwards, then the return type before the
    // declarator name.
    int depth = 0;
    size_t j = i - 1;
    for (;; --j) {
      if (toks[j].text == ")") ++depth;
      if (toks[j].text == "(" && --depth == 0) break;
      if (j == 0) return scope;
    }
    // j is the `(` of the parameter list; before it: the declarator name —
    // the maximal `id(::id)*` chain immediately left of the paren — and
    // before that the return type tokens.
    size_t name_end = j;  // exclusive
    size_t k = name_end;
    if (k > 0 && (toks[k - 1].kind == Token::Kind::kIdent ||
                  toks[k - 1].text == "~")) {
      --k;
      if (k > 0 && toks[k - 1].text == "~") --k;  // destructor
      while (k > 1 && toks[k - 1].text == "::" &&
             toks[k - 2].kind == Token::Kind::kIdent) {
        k -= 2;
      }
    }
    // Control statements (`if`, `for`, `while`, `switch`) inherit status
    // context from the enclosing function; mark as plain block instead.
    static const std::set<std::string> kControl = {"if",     "for", "while",
                                                   "switch", "catch"};
    if (k < name_end && kControl.count(toks[k].text) > 0) {
      scope.kind = Scope::Kind::kBlock;
      return scope;
    }
    // Scan back from the name over the return-type spelling to its first
    // token, then test whether that type is Status/Result.
    if (k >= 1) {
      size_t t = k;
      // Walk back over the full return type spelling (`Result < T > ` etc.).
      int angle = 0;
      while (t > 0) {
        const std::string& txt = toks[t - 1].text;
        if (txt == ">") ++angle;
        if (txt == "<") --angle;
        if (angle == 0 && (txt == ";" || txt == "}" || txt == "{" ||
                           txt == ":" || txt == "(" || txt == ",")) {
          break;
        }
        --t;
      }
      static const std::set<std::string> kDeclQuals = {
          "inline", "static", "virtual", "constexpr", "explicit", "friend"};
      while (t < k && (kDeclQuals.count(toks[t].text) > 0 ||
                       toks[t].text == "[" || toks[t].text == "]" ||
                       toks[t].text == "nodiscard")) {
        ++t;
      }
      scope.returns_status = t < k && TypeIsStatusLike(toks, t);
    }
    return scope;
  }
  if (prev.text == "else" || prev.text == "do" || prev.text == "try") {
    scope.kind = Scope::Kind::kBlock;
    return scope;
  }
  if (prev.text == "=" || prev.text == "," || prev.text == "(" ||
      prev.text == "{" || prev.text == "return") {
    scope.kind = Scope::Kind::kInitializer;
    return scope;
  }
  // `namespace foo {`, `namespace a::b {`, or anonymous `namespace {`.
  {
    size_t j = i;
    while (j > 0 && (toks[j - 1].kind == Token::Kind::kIdent ||
                     toks[j - 1].text == "::")) {
      --j;
    }
    if ((j < i && TokIs(toks, j - 1, "namespace")) ||
        TokIs(toks, i - 1, "namespace")) {
      scope.kind = Scope::Kind::kNamespace;
      return scope;
    }
  }
  if (!stack.empty() && (stack.back().kind == Scope::Kind::kFunction ||
                         stack.back().kind == Scope::Kind::kBlock)) {
    scope.kind = Scope::Kind::kBlock;
    return scope;
  }
  scope.kind = Scope::Kind::kType;
  return scope;
}

/// True when any enclosing scope is a function/block (i.e. NOT namespace or
/// type scope all the way down).
bool InsideFunction(const std::vector<Scope>& stack) {
  for (const Scope& s : stack) {
    if (s.kind == Scope::Kind::kFunction ||
        s.kind == Scope::Kind::kBlock ||
        s.kind == Scope::Kind::kInitializer) {
      return true;
    }
  }
  return false;
}

/// Innermost function scope's returns_status, or false when not in one.
bool InnermostReturnsStatus(const std::vector<Scope>& stack) {
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->kind == Scope::Kind::kFunction) return it->returns_status;
    if (it->kind == Scope::Kind::kInitializer) continue;
    if (it->kind == Scope::Kind::kType ||
        it->kind == Scope::Kind::kNamespace) {
      return false;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// R1: protocol message dispatch.
// ---------------------------------------------------------------------------

void CheckMessageDispatch(const std::vector<File>& files,
                          std::vector<Finding>* findings) {
  const File* payload = nullptr;
  const File* peer = nullptr;
  for (const File& f : files) {
    if (EndsWith(f.src->path, "txn/payload.h")) payload = &f;
    if (EndsWith(f.src->path, "txn/peer.cc")) peer = &f;
  }

  // Declared constants: `kMsgX[] = "..."` or the alias form `kMsgX = ...`.
  std::map<std::string, size_t> declared;  // name -> pos in payload.h
  if (payload != nullptr) {
    const std::vector<Token>& toks = payload->toks;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind == Token::Kind::kIdent &&
          StartsWith(toks[i].text, "kMsg") &&
          (toks[i + 1].text == "[" || toks[i + 1].text == "=")) {
        declared.emplace(toks[i].text, toks[i].pos);
      }
    }
  }

  // Dispatch arms: every kMsg* identifier inside AxmlPeer::OnMessage.
  std::set<std::string> handled;
  bool found_dispatcher = false;
  if (peer != nullptr) {
    const std::vector<Token>& toks = peer->toks;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].text != "OnMessage" || !TokIs(toks, i + 1, "(")) continue;
      size_t close = MatchForward(toks, i + 1);
      // Skip declarations (`OnMessage(...);`): need a body.
      size_t body = close + 1;
      while (body < toks.size() && toks[body].text != "{" &&
             toks[body].text != ";") {
        ++body;
      }
      if (body >= toks.size() || toks[body].text != "{") continue;
      found_dispatcher = true;
      size_t end = MatchForward(toks, body);
      for (size_t j = body; j < end && j < toks.size(); ++j) {
        if (toks[j].kind == Token::Kind::kIdent &&
            StartsWith(toks[j].text, "kMsg")) {
          handled.insert(toks[j].text);
        }
      }
    }
  }

  if (payload != nullptr && peer != nullptr && found_dispatcher) {
    for (const auto& [name, pos] : declared) {
      if (handled.count(name) == 0) {
        Report(findings, *payload, "R1", pos,
               name + " is declared but has no dispatch arm in "
                      "AxmlPeer::OnMessage (txn/peer.cc)");
      }
    }
  }

  for (const File& f : files) {
    const bool dispatcher_dir = StartsWith(f.src->path, "txn/") ||
                                StartsWith(f.src->path, "recovery/") ||
                                StartsWith(f.src->path, "repo/") ||
                                StartsWith(f.src->path, "overlay/");
    if (!dispatcher_dir) continue;
    const std::vector<Token>& toks = f.toks;
    for (size_t i = 0; i < toks.size(); ++i) {
      // Undeclared kMsg* identifier (only meaningful with a payload.h in
      // the file set; overlay/ owns its own constants and is exempt).
      if (payload != nullptr && !StartsWith(f.src->path, "overlay/") &&
          toks[i].kind == Token::Kind::kIdent &&
          StartsWith(toks[i].text, "kMsg") &&
          declared.count(toks[i].text) == 0) {
        Report(findings, f, "R1", toks[i].pos,
               toks[i].text +
                   " is not declared in txn/payload.h — dispatching on an "
                   "undeclared message kind");
      }
      // Raw string literal compared with / assigned to a message type:
      // `x.type == "INVOKE"`, `m.type = "ABORT"`.
      if (toks[i].text == "type" && i >= 2 && TokIs(toks, i - 1, ".") &&
          i + 2 < toks.size() &&
          (toks[i + 1].text == "==" || toks[i + 1].text == "!=" ||
           toks[i + 1].text == "=") &&
          toks[i + 2].kind == Token::Kind::kString) {
        Report(findings, f, "R1", toks[i + 2].pos,
               "message type " + std::string("\"") + toks[i + 2].text +
                   "\" spelled as a raw literal; use the kMsg* constant "
                   "from txn/payload.h");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R2: [[nodiscard]] on Status / Result.
// ---------------------------------------------------------------------------

void CheckNodiscard(const std::vector<File>& files,
                    std::vector<Finding>* findings) {
  for (const File& f : files) {
    if (!EndsWith(f.src->path, "common/status.h")) continue;
    const std::vector<Token>& toks = f.toks;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].text != "class") continue;
      // `class [[nodiscard]] Name` or `class Name`.
      bool has_attr = false;
      size_t j = i + 1;
      if (TokIs(toks, j, "[") && TokIs(toks, j + 1, "[") &&
          TokIs(toks, j + 2, "nodiscard") && TokIs(toks, j + 3, "]") &&
          TokIs(toks, j + 4, "]")) {
        has_attr = true;
        j += 5;
      }
      if (j >= toks.size() || toks[j].kind != Token::Kind::kIdent) continue;
      const std::string& name = toks[j].text;
      if (name != "Status" && name != "Result") continue;
      // Only the definition counts (next significant token `{` or `:`), so
      // forward declarations and `enum class StatusCode` stay exempt.
      if (j + 1 < toks.size() &&
          (toks[j + 1].text == "{" || toks[j + 1].text == ":")) {
        if (!has_attr) {
          Report(findings, f, "R2", toks[i].pos,
                 "class " + name +
                     " must be declared [[nodiscard]]: a silently dropped "
                     "abort status is a partial-effects bug (§3.2)");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R3: StatusCodeName completeness + declared trace-kind and span-kind tables.
// ---------------------------------------------------------------------------

void CheckNameTables(const std::vector<File>& files,
                     std::vector<Finding>* findings) {
  const File* status_h = nullptr;
  const File* status_cc = nullptr;
  const File* trace_h = nullptr;
  const File* span_h = nullptr;
  const File* recorder_h = nullptr;
  const File* timeline_h = nullptr;
  for (const File& f : files) {
    if (EndsWith(f.src->path, "common/status.h")) status_h = &f;
    if (EndsWith(f.src->path, "common/status.cc")) status_cc = &f;
    if (EndsWith(f.src->path, "common/trace.h")) trace_h = &f;
    if (EndsWith(f.src->path, "obs/span.h")) span_h = &f;
    if (EndsWith(f.src->path, "obs/flight_recorder.h")) recorder_h = &f;
    if (EndsWith(f.src->path, "obs/timeline.h")) timeline_h = &f;
  }

  // --- StatusCode enumerators vs StatusCodeName cases ---
  if (status_h != nullptr && status_cc != nullptr) {
    std::map<std::string, size_t> enumerators;
    const std::vector<Token>& ht = status_h->toks;
    for (size_t i = 0; i + 3 < ht.size(); ++i) {
      if (ht[i].text == "enum" && TokIs(ht, i + 1, "class") &&
          TokIs(ht, i + 2, "StatusCode")) {
        size_t open = i + 3;
        while (open < ht.size() && ht[open].text != "{") ++open;
        if (open >= ht.size()) break;
        size_t end = MatchForward(ht, open);
        for (size_t j = open + 1; j < end; ++j) {
          if (ht[j].kind == Token::Kind::kIdent &&
              (TokIs(ht, j + 1, ",") || TokIs(ht, j + 1, "=") ||
               TokIs(ht, j + 1, "}"))) {
            enumerators.emplace(ht[j].text, ht[j].pos);
          }
        }
        break;
      }
    }
    std::set<std::string> cased;
    const std::vector<Token>& ct = status_cc->toks;
    for (size_t i = 0; i + 3 < ct.size(); ++i) {
      if (ct[i].text == "case" && TokIs(ct, i + 1, "StatusCode") &&
          TokIs(ct, i + 2, "::")) {
        cased.insert(ct[i + 3].text);
      }
    }
    for (const auto& [name, pos] : enumerators) {
      if (cased.count(name) == 0) {
        Report(findings, *status_h, "R3", pos,
               "StatusCode::" + name +
                   " has no case in StatusCodeName (common/status.cc); its "
                   "diagnostics would print UNKNOWN");
      }
    }
  }

  // --- Trace kinds: literals at emit sites must be in the kEv* table ---
  std::set<std::string> declared_kinds;
  bool have_table = false;
  if (trace_h != nullptr) {
    const std::vector<Token>& tt = trace_h->toks;
    for (size_t i = 0; i + 3 < tt.size(); ++i) {
      if (tt[i].kind == Token::Kind::kIdent &&
          StartsWith(tt[i].text, "kEv") && TokIs(tt, i + 1, "[") &&
          TokIs(tt, i + 2, "]") && TokIs(tt, i + 3, "=") &&
          i + 4 < tt.size() && tt[i + 4].kind == Token::Kind::kString) {
        declared_kinds.insert(tt[i + 4].text);
        have_table = true;
      }
    }
  }
  // --- Span kinds: literals at OpenSpan sites must be in the kSpan* table ---
  std::set<std::string> declared_span_kinds;
  bool have_span_table = false;
  if (span_h != nullptr) {
    const std::vector<Token>& st = span_h->toks;
    for (size_t i = 0; i + 4 < st.size(); ++i) {
      if (st[i].kind == Token::Kind::kIdent &&
          StartsWith(st[i].text, "kSpan") && TokIs(st, i + 1, "[") &&
          TokIs(st, i + 2, "]") && TokIs(st, i + 3, "=") &&
          st[i + 4].kind == Token::Kind::kString) {
        declared_span_kinds.insert(st[i + 4].text);
        have_span_table = true;
      }
    }
  }

  // --- Recorder kinds: literals at Record sites must be in kEvFr* ---
  std::set<std::string> declared_rec_kinds;
  bool have_rec_table = false;
  if (recorder_h != nullptr) {
    const std::vector<Token>& rt = recorder_h->toks;
    for (size_t i = 0; i + 4 < rt.size(); ++i) {
      if (rt[i].kind == Token::Kind::kIdent &&
          StartsWith(rt[i].text, "kEvFr") && TokIs(rt, i + 1, "[") &&
          TokIs(rt, i + 2, "]") && TokIs(rt, i + 3, "=") &&
          rt[i + 4].kind == Token::Kind::kString) {
        declared_rec_kinds.insert(rt[i + 4].text);
        have_rec_table = true;
      }
    }
  }

  // --- Phase names: literals at Timeline Enter/Exit sites must be in the
  // kPhase* table (off-table spellings silently fall out of attribution) ---
  std::set<std::string> declared_phases;
  bool have_phase_table = false;
  if (timeline_h != nullptr) {
    const std::vector<Token>& pt = timeline_h->toks;
    for (size_t i = 0; i + 4 < pt.size(); ++i) {
      if (pt[i].kind == Token::Kind::kIdent &&
          StartsWith(pt[i].text, "kPhase") && TokIs(pt, i + 1, "[") &&
          TokIs(pt, i + 2, "]") && TokIs(pt, i + 3, "=") &&
          pt[i + 4].kind == Token::Kind::kString) {
        declared_phases.insert(pt[i + 4].text);
        have_phase_table = true;
      }
    }
  }

  if (!have_table && !have_span_table && !have_rec_table &&
      !have_phase_table) {
    return;
  }
  for (const File& f : files) {
    const std::vector<Token>& toks = f.toks;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent || !TokIs(toks, i + 1, "(")) {
        continue;
      }
      const bool member_call =
          i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
      const bool trace_site =
          have_table &&
          (toks[i].text == "TraceEventf" ||
           // `Add` must be a member call on a trace (`.Add(` / `->Add(`) so
           // unrelated Add methods are not inspected.
           (toks[i].text == "Add" && member_call));
      // `OpenSpan` / `Record` must likewise be member calls so the tracker
      // and recorder definitions (and forward declarations) stay exempt.
      const bool span_site =
          have_span_table && toks[i].text == "OpenSpan" && member_call;
      const bool rec_site =
          have_rec_table && toks[i].text == "Record" && member_call;
      // Timeline phase claims (`.Enter(` / `->Exit(`): the phase argument.
      const bool phase_site =
          have_phase_table &&
          (toks[i].text == "Enter" || toks[i].text == "Exit") && member_call;
      if (!trace_site && !span_site && !rec_site && !phase_site) continue;
      const std::set<std::string>& table =
          span_site ? declared_span_kinds
          : rec_site ? declared_rec_kinds
          : phase_site ? declared_phases
                       : declared_kinds;
      size_t close = MatchForward(toks, i + 1);
      for (size_t j = i + 2; j < close; ++j) {
        if (toks[j].kind == Token::Kind::kString && IsAllCaps(toks[j].text) &&
            table.count(toks[j].text) == 0) {
          Report(findings, f, "R3", toks[j].pos,
                 span_site
                     ? "span kind \"" + toks[j].text +
                           "\" is not declared in the kSpan* table "
                           "(obs/span.h); axmlx_report rollups cannot "
                           "group it"
                 : rec_site
                     ? "flight-recorder kind \"" + toks[j].text +
                           "\" is not declared in the kEvFr* table "
                           "(obs/flight_recorder.h); forensic timelines "
                           "cannot group it"
                 : phase_site
                     ? "phase \"" + toks[j].text +
                           "\" is not declared in the kPhase* table "
                           "(obs/timeline.h); off-table phases fall out "
                           "of critical-path attribution"
                     : "trace kind \"" + toks[j].text +
                           "\" is not declared in the kEv* table "
                           "(common/trace.h); CountKind assertions cannot "
                           "see it");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R4: header hygiene.
// ---------------------------------------------------------------------------

std::string ExpectedGuard(const std::string& path) {
  std::string g = "AXMLX_";
  for (char c : path) {
    if (c == '/' || c == '.' || c == '-') {
      g += '_';
    } else {
      g += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    }
  }
  g += '_';
  return g;
}

void CheckHeaderHygiene(const std::vector<File>& files,
                        std::vector<Finding>* findings) {
  for (const File& f : files) {
    if (!IsHeader(f.src->path)) continue;
    const std::vector<Token>& toks = f.toks;

    // Include guard: the first two directives must be
    // `#ifndef <guard>` / `#define <guard>` with the path-derived name.
    const std::string guard = ExpectedGuard(f.src->path);
    bool guard_ok = false;
    if (toks.size() >= 6 && toks[0].text == "#" &&
        TokIs(toks, 1, "ifndef") && toks[2].kind == Token::Kind::kIdent &&
        toks[3].text == "#" && TokIs(toks, 4, "define") &&
        toks[5].text == toks[2].text) {
      guard_ok = toks[2].text == guard;
    }
    if (!guard_ok) {
      Report(findings, f, "R4", toks.empty() ? 0 : toks[0].pos,
             "include guard must be `#ifndef " + guard + "` / `#define " +
                 guard + "` derived from the header path");
    }

    // `using namespace` at namespace scope leaks into every includer.
    std::vector<Scope> stack;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].text == "{") {
        stack.push_back(ClassifyBrace(toks, i, stack));
      } else if (toks[i].text == "}") {
        if (!stack.empty()) stack.pop_back();
      } else if (toks[i].text == "using" && TokIs(toks, i + 1, "namespace") &&
                 !InsideFunction(stack)) {
        Report(findings, f, "R4", toks[i].pos,
               "`using namespace` at namespace scope in a header leaks the "
               "namespace into every includer");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R5: assert() inside Status/Result-returning library functions.
// ---------------------------------------------------------------------------

void CheckAsserts(const std::vector<File>& files,
                  std::vector<Finding>* findings) {
  for (const File& f : files) {
    const std::vector<Token>& toks = f.toks;
    std::vector<Scope> stack;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].text == "{") {
        stack.push_back(ClassifyBrace(toks, i, stack));
      } else if (toks[i].text == "}") {
        if (!stack.empty()) stack.pop_back();
      } else if (toks[i].text == "assert" && TokIs(toks, i + 1, "(") &&
                 InnermostReturnsStatus(stack)) {
        Report(findings, f, "R5", toks[i].pos,
               "assert() inside a Status/Result-returning function; return "
               "the error instead so the recovery protocol can propagate "
               "and compensate it (§3.2)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 1: cross-translation-unit fact collection. Every file is tokenized
// once; facts are global observations the per-file rules cannot make —
// which names were declared with unordered container types, which WAL tags
// the storage layer writes vs. replays, which xml::Document members mutate
// vs. record versions, and where every registry constant is defined.
// ---------------------------------------------------------------------------

struct Facts {
  /// R7: every variable/member name declared with a std::unordered_* type
  /// anywhere in the tree. Iterating one of these is hash-order dependent.
  std::set<std::string> unordered_names;

  /// R8: WAL record tags (first word of the record literal) appended via
  /// AppendWal, and tags parsed by a `kind == "TAG"` arm inside ReplayWal.
  /// First site wins; tags map to the file/pos used for reporting.
  struct WalSite {
    const File* file = nullptr;
    size_t pos = 0;
  };
  std::map<std::string, WalSite> wal_written;
  std::map<std::string, WalSite> wal_replayed;
  bool wal_replayer_found = false;

  /// R6: one entry per `Document::Name(...) { ... }` definition in
  /// xml/document.cc: whether the body touches mutable node state (calls
  /// FindMutable/NodeAt), which members it calls (for the recording
  /// fixpoint), and whether it records directly.
  struct DocDef {
    std::string name;
    const File* file = nullptr;
    size_t name_pos = 0;
    bool mutates = false;
    std::string mutate_marker;  ///< "FindMutable" or "NodeAt".
    bool records_direct = false;
    std::set<std::string> calls;
  };
  std::vector<DocDef> doc_defs;

  /// R10: every `kFamilyX[] = "VALUE"` registry-constant definition in the
  /// tree, classified by longest-prefix family match.
  struct TableDef {
    std::string family;  ///< "kMetric", "kEvFr", "kSpan", or "kEv".
    std::string name;
    std::string value;
    const File* file = nullptr;
    size_t pos = 0;
  };
  std::vector<TableDef> table_defs;
};

const std::set<std::string>& UnorderedTypeNames() {
  static const std::set<std::string> kTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kTypes;
}

/// Collects names declared with an unordered container type:
/// `std::unordered_map<K, V> name` (member, local, or parameter). Skips
/// function declarators (`unordered_set<T> Collect(...)`) and nested-type
/// uses (`unordered_map<K, V>::iterator`).
void CollectUnorderedNames(const File& f, Facts* facts) {
  const std::vector<Token>& toks = f.toks;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        UnorderedTypeNames().count(toks[i].text) == 0 ||
        !TokIs(toks, i + 1, "<")) {
      continue;
    }
    // Skip the template argument list; `>>` tokenizes as two `>`.
    size_t j = i + 2;
    int angle = 1;
    while (j < toks.size() && angle > 0) {
      if (toks[j].text == "<") ++angle;
      if (toks[j].text == ">") --angle;
      ++j;
    }
    while (j < toks.size() && (toks[j].text == "*" || toks[j].text == "&" ||
                               toks[j].text == "const")) {
      ++j;
    }
    if (j + 1 >= toks.size() || toks[j].kind != Token::Kind::kIdent) continue;
    if (toks[j + 1].text == "(") continue;  // function returning the type
    facts->unordered_names.insert(toks[j].text);
  }
}

/// Finds the body `{` of the definition whose parameter list closes at
/// token `close` ( the `)` ). Walks over cv/ref/noexcept qualifiers and
/// constructor initializer lists. Returns the token count when the tokens
/// spell a declaration (`;`) instead of a definition.
size_t FindBodyBrace(const std::vector<Token>& toks, size_t close) {
  size_t j = close + 1;
  bool in_init_list = false;
  while (j < toks.size()) {
    const std::string& t = toks[j].text;
    if (t == ";") return toks.size();
    if (t == "(") {  // noexcept(...) or a ctor-init item `member_(expr)`
      j = MatchForward(toks, j) + 1;
      continue;
    }
    if (t == "{") {
      // In a ctor-init list, `member_{expr}` braces follow an identifier;
      // the body brace follows `)` / `}` of the previous item (or `:` for
      // an empty-but-odd spelling).
      if (in_init_list && j > 0 && toks[j - 1].kind == Token::Kind::kIdent) {
        j = MatchForward(toks, j) + 1;
        continue;
      }
      return j;
    }
    if (t == ":") in_init_list = true;
    ++j;
  }
  return toks.size();
}

/// R6 facts: `Document::Name(...) { body }` definitions in xml/document.cc,
/// their mutation markers, and their intra-class call graph.
void CollectDocDefs(const File& f, Facts* facts) {
  if (!EndsWith(f.src->path, "xml/document.cc")) return;
  const std::vector<Token>& toks = f.toks;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].text != "Document" || !TokIs(toks, i + 1, "::") ||
        toks[i + 2].kind != Token::Kind::kIdent || !TokIs(toks, i + 3, "(")) {
      continue;
    }
    const size_t close = MatchForward(toks, i + 3);
    const size_t body = FindBodyBrace(toks, close);
    if (body >= toks.size()) continue;  // declaration, not a definition
    const size_t end = MatchForward(toks, body);
    Facts::DocDef def;
    def.name = toks[i + 2].text;
    def.file = &f;
    def.name_pos = toks[i + 2].pos;
    for (size_t j = body + 1; j < end && j + 1 < toks.size(); ++j) {
      if (toks[j].kind != Token::Kind::kIdent || !TokIs(toks, j + 1, "(")) {
        continue;
      }
      const std::string& callee = toks[j].text;
      def.calls.insert(callee);
      if (!def.mutates && (callee == "FindMutable" || callee == "NodeAt")) {
        def.mutates = true;
        def.mutate_marker = callee;
      }
      if (callee == "RecordVersion" || callee == "NewNode") {
        def.records_direct = true;
      }
    }
    facts->doc_defs.push_back(std::move(def));
    i = body;  // resume after the header; nested lambdas are rare here
  }
}

/// R8 facts: WAL tags written vs. replayed. Only src/storage owns the WAL,
/// so other directories never contribute (a test fixture exercising R8
/// places its files under storage/ too).
void CollectWalGrammar(const File& f, Facts* facts) {
  if (f.src->path.find("storage/") == std::string::npos) return;
  const std::vector<Token>& toks = f.toks;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    // Writer: `AppendWal("TAG ..." ...)`. The record literal leads the
    // argument expression by convention; a non-literal first argument is
    // invisible to the rule (and worth keeping lintable).
    if (toks[i].text == "AppendWal" && TokIs(toks, i + 1, "(") &&
        toks[i + 2].kind == Token::Kind::kString) {
      const std::string& lit = toks[i + 2].text;
      const std::string tag = lit.substr(0, lit.find(' '));
      if (!tag.empty()) {
        facts->wal_written.emplace(tag,
                                   Facts::WalSite{&f, toks[i + 2].pos});
      }
    }
    // Replayer: `kind == "TAG"` comparisons inside the body of ReplayWal.
    // The record kind is always parsed into a variable named `kind` — that
    // naming is part of the WAL-grammar convention this rule enforces.
    if (toks[i].text == "ReplayWal" && TokIs(toks, i + 1, "(")) {
      const size_t close = MatchForward(toks, i + 1);
      size_t body = close + 1;
      while (body < toks.size() && toks[body].text != "{" &&
             toks[body].text != ";") {
        ++body;
      }
      if (body >= toks.size() || toks[body].text != "{") continue;
      facts->wal_replayer_found = true;
      const size_t end = MatchForward(toks, body);
      for (size_t j = body; j + 2 < end; ++j) {
        if (toks[j].text == "kind" && TokIs(toks, j + 1, "==") &&
            toks[j + 2].kind == Token::Kind::kString) {
          facts->wal_replayed.emplace(
              toks[j + 2].text, Facts::WalSite{&f, toks[j + 2].pos});
        }
      }
    }
  }
}

/// R10 facts: registry-constant definitions `kFamilyX[] = "VALUE"`,
/// classified by longest family prefix (kMetric / kPhase / kEvFr / kSpan /
/// kEv) so kEvFr* constants never land in the kEv family.
void CollectTableDefs(const File& f, Facts* facts) {
  static const char* const kFamilies[] = {"kMetric", "kPhase", "kEvFr",
                                          "kSpan", "kEv"};
  const std::vector<Token>& toks = f.toks;
  for (size_t i = 0; i + 4 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || !TokIs(toks, i + 1, "[") ||
        !TokIs(toks, i + 2, "]") || !TokIs(toks, i + 3, "=") ||
        toks[i + 4].kind != Token::Kind::kString) {
      continue;
    }
    for (const char* fam : kFamilies) {
      if (StartsWith(toks[i].text, fam)) {
        facts->table_defs.push_back(
            {fam, toks[i].text, toks[i + 4].text, &f, toks[i].pos});
        break;
      }
    }
  }
}

Facts CollectFacts(const std::vector<File>& files) {
  Facts facts;
  for (const File& f : files) {
    CollectUnorderedNames(f, &facts);
    CollectDocDefs(f, &facts);
    CollectWalGrammar(f, &facts);
    CollectTableDefs(f, &facts);
  }
  return facts;
}

// ---------------------------------------------------------------------------
// R6: versioning discipline on xml::Document mutators.
// ---------------------------------------------------------------------------

void CheckVersioningDiscipline(const Facts& facts,
                               std::vector<Finding>* findings) {
  // Fixpoint: a member "records" when it calls RecordVersion/NewNode
  // directly or calls a member already known to record. RecordVersion and
  // NewNode themselves are the recording primitives.
  std::set<std::string> recording = {"RecordVersion", "NewNode"};
  for (const Facts::DocDef& d : facts.doc_defs) {
    if (d.records_direct) recording.insert(d.name);
  }
  bool grew = true;
  while (grew) {
    grew = false;
    for (const Facts::DocDef& d : facts.doc_defs) {
      if (recording.count(d.name) > 0) continue;
      for (const std::string& callee : d.calls) {
        if (recording.count(callee) > 0) {
          recording.insert(d.name);
          grew = true;
          break;
        }
      }
    }
  }
  for (const Facts::DocDef& d : facts.doc_defs) {
    if (!d.mutates || recording.count(d.name) > 0) continue;
    Report(findings, *d.file, "R6", d.name_pos,
           "xml::Document::" + d.name + " mutates node state (calls " +
               d.mutate_marker +
               ") but records no version chain entry — call "
               "RecordVersion/NewNode (directly or via a recording member) "
               "or MVCC snapshots will miss the mutation");
  }
}

// ---------------------------------------------------------------------------
// R7: determinism — no wall clocks, no unseeded randomness, no hash-order
// iteration. Seeded interleavings are the differential oracle for the
// parallel runtime; anything nondeterministic on a protocol, serialization,
// or WAL path silently breaks replay.
// ---------------------------------------------------------------------------

void CheckDeterminism(const std::vector<File>& files, const Facts& facts,
                      std::vector<Finding>* findings) {
  static const std::map<std::string, std::string> kBannedClocks = {
      {"system_clock", "wall-clock time"},
      {"steady_clock", "wall-clock time"},
      {"high_resolution_clock", "wall-clock time"},
      {"gettimeofday", "wall-clock time"},
      {"clock_gettime", "wall-clock time"},
      {"getpid", "process-id nondeterminism"},
  };
  static const std::map<std::string, std::string> kBannedRandom = {
      {"random_device", "unseeded randomness"},
      {"srand", "global-state randomness"},
      {"rand_r", "unseeded randomness"},
      {"drand48", "global-state randomness"},
      {"lrand48", "global-state randomness"},
      {"mrand48", "global-state randomness"},
  };
  for (const File& f : files) {
    const std::vector<Token>& toks = f.toks;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      const std::string& t = toks[i].text;
      if (auto it = kBannedClocks.find(t); it != kBannedClocks.end()) {
        Report(findings, f, "R7", toks[i].pos,
               "`" + t + "` is " + it->second +
                   ": protocol, serialization, and WAL paths must use "
                   "simulator time (overlay ticks) so seeded runs replay "
                   "byte-identically");
        continue;
      }
      if (auto it = kBannedRandom.find(t); it != kBannedRandom.end()) {
        Report(findings, f, "R7", toks[i].pos,
               "`" + t + "` is " + it->second +
                   ": use the seeded axmlx::Rng (common/rng.h) so runs "
                   "replay under the same seed");
        continue;
      }
      // Bare `rand(` — but not a member spelled `.rand(`.
      if (t == "rand" && TokIs(toks, i + 1, "(") &&
          (i == 0 ||
           (toks[i - 1].text != "." && toks[i - 1].text != "->"))) {
        Report(findings, f, "R7", toks[i].pos,
               "`rand()` is global-state randomness: use the seeded "
               "axmlx::Rng (common/rng.h) so runs replay under the same "
               "seed");
        continue;
      }
      // `name.begin(` / `name->begin(` on an unordered container.
      if ((t == "begin" || t == "cbegin") && TokIs(toks, i + 1, "(") &&
          i >= 2 &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
          toks[i - 2].kind == Token::Kind::kIdent &&
          facts.unordered_names.count(toks[i - 2].text) > 0) {
        Report(findings, f, "R7", toks[i - 2].pos,
               "iterating unordered container `" + toks[i - 2].text +
                   "` is hash-order nondeterministic; sort first, or mark "
                   "an order-insensitive fold with lint:allow(R7)");
        continue;
      }
      // Range-for whose range expression ends in an unordered name:
      // `for (auto& [k, v] : history_)`, `for (auto& x : doc.members_)`.
      if (t == "for" && TokIs(toks, i + 1, "(")) {
        const size_t close = MatchForward(toks, i + 1);
        size_t colon = 0;
        int depth = 1;
        for (size_t j = i + 2; j < close; ++j) {
          if (toks[j].text == "(") ++depth;
          if (toks[j].text == ")") --depth;
          if (depth == 1 && toks[j].text == ";") break;  // classic for
          if (depth == 1 && toks[j].text == ":") {
            colon = j;
            break;
          }
        }
        if (colon == 0) continue;
        size_t last_ident = 0;
        bool have_last = false;
        for (size_t j = colon + 1; j < close; ++j) {
          if (toks[j].kind == Token::Kind::kIdent) {
            last_ident = j;
            have_last = true;
          }
        }
        if (have_last &&
            facts.unordered_names.count(toks[last_ident].text) > 0) {
          Report(findings, f, "R7", toks[last_ident].pos,
                 "iterating unordered container `" + toks[last_ident].text +
                     "` is hash-order nondeterministic; sort first, or mark "
                     "an order-insensitive fold with lint:allow(R7)");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R8: WAL grammar completeness — writer and replayer checked against each
// other (the TxFS lesson: journal grammars rot one-sidedly).
// ---------------------------------------------------------------------------

void CheckWalGrammar(const Facts& facts, std::vector<Finding>* findings) {
  // Only meaningful when both halves are in the file set; a fixture (or a
  // partial tree) with writers but no ReplayWal body is not lintable.
  if (facts.wal_written.empty() || !facts.wal_replayer_found) return;
  for (const auto& [tag, site] : facts.wal_written) {
    if (facts.wal_replayed.count(tag) == 0) {
      Report(findings, *site.file, "R8", site.pos,
             "WAL record tag \"" + tag +
                 "\" is appended but ReplayWal has no `kind == \"" + tag +
                 "\"` arm; recovery would reject the log as an unknown "
                 "record");
    }
  }
  for (const auto& [tag, site] : facts.wal_replayed) {
    if (facts.wal_written.count(tag) == 0) {
      Report(findings, *site.file, "R8", site.pos,
             "ReplayWal parses WAL tag \"" + tag +
                 "\" that no AppendWal call writes; a dead grammar arm "
                 "usually hides a renamed writer");
    }
  }
}

// ---------------------------------------------------------------------------
// R9: thread-safety annotations on shared mutable state. Only the layers
// the worker-pool runtime will share across threads are in scope.
// ---------------------------------------------------------------------------

bool IsMutexTypeName(const std::string& t) {
  return t == "mutex" || t == "shared_mutex" || t == "recursive_mutex" ||
         t == "timed_mutex" || t == "recursive_timed_mutex";
}

/// Name of the class/struct whose body opens at token `open`, or "type".
std::string TypeNameAt(const std::vector<Token>& toks, size_t open) {
  size_t k = open;
  for (size_t back = 0; k > 0 && back < 64; ++back) {
    --k;
    const std::string& t = toks[k].text;
    if (t == "class" || t == "struct" || t == "union") {
      for (size_t m = k + 1; m < open; ++m) {
        if (toks[m].kind == Token::Kind::kIdent &&
            toks[m].text != "nodiscard" &&
            !(m + 1 < open && toks[m + 1].text == "(")) {
          return toks[m].text;
        }
      }
      break;
    }
    if (t == ";" || t == "}" || t == "{") break;
  }
  return "type";
}

/// Lints one type body [open, end] for R9: if a mutex member is declared,
/// every other mutable data member at the same depth must carry
/// AXMLX_GUARDED_BY / AXMLX_PT_GUARDED_BY.
void CheckTypeBodyAnnotations(const File& f, size_t open, size_t end,
                              std::vector<Finding>* findings) {
  const std::vector<Token>& toks = f.toks;
  // Segment the body into depth-1 member statements, skipping function
  // bodies (a `{...}` not followed by `;`) and access specifiers.
  std::vector<std::pair<size_t, size_t>> stmts;
  size_t j = open + 1;
  size_t start = j;
  while (j < end) {
    const std::string& t = toks[j].text;
    if (t == "(") {
      j = MatchForward(toks, j) + 1;
      continue;
    }
    if (t == "{") {
      const size_t m = MatchForward(toks, j);
      if (m + 1 < end && toks[m + 1].text == ";") {
        j = m + 1;  // brace initializer: `int x{0};` — the `;` ends it
        continue;
      }
      j = m + 1;  // function/nested-type body ends the statement
      start = j;
      continue;
    }
    if (t == ";") {
      if (j > start) stmts.push_back({start, j});
      ++j;
      start = j;
      continue;
    }
    if ((t == "public" || t == "private" || t == "protected") &&
        TokIs(toks, j + 1, ":")) {
      j += 2;
      start = j;
      continue;
    }
    ++j;
  }

  static const std::set<std::string> kNonMemberKeywords = {
      "static", "constexpr", "using",    "typedef", "friend",
      "enum",   "class",     "struct",   "union",   "operator",
      "template"};

  bool has_mutex = false;
  std::vector<std::pair<size_t, size_t>> candidates;
  for (const auto& [s, e] : stmts) {
    bool annotated = false;
    bool skip = false;
    bool is_mutex = false;
    bool has_paren = false;
    for (size_t m = s; m < e; ++m) {
      const std::string& t = toks[m].text;
      if (t == "AXMLX_GUARDED_BY" || t == "AXMLX_PT_GUARDED_BY") {
        annotated = true;
      }
      if (toks[m].kind == Token::Kind::kIdent &&
          (kNonMemberKeywords.count(t) > 0 || t == "atomic" ||
           t == "const")) {
        skip = true;
      }
      if (t == "const") skip = true;
      if (toks[m].kind == Token::Kind::kIdent && IsMutexTypeName(t)) {
        is_mutex = true;
      }
      if (t == "(" && !annotated) has_paren = true;
    }
    if (is_mutex) {
      has_mutex = true;
      continue;
    }
    if (annotated || skip || has_paren) continue;
    candidates.push_back({s, e});
  }
  if (!has_mutex || candidates.empty()) return;

  const std::string cname = TypeNameAt(toks, open);
  for (const auto& [s, e] : candidates) {
    // Declared name: last identifier before the initializer (if any).
    size_t name_tok = 0;
    bool have_name = false;
    for (size_t m = s; m < e; ++m) {
      const std::string& t = toks[m].text;
      if (t == "=" || t == "{" || t == "[") break;
      if (toks[m].kind == Token::Kind::kIdent) {
        name_tok = m;
        have_name = true;
      }
    }
    if (!have_name) continue;
    Report(findings, f, "R9", toks[name_tok].pos,
           "member `" + toks[name_tok].text + "` of " + cname +
               " shares the class with a mutex but carries no "
               "AXMLX_GUARDED_BY(...) annotation "
               "(common/thread_annotations.h); the worker-pool runtime "
               "cannot prove its lock discipline");
  }
}

void CheckThreadAnnotations(const std::vector<File>& files,
                            std::vector<Finding>* findings) {
  for (const File& f : files) {
    if (!StartsWith(f.src->path, "obs/") &&
        !StartsWith(f.src->path, "storage/") &&
        !StartsWith(f.src->path, "compensation/") &&
        !StartsWith(f.src->path, "runtime/")) {
      continue;
    }
    const std::vector<Token>& toks = f.toks;
    std::vector<Scope> stack;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].text == "{") {
        Scope s = ClassifyBrace(toks, i, stack);
        if (s.kind == Scope::Kind::kType) {
          CheckTypeBodyAnnotations(f, i, MatchForward(toks, i), findings);
        }
        stack.push_back(s);
      } else if (toks[i].text == "}") {
        if (!stack.empty()) stack.pop_back();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R10: name-registry consistency — registry constants live in exactly one
// home table, values are unique within a family, and metric-name literals
// at Get{Counter,Gauge,Histogram} sites are declared in the kMetric* table.
// ---------------------------------------------------------------------------

const std::map<std::string, std::string>& RegistryHomes() {
  static const std::map<std::string, std::string> kHomes = {
      {"kEv", "common/trace.h"},
      {"kEvFr", "obs/flight_recorder.h"},
      {"kSpan", "obs/span.h"},
      {"kMetric", "obs/metric_names.h"},
      {"kPhase", "obs/timeline.h"},
  };
  return kHomes;
}

void CheckNameRegistry(const std::vector<File>& files, const Facts& facts,
                       std::vector<Finding>* findings) {
  std::map<std::string, std::string> first_def_of_name;   // name -> file
  std::map<std::string, std::string> first_name_of_value; // fam\0value -> name
  std::set<std::string> metric_values;
  bool have_metric_table = false;

  for (const Facts::TableDef& d : facts.table_defs) {
    const std::string& home = RegistryHomes().at(d.family);
    if (!EndsWith(d.file->src->path, home)) {
      Report(findings, *d.file, "R10", d.pos,
             d.name + " (family " + d.family +
                 "*) is defined outside its home table " + home +
                 "; registry constants live in exactly one table");
    } else if (d.family == "kMetric") {
      have_metric_table = true;
      metric_values.insert(d.value);
    }
    if (auto [it, inserted] =
            first_def_of_name.emplace(d.name, d.file->src->path);
        !inserted) {
      Report(findings, *d.file, "R10", d.pos,
             d.name + " is defined more than once (first in " + it->second +
                 "); a registry constant has exactly one definition");
    }
    const std::string value_key = d.family + '\0' + d.value;
    if (auto [it, inserted] = first_name_of_value.emplace(value_key, d.name);
        !inserted && it->second != d.name) {
      Report(findings, *d.file, "R10", d.pos,
             d.name + " reuses registry value \"" + d.value +
                 "\" already named by " + it->second +
                 "; two constants for one string silently split a series");
    }
  }

  if (!have_metric_table) return;
  for (const File& f : files) {
    const std::vector<Token>& toks = f.toks;
    for (size_t i = 1; i + 2 < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      const std::string& t = toks[i].text;
      if (t != "GetCounter" && t != "GetGauge" && t != "GetHistogram") {
        continue;
      }
      if (toks[i - 1].text != "." && toks[i - 1].text != "->") continue;
      if (!TokIs(toks, i + 1, "(") ||
          toks[i + 2].kind != Token::Kind::kString) {
        continue;
      }
      if (metric_values.count(toks[i + 2].text) == 0) {
        Report(findings, f, "R10", toks[i + 2].pos,
               "metric name \"" + toks[i + 2].text +
                   "\" is not declared in the kMetric* table "
                   "(obs/metric_names.h); AxmlStats and axmlx_report "
                   "aggregate by these strings");
      }
    }
    // Any txn.latency.* / runtime.* / job.* literal — even away from a
    // Get* site (report filters, bench extractors) — must name a registered
    // series: the phase accounting, the worker-pool gauges/histograms,
    // AxmlStats, and axmlx_report tables all join on them.
    for (const Token& tok : f.toks) {
      if (tok.kind != Token::Kind::kString) continue;
      const bool latency_family = StartsWith(tok.text, "txn.latency.");
      const bool runtime_family =
          StartsWith(tok.text, "runtime.") || StartsWith(tok.text, "job.");
      if (!latency_family && !runtime_family) continue;
      if (metric_values.count(tok.text) != 0) continue;
      Report(findings, f, "R10", tok.pos,
             latency_family
                 ? "latency series \"" + tok.text +
                       "\" is not declared in the kMetric* table "
                       "(obs/metric_names.h); every txn.latency.* name is "
                       "registered so phase histograms stay joinable"
                 : "worker-pool series \"" + tok.text +
                       "\" is not declared in the kMetric* table "
                       "(obs/metric_names.h); every runtime.* / job.* name "
                       "is registered so pool metrics stay joinable");
    }
  }
}

}  // namespace

std::vector<Finding> RunLint(const std::vector<SourceFile>& files) {
  std::vector<File> prepared;
  prepared.reserve(files.size());
  for (const SourceFile& src : files) {
    prepared.push_back({&src, Tokenize(src.content)});
  }
  const Facts facts = CollectFacts(prepared);
  std::vector<Finding> findings;
  CheckMessageDispatch(prepared, &findings);
  CheckNodiscard(prepared, &findings);
  CheckNameTables(prepared, &findings);
  CheckHeaderHygiene(prepared, &findings);
  CheckAsserts(prepared, &findings);
  CheckVersioningDiscipline(facts, &findings);
  CheckDeterminism(prepared, facts, &findings);
  CheckWalGrammar(facts, &findings);
  CheckThreadAnnotations(prepared, &findings);
  CheckNameRegistry(prepared, facts, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              // Numeric rule order, so R10 sorts after R9, not after R1.
              const auto rank = [](const std::string& r) {
                return r.size() > 1 ? std::atoi(r.c_str() + 1) : 0;
              };
              if (rank(a.rule) != rank(b.rule)) {
                return rank(a.rule) < rank(b.rule);
              }
              if (a.rule != b.rule) return a.rule < b.rule;
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  return findings;
}

std::string FormatFindings(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  }
  return os.str();
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 passes through verbatim
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatFindingsJson(const std::vector<Finding>& findings) {
  if (findings.empty()) return "[]\n";
  std::ostringstream os;
  os << "[\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "  {\"rule\": \"" << JsonEscape(f.rule) << "\", \"file\": \""
       << JsonEscape(f.file) << "\", \"line\": " << f.line
       << ", \"message\": \"" << JsonEscape(f.message) << "\"}"
       << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "]\n";
  return os.str();
}

bool LoadTree(const std::string& root, std::vector<SourceFile>* files,
              std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    if (error != nullptr) *error = "not a directory: " + root;
    return false;
  }
  std::vector<fs::path> paths;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       !ec && it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc") paths.push_back(it->path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      if (error != nullptr) *error = "cannot read " + p.string();
      return false;
    }
    std::ostringstream content;
    content << in.rdbuf();
    files->push_back({fs::relative(p, root).generic_string(),
                      content.str()});
  }
  return true;
}

}  // namespace axmlx::lint
