#include "axmlx_report/report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json.h"

namespace axmlx::report {

namespace {

std::string GetString(const obs::JsonValue& obj, const std::string& key) {
  const obs::JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_string() ? v->str : std::string();
}

int64_t GetInt(const obs::JsonValue& obj, const std::string& key,
               int64_t fallback) {
  const obs::JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->AsInt() : fallback;
}

}  // namespace

bool ParseSpans(const std::string& jsonl, std::vector<SpanRow>* out,
                std::string* error) {
  std::istringstream in(jsonl);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string parse_error;
    auto doc = obs::ParseJson(line, &parse_error);
    if (!doc.has_value() || !doc->is_object()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " +
                 (parse_error.empty() ? "not a JSON object" : parse_error);
      }
      return false;
    }
    SpanRow row;
    row.txn = GetString(*doc, "txn");
    row.span_id = static_cast<uint64_t>(GetInt(*doc, "span", 0));
    row.parent_span_id = static_cast<uint64_t>(GetInt(*doc, "parent", 0));
    row.peer = GetString(*doc, "peer");
    row.kind = GetString(*doc, "kind");
    row.detail = GetString(*doc, "detail");
    row.start = GetInt(*doc, "start", 0);
    row.end = GetInt(*doc, "end", -1);
    row.outcome = GetString(*doc, "outcome");
    row.fault = GetString(*doc, "fault");
    if (row.span_id == 0) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": missing span id";
      }
      return false;
    }
    out->push_back(std::move(row));
  }
  return true;
}

namespace {

void RenderLine(std::ostringstream* os, const SpanRow& s, int depth) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  *os << s.kind;
  if (!s.detail.empty()) *os << " " << s.detail;
  *os << " @" << s.peer << " [" << s.start << "..";
  if (s.end >= 0) {
    *os << s.end;
  } else {
    *os << "?";
  }
  *os << "] " << (s.outcome.empty() ? "OPEN" : s.outcome);
  if (!s.fault.empty()) *os << " fault=" << s.fault;
  *os << "\n";
}

void RenderTree(std::ostringstream* os,
                const std::map<uint64_t, std::vector<const SpanRow*>>& kids,
                const SpanRow& node, int depth) {
  RenderLine(os, node, depth);
  auto it = kids.find(node.span_id);
  if (it == kids.end()) return;
  for (const SpanRow* child : it->second) {
    RenderTree(os, kids, *child, depth + 1);
  }
}

/// The abort propagation path: the failure origin is the earliest-closing
/// aborted SERVICE span (its ancestors close later, as the abort travels up);
/// walking its parent chain retraces the paper's "Abort TA" cascade back to
/// the origin peer.
void RenderAbortPath(std::ostringstream* os,
                     const std::map<uint64_t, const SpanRow*>& by_id,
                     const std::vector<const SpanRow*>& txn_spans) {
  const SpanRow* origin_of_failure = nullptr;
  for (const SpanRow* s : txn_spans) {
    if (s->kind != "SERVICE" || s->outcome != "ABORTED" || s->end < 0) {
      continue;
    }
    if (origin_of_failure == nullptr || s->end < origin_of_failure->end ||
        (s->end == origin_of_failure->end &&
         s->span_id > origin_of_failure->span_id)) {
      origin_of_failure = s;
    }
  }
  if (origin_of_failure == nullptr) return;
  std::vector<const SpanRow*> path;
  const SpanRow* cur = origin_of_failure;
  while (cur != nullptr) {
    if (cur->kind == "SERVICE") path.push_back(cur);
    auto it = by_id.find(cur->parent_span_id);
    cur = it == by_id.end() ? nullptr : it->second;
  }
  *os << "abort path: ";
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) *os << " -> ";
    *os << path[i]->peer << "(" << path[i]->detail << ")";
  }
  if (!origin_of_failure->fault.empty()) {
    *os << "  [" << origin_of_failure->fault << "]";
  }
  *os << "\n";
}

}  // namespace

std::string RenderSpanReport(const std::vector<SpanRow>& spans) {
  std::ostringstream os;
  std::vector<std::string> txn_order;
  std::map<std::string, std::vector<const SpanRow*>> by_txn;
  for (const SpanRow& s : spans) {
    auto [it, inserted] = by_txn.try_emplace(s.txn);
    if (inserted) txn_order.push_back(s.txn);
    it->second.push_back(&s);
  }
  for (const std::string& txn : txn_order) {
    const std::vector<const SpanRow*>& txn_spans = by_txn[txn];
    os << "=== txn " << txn << "\n";
    std::map<uint64_t, const SpanRow*> by_id;
    for (const SpanRow* s : txn_spans) by_id[s->span_id] = s;
    std::map<uint64_t, std::vector<const SpanRow*>> kids;
    std::vector<const SpanRow*> roots;
    for (const SpanRow* s : txn_spans) {
      if (s->parent_span_id != 0 && by_id.count(s->parent_span_id) > 0) {
        kids[s->parent_span_id].push_back(s);
      } else {
        roots.push_back(s);
      }
    }
    auto by_start = [](const SpanRow* a, const SpanRow* b) {
      if (a->start != b->start) return a->start < b->start;
      return a->span_id < b->span_id;
    };
    for (auto& [parent, children] : kids) {
      std::sort(children.begin(), children.end(), by_start);
    }
    std::sort(roots.begin(), roots.end(), by_start);
    for (const SpanRow* root : roots) RenderTree(&os, kids, *root, 1);
    RenderAbortPath(&os, by_id, txn_spans);
  }

  std::map<std::string, int> by_kind;
  std::map<std::string, int> by_outcome;
  std::map<std::string, int> by_peer;
  for (const SpanRow& s : spans) {
    ++by_kind[s.kind];
    ++by_outcome[s.outcome.empty() ? "OPEN" : s.outcome];
    ++by_peer[s.peer];
  }
  os << "=== rollups\n";
  os << "by kind:";
  for (const auto& [k, n] : by_kind) os << " " << k << "=" << n;
  os << "\nby outcome:";
  for (const auto& [k, n] : by_outcome) os << " " << k << "=" << n;
  os << "\nby peer:";
  for (const auto& [k, n] : by_peer) os << " " << k << "=" << n;
  os << "\n";
  return os.str();
}

std::string RenderForensics(const std::string& json_text, std::string* out) {
  std::string parse_error;
  auto doc = obs::ParseJson(json_text, &parse_error);
  if (!doc.has_value()) return "invalid JSON: " + parse_error;
  if (!doc->is_object()) return "top level is not an object";
  if (GetString(*doc, "schema") != "axmlx-forensics-v1") {
    return "schema must be \"axmlx-forensics-v1\"";
  }
  const obs::JsonValue* events = doc->Find("events");
  if (events == nullptr || !events->is_array()) {
    return "missing array \"events\"";
  }
  const obs::JsonValue* spans_json = doc->Find("spans");
  if (spans_json == nullptr || !spans_json->is_array()) {
    return "missing array \"spans\"";
  }

  std::ostringstream os;
  os << "=== black box: " << GetString(*doc, "reason");
  const std::string focal_peer = GetString(*doc, "peer");
  const std::string focal_txn = GetString(*doc, "txn");
  if (!focal_peer.empty()) os << " peer=" << focal_peer;
  if (!focal_txn.empty()) os << " txn=" << focal_txn;
  os << " at t=" << GetInt(*doc, "time", -1) << "\n";
  const obs::JsonValue* peers = doc->Find("peers");
  if (peers != nullptr && peers->is_array()) {
    os << "involved:";
    for (const obs::JsonValue& p : peers->items) {
      if (p.is_string()) os << " " << p.str;
    }
    os << "\n";
  }

  // The merged timeline. Columns are sized to the dump so short peer names
  // do not waste width and long ones stay aligned.
  auto pad = [](std::string s, size_t w) {
    while (s.size() < w) s.push_back(' ');
    return s;
  };
  size_t peer_w = 4;
  size_t kind_w = 4;
  for (const obs::JsonValue& e : events->items) {
    if (!e.is_object()) return "event is not an object";
    peer_w = std::max(peer_w, GetString(e, "peer").size());
    kind_w = std::max(kind_w, GetString(e, "kind").size());
  }
  os << "=== timeline (" << events->items.size() << " events, last "
     << GetInt(*doc, "last_n", 0) << " per peer)\n";
  for (const obs::JsonValue& e : events->items) {
    os << "  t=" << pad(std::to_string(GetInt(e, "time", 0)), 6) << " "
       << pad(GetString(e, "peer"), peer_w) << " "
       << pad(GetString(e, "kind"), kind_w);
    const std::string what = GetString(e, "what");
    if (!what.empty()) os << " " << what;
    const int64_t span = GetInt(e, "span", 0);
    if (span != 0) os << "  span=" << span;
    const int64_t arg = GetInt(e, "arg", 0);
    if (arg != 0) os << " arg=" << arg;
    os << "\n";
  }

  // Span context: the dump's spans are the same objects ToJsonl emits, so
  // they render with the regular tree machinery.
  std::vector<SpanRow> rows;
  for (const obs::JsonValue& s : spans_json->items) {
    if (!s.is_object()) return "span is not an object";
    SpanRow row;
    row.txn = GetString(s, "txn");
    row.span_id = static_cast<uint64_t>(GetInt(s, "span", 0));
    row.parent_span_id = static_cast<uint64_t>(GetInt(s, "parent", 0));
    row.peer = GetString(s, "peer");
    row.kind = GetString(s, "kind");
    row.detail = GetString(s, "detail");
    row.start = GetInt(s, "start", 0);
    row.end = GetInt(s, "end", -1);
    row.outcome = GetString(s, "outcome");
    row.fault = GetString(s, "fault");
    if (row.span_id == 0) return "span missing span id";
    rows.push_back(std::move(row));
  }
  if (!rows.empty()) {
    os << "=== span context\n" << RenderSpanReport(rows);
  }
  *out += os.str();
  return std::string();
}

namespace {

std::string CheckHistogram(const std::string& name,
                           const obs::JsonValue& hist) {
  if (!hist.is_object()) return "histogram " + name + " is not an object";
  const obs::JsonValue* bounds = hist.Find("bounds");
  const obs::JsonValue* counts = hist.Find("counts");
  if (bounds == nullptr || !bounds->is_array()) {
    return "histogram " + name + " missing bounds array";
  }
  if (counts == nullptr || !counts->is_array()) {
    return "histogram " + name + " missing counts array";
  }
  if (counts->items.size() != bounds->items.size() + 1) {
    return "histogram " + name + " counts size must be bounds size + 1";
  }
  int64_t total = 0;
  for (const obs::JsonValue& c : counts->items) {
    if (!c.is_number()) return "histogram " + name + " has non-number count";
    total += c.AsInt();
  }
  for (const char* field : {"count", "sum", "min", "max", "p50", "p95"}) {
    const obs::JsonValue* v = hist.Find(field);
    if (v == nullptr || !v->is_number()) {
      return "histogram " + name + " missing number field " + field;
    }
  }
  if (total != hist.Find("count")->AsInt()) {
    return "histogram " + name + " bucket counts do not sum to count";
  }
  return std::string();
}

}  // namespace

std::string CheckBenchJson(const std::string& json_text) {
  std::string parse_error;
  auto doc = obs::ParseJson(json_text, &parse_error);
  if (!doc.has_value()) return "invalid JSON: " + parse_error;
  if (!doc->is_object()) return "top level is not an object";
  if (GetString(*doc, "schema") != "axmlx-bench-v1") {
    return "schema must be \"axmlx-bench-v1\"";
  }
  if (GetString(*doc, "bench").empty()) {
    return "missing non-empty \"bench\" name";
  }
  const obs::JsonValue* smoke = doc->Find("smoke");
  if (smoke == nullptr || !smoke->is_bool()) {
    return "missing boolean \"smoke\"";
  }
  const obs::JsonValue* ops = doc->Find("ops_per_sec");
  if (ops == nullptr || !ops->is_number() || ops->number < 0) {
    return "missing non-negative number \"ops_per_sec\"";
  }
  const obs::JsonValue* counters = doc->Find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return "missing object \"counters\"";
  }
  for (const auto& [name, value] : counters->members) {
    if (!value.is_number()) return "counter " + name + " is not a number";
  }
  const obs::JsonValue* histograms = doc->Find("histograms");
  if (histograms == nullptr || !histograms->is_object()) {
    return "missing object \"histograms\"";
  }
  for (const auto& [name, hist] : histograms->members) {
    std::string problem = CheckHistogram(name, hist);
    if (!problem.empty()) return problem;
  }
  return std::string();
}

namespace {

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

/// "+12.3%" / "-4.0%" / "n/a" when the old value is zero.
std::string FmtDeltaPct(double old_value, double new_value) {
  if (old_value == 0) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%",
                (new_value - old_value) / old_value * 100.0);
  return buf;
}

}  // namespace

std::string DiffBenchJson(const std::string& old_json,
                          const std::string& new_json, double regress_pct,
                          std::string* out, bool* regressed) {
  *regressed = false;
  std::string problem = CheckBenchJson(old_json);
  if (!problem.empty()) return "old report: " + problem;
  problem = CheckBenchJson(new_json);
  if (!problem.empty()) return "new report: " + problem;
  std::string parse_error;
  auto old_doc = obs::ParseJson(old_json, &parse_error);
  auto new_doc = obs::ParseJson(new_json, &parse_error);

  std::ostringstream os;
  const std::string old_name = GetString(*old_doc, "bench");
  const std::string new_name = GetString(*new_doc, "bench");
  os << "bench " << new_name;
  if (old_name != new_name) {
    os << " (WARNING: comparing against bench " << old_name << ")";
  }
  os << "\n";

  const double old_ops = old_doc->Find("ops_per_sec")->number;
  const double new_ops = new_doc->Find("ops_per_sec")->number;
  os << "  ops/sec: " << FmtDouble(old_ops) << " -> " << FmtDouble(new_ops)
     << " (" << FmtDeltaPct(old_ops, new_ops) << ")\n";

  const obs::JsonValue* old_hists = old_doc->Find("histograms");
  const obs::JsonValue* new_hists = new_doc->Find("histograms");
  for (const auto& [name, new_hist] : new_hists->members) {
    const obs::JsonValue* old_hist = old_hists->Find(name);
    if (old_hist == nullptr) {
      os << "  " << name << ": (new histogram, no old data)\n";
      continue;
    }
    const int64_t old_p50 = GetInt(*old_hist, "p50", 0);
    const int64_t new_p50 = GetInt(new_hist, "p50", 0);
    const int64_t old_p95 = GetInt(*old_hist, "p95", 0);
    const int64_t new_p95 = GetInt(new_hist, "p95", 0);
    os << "  " << name << ": p50 " << old_p50 << " -> " << new_p50 << " ("
       << FmtDeltaPct(static_cast<double>(old_p50),
                      static_cast<double>(new_p50))
       << "), p95 " << old_p95 << " -> " << new_p95 << " ("
       << FmtDeltaPct(static_cast<double>(old_p95),
                      static_cast<double>(new_p95))
       << ")\n";
  }
  for (const auto& [name, old_hist] : old_hists->members) {
    (void)old_hist;
    if (new_hists->Find(name) == nullptr) {
      os << "  " << name << ": (histogram dropped in new report)\n";
    }
  }

  if (regress_pct >= 0 && old_ops > 0 &&
      new_ops < old_ops * (1.0 - regress_pct / 100.0)) {
    *regressed = true;
    os << "  REGRESSION: ops/sec dropped more than " << FmtDouble(regress_pct)
       << "% vs the old report\n";
  }
  *out = os.str();
  return std::string();
}

}  // namespace axmlx::report
