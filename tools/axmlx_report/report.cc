#include "axmlx_report/report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "obs/json.h"
#include "obs/timeline.h"

namespace axmlx::report {

namespace {

std::string GetString(const obs::JsonValue& obj, const std::string& key) {
  const obs::JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_string() ? v->str : std::string();
}

int64_t GetInt(const obs::JsonValue& obj, const std::string& key,
               int64_t fallback) {
  const obs::JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->AsInt() : fallback;
}

}  // namespace

bool ParseSpans(const std::string& jsonl, std::vector<SpanRow>* out,
                std::string* error) {
  std::istringstream in(jsonl);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string parse_error;
    auto doc = obs::ParseJson(line, &parse_error);
    if (!doc.has_value() || !doc->is_object()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " +
                 (parse_error.empty() ? "not a JSON object" : parse_error);
      }
      return false;
    }
    SpanRow row;
    row.txn = GetString(*doc, "txn");
    row.span_id = static_cast<uint64_t>(GetInt(*doc, "span", 0));
    row.parent_span_id = static_cast<uint64_t>(GetInt(*doc, "parent", 0));
    row.peer = GetString(*doc, "peer");
    row.kind = GetString(*doc, "kind");
    row.detail = GetString(*doc, "detail");
    row.start = GetInt(*doc, "start", 0);
    row.end = GetInt(*doc, "end", -1);
    row.outcome = GetString(*doc, "outcome");
    row.fault = GetString(*doc, "fault");
    if (row.span_id == 0) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": missing span id";
      }
      return false;
    }
    out->push_back(std::move(row));
  }
  return true;
}

namespace {

void RenderLine(std::ostringstream* os, const SpanRow& s, int depth) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  *os << s.kind;
  if (!s.detail.empty()) *os << " " << s.detail;
  *os << " @" << s.peer << " [" << s.start << "..";
  if (s.end >= 0) {
    *os << s.end;
  } else {
    *os << "?";
  }
  *os << "] " << (s.outcome.empty() ? "OPEN" : s.outcome);
  if (!s.fault.empty()) *os << " fault=" << s.fault;
  *os << "\n";
}

void RenderTree(std::ostringstream* os,
                const std::map<uint64_t, std::vector<const SpanRow*>>& kids,
                const SpanRow& node, int depth) {
  RenderLine(os, node, depth);
  auto it = kids.find(node.span_id);
  if (it == kids.end()) return;
  for (const SpanRow* child : it->second) {
    RenderTree(os, kids, *child, depth + 1);
  }
}

/// The abort propagation path: the failure origin is the earliest-closing
/// aborted SERVICE span (its ancestors close later, as the abort travels up);
/// walking its parent chain retraces the paper's "Abort TA" cascade back to
/// the origin peer.
void RenderAbortPath(std::ostringstream* os,
                     const std::map<uint64_t, const SpanRow*>& by_id,
                     const std::vector<const SpanRow*>& txn_spans) {
  const SpanRow* origin_of_failure = nullptr;
  for (const SpanRow* s : txn_spans) {
    if (s->kind != "SERVICE" || s->outcome != "ABORTED" || s->end < 0) {
      continue;
    }
    if (origin_of_failure == nullptr || s->end < origin_of_failure->end ||
        (s->end == origin_of_failure->end &&
         s->span_id > origin_of_failure->span_id)) {
      origin_of_failure = s;
    }
  }
  if (origin_of_failure == nullptr) return;
  std::vector<const SpanRow*> path;
  const SpanRow* cur = origin_of_failure;
  while (cur != nullptr) {
    if (cur->kind == "SERVICE") path.push_back(cur);
    auto it = by_id.find(cur->parent_span_id);
    cur = it == by_id.end() ? nullptr : it->second;
  }
  *os << "abort path: ";
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) *os << " -> ";
    *os << path[i]->peer << "(" << path[i]->detail << ")";
  }
  if (!origin_of_failure->fault.empty()) {
    *os << "  [" << origin_of_failure->fault << "]";
  }
  *os << "\n";
}

}  // namespace

std::string RenderSpanReport(const std::vector<SpanRow>& spans) {
  std::ostringstream os;
  std::vector<std::string> txn_order;
  std::map<std::string, std::vector<const SpanRow*>> by_txn;
  for (const SpanRow& s : spans) {
    auto [it, inserted] = by_txn.try_emplace(s.txn);
    if (inserted) txn_order.push_back(s.txn);
    it->second.push_back(&s);
  }
  for (const std::string& txn : txn_order) {
    const std::vector<const SpanRow*>& txn_spans = by_txn[txn];
    os << "=== txn " << txn << "\n";
    std::map<uint64_t, const SpanRow*> by_id;
    for (const SpanRow* s : txn_spans) by_id[s->span_id] = s;
    std::map<uint64_t, std::vector<const SpanRow*>> kids;
    std::vector<const SpanRow*> roots;
    for (const SpanRow* s : txn_spans) {
      if (s->parent_span_id != 0 && by_id.count(s->parent_span_id) > 0) {
        kids[s->parent_span_id].push_back(s);
      } else {
        roots.push_back(s);
      }
    }
    auto by_start = [](const SpanRow* a, const SpanRow* b) {
      if (a->start != b->start) return a->start < b->start;
      return a->span_id < b->span_id;
    };
    for (auto& [parent, children] : kids) {
      std::sort(children.begin(), children.end(), by_start);
    }
    std::sort(roots.begin(), roots.end(), by_start);
    for (const SpanRow* root : roots) RenderTree(&os, kids, *root, 1);
    RenderAbortPath(&os, by_id, txn_spans);
  }

  std::map<std::string, int> by_kind;
  std::map<std::string, int> by_outcome;
  std::map<std::string, int> by_peer;
  for (const SpanRow& s : spans) {
    ++by_kind[s.kind];
    ++by_outcome[s.outcome.empty() ? "OPEN" : s.outcome];
    ++by_peer[s.peer];
  }
  os << "=== rollups\n";
  os << "by kind:";
  for (const auto& [k, n] : by_kind) os << " " << k << "=" << n;
  os << "\nby outcome:";
  for (const auto& [k, n] : by_outcome) os << " " << k << "=" << n;
  os << "\nby peer:";
  for (const auto& [k, n] : by_peer) os << " " << k << "=" << n;
  os << "\n";
  return os.str();
}

std::string RenderForensics(const std::string& json_text, std::string* out) {
  std::string parse_error;
  auto doc = obs::ParseJson(json_text, &parse_error);
  if (!doc.has_value()) return "invalid JSON: " + parse_error;
  if (!doc->is_object()) return "top level is not an object";
  if (GetString(*doc, "schema") != "axmlx-forensics-v1") {
    return "schema must be \"axmlx-forensics-v1\"";
  }
  const obs::JsonValue* events = doc->Find("events");
  if (events == nullptr || !events->is_array()) {
    return "missing array \"events\"";
  }
  const obs::JsonValue* spans_json = doc->Find("spans");
  if (spans_json == nullptr || !spans_json->is_array()) {
    return "missing array \"spans\"";
  }

  std::ostringstream os;
  os << "=== black box: " << GetString(*doc, "reason");
  const std::string focal_peer = GetString(*doc, "peer");
  const std::string focal_txn = GetString(*doc, "txn");
  if (!focal_peer.empty()) os << " peer=" << focal_peer;
  if (!focal_txn.empty()) os << " txn=" << focal_txn;
  os << " at t=" << GetInt(*doc, "time", -1) << "\n";
  const obs::JsonValue* peers = doc->Find("peers");
  if (peers != nullptr && peers->is_array()) {
    os << "involved:";
    for (const obs::JsonValue& p : peers->items) {
      if (p.is_string()) os << " " << p.str;
    }
    os << "\n";
  }

  // The merged timeline. Columns are sized to the dump so short peer names
  // do not waste width and long ones stay aligned.
  auto pad = [](std::string s, size_t w) {
    while (s.size() < w) s.push_back(' ');
    return s;
  };
  size_t peer_w = 4;
  size_t kind_w = 4;
  for (const obs::JsonValue& e : events->items) {
    if (!e.is_object()) return "event is not an object";
    peer_w = std::max(peer_w, GetString(e, "peer").size());
    kind_w = std::max(kind_w, GetString(e, "kind").size());
  }
  os << "=== timeline (" << events->items.size() << " events, last "
     << GetInt(*doc, "last_n", 0) << " per peer)\n";
  for (const obs::JsonValue& e : events->items) {
    os << "  t=" << pad(std::to_string(GetInt(e, "time", 0)), 6) << " "
       << pad(GetString(e, "peer"), peer_w) << " "
       << pad(GetString(e, "kind"), kind_w);
    const std::string what = GetString(e, "what");
    if (!what.empty()) os << " " << what;
    const int64_t span = GetInt(e, "span", 0);
    if (span != 0) os << "  span=" << span;
    const int64_t arg = GetInt(e, "arg", 0);
    if (arg != 0) os << " arg=" << arg;
    os << "\n";
  }

  // Span context: the dump's spans are the same objects ToJsonl emits, so
  // they render with the regular tree machinery.
  std::vector<SpanRow> rows;
  for (const obs::JsonValue& s : spans_json->items) {
    if (!s.is_object()) return "span is not an object";
    SpanRow row;
    row.txn = GetString(s, "txn");
    row.span_id = static_cast<uint64_t>(GetInt(s, "span", 0));
    row.parent_span_id = static_cast<uint64_t>(GetInt(s, "parent", 0));
    row.peer = GetString(s, "peer");
    row.kind = GetString(s, "kind");
    row.detail = GetString(s, "detail");
    row.start = GetInt(s, "start", 0);
    row.end = GetInt(s, "end", -1);
    row.outcome = GetString(s, "outcome");
    row.fault = GetString(s, "fault");
    if (row.span_id == 0) return "span missing span id";
    rows.push_back(std::move(row));
  }
  if (!rows.empty()) {
    os << "=== span context\n" << RenderSpanReport(rows);
  }
  *out += os.str();
  return std::string();
}

namespace {

std::string CheckHistogram(const std::string& name,
                           const obs::JsonValue& hist) {
  if (!hist.is_object()) return "histogram " + name + " is not an object";
  const obs::JsonValue* bounds = hist.Find("bounds");
  const obs::JsonValue* counts = hist.Find("counts");
  if (bounds == nullptr || !bounds->is_array()) {
    return "histogram " + name + " missing bounds array";
  }
  if (counts == nullptr || !counts->is_array()) {
    return "histogram " + name + " missing counts array";
  }
  if (counts->items.size() != bounds->items.size() + 1) {
    return "histogram " + name + " counts size must be bounds size + 1";
  }
  int64_t total = 0;
  for (const obs::JsonValue& c : counts->items) {
    if (!c.is_number()) return "histogram " + name + " has non-number count";
    total += c.AsInt();
  }
  for (const char* field :
       {"count", "sum", "min", "max", "p50", "p95", "p99"}) {
    const obs::JsonValue* v = hist.Find(field);
    if (v == nullptr || !v->is_number()) {
      return "histogram " + name + " missing number field " + field;
    }
  }
  if (total != hist.Find("count")->AsInt()) {
    return "histogram " + name + " bucket counts do not sum to count";
  }
  return std::string();
}

}  // namespace

std::string CheckBenchJson(const std::string& json_text) {
  std::string parse_error;
  auto doc = obs::ParseJson(json_text, &parse_error);
  if (!doc.has_value()) return "invalid JSON: " + parse_error;
  if (!doc->is_object()) return "top level is not an object";
  if (GetString(*doc, "schema") != "axmlx-bench-v1") {
    return "schema must be \"axmlx-bench-v1\"";
  }
  if (GetString(*doc, "bench").empty()) {
    return "missing non-empty \"bench\" name";
  }
  const obs::JsonValue* smoke = doc->Find("smoke");
  if (smoke == nullptr || !smoke->is_bool()) {
    return "missing boolean \"smoke\"";
  }
  const obs::JsonValue* ops = doc->Find("ops_per_sec");
  if (ops == nullptr || !ops->is_number() || ops->number < 0) {
    return "missing non-negative number \"ops_per_sec\"";
  }
  // Optional per-clock rates (reports written before the wall/sim split
  // omit them); when present they must be well-formed.
  for (const char* field : {"wall_ops_per_sec", "sim_ops_per_sec"}) {
    const obs::JsonValue* rate = doc->Find(field);
    if (rate != nullptr && (!rate->is_number() || rate->number < 0)) {
      return std::string("\"") + field + "\" is not a non-negative number";
    }
  }
  const obs::JsonValue* counters = doc->Find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return "missing object \"counters\"";
  }
  for (const auto& [name, value] : counters->members) {
    if (!value.is_number()) return "counter " + name + " is not a number";
  }
  const obs::JsonValue* histograms = doc->Find("histograms");
  if (histograms == nullptr || !histograms->is_object()) {
    return "missing object \"histograms\"";
  }
  for (const auto& [name, hist] : histograms->members) {
    std::string problem = CheckHistogram(name, hist);
    if (!problem.empty()) return problem;
  }
  return std::string();
}

namespace {

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

/// "+12.3%" / "-4.0%" / "n/a" when the old value is zero.
std::string FmtDeltaPct(double old_value, double new_value) {
  if (old_value == 0) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%",
                (new_value - old_value) / old_value * 100.0);
  return buf;
}

}  // namespace

std::string DiffBenchJson(const std::string& old_json,
                          const std::string& new_json, double regress_pct,
                          std::string* out, bool* regressed) {
  *regressed = false;
  std::string problem = CheckBenchJson(old_json);
  if (!problem.empty()) return "old report: " + problem;
  problem = CheckBenchJson(new_json);
  if (!problem.empty()) return "new report: " + problem;
  std::string parse_error;
  auto old_doc = obs::ParseJson(old_json, &parse_error);
  auto new_doc = obs::ParseJson(new_json, &parse_error);

  std::ostringstream os;
  const std::string old_name = GetString(*old_doc, "bench");
  const std::string new_name = GetString(*new_doc, "bench");
  os << "bench " << new_name;
  if (old_name != new_name) {
    os << " (WARNING: comparing against bench " << old_name << ")";
  }
  os << "\n";

  const double old_ops = old_doc->Find("ops_per_sec")->number;
  const double new_ops = new_doc->Find("ops_per_sec")->number;
  os << "  ops/sec: " << FmtDouble(old_ops) << " -> " << FmtDouble(new_ops)
     << " (" << FmtDeltaPct(old_ops, new_ops) << ")\n";
  // Per-clock rates, when both sides carry them (older reports predate the
  // wall/sim split).
  for (const char* field : {"wall_ops_per_sec", "sim_ops_per_sec"}) {
    const obs::JsonValue* old_rate = old_doc->Find(field);
    const obs::JsonValue* new_rate = new_doc->Find(field);
    if (old_rate == nullptr || new_rate == nullptr) continue;
    os << "  " << field << ": " << FmtDouble(old_rate->number) << " -> "
       << FmtDouble(new_rate->number) << " ("
       << FmtDeltaPct(old_rate->number, new_rate->number) << ")\n";
  }

  const obs::JsonValue* old_hists = old_doc->Find("histograms");
  const obs::JsonValue* new_hists = new_doc->Find("histograms");
  for (const auto& [name, new_hist] : new_hists->members) {
    const obs::JsonValue* old_hist = old_hists->Find(name);
    if (old_hist == nullptr) {
      os << "  " << name << ": (new histogram, no old data)\n";
      continue;
    }
    os << "  " << name << ":";
    bool first_q = true;
    for (const char* q : {"p50", "p95", "p99"}) {
      const int64_t old_q = GetInt(*old_hist, q, 0);
      const int64_t new_q = GetInt(new_hist, q, 0);
      os << (first_q ? " " : ", ") << q << " " << old_q << " -> " << new_q
         << " ("
         << FmtDeltaPct(static_cast<double>(old_q),
                        static_cast<double>(new_q))
         << ")";
      first_q = false;
    }
    os << "\n";
  }
  for (const auto& [name, old_hist] : old_hists->members) {
    (void)old_hist;
    if (new_hists->Find(name) == nullptr) {
      os << "  " << name << ": (histogram dropped in new report)\n";
    }
  }

  if (regress_pct >= 0 && old_ops > 0 &&
      new_ops < old_ops * (1.0 - regress_pct / 100.0)) {
    *regressed = true;
    os << "  REGRESSION: ops/sec dropped more than " << FmtDouble(regress_pct)
       << "% vs the old report\n";
  }
  *out = os.str();
  return std::string();
}

// ---------------------------------------------------------------------------
// axmlx-trace-v1: validation, forensics conversion, critical path
// ---------------------------------------------------------------------------

namespace {

/// One pid-0 transaction track reassembled from trace slices.
struct TxnTrack {
  std::string txn;
  int64_t ts = 0;
  int64_t dur = 0;
  bool open = false;
  bool seen = false;  ///< A cat:"txn" slice claimed this tid.
  /// Phase slices on this tid, (ts, dur, phase-index) in document order.
  struct Slice {
    int64_t ts;
    int64_t dur;
    int phase;
  };
  std::vector<Slice> phases;
};

/// Parses `json_text` as axmlx-trace-v1 and reassembles the pid-0
/// transaction tracks plus the flow id sets. Shared by CheckTraceJson and
/// RenderCriticalPath so the two agree on what a well-formed trace is.
std::string ParseTrace(const std::string& json_text,
                       std::map<int64_t, TxnTrack>* tracks,
                       std::set<int64_t>* flow_starts,
                       std::vector<int64_t>* flow_finishes) {
  std::string parse_error;
  auto doc = obs::ParseJson(json_text, &parse_error);
  if (!doc.has_value()) return "invalid JSON: " + parse_error;
  if (!doc->is_object()) return "top level is not an object";
  if (GetString(*doc, "schema") != "axmlx-trace-v1") {
    return "schema must be \"axmlx-trace-v1\"";
  }
  const obs::JsonValue* events = doc->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return "missing array \"traceEvents\"";
  }
  size_t index = 0;
  for (const obs::JsonValue& e : events->items) {
    ++index;
    const std::string at = "traceEvents[" + std::to_string(index - 1) + "]";
    if (!e.is_object()) return at + " is not an object";
    const std::string ph = GetString(e, "ph");
    if (ph.empty()) return at + " missing \"ph\"";
    if (ph == "s" || ph == "f") {
      const obs::JsonValue* id = e.Find("id");
      if (id == nullptr || !id->is_number()) {
        return at + " flow event missing number \"id\"";
      }
      if (ph == "s") {
        flow_starts->insert(id->AsInt());
      } else {
        flow_finishes->push_back(id->AsInt());
      }
      continue;
    }
    if (ph != "X" || GetInt(e, "pid", -1) != 0) continue;
    const obs::JsonValue* args = e.Find("args");
    const std::string cat = GetString(e, "cat");
    const int64_t tid = GetInt(e, "tid", -1);
    if (cat == "txn") {
      if (args == nullptr || !args->is_object()) {
        return at + " txn slice missing \"args\"";
      }
      TxnTrack& track = (*tracks)[tid];
      if (track.seen) {
        return at + " duplicate txn slice on tid " + std::to_string(tid);
      }
      track.seen = true;
      track.txn = GetString(*args, "txn");
      track.ts = GetInt(e, "ts", 0);
      track.dur = GetInt(e, "dur", 0);
      const obs::JsonValue* open = args->Find("open");
      track.open = open != nullptr && open->is_bool() && open->boolean;
    } else if (cat == "phase") {
      if (args == nullptr || !args->is_object()) {
        return at + " phase slice missing \"args\"";
      }
      const std::string phase = GetString(*args, "phase");
      const int phase_index = obs::PhaseIndex(phase);
      if (phase_index < 0) {
        return at + " names off-table phase \"" + phase + "\"";
      }
      (*tracks)[tid].phases.push_back(
          {GetInt(e, "ts", 0), GetInt(e, "dur", 0), phase_index});
    }
  }
  return std::string();
}

}  // namespace

std::string CheckTraceJson(const std::string& json_text) {
  std::map<int64_t, TxnTrack> tracks;
  std::set<int64_t> flow_starts;
  std::vector<int64_t> flow_finishes;
  std::string problem =
      ParseTrace(json_text, &tracks, &flow_starts, &flow_finishes);
  if (!problem.empty()) return problem;

  // Every flow arrow that lands somewhere must have taken off somewhere.
  // The converse is legal: dropped or undelivered copies leave the flow
  // dangling at its start.
  for (int64_t id : flow_finishes) {
    if (flow_starts.count(id) == 0) {
      return "flow finish id " + std::to_string(id) + " has no flow start";
    }
  }

  for (const auto& [tid, track] : tracks) {
    const std::string name =
        "txn " + (track.txn.empty() ? "tid " + std::to_string(tid)
                                    : track.txn);
    if (!track.seen) {
      return name + " has phase slices but no txn slice";
    }
    if (track.open) continue;  // Open windows are truncated, not partitioned.
    // The partition invariant: phase slices are contiguous from the window
    // begin to its end, so their widths sum to the end-to-end duration.
    int64_t cursor = track.ts;
    int64_t total = 0;
    for (const TxnTrack::Slice& s : track.phases) {
      if (s.ts != cursor) {
        return name + " phase slices leave a gap at t=" +
               std::to_string(cursor);
      }
      if (s.dur <= 0) {
        return name + " has a non-positive-width phase slice";
      }
      cursor = s.ts + s.dur;
      total += s.dur;
    }
    if (cursor != track.ts + track.dur || total != track.dur) {
      return name + " phase slices do not partition the window (" +
             std::to_string(total) + " of " + std::to_string(track.dur) +
             " ticks covered)";
    }
  }
  return std::string();
}

std::string CheckReportJson(const std::string& json_text) {
  std::string parse_error;
  auto doc = obs::ParseJson(json_text, &parse_error);
  if (!doc.has_value()) return "invalid JSON: " + parse_error;
  if (!doc->is_object()) return "top level is not an object";
  const std::string schema = GetString(*doc, "schema");
  if (schema == "axmlx-bench-v1") return CheckBenchJson(json_text);
  if (schema == "axmlx-trace-v1") return CheckTraceJson(json_text);
  return "unknown schema \"" + schema + "\"";
}

namespace {

/// Emitters mirroring obs::BuildTraceJson's event shapes, local to the
/// forensics conversion (the library builder works from live objects; this
/// one from a parsed dump).
void TraceMeta(std::ostringstream* os, bool* first, int64_t pid, int64_t tid,
               const char* kind, const std::string& name) {
  if (!*first) *os << ",";
  *first = false;
  *os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
      << ",\"name\":\"" << kind << "\",\"args\":{\"name\":\""
      << obs::JsonEscape(name) << "\"}}";
}

}  // namespace

std::string ForensicsToTrace(const std::string& forensics_json,
                             std::string* trace_out) {
  std::string parse_error;
  auto doc = obs::ParseJson(forensics_json, &parse_error);
  if (!doc.has_value()) return "invalid JSON: " + parse_error;
  if (!doc->is_object()) return "top level is not an object";
  if (GetString(*doc, "schema") != "axmlx-forensics-v1") {
    return "schema must be \"axmlx-forensics-v1\"";
  }
  const obs::JsonValue* events = doc->Find("events");
  if (events == nullptr || !events->is_array()) {
    return "missing array \"events\"";
  }
  const obs::JsonValue* spans = doc->Find("spans");
  if (spans == nullptr || !spans->is_array()) {
    return "missing array \"spans\"";
  }

  // Peer processes: union of event peers and span peers, sorted; pid 1+
  // (pid 0 stays reserved for the transactions process, absent here — the
  // dump carries no timeline).
  std::map<std::string, int64_t> pid_of;
  for (const obs::JsonValue& e : events->items) {
    if (!e.is_object()) return "event is not an object";
    pid_of.emplace(GetString(e, "peer"), 0);
  }
  for (const obs::JsonValue& s : spans->items) {
    if (!s.is_object()) return "span is not an object";
    pid_of.emplace(GetString(s, "peer"), 0);
  }
  int64_t next_pid = 1;
  for (auto& [peer, pid] : pid_of) pid = next_pid++;

  std::ostringstream os;
  os << "{\"schema\":\"axmlx-trace-v1\",\"displayTimeUnit\":\"ms\","
     << "\"traceEvents\":[";
  bool first = true;
  for (const auto& [peer, pid] : pid_of) {
    TraceMeta(&os, &first, pid, 0, "process_name", peer);
    TraceMeta(&os, &first, pid, 1, "thread_name", "events");
    TraceMeta(&os, &first, pid, 2, "thread_name", "spans");
  }

  // The dump's merged timeline is already in (time, seq) order; keep it.
  for (const obs::JsonValue& e : events->items) {
    const int64_t pid = pid_of.at(GetString(e, "peer"));
    const int64_t time = GetInt(e, "time", 0);
    const std::string kind = GetString(e, "kind");
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":1,\"ts\":" << time
       << ",\"dur\":0,\"name\":\"" << obs::JsonEscape(kind)
       << "\",\"cat\":\"fr\",\"args\":{\"what\":\""
       << obs::JsonEscape(GetString(e, "what"))
       << "\",\"span\":" << GetInt(e, "span", 0)
       << ",\"arg\":" << GetInt(e, "arg", 0) << "}}";
    if (kind == "MSG_SEND" || kind == "MSG_RECV") {
      os << ",{\"ph\":\"" << (kind == "MSG_SEND" ? 's' : 'f')
         << "\",\"pid\":" << pid << ",\"tid\":1,\"ts\":" << time
         << ",\"id\":" << GetInt(e, "arg", 0)
         << ",\"name\":\"msg\",\"cat\":\"overlay\"";
      if (kind == "MSG_RECV") os << ",\"bp\":\"e\"";
      os << "}";
    }
  }

  for (const obs::JsonValue& s : spans->items) {
    const int64_t pid = pid_of.at(GetString(s, "peer"));
    const int64_t end = GetInt(s, "end", -1);
    const int64_t start = GetInt(s, "start", 0);
    std::string name = GetString(s, "kind");
    const std::string detail = GetString(s, "detail");
    if (!detail.empty()) name += " " + detail;
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":2,\"ts\":" << start
       << ",\"dur\":" << (end >= 0 ? end - start : 0) << ",\"name\":\""
       << obs::JsonEscape(name) << "\",\"cat\":\"span\",\"args\":{\"txn\":\""
       << obs::JsonEscape(GetString(s, "txn"))
       << "\",\"span\":" << GetInt(s, "span", 0)
       << ",\"parent\":" << GetInt(s, "parent", 0) << ",\"outcome\":\""
       << obs::JsonEscape(end >= 0 ? GetString(s, "outcome") : "OPEN")
       << "\"}}";
  }

  os << "]}\n";
  *trace_out += os.str();
  return std::string();
}

std::string RenderCriticalPath(const std::string& trace_json,
                               std::string* out) {
  std::map<int64_t, TxnTrack> tracks;
  std::set<int64_t> flow_starts;
  std::vector<int64_t> flow_finishes;
  std::string problem =
      ParseTrace(trace_json, &tracks, &flow_starts, &flow_finishes);
  if (!problem.empty()) return problem;

  struct TxnSummary {
    const TxnTrack* track;
    int64_t total = 0;
    int64_t phase_ticks[obs::kPhaseCount] = {};
    int dominant = obs::kPhaseCount - 1;
  };
  std::vector<TxnSummary> closed;
  size_t open_count = 0;
  for (const auto& [tid, track] : tracks) {
    if (!track.seen) continue;
    if (track.open) {
      ++open_count;
      continue;
    }
    TxnSummary sum;
    sum.track = &track;
    sum.total = track.dur;
    for (const TxnTrack::Slice& s : track.phases) {
      sum.phase_ticks[s.phase] += s.dur;
    }
    // Dominant = the phase holding the most ticks; ties go to the higher-
    // priority phase (lower table index), matching the attribution rule.
    for (int i = 0; i < obs::kPhaseCount; ++i) {
      if (sum.phase_ticks[i] > sum.phase_ticks[sum.dominant]) {
        sum.dominant = i;
      }
    }
    for (int i = 0; i < obs::kPhaseCount; ++i) {
      if (sum.phase_ticks[i] == sum.phase_ticks[sum.dominant] &&
          i < sum.dominant) {
        sum.dominant = i;
      }
    }
    closed.push_back(sum);
  }

  std::ostringstream os;
  os << "=== critical path (" << closed.size() << " closed txns";
  if (open_count > 0) os << ", " << open_count << " open skipped";
  os << ")\n";
  if (closed.empty()) {
    *out += os.str();
    return std::string();
  }

  auto pct = [](int64_t part, int64_t whole) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%5.1f%%",
                  whole > 0 ? 100.0 * static_cast<double>(part) /
                                  static_cast<double>(whole)
                            : 0.0);
    return std::string(buf);
  };
  auto pad = [](std::string s, size_t w) {
    while (s.size() < w) s.push_back(' ');
    return s;
  };

  // Worst K transactions by end-to-end latency; stable under equal totals
  // (document order breaks ties) so the table is deterministic per seed.
  std::vector<const TxnSummary*> worst;
  for (const TxnSummary& s : closed) worst.push_back(&s);
  std::stable_sort(worst.begin(), worst.end(),
                   [](const TxnSummary* a, const TxnSummary* b) {
                     return a->total > b->total;
                   });
  constexpr size_t kWorst = 10;
  if (worst.size() > kWorst) worst.resize(kWorst);
  size_t txn_w = 3;
  for (const TxnSummary* s : worst) {
    txn_w = std::max(txn_w, s->track->txn.size());
  }
  os << "worst " << worst.size() << " by end-to-end latency:\n";
  os << "  " << pad("txn", txn_w) << "  total  dominant        ticks  share\n";
  for (const TxnSummary* s : worst) {
    const char* phase = obs::PhaseTable()[s->dominant];
    os << "  " << pad(s->track->txn, txn_w) << "  "
       << pad(std::to_string(s->total), 5) << "  " << pad(phase, 14) << "  "
       << pad(std::to_string(s->phase_ticks[s->dominant]), 5) << "  "
       << pct(s->phase_ticks[s->dominant], s->total) << "\n";
  }

  // The dominator table: how often each phase is the critical one, and how
  // the total ticks split across phases over every closed transaction.
  int64_t dominated[obs::kPhaseCount] = {};
  int64_t ticks[obs::kPhaseCount] = {};
  int64_t grand_total = 0;
  for (const TxnSummary& s : closed) {
    ++dominated[s.dominant];
    grand_total += s.total;
    for (int i = 0; i < obs::kPhaseCount; ++i) {
      ticks[i] += s.phase_ticks[i];
    }
  }
  os << "dominator table:\n";
  os << "  phase           txns  dominated  ticks   share\n";
  for (int i = 0; i < obs::kPhaseCount; ++i) {
    if (dominated[i] == 0 && ticks[i] == 0) continue;
    os << "  " << pad(obs::PhaseTable()[i], 14) << "  "
       << pad(std::to_string(dominated[i]), 4) << "  "
       << pct(dominated[i], static_cast<int64_t>(closed.size())) << "     "
       << pad(std::to_string(ticks[i]), 6) << " " << pct(ticks[i], grand_total)
       << "\n";
  }
  os << "total: " << closed.size() << " txns, " << grand_total
     << " ticks end-to-end\n";
  *out += os.str();
  return std::string();
}

}  // namespace axmlx::report
