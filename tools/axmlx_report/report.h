#ifndef AXMLX_TOOLS_AXMLX_REPORT_REPORT_H_
#define AXMLX_TOOLS_AXMLX_REPORT_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace axmlx::report {

/// One span parsed back from a JSONL span log (obs::SpanTracker::ToJsonl).
struct SpanRow {
  std::string txn;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string peer;
  std::string kind;
  std::string detail;
  int64_t start = 0;
  int64_t end = -1;  ///< -1 = still open (undecided transaction).
  std::string outcome;
  std::string fault;
};

/// Parses a span JSONL document (one object per line; blank lines are
/// skipped). Returns false and fills `error` (with a line number) on the
/// first malformed line.
bool ParseSpans(const std::string& jsonl, std::vector<SpanRow>* out,
                std::string* error);

/// Renders per-transaction flame-style invocation trees, the abort
/// propagation path (failing peer up to the origin), and rollups by kind,
/// outcome, and peer.
std::string RenderSpanReport(const std::vector<SpanRow>& spans);

/// Renders an axmlx-forensics-v1 black-box dump (see
/// obs::BuildForensicDump): the dump header, the merged cross-peer event
/// timeline around the failure point, and the focal transaction's span tree
/// for context. Appends to `*out`. Returns an empty string on success, else
/// a description of the first problem with the input.
std::string RenderForensics(const std::string& json_text, std::string* out);

/// Validates one BENCH_<name>.json document against the axmlx-bench-v1
/// schema. Returns an empty string when valid, else a description of the
/// first problem.
std::string CheckBenchJson(const std::string& json_text);

/// Compares two axmlx-bench-v1 documents (old vs new run of one bench) and
/// renders the ops/sec delta plus per-histogram p50/p95 latency deltas into
/// `*out`. With `regress_pct >= 0`, sets `*regressed` when ops/sec dropped
/// by more than that percentage (the exit-code gate for CI); latency deltas
/// are informational. Returns an empty string on success, else a
/// description of the first problem (both inputs are schema-checked).
std::string DiffBenchJson(const std::string& old_json,
                          const std::string& new_json, double regress_pct,
                          std::string* out, bool* regressed);

}  // namespace axmlx::report

#endif  // AXMLX_TOOLS_AXMLX_REPORT_REPORT_H_
