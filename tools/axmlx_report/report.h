#ifndef AXMLX_TOOLS_AXMLX_REPORT_REPORT_H_
#define AXMLX_TOOLS_AXMLX_REPORT_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace axmlx::report {

/// One span parsed back from a JSONL span log (obs::SpanTracker::ToJsonl).
struct SpanRow {
  std::string txn;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string peer;
  std::string kind;
  std::string detail;
  int64_t start = 0;
  int64_t end = -1;  ///< -1 = still open (undecided transaction).
  std::string outcome;
  std::string fault;
};

/// Parses a span JSONL document (one object per line; blank lines are
/// skipped). Returns false and fills `error` (with a line number) on the
/// first malformed line.
bool ParseSpans(const std::string& jsonl, std::vector<SpanRow>* out,
                std::string* error);

/// Renders per-transaction flame-style invocation trees, the abort
/// propagation path (failing peer up to the origin), and rollups by kind,
/// outcome, and peer.
std::string RenderSpanReport(const std::vector<SpanRow>& spans);

/// Renders an axmlx-forensics-v1 black-box dump (see
/// obs::BuildForensicDump): the dump header, the merged cross-peer event
/// timeline around the failure point, and the focal transaction's span tree
/// for context. Appends to `*out`. Returns an empty string on success, else
/// a description of the first problem with the input.
std::string RenderForensics(const std::string& json_text, std::string* out);

/// Validates one BENCH_<name>.json document against the axmlx-bench-v1
/// schema. Returns an empty string when valid, else a description of the
/// first problem.
std::string CheckBenchJson(const std::string& json_text);

/// Compares two axmlx-bench-v1 documents (old vs new run of one bench) and
/// renders the ops/sec delta plus per-histogram p50/p95/p99 latency deltas
/// into `*out`. With `regress_pct >= 0`, sets `*regressed` when ops/sec
/// dropped by more than that percentage (the exit-code gate for CI); latency
/// deltas are informational. Returns an empty string on success, else a
/// description of the first problem (both inputs are schema-checked).
std::string DiffBenchJson(const std::string& old_json,
                          const std::string& new_json, double regress_pct,
                          std::string* out, bool* regressed);

/// Validates an axmlx-trace-v1 document (obs::BuildTraceJson output or an
/// `axmlx_report --trace` conversion): schema + traceEvents shape, every
/// flow-finish ("f") id has a matching flow-start ("s"), every phase slice
/// names an on-table phase, and each closed transaction slice is exactly
/// partitioned by its phase slices (contiguous, begin to end, widths
/// summing to the window). Returns an empty string when valid, else a
/// description of the first problem.
std::string CheckTraceJson(const std::string& json_text);

/// Dispatches a --check on the document's "schema" field: axmlx-bench-v1 ->
/// CheckBenchJson, axmlx-trace-v1 -> CheckTraceJson, anything else is an
/// error.
std::string CheckReportJson(const std::string& json_text);

/// Converts an axmlx-forensics-v1 black-box dump into an axmlx-trace-v1
/// document (Perfetto-loadable): each involved peer becomes a process
/// track, the merged event timeline becomes zero-duration slices, MSG_SEND
/// -> MSG_RECV pairs become flow arrows keyed by the overlay message id,
/// and the span context renders on a per-peer "spans" thread. Pure function
/// of the dump, so equal dumps produce byte-identical traces. Returns an
/// empty string on success (trace appended to `*trace_out`), else a
/// description of the first problem.
std::string ForensicsToTrace(const std::string& forensics_json,
                             std::string* trace_out);

/// Renders the critical-path report from an axmlx-trace-v1 document: the
/// dominant phase of every closed transaction (ties broken by phase
/// priority, obs::PhaseTable() order), the worst-K transactions by
/// end-to-end latency, and the aggregated dominator table (which phase
/// dominates how many transactions, and how the total ticks split across
/// phases). Returns an empty string on success (report appended to
/// `*out`), else a description of the first problem.
std::string RenderCriticalPath(const std::string& trace_json,
                               std::string* out);

}  // namespace axmlx::report

#endif  // AXMLX_TOOLS_AXMLX_REPORT_REPORT_H_
