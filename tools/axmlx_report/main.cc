// axmlx_report: renders span JSONL logs as per-transaction invocation trees
// (with abort-propagation paths and rollups), validates BENCH_*.json /
// TRACE_*.json documents, diffs two bench reports, renders flight-recorder
// forensic dumps, converts dumps to Perfetto-loadable traces, and computes
// per-transaction critical paths from traces.
//
// Usage:
//   axmlx_report SPANS.jsonl...          render span trees + rollups
//   axmlx_report --check FILE.json...    validate reports by schema
//                                        (axmlx-bench-v1 / axmlx-trace-v1;
//                                        exit 1 on the first invalid file)
//   axmlx_report --diff OLD.json NEW.json [--regress-pct N]
//                                        print ops/sec and p50/p95/p99
//                                        deltas; with --regress-pct, exit 1
//                                        when ops/sec dropped more than N%
//   axmlx_report --forensics DUMP.json...
//                                        render black-box dumps (merged
//                                        cross-peer timeline + span context)
//   axmlx_report --trace OUT.json DUMP.json
//                                        convert an axmlx-forensics-v1 dump
//                                        into axmlx-trace-v1 Chrome
//                                        trace_event JSON (load OUT.json at
//                                        ui.perfetto.dev)
//   axmlx_report --critical-path TRACE.json...
//                                        per-txn dominant phase, worst-K
//                                        table, and phase dominator rollup

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "axmlx_report/report.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int CheckMode(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    std::cerr << "axmlx_report --check: no files given\n";
    return 2;
  }
  int bad = 0;
  for (const std::string& path : paths) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::cerr << path << ": cannot read\n";
      ++bad;
      continue;
    }
    std::string problem = axmlx::report::CheckReportJson(text);
    if (problem.empty()) {
      std::cout << path << ": OK\n";
    } else {
      std::cerr << path << ": " << problem << "\n";
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}

int DiffMode(const std::vector<std::string>& paths, double regress_pct) {
  if (paths.size() != 2) {
    std::cerr << "axmlx_report --diff: expected exactly OLD.json NEW.json\n";
    return 2;
  }
  std::string old_text;
  std::string new_text;
  if (!ReadFile(paths[0], &old_text)) {
    std::cerr << paths[0] << ": cannot read\n";
    return 2;
  }
  if (!ReadFile(paths[1], &new_text)) {
    std::cerr << paths[1] << ": cannot read\n";
    return 2;
  }
  std::string rendered;
  bool regressed = false;
  std::string problem = axmlx::report::DiffBenchJson(
      old_text, new_text, regress_pct, &rendered, &regressed);
  if (!problem.empty()) {
    std::cerr << problem << "\n";
    return 2;
  }
  std::cout << rendered;
  return regressed ? 1 : 0;
}

int ForensicsMode(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    std::cerr << "axmlx_report --forensics: no files given\n";
    return 2;
  }
  for (const std::string& path : paths) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::cerr << path << ": cannot read\n";
      return 1;
    }
    std::string rendered;
    std::string problem = axmlx::report::RenderForensics(text, &rendered);
    if (!problem.empty()) {
      std::cerr << path << ": " << problem << "\n";
      return 1;
    }
    if (paths.size() > 1) std::cout << "# " << path << "\n";
    std::cout << rendered;
  }
  return 0;
}

int TraceMode(const std::vector<std::string>& paths) {
  if (paths.size() != 2) {
    std::cerr << "axmlx_report --trace: expected OUT.json DUMP.json\n";
    return 2;
  }
  std::string dump;
  if (!ReadFile(paths[1], &dump)) {
    std::cerr << paths[1] << ": cannot read\n";
    return 2;
  }
  std::string trace;
  std::string problem = axmlx::report::ForensicsToTrace(dump, &trace);
  if (!problem.empty()) {
    std::cerr << paths[1] << ": " << problem << "\n";
    return 1;
  }
  std::ofstream out(paths[0], std::ios::binary | std::ios::trunc);
  if (!out || !(out << trace) || !out.flush()) {
    std::cerr << paths[0] << ": cannot write\n";
    return 2;
  }
  std::cout << paths[0] << ": wrote axmlx-trace-v1 ("
            << trace.size() << " bytes)\n";
  return 0;
}

int CriticalPathMode(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    std::cerr << "axmlx_report --critical-path: no files given\n";
    return 2;
  }
  for (const std::string& path : paths) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::cerr << path << ": cannot read\n";
      return 1;
    }
    std::string rendered;
    std::string problem = axmlx::report::RenderCriticalPath(text, &rendered);
    if (!problem.empty()) {
      std::cerr << path << ": " << problem << "\n";
      return 1;
    }
    if (paths.size() > 1) std::cout << "# " << path << "\n";
    std::cout << rendered;
  }
  return 0;
}

int RenderMode(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    std::cerr << "usage: axmlx_report [--check] FILE...\n";
    return 2;
  }
  for (const std::string& path : paths) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::cerr << path << ": cannot read\n";
      return 1;
    }
    std::vector<axmlx::report::SpanRow> spans;
    std::string error;
    if (!axmlx::report::ParseSpans(text, &spans, &error)) {
      std::cerr << path << ": " << error << "\n";
      return 1;
    }
    if (paths.size() > 1) std::cout << "# " << path << "\n";
    std::cout << axmlx::report::RenderSpanReport(spans);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  bool diff = false;
  bool forensics = false;
  bool trace = false;
  bool critical_path = false;
  double regress_pct = -1;  // < 0 = report-only, no gate
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg == "--forensics") {
      forensics = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--critical-path") {
      critical_path = true;
    } else if (arg == "--regress-pct") {
      if (i + 1 >= argc) {
        std::cerr << "--regress-pct requires a number\n";
        return 2;
      }
      regress_pct = std::atof(argv[++i]);
    } else {
      paths.push_back(arg);
    }
  }
  if (trace) return TraceMode(paths);
  if (critical_path) return CriticalPathMode(paths);
  if (forensics) return ForensicsMode(paths);
  if (diff) return DiffMode(paths, regress_pct);
  return check ? CheckMode(paths) : RenderMode(paths);
}
