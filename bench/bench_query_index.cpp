// Query hot path — indexed descendant evaluation vs the naive evaluator.
//
// PR "hot-path overhaul" gave xml::Document an incremental tag-name index
// (NameId → node ids) and rewrote query evaluation around an EvalContext:
// descendant-axis steps pull candidates from the index instead of walking
// the whole tree, tag comparisons are integer NameId compares, and
// TextContent is memoized across predicate evaluations. The pre-change
// algorithm survives as query::naive (src/query/naive_eval.cc), so this
// bench compares the two directly on the same document.
//
// Expected shape: for selective names (few matches in a large document)
// the indexed path wins by a wide margin; for dense names the evaluator
// falls back to the walk and the two converge.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_util.h"
#include "query/eval.h"
#include "query/naive_eval.h"
#include "query/parser.h"
#include "xml/builder.h"
#include "xml/document.h"

namespace {

using axmlx::bench::Fmt;
using axmlx::bench::Table;
using axmlx::query::EvalContext;
using axmlx::query::Query;
using axmlx::xml::Document;
using axmlx::xml::NodeId;

/// Builds the benchmark document: `sections` sections of `players` players
/// (name/rank/grandslamswon children), diluted with `filler` inert elements
/// per section so player-ish names are selective. A few players sit inside
/// axml:sc wrappers with axml:params bookkeeping to keep the §3.1
/// visibility rules on the hot path.
std::unique_ptr<Document> BuildAtpList(int sections, int players,
                                       int filler) {
  auto doc = std::make_unique<Document>("ATPList");
  int serial = 0;
  for (int s = 0; s < sections; ++s) {
    NodeId sec = axmlx::xml::AddElement(doc.get(), doc->root(), "section");
    for (int f = 0; f < filler; ++f) {
      NodeId pad = axmlx::xml::AddElement(doc.get(), sec, "padding");
      axmlx::xml::AddTextElement(doc.get(), pad, "noise", "x");
    }
    for (int p = 0; p < players; ++p) {
      NodeId host = sec;
      if (p % 7 == 0) {
        // Materialized service call: player lives inside an axml:sc.
        NodeId sc = axmlx::xml::AddElement(doc.get(), sec, "axml:sc");
        NodeId params = axmlx::xml::AddElement(doc.get(), sc, "axml:params");
        axmlx::xml::AddTextElement(doc.get(), params, "param", "hidden");
        host = sc;
      }
      NodeId player = axmlx::xml::AddElement(doc.get(), host, "player");
      axmlx::xml::AddTextElement(doc.get(), player, "name",
                                 "P" + std::to_string(serial));
      axmlx::xml::AddTextElement(doc.get(), player, "rank",
                                 std::to_string(serial % 100));
      axmlx::xml::AddTextElement(doc.get(), player, "grandslamswon",
                                 std::to_string(serial % 15));
      ++serial;
    }
  }
  return doc;
}

Query ParseQueryOrDie(const std::string& text) {
  auto q = axmlx::query::ParseQuery(text);
  if (!q.ok()) {
    std::fprintf(stderr, "bad bench query: %s\n", text.c_str());
    std::abort();
  }
  return std::move(q).value();
}

// The two-sided range re-reads p/grandslamswon, exercising the per-eval
// TextContent memo.
const char* kSelectiveQuery =
    "Select p/name from p in ATPList//player "
    "where p/grandslamswon > 10 and p/grandslamswon < 14";
const char* kDenseQuery = "Select n from n in ATPList//noise";

size_t RunIndexed(const Document& doc, const Query& q, EvalContext* ctx) {
  auto result = axmlx::query::EvaluateQuery(doc, q, ctx);
  return result.ok() ? result.value().bindings.size() : 0;
}

size_t RunNaive(const Document& doc, const Query& q) {
  auto result = axmlx::query::naive::EvaluateQuery(doc, q);
  return result.ok() ? result.value().bindings.size() : 0;
}

double OpsPerSec(int iters, double total_us) {
  return total_us > 0 ? iters * 1e6 / total_us : 0;
}

template <typename Fn>
double TimeUs(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             t1 - t0)
      .count();
}

void PrintExperiment() {
  std::printf(
      "Query hot path: tag-index descendant evaluation vs the naive "
      "tree-walking evaluator\n\n");
  auto doc = BuildAtpList(/*sections=*/64, /*players=*/8, /*filler=*/40);
  std::printf("document: %zu nodes\n\n", doc->size());

  Table table({"query", "evaluator", "evals", "ops/sec", "bindings"});
  for (auto [label, text, iters] :
       {std::tuple<const char*, const char*, int>{"selective //player",
                                                  kSelectiveQuery, 400},
        {"dense //noise", kDenseQuery, 100}}) {
    Query q = ParseQueryOrDie(text);
    EvalContext ctx;
    size_t bindings = RunIndexed(*doc, q, &ctx);
    double indexed_us = TimeUs([&] {
      for (int i = 0; i < iters; ++i) RunIndexed(*doc, q, &ctx);
    });
    double naive_us = TimeUs([&] {
      for (int i = 0; i < iters; ++i) RunNaive(*doc, q);
    });
    table.AddRow({label, "indexed", Fmt(iters),
                  Fmt(OpsPerSec(iters, indexed_us)), Fmt(bindings)});
    table.AddRow({label, "naive", Fmt(iters), Fmt(OpsPerSec(iters, naive_us)),
                  Fmt(RunNaive(*doc, q))});
    std::printf("  %s speedup: %.2fx\n", label,
                indexed_us > 0 ? naive_us / indexed_us : 0);
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nShape check: the selective query rides the tag index (few "
      "candidates, cheap visibility checks); the dense query falls back to "
      "the walk, so the evaluators converge.\n\n");
}

void WriteReport(bool smoke) {
  axmlx::bench::JsonReport report("query_index", smoke);
  auto doc = BuildAtpList(smoke ? 8 : 64, 8, smoke ? 5 : 40);
  Query q = ParseQueryOrDie(kSelectiveQuery);
  EvalContext ctx;
  const int iters = smoke ? 20 : 2000;
  axmlx::bench::MeasureThroughput(&report, "eval_latency_us", iters,
                                  [&] { RunIndexed(*doc, q, &ctx); });
  report.AddCounter("query.index_hits", ctx.stats.index_hits);
  report.AddCounter("query.index_candidates", ctx.stats.index_candidates);
  report.AddCounter("query.walk_fallbacks", ctx.stats.walk_fallbacks);
  report.AddCounter("query.text_cache_hits", ctx.stats.text_cache_hits);
  report.AddCounter("doc.nodes_allocated",
                    doc->storage_stats().nodes_allocated);
  (void)report.Write();
}

void BM_IndexedSelective(benchmark::State& state) {
  auto doc = BuildAtpList(64, 8, 40);
  Query q = ParseQueryOrDie(kSelectiveQuery);
  EvalContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunIndexed(*doc, q, &ctx));
  }
}
BENCHMARK(BM_IndexedSelective)->Unit(benchmark::kMicrosecond);

void BM_NaiveSelective(benchmark::State& state) {
  auto doc = BuildAtpList(64, 8, 40);
  Query q = ParseQueryOrDie(kSelectiveQuery);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunNaive(*doc, q));
  }
}
BENCHMARK(BM_NaiveSelective)->Unit(benchmark::kMicrosecond);

void BM_IndexedDense(benchmark::State& state) {
  auto doc = BuildAtpList(64, 8, 40);
  Query q = ParseQueryOrDie(kDenseQuery);
  EvalContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunIndexed(*doc, q, &ctx));
  }
}
BENCHMARK(BM_IndexedDense)->Unit(benchmark::kMicrosecond);

void BM_NaiveDense(benchmark::State& state) {
  auto doc = BuildAtpList(64, 8, 40);
  Query q = ParseQueryOrDie(kDenseQuery);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunNaive(*doc, q));
  }
}
BENCHMARK(BM_NaiveDense)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = axmlx::bench::StripSmokeFlag(&argc, argv);
  if (!smoke) PrintExperiment();
  WriteReport(smoke);
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
