// Parallel runtime scaling — latency hiding for remote service work.
//
// PR "parallel runtime" added src/runtime/: a typed-priority worker pool
// whose parallel mode is observationally identical to the deterministic
// single-thread scheduler (tests/runtime_diff_test.cc). This bench measures
// the one thing parallelism is *allowed* to change: wall-clock time.
//
// The workload models the peer's dominant real-world cost, remote AXML
// service invocations: each work item is a kJobServiceCall job whose work
// stage waits out a stubbed invocation latency (a sleep standing in for the
// remote peer's round trip) and then Prepares a disjoint-section insert
// through its per-worker EvalContext; the apply stage materializes the
// response into the document on the coordinator, in canonical order. Work
// items are submitted in flight-windows of kWindow jobs (one wave each) —
// the runtime's analogue of having kWindow service calls outstanding.
//
// Because the cost being overlapped is *waiting*, not computing, N workers
// hide N invocations at a time regardless of core count: expected wall
// speedup at 4 workers vs 1 is ~4x (the acceptance bar is >= 2x), on a
// single-core container as much as on a big machine. Deterministic mode
// (workers = 0) is the serial floor — every wait runs back to back.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "ops/executor.h"
#include "ops/operation.h"
#include "runtime/job_queue.h"
#include "xml/builder.h"
#include "xml/document.h"

namespace {

using axmlx::bench::Fmt;
using axmlx::bench::Table;

constexpr int kSections = 16;
constexpr int kWindow = 16;  // service calls in flight per wave

std::string SectionLocation(int i) {
  return "Select s from s in inventory/section where s/name = s" +
         std::to_string(i);
}

std::unique_ptr<axmlx::xml::Document> MakeInventory() {
  auto doc = std::make_unique<axmlx::xml::Document>("inventory");
  for (int i = 0; i < kSections; ++i) {
    axmlx::xml::NodeId sec =
        axmlx::xml::AddElement(doc.get(), doc->root(), "section");
    axmlx::xml::AddTextElement(doc.get(), sec, "name",
                               "s" + std::to_string(i));
  }
  return doc;
}

struct RunResult {
  double wall_s = 0;
  int64_t applied = 0;
};

/// Runs `ops` service-call work items with `service_us` of stubbed
/// invocation latency each, `workers` pool threads (0 = deterministic),
/// in flight-windows of kWindow. Returns wall time and applied-op count.
RunResult RunWorkload(int workers, int ops, int64_t service_us,
                      axmlx::obs::MetricsRegistry* metrics) {
  auto doc = MakeInventory();
  axmlx::ops::Executor exec(doc.get(), /*invoker=*/nullptr);
  axmlx::runtime::JobQueueOptions options;
  options.workers = workers;
  axmlx::runtime::JobQueue queue(options);
  if (metrics != nullptr) queue.AttachMetrics(metrics);

  std::vector<axmlx::ops::Operation> operations;
  operations.reserve(static_cast<size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    operations.push_back(axmlx::ops::MakeInsert(
        SectionLocation(i % kSections),
        "<entry><tag>e" + std::to_string(i) + "</tag></entry>"));
  }
  std::vector<axmlx::ops::PreparedOp> prepared(static_cast<size_t>(ops));

  RunResult result;
  const auto t0 = std::chrono::steady_clock::now();
  for (int base = 0; base < ops; base += kWindow) {
    const int end = std::min(base + kWindow, ops);
    doc->SetConcurrentReads(true);
    for (int i = base; i < end; ++i) {
      axmlx::runtime::Job job;
      job.type = axmlx::runtime::JobType::kJobServiceCall;
      job.work = [&, i](axmlx::runtime::WorkerContext& wc) {
        // The stubbed remote invocation: the wait is the work.
        std::this_thread::sleep_for(std::chrono::microseconds(service_us));
        prepared[static_cast<size_t>(i)] =
            axmlx::ops::Executor::Prepare(*doc, operations[static_cast<size_t>(i)],
                                          wc.eval);
      };
      job.apply = [&, i] {
        auto r = exec.ExecutePrepared(
            operations[static_cast<size_t>(i)],
            std::move(prepared[static_cast<size_t>(i)]));
        if (r.ok()) ++result.applied;
      };
      queue.Submit(std::move(job));
    }
    queue.Drain();
    doc->SetConcurrentReads(false);
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  return result;
}

void PrintExperiment(int ops, int64_t service_us) {
  std::printf(
      "Parallel runtime: hiding %lldus stubbed service-invocation latency, "
      "%d disjoint ops, window %d (DESIGN.md \xC2\xA7" "11)\n\n",
      static_cast<long long>(service_us), ops, kWindow);
  Table table({"workers", "wall ops/sec", "speedup vs det", "applied"});
  double det_rate = 0;
  for (int workers : {0, 1, 2, 4, 8}) {
    RunResult r = RunWorkload(workers, ops, service_us, nullptr);
    const double rate = r.wall_s > 0 ? r.applied / r.wall_s : 0;
    if (workers == 0) det_rate = rate;
    table.AddRow({workers == 0 ? "0 (det)" : Fmt(workers), Fmt(rate),
                  det_rate > 0 ? Fmt(rate / det_rate) : "n/a",
                  Fmt(r.applied)});
  }
  table.Print();
  std::printf(
      "\nShape check: N workers overlap N in-flight invocations, so the "
      "curve climbs ~linearly until it saturates at the window size; "
      "deterministic mode pays every wait serially.\n\n");
}

void WriteReport(bool smoke) {
  axmlx::bench::JsonReport report("parallel_runtime", smoke);
  const int ops = smoke ? 64 : 512;
  const int64_t service_us = smoke ? 50 : 200;
  double rate1 = 0;
  double rate4 = 0;
  for (int workers : {0, 1, 2, 4, 8}) {
    axmlx::obs::MetricsRegistry metrics;
    RunResult r = RunWorkload(workers, ops, service_us, &metrics);
    const double rate = r.wall_s > 0 ? r.applied / r.wall_s : 0;
    if (workers == 1) rate1 = rate;
    if (workers == 4) {
      rate4 = rate;
      // The 4-worker run is the headline configuration: its wall rate and
      // its job.service_call.run_us histogram land in the report.
      report.SetWallOpsPerSec(rate);
      auto snap = metrics.Snapshot();
      auto hist = snap.histograms.find(axmlx::obs::kMetricJobServiceCallRunUs);
      if (hist != snap.histograms.end()) {
        report.AddHistogram(axmlx::obs::kMetricJobServiceCallRunUs,
                            hist->second);
      }
      report.AddCounter(
          "runtime.jobs_executed",
          metrics.GetCounter(axmlx::obs::kMetricRuntimeJobsExecuted)->value());
      report.AddCounter(
          "runtime.waves",
          metrics.GetCounter(axmlx::obs::kMetricRuntimeWaves)->value());
    }
    report.AddCounter("runtime.wall_ops_per_sec_w" + std::to_string(workers),
                      static_cast<int64_t>(rate));
    report.AddCounter("runtime.applied_w" + std::to_string(workers),
                      r.applied);
  }
  // The acceptance bar, recorded where axmlx_report --diff can watch it:
  // 4 workers vs 1 worker wall speedup, in hundredths.
  report.AddCounter("runtime.speedup_x100_w4_vs_w1",
                    rate1 > 0 ? static_cast<int64_t>(rate4 / rate1 * 100) : 0);
  (void)report.Write();
}

void BM_ServiceWindow(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunWorkload(workers, 64, 200, nullptr));
  }
  state.SetLabel(workers == 0 ? "deterministic" : "parallel");
}
BENCHMARK(BM_ServiceWindow)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = axmlx::bench::StripSmokeFlag(&argc, argv);
  if (!smoke) PrintExperiment(256, 200);
  WriteReport(smoke);
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
