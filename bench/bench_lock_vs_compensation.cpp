// Experiment E8 — lock-based concurrency control vs the compensation model
// (§1, §2).
//
// The paper dismisses lock-based protocols for AXML because service calls
// make operations long ("in hours") and documents "active": locks held for
// the call duration serialize everything. This bench sweeps the service
// duration and contention and compares an XPath-locking baseline (strict
// 2PL over paths, after [5], including its P locks) against the paper's
// compensation model on the same generated workload.
//
// Expected shape: locking latency and denials explode as service duration
// grows; compensation latency stays equal to the service duration, at the
// price of compensating the (rare) faulted transactions. The crossover is
// immediate once calls are long.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "baseline/lock_sim.h"
#include "bench/bench_util.h"
#include "repo/axml_repository.h"
#include "repo/scenarios.h"

namespace {

using axmlx::baseline::RunCompensationSimulation;
using axmlx::baseline::RunLockingSimulation;
using axmlx::baseline::SimResult;
using axmlx::baseline::WorkloadConfig;
using axmlx::bench::Fmt;
using axmlx::bench::Table;

void PrintExperiment() {
  std::printf(
      "E8: XPath locking (strict 2PL, after [5]) vs compensation, 300 txns, "
      "3 path ops each, 50%% writes, hot-spot contention\n\n");
  Table table({"service duration", "model", "committed", "aborted",
               "avg latency", "throughput /1k ticks", "lock denials",
               "comp. ops"});
  for (int64_t duration : {1, 10, 100, 1000}) {
    WorkloadConfig config;
    config.num_txns = 300;
    config.ops_per_txn = 3;
    config.hot_fraction = 0.4;
    config.write_fraction = 0.5;
    config.service_duration = duration;
    config.arrival_gap = 2;
    config.fault_probability = 0.05;  // compensation model pays for faults
    SimResult lock = RunLockingSimulation(config);
    SimResult comp = RunCompensationSimulation(config);
    table.AddRow({Fmt(static_cast<long long>(duration)), "locking",
                  Fmt(lock.committed), Fmt(lock.aborted),
                  Fmt(lock.avg_latency), Fmt(lock.throughput),
                  Fmt(lock.lock_denials), "-"});
    table.AddRow({Fmt(static_cast<long long>(duration)), "compensation",
                  Fmt(comp.committed), Fmt(comp.aborted),
                  Fmt(comp.avg_latency), Fmt(comp.throughput), "-",
                  Fmt(comp.compensation_ops)});
  }
  table.Print();

  std::printf("\nConcurrency sweep at duration=100:\n\n");
  Table table2({"arrival gap (load)", "model", "avg latency",
                "throughput /1k ticks", "aborted"});
  for (int64_t gap : {1, 5, 25, 125}) {
    WorkloadConfig config;
    config.num_txns = 300;
    config.service_duration = 100;
    config.arrival_gap = gap;
    config.hot_fraction = 0.4;
    config.fault_probability = 0.05;
    SimResult lock = RunLockingSimulation(config);
    SimResult comp = RunCompensationSimulation(config);
    table2.AddRow({Fmt(static_cast<long long>(gap)), "locking",
                   Fmt(lock.avg_latency), Fmt(lock.throughput),
                   Fmt(lock.aborted)});
    table2.AddRow({Fmt(static_cast<long long>(gap)), "compensation",
                   Fmt(comp.avg_latency), Fmt(comp.throughput),
                   Fmt(comp.aborted)});
  }
  table2.Print();
  std::printf(
      "\nShape check (paper): compensation wins once service calls are "
      "long; its latency equals the service time regardless of contention, "
      "while locking queues (and times out) on hot paths — why \"lock-based "
      "protocols are not well suited for AXML systems\" (§2).\n\n");
}

/// Same comparison on *real transactional peers*: one peer hosts a hot
/// document; N concurrent writer transactions arrive together. Under the
/// XPath-locking option, later writers fault with LockConflict and abort;
/// the compensation-only peer interleaves them all.
struct PeerRunResult {
  int committed = 0;
  int aborted = 0;
  long long makespan = 0;
};

PeerRunResult RunOnRealPeers(bool use_locking, int n_txns,
                             axmlx::overlay::Tick duration) {
  axmlx::repo::AxmlRepository repo(3);
  axmlx::repo::AxmlRepository::PeerConfig config;
  config.id = "P";
  config.protocol = axmlx::repo::AxmlRepository::Protocol::kRecovering;
  config.options.use_locking = use_locking;
  (void)repo.AddPeer(config);
  (void)repo.HostDocument(
      "P", "<DataP><store><item id=\"1\">v</item></store><log/></DataP>");
  axmlx::service::ServiceDefinition writer;
  writer.name = "Write";
  writer.document = "DataP";
  writer.ops.push_back(axmlx::ops::MakeReplace(
      "Select s/item from s in DataP//store where s/item/@id = 1",
      "<item id=\"1\">updated</item>"));
  writer.duration = duration;
  (void)repo.HostService("P", std::move(writer));

  PeerRunResult result;
  axmlx::txn::AxmlPeer* origin = repo.FindPeer("P");
  for (int i = 0; i < n_txns; ++i) {
    (void)origin->Submit(&repo.network(), "T" + std::to_string(i), "Write",
                         {}, [&result](const std::string&, axmlx::Status s) {
                           if (s.ok()) {
                             ++result.committed;
                           } else {
                             ++result.aborted;
                           }
                         });
  }
  result.makespan = repo.network().RunUntilQuiescent();
  return result;
}

void PrintRealPeerExperiment() {
  std::printf(
      "Same comparison on real transactional peers (one hot document, "
      "concurrent writers arriving together):\n\n");
  Table table({"writers", "service duration", "model", "committed",
               "aborted (LockConflict)"});
  for (int n : {2, 8, 32}) {
    for (axmlx::overlay::Tick duration : {5, 50}) {
      for (bool locking : {true, false}) {
        PeerRunResult r = RunOnRealPeers(locking, n, duration);
        table.AddRow({Fmt(n), Fmt(static_cast<long long>(duration)),
                      locking ? "locking" : "compensation", Fmt(r.committed),
                      Fmt(r.aborted)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nShape check: under locking only the first writer proceeds and the "
      "rest abort on conflict, independent of duration; the compensation "
      "model commits all of them.\n\n");
}

/// Machine-readable report: compensation-model simulation latency at
/// duration=100 plus committed/aborted for both models on that workload.
void WriteReport(bool smoke) {
  axmlx::bench::JsonReport report("lock_vs_compensation", smoke);
  WorkloadConfig config;
  config.num_txns = smoke ? 50 : 300;
  config.ops_per_txn = 3;
  config.hot_fraction = 0.4;
  config.write_fraction = 0.5;
  config.service_duration = 100;
  config.arrival_gap = 2;
  config.fault_probability = 0.05;
  axmlx::bench::MeasureThroughput(
      &report, "comp_sim_latency_us", smoke ? 3 : 10,
      [&] { (void)RunCompensationSimulation(config); });
  SimResult lock = RunLockingSimulation(config);
  report.AddCounter("locking.committed", lock.committed);
  report.AddCounter("locking.aborted", lock.aborted);
  report.AddCounter("locking.lock_denials", lock.lock_denials);
  SimResult comp = RunCompensationSimulation(config);
  report.AddCounter("compensation.committed", comp.committed);
  report.AddCounter("compensation.aborted", comp.aborted);
  report.AddCounter("compensation.compensation_ops", comp.compensation_ops);
  (void)report.Write();
}

void BM_LockingSim(benchmark::State& state) {
  WorkloadConfig config;
  config.num_txns = 300;
  config.service_duration = state.range(0);
  config.fault_probability = 0.05;
  for (auto _ : state) {
    SimResult r = RunLockingSimulation(config);
    benchmark::DoNotOptimize(r.committed);
  }
}
BENCHMARK(BM_LockingSim)->Arg(10)->Arg(1000)->Unit(benchmark::kMicrosecond);

void BM_CompensationSim(benchmark::State& state) {
  WorkloadConfig config;
  config.num_txns = 300;
  config.service_duration = state.range(0);
  config.fault_probability = 0.05;
  for (auto _ : state) {
    SimResult r = RunCompensationSimulation(config);
    benchmark::DoNotOptimize(r.committed);
  }
}
BENCHMARK(BM_CompensationSim)->Arg(10)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = axmlx::bench::StripSmokeFlag(&argc, argv);
  if (!smoke) {
    PrintExperiment();
    PrintRealPeerExperiment();
  }
  WriteReport(smoke);
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
