// Experiment E2 — Figure 2, peer disconnection handling (§3.3).
//
// Reproduces the paper's four disconnection cases on the exact Figure 2
// topology [AP1* -> AP2 -> [AP3 -> AP6] || [AP4 -> AP5]], comparing the
// chain-based protocol against traditional recovery (no chaining).
//
// Expected shape: with chaining every case reaches a decision, AP6's work
// is reused (rerouted results / adoption) and wasted work is minimal; the
// no-chaining baseline discards AP6's work and — when nobody watches — the
// transaction simply hangs ("loss of effort").

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "recovery/chained_peer.h"
#include "repo/axml_repository.h"
#include "repo/scenarios.h"

namespace {

using axmlx::bench::Fmt;
using axmlx::bench::Table;
using axmlx::repo::AxmlRepository;
using axmlx::repo::BuildFigureTwo;
using axmlx::repo::kTxnName;
using axmlx::repo::ScenarioOptions;

const std::vector<axmlx::overlay::PeerId> kPeers = {"AP1", "AP2", "AP3",
                                                    "AP4", "AP5", "AP6"};

struct CaseMetrics {
  std::string outcome;
  size_t wasted_nodes = 0;
  int reused = 0;  // reroutes + adoptions + reused subcalls
  int notifications = 0;
  long long decision_time = 0;
  long long messages = 0;
};

ScenarioOptions CaseOptions(bool chained, axmlx::overlay::Tick keepalive,
                            axmlx::overlay::Tick duration) {
  ScenarioOptions options;
  options.protocol = chained ? AxmlRepository::Protocol::kChained
                             : AxmlRepository::Protocol::kRecovering;
  options.duration = duration;
  options.add_replicas = true;
  options.handlers_retry_on_replica = true;
  options.peer_options.use_chaining = chained;
  options.peer_options.keepalive_interval = keepalive;
  return options;
}

CaseMetrics Collect(AxmlRepository* repo,
                    const axmlx::Result<axmlx::repo::TxnOutcome>& outcome) {
  CaseMetrics metrics;
  metrics.outcome = !(*outcome).decided ? "STUCK"
                    : (*outcome).status.ok() ? "COMMITTED"
                                             : "ABORTED";
  metrics.decision_time = (*outcome).duration;
  metrics.messages = (*outcome).messages;
  std::vector<axmlx::overlay::PeerId> all = kPeers;
  for (const auto& id : kPeers) all.push_back(id + "R");
  for (const auto& id : all) {
    axmlx::txn::AxmlPeer* peer = repo->FindPeer(id);
    if (peer == nullptr) continue;
    const axmlx::txn::PeerStats& stats = peer->stats();
    metrics.wasted_nodes += stats.wasted_nodes;
    metrics.reused += stats.results_rerouted + stats.subcalls_reused +
                      stats.adoptions;
    metrics.notifications += stats.notifications_sent;
  }
  return metrics;
}

/// Case (a): leaf AP6 disconnects at t=5; AP3 watches its children.
CaseMetrics RunCaseA(bool chained) {
  AxmlRepository repo(1);
  ScenarioOptions options = CaseOptions(chained, /*keepalive=*/4, 10);
  if (!BuildFigureTwo(&repo, options).ok()) return {};
  auto& ap3 = repo.FindPeer("AP3")->repository();
  axmlx::service::ServiceDefinition s3 = *ap3.FindService("S3");
  axmlx::axml::FaultHandler handler;
  handler.has_retry = true;
  handler.retry.times = 1;
  handler.retry.replica_url = "AP6R";
  s3.subcalls[0].handlers.push_back(handler);
  ap3.PutService(s3);
  repo.network().DisconnectAt(5, "AP6");
  auto outcome = repo.RunTransaction("AP1", kTxnName, "S1");
  return Collect(&repo, outcome);
}

/// Case (b): parent AP3 disconnects at t=5; AP6 finds out when returning
/// results. No keep-alive anywhere — the send failure is the only signal.
CaseMetrics RunCaseB(bool chained) {
  AxmlRepository repo(1);
  ScenarioOptions options = CaseOptions(chained, /*keepalive=*/0, 10);
  if (!BuildFigureTwo(&repo, options).ok()) return {};
  repo.network().DisconnectAt(5, "AP3");
  auto outcome = repo.RunTransaction("AP1", kTxnName, "S1");
  return Collect(&repo, outcome);
}

/// Case (c): child AP3 disconnects at t=5 with AP6 mid-flight; AP2 detects
/// via keep-alive.
CaseMetrics RunCaseC(bool chained) {
  AxmlRepository repo(1);
  ScenarioOptions options = CaseOptions(chained, /*keepalive=*/4, 20);
  if (!BuildFigureTwo(&repo, options).ok()) return {};
  repo.network().DisconnectAt(5, "AP3");
  auto outcome = repo.RunTransaction("AP1", kTxnName, "S1");
  return Collect(&repo, outcome);
}

/// Case (d): sibling AP4 watches AP3's data stream and detects the silence.
CaseMetrics RunCaseD(bool chained) {
  AxmlRepository repo(1);
  ScenarioOptions options = CaseOptions(chained, /*keepalive=*/0, 30);
  if (!BuildFigureTwo(&repo, options).ok()) return {};
  bool decided = false;
  axmlx::Status final_status;
  axmlx::txn::AxmlPeer* origin = repo.FindPeer("AP1");
  if (!origin
           ->Submit(&repo.network(), kTxnName, "S1", {},
                    [&](const std::string&, axmlx::Status s) {
                      decided = true;
                      final_status = std::move(s);
                    })
           .ok()) {
    return {};
  }
  repo.network().RunUntil(4);
  if (auto* ap4 =
          dynamic_cast<axmlx::recovery::ChainedPeer*>(repo.FindPeer("AP4"))) {
    ap4->WatchSibling(&repo.network(), kTxnName, "AP3", /*interval=*/5);
  }
  repo.network().DisconnectAt(8, "AP3");
  repo.network().RunUntilQuiescent();
  axmlx::repo::TxnOutcome synthetic;
  synthetic.decided = decided;
  synthetic.status = decided ? final_status : axmlx::Timeout("stuck");
  synthetic.duration = repo.network().now();
  synthetic.messages = repo.network().stats().messages_sent;
  axmlx::Result<axmlx::repo::TxnOutcome> wrapped(std::move(synthetic));
  return Collect(&repo, wrapped);
}

void PrintExperiment() {
  std::printf(
      "E2 / Figure 2: peer disconnection cases (a)-(d), chain-based protocol "
      "vs traditional recovery\n"
      "Topology: [AP1* -> AP2 -> [AP3 -> AP6] || [AP4 -> AP5]], replicas "
      "APxR, 2 inserts per service.\n\n");
  Table table({"case", "protocol", "outcome", "wasted nodes", "work reused",
               "notifications", "msgs", "t(decide)"});
  struct Case {
    const char* name;
    CaseMetrics (*run)(bool chained);
  };
  const Case cases[] = {
      {"(a) leaf AP6 dies, parent detects", &RunCaseA},
      {"(b) parent AP3 dies, child detects", &RunCaseB},
      {"(c) child AP3 dies, parent pings", &RunCaseC},
      {"(d) sibling AP4 detects silence", &RunCaseD},
  };
  for (const Case& c : cases) {
    for (bool chained : {true, false}) {
      CaseMetrics m = c.run(chained);
      table.AddRow({c.name, chained ? "chained" : "no-chain", m.outcome,
                    Fmt(m.wasted_nodes), Fmt(m.reused), Fmt(m.notifications),
                    Fmt(m.messages), Fmt(m.decision_time)});
    }
  }
  table.Print();
  std::printf(
      "\nShape check (paper): the chained protocol decides every case and "
      "reuses AP6's work; without chaining, case (b)/(d) hang or waste the "
      "whole subtree.\n\n");
}

/// Machine-readable report built around case (c) (parent pings, AP6
/// mid-flight) under the chained protocol, with case-(b) reuse counters
/// alongside.
void WriteReport(bool smoke) {
  axmlx::bench::JsonReport report("fig2_disconnection", smoke);
  axmlx::bench::MeasureThroughput(&report, "case_c_latency_us", smoke ? 3 : 10,
                                  [] { (void)RunCaseC(true); });
  CaseMetrics case_b = RunCaseB(true);
  report.AddCounter("case_b.work_reused", case_b.reused);
  report.AddCounter("case_b.wasted_nodes",
                    static_cast<int64_t>(case_b.wasted_nodes));
  CaseMetrics case_c = RunCaseC(true);
  report.AddCounter("case_c.work_reused", case_c.reused);
  report.AddCounter("case_c.wasted_nodes",
                    static_cast<int64_t>(case_c.wasted_nodes));
  report.AddCounter("case_c.notifications", case_c.notifications);
  report.AddCounter("case_c.decision_time", case_c.decision_time);
  (void)report.Write();
}

void BM_Fig2CaseB_Chained(benchmark::State& state) {
  for (auto _ : state) {
    CaseMetrics m = RunCaseB(true);
    benchmark::DoNotOptimize(m.reused);
  }
}
BENCHMARK(BM_Fig2CaseB_Chained)->Unit(benchmark::kMicrosecond);

void BM_Fig2CaseC_Chained(benchmark::State& state) {
  for (auto _ : state) {
    CaseMetrics m = RunCaseC(true);
    benchmark::DoNotOptimize(m.reused);
  }
}
BENCHMARK(BM_Fig2CaseC_Chained)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = axmlx::bench::StripSmokeFlag(&argc, argv);
  if (!smoke) PrintExperiment();
  WriteReport(smoke);
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
