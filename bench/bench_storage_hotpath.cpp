// Storage hot path — slab/slot documents vs the retired map-backed layout.
//
// PR "hot-path overhaul" converted xml::Document from an
// unordered_map<NodeId, unique_ptr<Node>> to a paged slab with a free list
// and generation-checked id→slot mapping. This bench keeps a minimal
// replica of the old layout ("MapStore") so the before/after comparison
// stays reproducible in-tree: node churn (create + destroy), id lookup,
// and text aggregation run against both layouts.
//
// It also measures the WAL group-commit policies: transactions executed
// under FlushPolicy::EveryRecord / EveryN / OnResolve, reporting the
// wal.flushes and wal.records_batched counters.
//
// Expected shape: the slab wins on churn (slot reuse, no per-node malloc
// for bookkeeping) and on lookup (two array indexes vs a hash probe);
// group commit collapses flushes from one-per-record to one-per-txn.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "ops/operation.h"
#include "storage/durable_store.h"
#include "xml/builder.h"
#include "xml/document.h"

namespace {

using axmlx::bench::Fmt;
using axmlx::bench::Table;
using axmlx::storage::DurableStore;
using axmlx::storage::FlushPolicy;
using axmlx::xml::Document;
using axmlx::xml::NodeId;

/// Minimal replica of the pre-slab Document storage: one heap node per id
/// in a hash map. Only what the workloads below need — create, find,
/// destroy, text aggregation — with the same parent/children id links.
class MapStore {
 public:
  MapStore() { root_ = CreateElement("root", axmlx::xml::kNullNode); }

  NodeId root() const { return root_; }

  NodeId CreateElement(const std::string& name, NodeId parent) {
    NodeId id = next_id_++;
    auto node = std::make_unique<axmlx::xml::Node>();
    node->id = id;
    node->type = axmlx::xml::NodeType::kElement;
    node->name = name;
    node->parent = parent;
    if (parent != axmlx::xml::kNullNode) nodes_[parent]->children.push_back(id);
    nodes_[id] = std::move(node);
    return id;
  }

  NodeId CreateText(const std::string& text, NodeId parent) {
    NodeId id = next_id_++;
    auto node = std::make_unique<axmlx::xml::Node>();
    node->id = id;
    node->type = axmlx::xml::NodeType::kText;
    node->text = text;
    node->parent = parent;
    nodes_[parent]->children.push_back(id);
    nodes_[id] = std::move(node);
    return id;
  }

  const axmlx::xml::Node* Find(NodeId id) const {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : it->second.get();
  }

  void DestroySubtree(NodeId id) {
    const axmlx::xml::Node* n = Find(id);
    if (n == nullptr) return;
    for (NodeId c : n->children) DestroySubtree(c);
    nodes_.erase(id);
  }

  void AppendTextContent(NodeId id, std::string* out) const {
    const axmlx::xml::Node* n = Find(id);
    if (n == nullptr) return;
    if (n->type == axmlx::xml::NodeType::kText) out->append(n->text);
    for (NodeId c : n->children) AppendTextContent(c, out);
  }

  size_t size() const { return nodes_.size(); }

 private:
  std::unordered_map<NodeId, std::unique_ptr<axmlx::xml::Node>> nodes_;
  NodeId next_id_ = 0;
  NodeId root_ = 0;
};

constexpr int kChurnFanout = 32;  ///< Nodes per created-and-destroyed batch.

/// One churn round against the slab document: grow a 2-level subtree,
/// read it back, tear it down. Returns nodes touched.
int ChurnSlab(Document* doc) {
  NodeId top = axmlx::xml::AddElement(doc, doc->root(), "batch");
  for (int i = 0; i < kChurnFanout; ++i) {
    NodeId item = axmlx::xml::AddElement(doc, top, "item");
    axmlx::xml::AddText(doc, item, "v");
  }
  int found = 0;
  const axmlx::xml::Node* t = doc->Find(top);
  for (NodeId c : t->children) {
    if (doc->Find(c) != nullptr) ++found;
  }
  (void)doc->RemoveSubtree(top);
  return found;
}

int ChurnMap(MapStore* store) {
  NodeId top = store->CreateElement("batch", store->root());
  for (int i = 0; i < kChurnFanout; ++i) {
    NodeId item = store->CreateElement("item", top);
    store->CreateText("v", item);
  }
  int found = 0;
  const axmlx::xml::Node* t = store->Find(top);
  for (NodeId c : t->children) {
    if (store->Find(c) != nullptr) ++found;
  }
  store->DestroySubtree(top);
  return found;
}

/// Builds the same wide read-workload tree in both layouts: `sections`
/// sections of `items` items, each item carrying one text child.
void BuildReadTree(Document* doc, MapStore* store, int sections, int items,
                   std::vector<NodeId>* slab_ids,
                   std::vector<NodeId>* map_ids) {
  for (int s = 0; s < sections; ++s) {
    NodeId sec = axmlx::xml::AddElement(doc, doc->root(), "section");
    NodeId msec = store->CreateElement("section", store->root());
    for (int i = 0; i < items; ++i) {
      NodeId item = axmlx::xml::AddTextElement(doc, sec, "item", "payload");
      NodeId mitem = store->CreateElement("item", msec);
      store->CreateText("payload", mitem);
      slab_ids->push_back(item);
      map_ids->push_back(mitem);
    }
  }
}

/// Shuffles `ids` with a fixed-seed LCG so both layouts chase identical
/// random access patterns.
void Shuffle(std::vector<NodeId>* ids) {
  uint64_t s = 0x853c49e6748fea9bULL;
  for (size_t i = ids->size(); i > 1; --i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    std::swap((*ids)[i - 1], (*ids)[(s >> 33) % i]);
  }
}

/// The hottest storage operation by call count: id -> node resolution.
/// Query evaluation calls Find() for every context node, child link, and
/// text read; slab resolves in two dense-array reads + a generation check,
/// the map layout pays a hash probe + two pointer chases per call.
template <typename Store>
int64_t LookupSweep(const Store& store, const std::vector<NodeId>& ids,
                    int sweeps) {
  int64_t elements = 0;
  for (int s = 0; s < sweeps; ++s) {
    for (NodeId id : ids) {
      const axmlx::xml::Node* n = store.Find(id);
      if (n != nullptr && n->type == axmlx::xml::NodeType::kElement) {
        ++elements;
      }
    }
  }
  return elements;
}

double OpsPerSec(int iters, double total_us) {
  return total_us > 0 ? iters * 1e6 / total_us : 0;
}

template <typename Fn>
double TimeUs(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             t1 - t0)
      .count();
}

int g_dir_counter = 0;

std::string FreshDir() {
  std::string dir =
      "/tmp/axmlx_bench_hotpath_" + std::to_string(g_dir_counter++);
  std::string cleanup = "rm -rf " + dir;
  (void)std::system(cleanup.c_str());
  return dir;
}

/// Runs `n_txns` small transactions under `policy`; returns the flush /
/// batch counters.
std::pair<int64_t, int64_t> WalWorkload(FlushPolicy policy, int n_txns,
                                        int ops_per_txn) {
  DurableStore store(FreshDir(), nullptr, policy);
  if (!store.Open().ok()) return {0, 0};
  (void)store.CreateDocument("<Store><log/></Store>");
  for (int t = 0; t < n_txns; ++t) {
    std::string txn = "T" + std::to_string(t);
    (void)store.Begin(txn);
    for (int i = 0; i < ops_per_txn; ++i) {
      (void)store.Execute(
          txn, "Store",
          axmlx::ops::MakeInsert("Select d from d in Store//log",
                                 "<entry>payload</entry>"));
    }
    (void)store.Commit(txn);
  }
  auto snap = store.metrics().Snapshot();
  return {snap.counters.at("wal.flushes"),
          snap.counters.at("wal.records_batched")};
}

void PrintExperiment() {
  std::printf(
      "Storage hot path: paged-slab Document vs the retired map-backed "
      "layout, and WAL group-commit flush policies\n\n");

  {
    Table table({"layout", "churn rounds", "ops/sec", "live nodes after"});
    const int rounds = 2000;
    Document doc("root");
    MapStore store;
    double slab_us = TimeUs([&] {
      for (int i = 0; i < rounds; ++i) ChurnSlab(&doc);
    });
    double map_us = TimeUs([&] {
      for (int i = 0; i < rounds; ++i) ChurnMap(&store);
    });
    table.AddRow({"slab", Fmt(rounds), Fmt(OpsPerSec(rounds, slab_us)),
                  Fmt(static_cast<int64_t>(doc.size()))});
    table.AddRow({"map", Fmt(rounds), Fmt(OpsPerSec(rounds, map_us)),
                  Fmt(static_cast<int64_t>(store.size()))});
    table.Print();
    std::printf("  speedup: %.2fx (create+read+destroy of %d-node batches)\n\n",
                map_us > 0 ? map_us / slab_us : 0, kChurnFanout + 1);
  }

  {
    Document doc("root");
    MapStore store;
    std::vector<NodeId> slab_ids, map_ids;
    // 128x128 items (~49k nodes): large enough that the map layout's three
    // dependent pointer chases per Find fall out of L2.
    BuildReadTree(&doc, &store, 128, 128, &slab_ids, &map_ids);
    Shuffle(&slab_ids);
    Shuffle(&map_ids);
    const int sweeps = 500;
    int64_t slab_hits = 0;
    int64_t map_hits = 0;
    double slab_us =
        TimeUs([&] { slab_hits = LookupSweep(doc, slab_ids, sweeps); });
    double map_us =
        TimeUs([&] { map_hits = LookupSweep(store, map_ids, sweeps); });
    const int lookups = sweeps * static_cast<int>(slab_ids.size());
    Table table({"layout", "id lookups", "ops/sec", "elements seen"});
    table.AddRow({"slab", Fmt(lookups), Fmt(OpsPerSec(lookups, slab_us)),
                  Fmt(slab_hits)});
    table.AddRow({"map", Fmt(lookups), Fmt(OpsPerSec(lookups, map_us)),
                  Fmt(map_hits)});
    table.Print();
    std::printf(
        "  speedup: %.2fx (random-order Find, the hot path of query "
        "evaluation)\n\n",
        map_us > 0 ? map_us / slab_us : 0);
  }

  {
    Document doc("root");
    MapStore store;
    std::vector<NodeId> slab_ids, map_ids;
    BuildReadTree(&doc, &store, 64, 64, &slab_ids, &map_ids);
    const int sweeps = 200;
    std::string text;
    double slab_us = TimeUs([&] {
      for (int s = 0; s < sweeps; ++s) {
        for (NodeId id : slab_ids) {
          text.clear();
          doc.AppendTextContent(id, &text);
        }
      }
    });
    double map_us = TimeUs([&] {
      for (int s = 0; s < sweeps; ++s) {
        for (NodeId id : map_ids) {
          text.clear();
          store.AppendTextContent(id, &text);
        }
      }
    });
    const int lookups = sweeps * static_cast<int>(slab_ids.size());
    Table table({"layout", "text lookups", "ops/sec"});
    table.AddRow({"slab", Fmt(lookups), Fmt(OpsPerSec(lookups, slab_us))});
    table.AddRow({"map", Fmt(lookups), Fmt(OpsPerSec(lookups, map_us))});
    table.Print();
    std::printf("  speedup: %.2fx (Find + text aggregation)\n\n",
                map_us > 0 ? map_us / slab_us : 0);
  }

  {
    Table table({"flush policy", "txns", "wal records", "flushes",
                 "records/flush"});
    const int n_txns = 50;
    const int ops = 8;
    for (auto [label, policy] :
         {std::pair<const char*, FlushPolicy>{"every-record",
                                              FlushPolicy::EveryRecord()},
          {"every-8", FlushPolicy::EveryN(8)},
          {"on-resolve", FlushPolicy::OnResolve()}}) {
      auto [flushes, batched] = WalWorkload(policy, n_txns, ops);
      table.AddRow({label, Fmt(n_txns), Fmt(batched), Fmt(flushes),
                    Fmt(flushes > 0 ? static_cast<double>(batched) / flushes
                                    : 0.0)});
    }
    table.Print();
    std::printf(
        "\nShape check: slab beats map on churn and lookup; group commit "
        "amortizes one flush per transaction instead of per record.\n\n");
  }
}

void WriteReport(bool smoke) {
  axmlx::bench::JsonReport report("storage_hotpath", smoke);
  Document doc("root");
  const int iters = smoke ? 50 : 5000;
  axmlx::bench::MeasureThroughput(&report, "churn_latency_us", iters,
                                  [&] { ChurnSlab(&doc); });
  {
    Document lookup_doc("root");
    MapStore unused;
    std::vector<NodeId> ids, map_ids;
    BuildReadTree(&lookup_doc, &unused, smoke ? 8 : 128, smoke ? 8 : 128,
                  &ids, &map_ids);
    Shuffle(&ids);
    const int batches = smoke ? 20 : 500;
    int64_t hits = 0;
    axmlx::bench::MeasureThroughput(&report, "id_lookup_batch_us", batches,
                                    [&] { hits += LookupSweep(lookup_doc, ids, 1); });
    report.AddCounter("doc.lookup_elements_seen", hits);
  }
  const auto& st = doc.storage_stats();
  report.AddCounter("doc.nodes_allocated", st.nodes_allocated);
  report.AddCounter("doc.nodes_freed", st.nodes_freed);
  report.AddCounter("doc.slots_reused", st.slots_reused);
  report.AddCounter("doc.pages_allocated", st.pages_allocated);
  auto [flushes, batched] =
      WalWorkload(FlushPolicy::OnResolve(), smoke ? 5 : 50, 8);
  report.AddCounter("wal.flushes", flushes);
  report.AddCounter("wal.records_batched", batched);
  (void)report.Write();
}

void BM_SlabChurn(benchmark::State& state) {
  Document doc("root");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChurnSlab(&doc));
  }
}
BENCHMARK(BM_SlabChurn)->Unit(benchmark::kMicrosecond);

void BM_MapChurn(benchmark::State& state) {
  MapStore store;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChurnMap(&store));
  }
}
BENCHMARK(BM_MapChurn)->Unit(benchmark::kMicrosecond);

void BM_SlabLookup(benchmark::State& state) {
  Document doc("root");
  MapStore unused;
  std::vector<NodeId> ids, map_ids;
  BuildReadTree(&doc, &unused, 128, 128, &ids, &map_ids);
  Shuffle(&ids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LookupSweep(doc, ids, 1));
  }
}
BENCHMARK(BM_SlabLookup)->Unit(benchmark::kMicrosecond);

void BM_MapLookup(benchmark::State& state) {
  Document unused("root");
  MapStore store;
  std::vector<NodeId> ids, map_ids;
  BuildReadTree(&unused, &store, 128, 128, &ids, &map_ids);
  Shuffle(&map_ids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LookupSweep(store, map_ids, 1));
  }
}
BENCHMARK(BM_MapLookup)->Unit(benchmark::kMicrosecond);

void BM_WalCommit(benchmark::State& state) {
  FlushPolicy policy = state.range(0) == 0   ? FlushPolicy::EveryRecord()
                       : state.range(0) == 1 ? FlushPolicy::EveryN(8)
                                             : FlushPolicy::OnResolve();
  DurableStore store(FreshDir(), nullptr, policy);
  if (!store.Open().ok()) return;
  (void)store.CreateDocument("<Store><log/></Store>");
  int t = 0;
  for (auto _ : state) {
    std::string txn = "T" + std::to_string(t++);
    (void)store.Begin(txn);
    for (int i = 0; i < 8; ++i) {
      (void)store.Execute(
          txn, "Store",
          axmlx::ops::MakeInsert("Select d from d in Store//log",
                                 "<entry>payload</entry>"));
    }
    (void)store.Commit(txn);
  }
  state.SetLabel(state.range(0) == 0   ? "every-record"
                 : state.range(0) == 1 ? "every-8"
                                       : "on-resolve");
}
BENCHMARK(BM_WalCommit)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = axmlx::bench::StripSmokeFlag(&argc, argv);
  if (!smoke) PrintExperiment();
  WriteReport(smoke);
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
