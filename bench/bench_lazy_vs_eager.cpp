// Experiment E7 — lazy vs eager query evaluation (§3.1).
//
// "There are two possible modes for AXML query evaluation: lazy and eager.
// Of the two, lazy evaluation is the preferred mode and implies that only
// those embedded service calls are materialized whose results are required
// for evaluating the query."
//
// This bench sweeps the number of embedded calls per document and the
// query's selectivity (how many of those calls the query actually needs),
// and reports invocations performed, document growth, and the size of the
// compensation the query leaves behind.
//
// Expected shape: lazy invocations track the needed count k; eager always
// materializes all n calls, so its cost — including its compensation
// footprint — grows with n even for k=1 (the paper's Query A/B point).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "compensation/compensation.h"
#include "ops/executor.h"
#include "xml/builder.h"
#include "xml/parser.h"

namespace {

using axmlx::bench::Fmt;
using axmlx::bench::Table;

/// A document with `n` embedded calls, each producing a distinct output
/// element name fld0..fld{n-1}.
std::unique_ptr<axmlx::xml::Document> BuildDoc(int n) {
  auto doc = std::make_unique<axmlx::xml::Document>("Store");
  axmlx::xml::NodeId item =
      axmlx::xml::AddElement(doc.get(), doc->root(), "item");
  axmlx::xml::AddTextElement(doc.get(), item, "id", "1");
  for (int i = 0; i < n; ++i) {
    axmlx::xml::NodeId sc = axmlx::xml::AddElement(doc.get(), item, "axml:sc");
    (void)doc->SetAttribute(sc, "mode", "replace");
    (void)doc->SetAttribute(sc, "methodName", "get" + std::to_string(i));
    (void)doc->SetAttribute(sc, "outputName", "fld" + std::to_string(i));
    axmlx::xml::AddTextElement(doc.get(), sc, "fld" + std::to_string(i),
                               "stale");
  }
  return doc;
}

axmlx::axml::ServiceInvoker FieldInvoker(int* invocations) {
  return [invocations](const axmlx::axml::ServiceRequest& request)
             -> axmlx::Result<axmlx::axml::ServiceResponse> {
    ++*invocations;
    std::string field = "fld" + request.method_name.substr(3);
    axmlx::axml::ServiceResponse response;
    auto frag =
        axmlx::xml::Parse("<r><" + field + ">fresh</" + field + "></r>");
    if (!frag.ok()) return frag.status();
    response.fragment = std::move(frag).value();
    return response;
  };
}

std::string QueryNeeding(int k) {
  std::string selects;
  for (int i = 0; i < k; ++i) {
    if (i > 0) selects += ", ";
    selects += "it/fld" + std::to_string(i);
  }
  return "Select " + selects + " from it in Store//item";
}

struct E7Row {
  int invocations = 0;
  size_t comp_ops = 0;
  size_t comp_cost = 0;
};

E7Row Run(int n, int k, bool eager) {
  auto doc = BuildDoc(n);
  int invocations = 0;
  axmlx::ops::Executor executor(doc.get(), FieldInvoker(&invocations));
  axmlx::ops::Operation query =
      axmlx::ops::MakeQuery(QueryNeeding(k), eager);
  auto effect = executor.Execute(query);
  E7Row row;
  if (!effect.ok()) return row;
  row.invocations = invocations;
  axmlx::comp::CompensationPlan plan =
      axmlx::comp::CompensationBuilder::ForEffect(*effect);
  row.comp_ops = plan.operations.size();
  row.comp_cost = plan.cost_nodes;
  return row;
}

void PrintExperiment() {
  std::printf(
      "E7: lazy vs eager evaluation — service calls invoked and the "
      "compensation footprint a single query leaves behind\n\n");
  Table table({"embedded calls n", "query needs k", "mode", "invocations",
               "comp ops", "comp cost (nodes)"});
  for (int n : {4, 16, 64}) {
    for (int k : {1, n / 2, n}) {
      for (bool eager : {false, true}) {
        E7Row row = Run(n, k, eager);
        table.AddRow({Fmt(n), Fmt(k), eager ? "eager" : "lazy",
                      Fmt(row.invocations), Fmt(row.comp_ops),
                      Fmt(row.comp_cost)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nShape check (paper): lazy invokes exactly k calls (Query A "
      "materializes getGrandSlamsWonbyYear and not getPoints); eager always "
      "invokes n, and its compensation footprint grows with n even when "
      "the query needed one field.\n\n");
}

/// Machine-readable report: lazy-query latency at n=16, k=1 and the
/// invocation/compensation comparison against eager evaluation.
void WriteReport(bool smoke) {
  axmlx::bench::JsonReport report("lazy_vs_eager", smoke);
  axmlx::bench::MeasureThroughput(&report, "lazy_query_latency_us",
                                  smoke ? 3 : 15,
                                  [] { (void)Run(16, 1, /*eager=*/false); });
  E7Row lazy = Run(16, 1, /*eager=*/false);
  report.AddCounter("lazy.invocations", lazy.invocations);
  report.AddCounter("lazy.comp_cost_nodes",
                    static_cast<int64_t>(lazy.comp_cost));
  E7Row eager = Run(16, 1, /*eager=*/true);
  report.AddCounter("eager.invocations", eager.invocations);
  report.AddCounter("eager.comp_cost_nodes",
                    static_cast<int64_t>(eager.comp_cost));
  (void)report.Write();
}

void BM_LazyQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    E7Row row = Run(n, 1, /*eager=*/false);
    benchmark::DoNotOptimize(row.invocations);
  }
}
BENCHMARK(BM_LazyQuery)->Arg(4)->Arg(16)->Arg(64)->Unit(
    benchmark::kMicrosecond);

void BM_EagerQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    E7Row row = Run(n, 1, /*eager=*/true);
    benchmark::DoNotOptimize(row.invocations);
  }
}
BENCHMARK(BM_EagerQuery)->Arg(4)->Arg(16)->Arg(64)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = axmlx::bench::StripSmokeFlag(&argc, argv);
  if (!smoke) PrintExperiment();
  WriteReport(smoke);
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
