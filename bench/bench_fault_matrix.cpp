// Experiment E-F — fault matrix: atomicity under injected overlay faults.
//
// Sweeps the fault-injection layer across message drop/duplication rates,
// a repeating partition schedule, and periodic crash-restarts (WAL-backed
// recovery), running the chained peer-independent protocol on a uniform
// service tree. The headline column is `violations`: peers whose document
// state disagrees with the transaction decisions. The paper's atomicity
// argument (§3.2-§3.3) predicts this is zero in every cell — the process
// exits non-zero if any cell disagrees, so CI can gate on it.
//
// A second section checks the tick-delivery optimisation: a message flood
// through peers that never opted into ticks must record tick_calls == 0
// (delivery cost no longer scales with overlay size).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/metric_names.h"
#include "obs/timeline.h"
#include "overlay/network.h"
#include "repo/fault_drill.h"

namespace {

using axmlx::bench::Fmt;
using axmlx::bench::Table;
using axmlx::repo::FaultDrill;
using axmlx::repo::FaultDrillOptions;
using axmlx::repo::FaultDrillReport;

int total_violations = 0;
bool tick_check_failed = false;

FaultDrillOptions MatrixOptions(const std::string& label, uint64_t seed) {
  FaultDrillOptions options;
  options.seed = seed;
  options.storage_dir = "/tmp/axmlx_bench_fault_" + label;
  options.depth = 1;
  options.fanout = 3;
  options.transactions = 12;
  return options;
}

void AddMatrixRow(Table* table, const std::string& label,
                  const FaultDrillOptions& options) {
  FaultDrill drill(options);
  auto report = drill.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "fault drill '%s' failed: %s\n", label.c_str(),
                 report.status().ToString().c_str());
    ++total_violations;
    return;
  }
  total_violations += report->violations;
  table->AddRow({label, Fmt(options.drop_rate), Fmt(options.dup_rate),
                 options.partition_every > 0 ? "yes" : "no",
                 options.crash_every > 0 ? "yes" : "no",
                 Fmt(report->committed), Fmt(report->aborted),
                 Fmt(report->undecided),
                 Fmt(report->faults.dropped + report->faults.duplicated +
                     report->faults.partition_blocked),
                 Fmt(report->restarts), Fmt(report->wal_replayed_ops),
                 Fmt(report->violations)});
  for (const std::string& detail : report->violation_details) {
    std::fprintf(stderr, "VIOLATION [%s]: %s\n", label.c_str(),
                 detail.c_str());
  }
}

void RunMatrix() {
  std::printf(
      "Experiment E-F: atomicity under injected faults (chained protocol, "
      "peer-independent commit, replicas, reliable control channel).\n"
      "Uniform tree depth 1 / fanout 3; 12 transactions per cell.\n\n");

  Table table({"cell", "drop", "dup", "partition", "crash", "commit",
               "abort", "undecided", "faults", "restarts", "wal_ops",
               "violations"});

  const double drops[] = {0.0, 0.05, 0.2};
  const double dups[] = {0.0, 0.1};
  int cell = 0;
  for (double drop : drops) {
    for (double dup : dups) {
      std::string label = "d" + std::to_string(static_cast<int>(drop * 100)) +
                          "u" + std::to_string(static_cast<int>(dup * 100));
      FaultDrillOptions options = MatrixOptions(label, 9000 + cell++);
      options.drop_rate = drop;
      options.dup_rate = dup;
      options.delay_max = 3;
      AddMatrixRow(&table, label, options);
    }
  }

  {
    FaultDrillOptions options = MatrixOptions("partition", 9100);
    options.partition_every = 2;
    AddMatrixRow(&table, "partition", options);
  }
  {
    FaultDrillOptions options = MatrixOptions("crash", 9200);
    options.crash_every = 2;
    AddMatrixRow(&table, "crash-restart", options);
  }
  {
    FaultDrillOptions options = MatrixOptions("chaos", 9300);
    options.drop_rate = 0.05;
    options.dup_rate = 0.05;
    options.delay_max = 3;
    options.partition_every = 3;
    options.crash_every = 4;
    AddMatrixRow(&table, "chaos", options);
  }

  table.Print();
  std::printf(
      "\nShape check (paper): `violations` is 0 in every cell — drops and "
      "partitions abort cleanly via timeout + compensation, duplicates are "
      "absorbed by at-most-once delivery, and crashed peers rejoin from "
      "their WAL without tearing committed state.\n\n");
}

/// A peer that never opts into ticks: delivering to it must not trigger
/// periodic work anywhere.
class FloodSink : public axmlx::overlay::PeerNode {
 public:
  explicit FloodSink(axmlx::overlay::PeerId id)
      : PeerNode(std::move(id), /*super_peer=*/false) {}
  void OnMessage(const axmlx::overlay::Message&,
                 axmlx::overlay::Network*) override {
    ++received;
  }
  int64_t received = 0;
};

void RunTickCheck() {
  constexpr int kPeers = 64;
  constexpr int kMessages = 200000;

  axmlx::overlay::Network net(7);
  std::vector<FloodSink*> sinks;
  for (int i = 0; i < kPeers; ++i) {
    auto sink = std::make_unique<FloodSink>("N" + std::to_string(i));
    sinks.push_back(sink.get());
    net.AddPeer(std::move(sink));
  }

  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kMessages; ++i) {
    axmlx::overlay::Message m;
    m.from = "N" + std::to_string(i % kPeers);
    m.to = "N" + std::to_string((i + 1) % kPeers);
    m.type = "FLOOD";
    (void)net.Send(std::move(m));
    if (i % 1024 == 0) net.RunUntilQuiescent();
  }
  net.RunUntilQuiescent();
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();

  int64_t delivered = 0;
  for (const FloodSink* sink : sinks) delivered += sink->received;
  const int64_t tick_calls = net.stats().tick_calls;

  std::printf(
      "Tick opt-in check: %d messages across %d peers delivered in %.3fs "
      "(%.0f msg/s); tick_calls = %lld (expected 0: nobody subscribed).\n",
      kMessages, kPeers, elapsed,
      static_cast<double>(delivered) / elapsed,
      static_cast<long long>(tick_calls));
  if (tick_calls != 0) {
    std::fprintf(stderr,
                 "FAIL: delivery ticked %lld times with no subscribers — "
                 "per-delivery cost scales with overlay size again.\n",
                 static_cast<long long>(tick_calls));
    tick_check_failed = true;
  }
}

/// Machine-readable report: one drop+dup drill cell — wall latency, verdict
/// counters, and the drill's own txn-duration histogram (simulation ticks)
/// pulled straight from its metrics registry.
void WriteReport(bool smoke) {
  axmlx::bench::JsonReport report("fault_matrix", smoke);
  uint64_t seed = 9700;
  axmlx::bench::MeasureThroughput(
      &report, "drill_latency_us", smoke ? 2 : 5, [&] {
        FaultDrillOptions options = MatrixOptions("report", seed++);
        options.transactions = smoke ? 4 : 12;
        options.drop_rate = 0.05;
        options.dup_rate = 0.1;
        options.delay_max = 3;
        FaultDrill drill(options);
        (void)drill.Run();
      });
  FaultDrillOptions options = MatrixOptions("report", 9800);
  options.transactions = smoke ? 4 : 12;
  options.drop_rate = 0.05;
  options.dup_rate = 0.1;
  options.delay_max = 3;
  FaultDrill drill(options);
  auto drill_report = drill.Run();
  if (drill_report.ok()) {
    report.AddCounter("committed", drill_report->committed);
    report.AddCounter("aborted", drill_report->aborted);
    report.AddCounter("undecided", drill_report->undecided);
    report.AddCounter("violations", drill_report->violations);
    report.AddCounter("faults_injected",
                      drill_report->faults.dropped +
                          drill_report->faults.duplicated);
    const axmlx::obs::MetricsSnapshot metrics = drill.metrics().Snapshot();
    auto hist = metrics.histograms.find("drill.txn_duration_ticks");
    if (hist != metrics.histograms.end()) {
      report.AddHistogram("txn_duration_ticks", hist->second);
    }
    // Per-phase critical-path breakdown (simulation ticks): where the
    // drill's end-to-end latency actually went.
    auto total = metrics.histograms.find(axmlx::obs::kMetricTxnLatencyTotal);
    if (total != metrics.histograms.end()) {
      report.AddHistogram(axmlx::obs::kMetricTxnLatencyTotal, total->second);
    }
    for (int i = 0; i < axmlx::obs::kPhaseCount; ++i) {
      auto phase = metrics.histograms.find(axmlx::obs::PhaseMetricName(i));
      if (phase != metrics.histograms.end()) {
        report.AddHistogram(axmlx::obs::PhaseMetricName(i), phase->second);
      }
    }
    // Perfetto-loadable timeline of the same run, for axmlx_report
    // --critical-path / --check.
    std::ofstream trace("TRACE_fault_matrix.json",
                        std::ios::binary | std::ios::trunc);
    if (trace) trace << drill.repo().BuildTrace();
  }
  (void)report.Write();
}

void BM_FaultDrillDropDup(benchmark::State& state) {
  int iter = 0;
  for (auto _ : state) {
    FaultDrillOptions options =
        MatrixOptions("bm", 9500 + static_cast<uint64_t>(iter++));
    options.transactions = 4;
    options.drop_rate = 0.05;
    options.dup_rate = 0.1;
    FaultDrill drill(options);
    auto report = drill.Run();
    if (report.ok()) benchmark::DoNotOptimize(report->committed);
  }
}
BENCHMARK(BM_FaultDrillDropDup)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = axmlx::bench::StripSmokeFlag(&argc, argv);
  if (smoke) {
    WriteReport(true);
    return 0;
  }
  RunMatrix();
  RunTickCheck();
  WriteReport(false);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (total_violations > 0) {
    std::fprintf(stderr, "\nFAIL: %d atomicity violation(s) in the fault "
                 "matrix.\n", total_violations);
    return 1;
  }
  if (tick_check_failed) return 1;
  std::printf("\nPASS: zero atomicity violations across the fault matrix; "
              "ticks stay opt-in.\n");
  return 0;
}
