// Flight-recorder overhead — the always-on observability budget.
//
// The flight recorder stamps a fixed-size event into a preallocated ring on
// every hot-path action (WAL append/flush, operation execution, message
// send/receive), so it must be cheap enough to leave on everywhere. This
// bench drives the two hottest instrumented paths — DurableStore
// transactions (WAL + executor events) and indexed query evaluation
// (OP_EXEC events) — with the recorder attached and detached, and enforces
// the budget: recorder-on throughput within kBudgetPct of recorder-off.
//
// The measurement alternates off/on rounds and keeps each side's best rate
// (best-of-N damps scheduler noise; alternation damps thermal drift). The
// binary exits 1 when either workload exceeds the budget, so check.sh can
// gate on it, and writes BENCH_obs_overhead.json with both rates plus the
// overhead percentages for the baseline diff pipeline.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "bench/bench_util.h"
#include "obs/flight_recorder.h"
#include "obs/timeline.h"
#include "ops/executor.h"
#include "ops/operation.h"
#include "query/eval.h"
#include "storage/durable_store.h"
#include "xml/builder.h"
#include "xml/document.h"

namespace {

using axmlx::bench::Fmt;
using axmlx::bench::Table;
using axmlx::storage::DurableStore;
using axmlx::storage::FlushPolicy;
using axmlx::xml::Document;

constexpr double kBudgetPct = 5.0;  ///< Max allowed recorder-on slowdown.
// Alternating off/on rounds per path. Best-of-N only defeats transient
// machine load if at least one "on" round lands in a quiet window, so err
// on the side of more short rounds rather than fewer long ones.
constexpr int kRounds = 5;

int g_dir_counter = 0;

std::string FreshDir() {
  std::string dir =
      "/tmp/axmlx_bench_obs_overhead_" + std::to_string(g_dir_counter++);
  std::string cleanup = "rm -rf " + dir;
  (void)std::system(cleanup.c_str());
  return dir;
}

template <typename Fn>
double TimeUs(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             t1 - t0)
      .count();
}

double OpsPerSec(int iters, double total_us) {
  return total_us > 0 ? iters * 1e6 / total_us : 0;
}

/// Storage hot path: `txns` small committed transactions (4 inserts each)
/// against a fresh store, instrumentation attached or not. The "on" config
/// is the full shipping set — flight recorder plus phase timeline (per-txn
/// window + WAL_APPEND/FLUSH_WAIT markers), so the budget covers
/// critical-path accounting too. Returns txns/sec.
double StorageRate(bool with_recorder, int txns) {
  DurableStore store(FreshDir(), nullptr, FlushPolicy::OnResolve());
  if (!store.Open().ok()) return 0;
  (void)store.CreateDocument("<Store><log/></Store>");
  axmlx::obs::FlightRecorder recorder;
  axmlx::obs::Timeline timeline;
  if (with_recorder) {
    store.AttachRecorder(&recorder);
    store.AttachTimeline(&timeline);
  }
  double us = TimeUs([&] {
    for (int t = 0; t < txns; ++t) {
      std::string txn = "T" + std::to_string(t);
      if (with_recorder) timeline.BeginTxn(txn, timeline.now());
      (void)store.Begin(txn);
      for (int i = 0; i < 4; ++i) {
        (void)store.Execute(
            txn, "Store",
            axmlx::ops::MakeInsert("Select d from d in Store//log",
                                   "<entry>payload</entry>"));
      }
      (void)store.Commit(txn);
      if (with_recorder) timeline.EndTxn(txn, timeline.now());
    }
  });
  return OpsPerSec(txns, us);
}

/// Query hot path: `iters` indexed-evaluator queries over a ~4k-node
/// document, recorder attached or not. Returns queries/sec.
double QueryRate(bool with_recorder, int iters) {
  Document doc("Store");
  for (int s = 0; s < 32; ++s) {
    axmlx::xml::NodeId sec =
        axmlx::xml::AddElement(&doc, doc.root(), "section");
    for (int i = 0; i < 32; ++i) {
      (void)axmlx::xml::AddTextElement(&doc, sec, "entry", "payload");
    }
  }
  axmlx::ops::Executor executor(&doc, /*invoker=*/nullptr);
  axmlx::query::EvalContext ctx;
  executor.SetEvalContext(&ctx);
  axmlx::obs::FlightRecorder recorder;
  if (with_recorder) executor.SetRecorder(&recorder);
  axmlx::ops::Operation op =
      axmlx::ops::MakeQuery("Select e from e in Store//entry");
  double us = TimeUs([&] {
    for (int i = 0; i < iters; ++i) {
      (void)executor.Execute(op);
    }
  });
  return OpsPerSec(iters, us);
}

/// Best-of-kRounds for both recorder states, alternating off/on.
template <typename RateFn>
std::pair<double, double> BestRates(RateFn&& rate, int iters) {
  double best_off = 0;
  double best_on = 0;
  for (int r = 0; r < kRounds; ++r) {
    best_off = std::max(best_off, rate(false, iters));
    best_on = std::max(best_on, rate(true, iters));
  }
  return {best_off, best_on};
}

double OverheadPct(double off, double on) {
  if (off <= 0) return 0;
  double pct = (off - on) / off * 100.0;
  return pct < 0 ? 0 : pct;  // measured faster with recorder = noise, not win
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = axmlx::bench::StripSmokeFlag(&argc, argv);
  const int storage_txns = smoke ? 80 : 600;
  const int query_iters = smoke ? 300 : 3000;

  auto [storage_off, storage_on] = BestRates(StorageRate, storage_txns);
  auto [query_off, query_on] = BestRates(QueryRate, query_iters);
  const double storage_pct = OverheadPct(storage_off, storage_on);
  const double query_pct = OverheadPct(query_off, query_on);

  std::printf(
      "Flight-recorder overhead: instrumented hot paths with the recorder "
      "attached vs detached (budget %.1f%%)\n\n",
      kBudgetPct);
  Table table({"hot path", "iters", "off ops/sec", "on ops/sec", "overhead"});
  table.AddRow({"storage txn", Fmt(storage_txns), Fmt(storage_off),
                Fmt(storage_on), Fmt(storage_pct) + "%"});
  table.AddRow({"indexed query", Fmt(query_iters), Fmt(query_off),
                Fmt(query_on), Fmt(query_pct) + "%"});
  table.Print();

  axmlx::bench::JsonReport report("obs_overhead", smoke);
  {
    // The recorder-on storage path doubles as the report's throughput
    // metric, so baseline diffs track the instrumented (shipping) config.
    DurableStore store(FreshDir(), nullptr, FlushPolicy::OnResolve());
    (void)store.Open();
    (void)store.CreateDocument("<Store><log/></Store>");
    axmlx::obs::FlightRecorder recorder;
    store.AttachRecorder(&recorder);
    int t = 0;
    axmlx::bench::MeasureThroughput(
        &report, "storage_txn_latency_us", smoke ? 40 : 400, [&] {
          std::string txn = "T" + std::to_string(t++);
          (void)store.Begin(txn);
          for (int i = 0; i < 4; ++i) {
            (void)store.Execute(
                txn, "Store",
                axmlx::ops::MakeInsert("Select d from d in Store//log",
                                       "<entry>payload</entry>"));
          }
          (void)store.Commit(txn);
        });
  }
  report.AddCounter("storage.ops_per_sec_off",
                    static_cast<int64_t>(storage_off));
  report.AddCounter("storage.ops_per_sec_on",
                    static_cast<int64_t>(storage_on));
  report.AddCounter("storage.overhead_pct_x100",
                    static_cast<int64_t>(storage_pct * 100));
  report.AddCounter("query.ops_per_sec_off", static_cast<int64_t>(query_off));
  report.AddCounter("query.ops_per_sec_on", static_cast<int64_t>(query_on));
  report.AddCounter("query.overhead_pct_x100",
                    static_cast<int64_t>(query_pct * 100));
  report.AddCounter("budget_pct_x100", static_cast<int64_t>(kBudgetPct * 100));
  (void)report.Write();

  if (storage_pct > kBudgetPct || query_pct > kBudgetPct) {
    std::fprintf(stderr,
                 "FAIL: flight-recorder overhead exceeds %.1f%% budget "
                 "(storage %.2f%%, query %.2f%%)\n",
                 kBudgetPct, storage_pct, query_pct);
    return 1;
  }
  std::printf("\nBudget check: OK (storage %.2f%%, query %.2f%%, budget "
              "%.1f%%)\n",
              storage_pct, query_pct, kBudgetPct);
  return 0;
}
