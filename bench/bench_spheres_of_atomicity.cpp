// Experiment E9 — Spheres of Atomicity (§3.3, after Alonso & Hagen [18]).
//
// "It might not be possible to guarantee atomicity as long as peer
// disconnection is possible. Here, we can use the notions of Spheres of
// Atomicity to check if atomicity is guaranteed, e.g., atomicity may still
// be guaranteed for a transaction if all the involved peers are super
// peers."
//
// This bench sweeps the super-peer fraction f in random service trees and
// measures (i) the fraction of transactions whose chain passes the
// all-super-peer check, and (ii) the empirically observed atomicity
// violations (stranded, uncompensated work) when ordinary peers disconnect
// with a fixed probability mid-transaction.
//
// Expected shape: the guaranteed fraction rises steeply with f (every peer
// in the chain must be super); observed violations fall to zero at f=1.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "repo/axml_repository.h"
#include "repo/scenarios.h"

namespace {

using axmlx::Rng;
using axmlx::bench::Fmt;
using axmlx::bench::Table;
using axmlx::repo::AxmlRepository;
using axmlx::repo::ScenarioDocName;

/// Builds a random service tree with `peers` peers; each non-origin peer is
/// a super peer with probability f.
struct RandomOverlay {
  explicit RandomOverlay(uint64_t seed)
      : repo(std::make_unique<AxmlRepository>(seed)) {}
  std::unique_ptr<AxmlRepository> repo;
  std::vector<axmlx::overlay::PeerId> ids;
};

axmlx::Status BuildRandomOverlay(RandomOverlay* overlay, int peers, double f,
                                 Rng* rng) {
  for (int i = 0; i < peers; ++i) {
    axmlx::overlay::PeerId id = "N" + std::to_string(i);
    AxmlRepository::PeerConfig config;
    config.id = id;
    // The origin is always super (someone must survive to decide).
    config.super_peer = (i == 0) || rng->Bernoulli(f);
    config.protocol = AxmlRepository::Protocol::kRecovering;
    config.seed = rng->Next();
    AXMLX_RETURN_IF_ERROR(overlay->repo->AddPeer(config).status());
    AXMLX_RETURN_IF_ERROR(overlay->repo->HostDocument(
        id, "<" + ScenarioDocName(id) + "><log/></" + ScenarioDocName(id) +
                ">"));
    overlay->ids.push_back(id);
  }
  // Random tree: peer i's parent is a uniform pick among 0..i-1.
  std::vector<std::vector<int>> children(static_cast<size_t>(peers));
  for (int i = 1; i < peers; ++i) {
    children[rng->Uniform(static_cast<uint64_t>(i))].push_back(i);
  }
  for (int i = peers - 1; i >= 0; --i) {
    axmlx::service::ServiceDefinition def;
    def.name = "S";
    def.document = ScenarioDocName(overlay->ids[static_cast<size_t>(i)]);
    def.ops.push_back(axmlx::ops::MakeInsert(
        "Select d from d in " + def.document + "//log", "<entry>w</entry>"));
    def.duration = 5;
    for (int c : children[static_cast<size_t>(i)]) {
      def.subcalls.push_back(
          {overlay->ids[static_cast<size_t>(c)], "S", {}, {}});
    }
    AXMLX_RETURN_IF_ERROR(overlay->repo->HostService(
        overlay->ids[static_cast<size_t>(i)], std::move(def)));
  }
  return axmlx::Status::Ok();
}

struct E9Row {
  double guaranteed_pct = 0;
  double violation_pct = 0;
  double decided_pct = 0;
};

E9Row Sweep(double f, int trials) {
  E9Row row;
  int guaranteed = 0;
  int violations = 0;
  int decided = 0;
  for (int t = 0; t < trials; ++t) {
    Rng rng(static_cast<uint64_t>(t) * 31 + 7);
    RandomOverlay overlay(static_cast<uint64_t>(t) + 1);
    if (!BuildRandomOverlay(&overlay, 8, f, &rng).ok()) continue;
    auto chain = overlay.repo->directory().BuildChain("N0", "S");
    if (!chain.ok()) continue;
    if (chain->AtomicityGuaranteed()) ++guaranteed;
    // Each ordinary peer disconnects with probability 0.3 mid-transaction.
    for (const auto& id : overlay.ids) {
      if (overlay.repo->FindPeer(id)->super_peer()) continue;
      if (rng.Bernoulli(0.3)) {
        overlay.repo->network().DisconnectAt(
            static_cast<axmlx::overlay::Tick>(2 + rng.Uniform(20)), id);
      }
    }
    auto outcome = overlay.repo->RunTransaction("N0", "TA", "S");
    if ((*outcome).decided) ++decided;
    // Violation: stranded work — a connected peer still holding <entry>
    // rows although the transaction did not commit, or a disconnected peer
    // that had done work.
    if (!(*outcome).status.ok()) {
      bool stranded = false;
      for (const auto& id : overlay.ids) {
        if (!overlay.repo->network().IsConnected(id)) {
          const axmlx::txn::PeerStats& stats =
              overlay.repo->FindPeer(id)->stats();
          if (stats.wasted_nodes == 0 && stats.nodes_compensated == 0) {
            // Peer may have done work that was never undone.
            const axmlx::xml::Document* doc =
                overlay.repo->FindPeer(id)->repository().GetDocument(
                    ScenarioDocName(id));
            doc->Walk(doc->root(), [&stranded](const axmlx::xml::Node& n) {
              if (n.is_element() && n.name == "entry") stranded = true;
              return true;
            });
          }
        }
      }
      if (stranded) ++violations;
    }
  }
  row.guaranteed_pct = 100.0 * guaranteed / trials;
  row.violation_pct = 100.0 * violations / trials;
  row.decided_pct = 100.0 * decided / trials;
  return row;
}

void PrintExperiment() {
  constexpr int kTrials = 100;
  std::printf(
      "E9: Spheres of Atomicity — random 8-peer service trees, ordinary "
      "peers disconnect w.p. 0.3 (%d trials per point)\n\n",
      kTrials);
  Table table({"super-peer fraction f", "atomicity guaranteed %",
               "observed violations %", "decided %"});
  for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    E9Row row = Sweep(f, kTrials);
    table.AddRow({Fmt(f), Fmt(row.guaranteed_pct), Fmt(row.violation_pct),
                  Fmt(row.decided_pct)});
  }
  table.Print();
  std::printf(
      "\nShape check (paper): the all-super-peer check passes more often as "
      "f grows (sharply, since *every* chain member must be super), and at "
      "f=1 no disconnections — hence no violations — are possible.\n\n");
}

/// Machine-readable report: one random-overlay transaction's latency and a
/// small sweep at f=0.5 (guaranteed/violation/decided percentages).
void WriteReport(bool smoke) {
  axmlx::bench::JsonReport report("spheres_of_atomicity", smoke);
  int t = 0;
  axmlx::bench::MeasureThroughput(
      &report, "txn_latency_us", smoke ? 3 : 10, [&] {
        Rng rng(static_cast<uint64_t>(t++));
        RandomOverlay overlay(static_cast<uint64_t>(t));
        if (!BuildRandomOverlay(&overlay, 8, 0.5, &rng).ok()) return;
        (void)overlay.repo->RunTransaction("N0", "TA", "S");
      });
  const int trials = smoke ? 5 : 25;
  E9Row row = Sweep(0.5, trials);
  report.AddCounter("trials", trials);
  report.AddCounter("guaranteed_pct",
                    static_cast<int64_t>(row.guaranteed_pct));
  report.AddCounter("violation_pct", static_cast<int64_t>(row.violation_pct));
  report.AddCounter("decided_pct", static_cast<int64_t>(row.decided_pct));
  (void)report.Write();
}

void BM_RandomOverlayTransaction(benchmark::State& state) {
  int t = 0;
  for (auto _ : state) {
    Rng rng(static_cast<uint64_t>(t++));
    RandomOverlay overlay(static_cast<uint64_t>(t));
    if (!BuildRandomOverlay(&overlay, 8, 0.5, &rng).ok()) continue;
    auto outcome = overlay.repo->RunTransaction("N0", "TA", "S");
    benchmark::DoNotOptimize((*outcome).decided);
  }
}
BENCHMARK(BM_RandomOverlayTransaction)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = axmlx::bench::StripSmokeFlag(&argc, argv);
  if (!smoke) PrintExperiment();
  WriteReport(smoke);
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
