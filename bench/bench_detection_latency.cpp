// Experiment E11 (extension) — detection latency vs wasted effort.
//
// §3.3's objective is twofold: "minimize loss of effort by detecting the
// disconnection **as soon as possible** and reuse already performed work as
// much as possible". The reuse half is measured by E6; this bench
// quantifies the detection half: how the keep-alive/ping interval trades
// messages for detection latency and time-to-decision in the Figure 2
// case-(c) scenario (AP3 dies while its subtree still works).
//
// Expected shape: detection latency is bounded by the ping interval;
// shorter intervals decide sooner at a small message premium, and an
// infinite interval (no pings) never decides.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "repo/axml_repository.h"
#include "repo/scenarios.h"

namespace {

using axmlx::bench::Fmt;
using axmlx::bench::Table;
using axmlx::repo::AxmlRepository;
using axmlx::repo::BuildFigureTwo;
using axmlx::repo::kTxnName;
using axmlx::repo::ScenarioOptions;

struct E11Row {
  std::string outcome;
  long long detect = -1;
  long long decide = 0;
  long long messages = 0;
  size_t wasted = 0;
};

E11Row Run(axmlx::overlay::Tick keepalive) {
  AxmlRepository repo(1);
  ScenarioOptions options;
  options.protocol = AxmlRepository::Protocol::kChained;
  options.duration = 40;
  options.add_replicas = true;
  options.handlers_retry_on_replica = true;
  options.peer_options.use_chaining = true;
  options.peer_options.keepalive_interval = keepalive;
  E11Row row;
  if (!BuildFigureTwo(&repo, options).ok()) {
    row.outcome = "BUILD_FAIL";
    return row;
  }
  repo.network().DisconnectAt(5, "AP3");
  auto outcome = repo.RunTransaction("AP1", kTxnName, "S1");
  row.outcome = !(*outcome).decided ? "STUCK"
                : (*outcome).status.ok() ? "COMMITTED"
                                         : "ABORTED";
  row.decide = (*outcome).duration;
  row.messages = (*outcome).messages;
  for (const axmlx::TraceEvent& e : repo.trace().events()) {
    if (e.kind == "PING_TIMEOUT" && row.detect < 0) row.detect = e.time;
  }
  for (const axmlx::overlay::PeerId& id : repo.network().peer_ids()) {
    row.wasted += repo.FindPeer(id)->stats().wasted_nodes;
  }
  return row;
}

void PrintExperiment() {
  std::printf(
      "E11 (extension): ping interval vs detection latency and "
      "time-to-decision (Figure 2 case (c), AP3 dies at t=5, services run "
      "40 ticks)\n\n");
  Table table({"ping interval", "outcome", "t(detect)", "t(decide)",
               "wasted nodes", "msgs"});
  for (axmlx::overlay::Tick interval : {1, 2, 5, 10, 20, 40}) {
    E11Row row = Run(interval);
    table.AddRow({Fmt(static_cast<long long>(interval)), row.outcome,
                  row.detect < 0 ? "-" : Fmt(row.detect), Fmt(row.decide),
                  Fmt(row.wasted), Fmt(row.messages)});
  }
  {
    E11Row row = Run(0);  // no detection at all
    table.AddRow({"none", row.outcome, row.detect < 0 ? "-" : Fmt(row.detect),
                  Fmt(row.decide), Fmt(row.wasted), Fmt(row.messages)});
  }
  table.Print();
  std::printf(
      "\nShape check (paper): detection latency is bounded by the ping "
      "interval and the decision time tracks it; with no pings at all the "
      "chained protocol still recovers — but only at the latest possible "
      "moment, when AP6's result-return fails — so \"detecting the "
      "disconnection as soon as possible\" is what shortens recovery.\n\n");
}

/// Machine-readable report: case-(c) wall latency at ping interval 2 plus
/// the detection/decision ticks for a short and a long ping interval.
void WriteReport(bool smoke) {
  axmlx::bench::JsonReport report("detection_latency", smoke);
  axmlx::bench::MeasureThroughput(&report, "case_c_latency_us", smoke ? 3 : 10,
                                  [] { (void)Run(2); });
  E11Row fast = Run(2);
  report.AddCounter("ping2.detect_tick", fast.detect);
  report.AddCounter("ping2.decide_tick", fast.decide);
  report.AddCounter("ping2.wasted_nodes", static_cast<int64_t>(fast.wasted));
  E11Row slow = Run(20);
  report.AddCounter("ping20.detect_tick", slow.detect);
  report.AddCounter("ping20.decide_tick", slow.decide);
  report.AddCounter("ping20.wasted_nodes", static_cast<int64_t>(slow.wasted));
  (void)report.Write();
}

void BM_CaseCDetection(benchmark::State& state) {
  const auto interval = static_cast<axmlx::overlay::Tick>(state.range(0));
  for (auto _ : state) {
    E11Row row = Run(interval);
    benchmark::DoNotOptimize(row.decide);
  }
}
BENCHMARK(BM_CaseCDetection)->Arg(2)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = axmlx::bench::StripSmokeFlag(&argc, argv);
  if (!smoke) PrintExperiment();
  WriteReport(smoke);
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
