// Experiment E1 — Figure 1, the nested recovery protocol (§3.2).
//
// Reproduces the paper's Figure 1 scenario (AP5 fails while processing S5
// as part of transaction TA) under every recovery configuration the section
// discusses, and reports the protocol metrics the paper argues about
// qualitatively: how far the abort propagates, how much work is undone
// ("undo only as much as required"), and what forward recovery saves.
//
// Expected shape: with no handlers the abort reaches the origin and all six
// peers roll back; a handler at AP3 confines the rollback to {AP5, AP6}; a
// handler at AP1 confines it to AP3's subtree; a replica retry commits with
// zero lost work at the healthy peers.

#include <benchmark/benchmark.h>

#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "repo/axml_repository.h"
#include "repo/scenarios.h"

namespace {

using axmlx::bench::Fmt;
using axmlx::bench::Table;
using axmlx::repo::AxmlRepository;
using axmlx::repo::BuildFigureOne;
using axmlx::repo::kTxnName;
using axmlx::repo::ScenarioOptions;

const std::vector<axmlx::overlay::PeerId> kPeers = {"AP1", "AP2", "AP3",
                                                    "AP4", "AP5", "AP6"};

struct RunMetrics {
  std::string outcome;
  int aborts_sent = 0;
  int contexts_aborted = 0;
  int forward_recoveries = 0;
  int retries = 0;
  size_t nodes_compensated = 0;
  size_t surviving_work = 0;  // <entry> rows kept across all peers
  long long messages = 0;
  long long decision_time = 0;
};

size_t CountEntries(AxmlRepository* repo, const axmlx::overlay::PeerId& id) {
  axmlx::txn::AxmlPeer* peer = repo->FindPeer(id);
  if (peer == nullptr) return 0;
  size_t total = 0;
  for (const std::string& name : peer->repository().DocumentNames()) {
    const axmlx::xml::Document* doc = peer->repository().GetDocument(name);
    doc->Walk(doc->root(), [&total](const axmlx::xml::Node& n) {
      if (n.is_element() && n.name == "entry") ++total;
      return true;
    });
  }
  return total;
}

RunMetrics RunScenario(const ScenarioOptions& options) {
  AxmlRepository repo(options.seed);
  axmlx::Status built = BuildFigureOne(&repo, options);
  RunMetrics metrics;
  if (!built.ok()) {
    metrics.outcome = "BUILD_FAIL";
    return metrics;
  }
  auto outcome = repo.RunTransaction("AP1", kTxnName, "S1");
  metrics.outcome = !outcome->decided ? "STUCK"
                    : outcome->status.ok() ? "COMMITTED"
                                           : "ABORTED";
  metrics.messages = outcome->messages;
  metrics.decision_time = outcome->duration;
  for (const auto& id : kPeers) {
    const axmlx::txn::PeerStats& stats = repo.FindPeer(id)->stats();
    metrics.aborts_sent += stats.aborts_sent;
    metrics.contexts_aborted += stats.contexts_aborted;
    metrics.forward_recoveries += stats.forward_recoveries;
    metrics.retries += stats.retries;
    metrics.nodes_compensated += stats.nodes_compensated;
    metrics.surviving_work += CountEntries(&repo, id);
  }
  for (const auto& id : kPeers) {
    if (repo.FindPeer(id + "R") != nullptr) {
      metrics.surviving_work += CountEntries(&repo, id + "R");
    }
  }
  return metrics;
}

void PrintExperiment() {
  std::printf(
      "E1 / Figure 1: nested recovery for transaction TA after AP5 fails in "
      "S5\n"
      "Topology: AP1 -> {S2@AP2, S3@AP3}; AP3 -> {S4@AP4, S5@AP5}; "
      "AP5 -> S6@AP6; 2 inserts (4 nodes) per service.\n\n");
  Table table({"recovery configuration", "outcome", "aborts", "ctx aborted",
               "fwd recov", "retries", "nodes undone", "work kept", "msgs",
               "t(decide)"});

  auto add_row = [&table](const std::string& label,
                          const ScenarioOptions& options) {
    RunMetrics m = RunScenario(options);
    table.AddRow({label, m.outcome, Fmt(m.aborts_sent),
                  Fmt(m.contexts_aborted), Fmt(m.forward_recoveries),
                  Fmt(m.retries), Fmt(m.nodes_compensated),
                  Fmt(m.surviving_work), Fmt(m.messages),
                  Fmt(m.decision_time)});
  };

  {
    ScenarioOptions options;  // healthy run for reference
    add_row("no failure (reference)", options);
  }
  {
    ScenarioOptions options;
    options.s5_fault_probability = 1.0;
    add_row("S5 fails, no handlers (backward to origin)", options);
  }
  {
    ScenarioOptions options;
    options.s5_fault_probability = 1.0;
    options.s5_handler_at_ap3 = true;
    add_row("S5 fails, handler at AP3 (forward recovery, step 3)", options);
  }
  {
    ScenarioOptions options;
    options.s5_fault_probability = 1.0;
    options.s3_handler_at_ap1 = true;
    add_row("S5 fails, handler at AP1 (forward recovery, step 4)", options);
  }
  {
    ScenarioOptions options;
    options.s5_fault_probability = 1.0;
    options.s5_handler_at_ap3 = true;
    options.peer_options.peer_independent = true;
    add_row("S5 fails, handler at AP3 + peer-independent comp.", options);
  }
  table.Print();
  std::printf(
      "\nShape check (paper): handlers higher in the tree save more work; "
      "no-handler runs undo everything (24 nodes) and reach the origin.\n\n");
}

/// Replays the no-handler full-abort scenario and dumps the causal span log
/// so `axmlx_report SPANS_fig1_nested_recovery.jsonl` renders the Figure 1
/// invocation tree with the AP5 -> AP3 -> AP1 abort-propagation path.
void WriteSpanLog() {
  AxmlRepository repo(1);
  ScenarioOptions options;
  options.s5_fault_probability = 1.0;
  if (!BuildFigureOne(&repo, options).ok()) return;
  (void)repo.RunTransaction("AP1", kTxnName, "S1");
  std::ofstream out("SPANS_fig1_nested_recovery.jsonl",
                    std::ios::binary | std::ios::trunc);
  if (out) out << repo.spans().ToJsonl();
}

/// Machine-readable report: throughput/latency of the full-abort scenario
/// plus the protocol counters for one abort run and one forward-recovery
/// run (see the table for the full sweep).
void WriteReport(bool smoke) {
  axmlx::bench::JsonReport report("fig1_nested_recovery", smoke);
  ScenarioOptions abort_options;
  abort_options.s5_fault_probability = 1.0;
  axmlx::bench::MeasureThroughput(&report, "txn_latency_us", smoke ? 3 : 15,
                                  [&] { (void)RunScenario(abort_options); });
  RunMetrics full_abort = RunScenario(abort_options);
  report.AddCounter("abort.aborts_sent", full_abort.aborts_sent);
  report.AddCounter("abort.contexts_aborted", full_abort.contexts_aborted);
  report.AddCounter("abort.nodes_compensated",
                    static_cast<int64_t>(full_abort.nodes_compensated));
  report.AddCounter("abort.messages", full_abort.messages);
  ScenarioOptions recover_options;
  recover_options.s5_fault_probability = 1.0;
  recover_options.s5_handler_at_ap3 = true;
  RunMetrics recovered = RunScenario(recover_options);
  report.AddCounter("recovery.forward_recoveries",
                    recovered.forward_recoveries);
  report.AddCounter("recovery.retries", recovered.retries);
  report.AddCounter("recovery.nodes_compensated",
                    static_cast<int64_t>(recovered.nodes_compensated));
  report.AddCounter("recovery.work_kept",
                    static_cast<int64_t>(recovered.surviving_work));
  (void)report.Write();
}

void BM_Fig1HealthyTransaction(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioOptions options;
    options.seed = 17;
    RunMetrics m = RunScenario(options);
    benchmark::DoNotOptimize(m.surviving_work);
  }
}
BENCHMARK(BM_Fig1HealthyTransaction)->Unit(benchmark::kMicrosecond);

void BM_Fig1FullAbort(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioOptions options;
    options.s5_fault_probability = 1.0;
    RunMetrics m = RunScenario(options);
    benchmark::DoNotOptimize(m.nodes_compensated);
  }
}
BENCHMARK(BM_Fig1FullAbort)->Unit(benchmark::kMicrosecond);

void BM_Fig1ForwardRecovery(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioOptions options;
    options.s5_fault_probability = 1.0;
    options.s5_handler_at_ap3 = true;
    RunMetrics m = RunScenario(options);
    benchmark::DoNotOptimize(m.forward_recoveries);
  }
}
BENCHMARK(BM_Fig1ForwardRecovery)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = axmlx::bench::StripSmokeFlag(&argc, argv);
  if (!smoke) PrintExperiment();
  WriteReport(smoke);
  WriteSpanLog();
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
