#ifndef AXMLX_BENCH_BENCH_UTIL_H_
#define AXMLX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <initializer_list>
#include <string>
#include <type_traits>
#include <vector>

namespace axmlx::bench {

/// Minimal fixed-width table printer for experiment output. Every bench
/// prints its experiment rows through this, so EXPERIMENTS.md and the bench
/// logs share one format.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        if (row[i].size() > widths[i]) widths[i] = row[i].size();
      }
    }
    PrintRule(widths);
    PrintRow(headers_, widths);
    PrintRule(widths);
    for (const auto& row : rows_) PrintRow(row, widths);
    PrintRule(widths);
  }

 private:
  static void PrintRow(const std::vector<std::string>& cells,
                       const std::vector<size_t>& widths) {
    std::printf("|");
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      std::printf(" %-*s |", static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
  }
  static void PrintRule(const std::vector<size_t>& widths) {
    std::printf("+");
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}
template <typename T>
  requires std::is_integral_v<T>
std::string Fmt(T v) {
  return std::to_string(v);
}

}  // namespace axmlx::bench

#endif  // AXMLX_BENCH_BENCH_UTIL_H_
