#ifndef AXMLX_BENCH_BENCH_UTIL_H_
#define AXMLX_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace axmlx::bench {

/// Minimal fixed-width table printer for experiment output. Every bench
/// prints its experiment rows through this, so EXPERIMENTS.md and the bench
/// logs share one format.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        if (row[i].size() > widths[i]) widths[i] = row[i].size();
      }
    }
    PrintRule(widths);
    PrintRow(headers_, widths);
    PrintRule(widths);
    for (const auto& row : rows_) PrintRow(row, widths);
    PrintRule(widths);
  }

 private:
  static void PrintRow(const std::vector<std::string>& cells,
                       const std::vector<size_t>& widths) {
    std::printf("|");
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      std::printf(" %-*s |", static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
  }
  static void PrintRule(const std::vector<size_t>& widths) {
    std::printf("+");
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}
template <typename T>
  requires std::is_integral_v<T>
std::string Fmt(T v) {
  return std::to_string(v);
}

/// Removes `--smoke` from argv (so google benchmark never sees it) and
/// reports whether it was present. Call BEFORE benchmark::Initialize.
/// Smoke mode means: write the JSON report from a few iterations and skip
/// the full google-benchmark run — scripts/check.sh uses it to validate the
/// machine-readable pipeline quickly.
inline bool StripSmokeFlag(int* argc, char** argv) {
  bool smoke = false;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  argv[w] = nullptr;
  return smoke;
}

/// Microsecond-scale latency buckets shared by every bench histogram, wide
/// enough for whole simulated transactions (up to 2s per op). ~1.6x
/// log-spaced: the old 2-2.5x grid left medians inside buckets so wide
/// that reported p50s pinned to bounds (the concurrency baseline read
/// exactly 250000 for rounds whose true median was anywhere in
/// 100000..250000).
inline std::vector<int64_t> LatencyBucketsUs() {
  return {50,    80,    130,    200,    320,    500,    800,     1300,
          2000,  3200,  5000,   8000,   13000,  20000,  32000,   50000,
          80000, 130000, 200000, 320000, 500000, 800000, 1300000, 2000000};
}

/// Machine-readable bench report (schema "axmlx-bench-v1"). Every bench_*
/// binary writes BENCH_<name>.json into the working directory so
/// `axmlx_report --check` and downstream tooling can consume the numbers
/// without scraping tables.
class JsonReport {
 public:
  JsonReport(std::string name, bool smoke)
      : name_(std::move(name)), smoke_(smoke) {}

  /// Sets the headline `ops_per_sec` field only. Prefer SetWallOpsPerSec /
  /// SetSimOpsPerSec, which say which clock the rate is measured against —
  /// the one-field schema let bench_concurrency publish a rounds-per-second
  /// number (4.8) next to an ops-per-second narrative (~26k) for a full PR
  /// cycle before anyone noticed the units mismatch.
  void SetOpsPerSec(double ops) { ops_per_sec_ = ops; }

  /// Real operations retired per second of wall-clock time. Also sets the
  /// headline `ops_per_sec` (they are the same quantity; the separate field
  /// exists so readers can tell which clock they are looking at).
  void SetWallOpsPerSec(double ops) {
    wall_ops_per_sec_ = ops;
    has_wall_ = true;
    ops_per_sec_ = ops;
  }

  /// Operations per second of *simulated* time, with one simulation tick
  /// read as one microsecond. Orthogonal to the wall rate: sim-time
  /// throughput is deterministic (same protocol, same number) while the
  /// wall rate moves with the machine and the scheduling mode.
  void SetSimOpsPerSec(double ops) {
    sim_ops_per_sec_ = ops;
    has_sim_ = true;
  }
  void AddCounter(const std::string& name, int64_t value) {
    counters_.emplace_back(name, value);
  }
  void AddHistogram(const std::string& name,
                    const obs::HistogramSnapshot& snap) {
    histograms_.emplace_back(name, snap);
  }

  std::string ToJson() const {
    std::string out = "{\"schema\":\"axmlx-bench-v1\",\"bench\":\"" +
                      obs::JsonEscape(name_) + "\",\"smoke\":" +
                      (smoke_ ? "true" : "false") + ",\"ops_per_sec\":";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", ops_per_sec_);
    out += buf;
    if (has_wall_) {
      std::snprintf(buf, sizeof(buf), ",\"wall_ops_per_sec\":%.3f",
                    wall_ops_per_sec_);
      out += buf;
    }
    if (has_sim_) {
      std::snprintf(buf, sizeof(buf), ",\"sim_ops_per_sec\":%.3f",
                    sim_ops_per_sec_);
      out += buf;
    }
    out += ",\"counters\":{";
    for (size_t i = 0; i < counters_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + obs::JsonEscape(counters_[i].first) +
             "\":" + std::to_string(counters_[i].second);
    }
    out += "},\"histograms\":{";
    for (size_t i = 0; i < histograms_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + obs::JsonEscape(histograms_[i].first) +
             "\":" + histograms_[i].second.ToJson();
    }
    out += "}}\n";
    return out;
  }

  /// Writes BENCH_<name>.json; returns false (and warns) on I/O failure so
  /// a read-only working directory degrades the report, not the bench.
  bool Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    out << ToJson();
    return out.good();
  }

 private:
  std::string name_;
  bool smoke_ = false;
  double ops_per_sec_ = 0;
  double wall_ops_per_sec_ = 0;
  double sim_ops_per_sec_ = 0;
  bool has_wall_ = false;
  bool has_sim_ = false;
  std::vector<std::pair<std::string, int64_t>> counters_;
  std::vector<std::pair<std::string, obs::HistogramSnapshot>> histograms_;
};

/// Runs `fn` `iters` times against the wall clock, records each call's
/// latency into histogram `hist_name` (microseconds), and sets the report's
/// wall ops/sec from the total. The histogram snapshot lands in the report
/// too. Returns total elapsed wall seconds so a caller whose iteration
/// retires more than one operation can overwrite the rate with the true
/// per-operation number (`report->SetWallOpsPerSec(ops / seconds)`).
template <typename Fn>
double MeasureThroughput(JsonReport* report, const std::string& hist_name,
                         int iters, Fn&& fn) {
  obs::Histogram hist(LatencyBucketsUs());
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    const auto s = std::chrono::steady_clock::now();
    fn();
    const auto e = std::chrono::steady_clock::now();
    hist.Observe(
        std::chrono::duration_cast<std::chrono::microseconds>(e - s).count());
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double total_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  report->SetWallOpsPerSec(total_s > 0 ? iters / total_s : 0);
  report->AddHistogram(hist_name, hist.Snapshot());
  return total_s;
}

}  // namespace axmlx::bench

#endif  // AXMLX_BENCH_BENCH_UTIL_H_
