// Experiment E6 — chaining minimizes loss of effort (§3.3).
//
// "The main objective of the proposed solution is to minimize loss of
// effort by detecting the disconnection as soon as possible and reuse
// already performed work as much as possible."
//
// This bench quantifies both halves on the Figure 2 topology across the
// disconnection cases: wasted work (nodes done then discarded), work reused
// (reroutes + adoptions + reused subcalls), detection latency, and whether
// the transaction decides at all — for the chained protocol, the chained
// protocol with reuse disabled, and the no-chaining baseline.
//
// Expected shape: chained+reuse wastes (near) nothing and always decides;
// disabling reuse keeps decisions but discards the subtree's work; no
// chaining without keep-alive hangs in the child-detected cases.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "repo/axml_repository.h"
#include "repo/scenarios.h"

namespace {

using axmlx::bench::Fmt;
using axmlx::bench::Table;
using axmlx::repo::AxmlRepository;
using axmlx::repo::BuildFigureTwo;
using axmlx::repo::kTxnName;
using axmlx::repo::ScenarioOptions;

struct Config {
  bool chained = true;
  bool reuse = true;
  axmlx::overlay::Tick keepalive = 0;
};

struct E6Row {
  std::string outcome;
  size_t wasted = 0;
  int reused = 0;
  long long detect_time = -1;
  long long decide_time = 0;
};

E6Row Run(const Config& config, axmlx::overlay::Tick disconnect_at,
          const axmlx::overlay::PeerId& victim,
          axmlx::overlay::Tick duration) {
  AxmlRepository repo(1);
  ScenarioOptions options;
  options.protocol = config.chained ? AxmlRepository::Protocol::kChained
                                    : AxmlRepository::Protocol::kRecovering;
  options.duration = duration;
  options.add_replicas = true;
  options.handlers_retry_on_replica = true;
  options.peer_options.use_chaining = config.chained;
  options.peer_options.reuse_work = config.reuse;
  options.peer_options.keepalive_interval = config.keepalive;
  E6Row row;
  if (!BuildFigureTwo(&repo, options).ok()) {
    row.outcome = "BUILD_FAIL";
    return row;
  }
  repo.network().DisconnectAt(disconnect_at, victim);
  auto outcome = repo.RunTransaction("AP1", kTxnName, "S1");
  row.outcome = !(*outcome).decided ? "STUCK"
                : (*outcome).status.ok() ? "COMMITTED"
                                         : "ABORTED";
  row.decide_time = (*outcome).duration;
  for (const axmlx::TraceEvent& e : repo.trace().events()) {
    if ((e.kind == "PING_TIMEOUT" || e.kind == "SEND_FAIL") &&
        row.detect_time < 0) {
      row.detect_time = e.time;
    }
  }
  for (const axmlx::overlay::PeerId& id : repo.network().peer_ids()) {
    const axmlx::txn::PeerStats& stats = repo.FindPeer(id)->stats();
    row.wasted += stats.wasted_nodes;
    row.reused += stats.results_rerouted + stats.subcalls_reused +
                  stats.adoptions;
  }
  return row;
}

void PrintExperiment() {
  std::printf(
      "E6: wasted vs reused work under disconnection (Figure 2, AP3 dies "
      "at t=5)\n\n");
  Table table({"scenario", "protocol", "outcome", "wasted nodes",
               "work reused", "t(detect)", "t(decide)"});
  struct Scenario {
    const char* name;
    axmlx::overlay::Tick keepalive;
    axmlx::overlay::Tick duration;
  };
  // Case (b) timing: no keep-alive; detection only via AP6's failed result
  // return. Case (c) timing: keep-alive pings at the parent, AP6 mid-flight.
  const Scenario scenarios[] = {
      {"(b) detection by returning child", 0, 10},
      {"(c) detection by pinging parent", 4, 20},
  };
  for (const Scenario& s : scenarios) {
    const Config configs[] = {
        {true, true, s.keepalive},    // chained + reuse
        {true, false, s.keepalive},   // chained, reuse disabled
        {false, true, s.keepalive},   // no chaining
    };
    const char* labels[] = {"chained+reuse", "chained, no reuse",
                            "no chaining"};
    for (int i = 0; i < 3; ++i) {
      E6Row row = Run(configs[i], 5, "AP3", s.duration);
      table.AddRow({s.name, labels[i], row.outcome, Fmt(row.wasted),
                    Fmt(row.reused),
                    row.detect_time < 0 ? "-" : Fmt(row.detect_time),
                    Fmt(row.decide_time)});
    }
  }
  table.Print();
  std::printf(
      "\nShape check (paper): chaining with reuse preserves AP6's work and "
      "commits; without reuse the work is redone or discarded; without "
      "chaining the case-(b) transaction hangs (detection never reaches "
      "AP2) and AP6's effort is lost.\n\n");
}

/// Machine-readable report: chained+reuse case (b) latency and the
/// wasted/reused comparison against the no-chaining baseline.
void WriteReport(bool smoke) {
  axmlx::bench::JsonReport report("chaining_reuse", smoke);
  axmlx::bench::MeasureThroughput(
      &report, "case_b_latency_us", smoke ? 3 : 10,
      [] { (void)Run({true, true, 0}, 5, "AP3", 10); });
  E6Row chained = Run({true, true, 0}, 5, "AP3", 10);
  report.AddCounter("chained.wasted_nodes",
                    static_cast<int64_t>(chained.wasted));
  report.AddCounter("chained.work_reused", chained.reused);
  E6Row unchained = Run({false, true, 0}, 5, "AP3", 10);
  report.AddCounter("no_chaining.wasted_nodes",
                    static_cast<int64_t>(unchained.wasted));
  report.AddCounter("no_chaining.work_reused", unchained.reused);
  (void)report.Write();
}

void BM_ChainedReuseCaseB(benchmark::State& state) {
  for (auto _ : state) {
    E6Row row = Run({true, true, 0}, 5, "AP3", 10);
    benchmark::DoNotOptimize(row.reused);
  }
}
BENCHMARK(BM_ChainedReuseCaseB)->Unit(benchmark::kMillisecond);

void BM_NoChainingCaseB(benchmark::State& state) {
  for (auto _ : state) {
    E6Row row = Run({false, true, 0}, 5, "AP3", 10);
    benchmark::DoNotOptimize(row.wasted);
  }
}
BENCHMARK(BM_NoChainingCaseB)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = axmlx::bench::StripSmokeFlag(&argc, argv);
  if (!smoke) PrintExperiment();
  WriteReport(smoke);
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
