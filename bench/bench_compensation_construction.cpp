// Experiment E3 — dynamic compensation construction (§3.1).
//
// The paper's claim: compensating operations for AXML cannot be predefined
// statically — query evaluation materializes service calls at run time, so
// the inverse must be constructed from the log. This bench measures the
// cost of doing that (construction + application) across document sizes and
// operation mixes, verifies exact restoration, and reports how many logged
// effects a *static* compensation scheme could have covered at all.
//
// Expected shape: construction cost scales with the affected-node count,
// not the document size; static coverage drops as the query/materialization
// share of the workload grows (to 0% for pure query workloads).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "compensation/compensation.h"
#include "ops/executor.h"
#include "ops/op_log.h"
#include "xml/builder.h"
#include "xml/parser.h"

namespace {

using axmlx::Rng;
using axmlx::bench::Fmt;
using axmlx::bench::Table;

/// Builds a player-list document with `players` entries, each with an
/// embedded (refreshable) points service call.
std::unique_ptr<axmlx::xml::Document> BuildDoc(int players) {
  auto doc = std::make_unique<axmlx::xml::Document>("ATPList");
  for (int i = 0; i < players; ++i) {
    axmlx::xml::NodeId player =
        axmlx::xml::AddElement(doc.get(), doc->root(), "player");
    axmlx::xml::NodeId name =
        axmlx::xml::AddElement(doc.get(), player, "name");
    axmlx::xml::AddTextElement(doc.get(), name, "lastname",
                               "player" + std::to_string(i));
    axmlx::xml::AddTextElement(doc.get(), player, "citizenship",
                               "country" + std::to_string(i % 20));
    axmlx::xml::NodeId sc = axmlx::xml::AddElement(doc.get(), player,
                                                   "axml:sc");
    (void)doc->SetAttribute(sc, "mode", "replace");
    (void)doc->SetAttribute(sc, "methodName", "getPoints");
    (void)doc->SetAttribute(sc, "outputName", "points");
    axmlx::xml::AddTextElement(doc.get(), sc, "points",
                               std::to_string(100 + i));
  }
  return doc;
}

axmlx::axml::ServiceInvoker PointsInvoker() {
  return [](const axmlx::axml::ServiceRequest& request)
             -> axmlx::Result<axmlx::axml::ServiceResponse> {
    (void)request;
    axmlx::axml::ServiceResponse response;
    auto frag = axmlx::xml::Parse("<r><points>999</points></r>");
    if (!frag.ok()) return frag.status();
    response.fragment = std::move(frag).value();
    return response;
  };
}

axmlx::ops::Operation RandomOp(Rng* rng, int players, double query_share) {
  std::string who = "player" + std::to_string(rng->Uniform(
                                   static_cast<uint64_t>(players)));
  if (rng->UniformDouble() < query_share) {
    return axmlx::ops::MakeQuery(
        "Select p/points from p in ATPList//player "
        "where p/name/lastname = " + who);
  }
  switch (rng->Uniform(3)) {
    case 0:
      return axmlx::ops::MakeDelete(
          "Select p/citizenship from p in ATPList//player "
          "where p/name/lastname = " + who);
    case 1:
      return axmlx::ops::MakeInsert(
          "Select p from p in ATPList//player "
          "where p/name/lastname = " + who,
          "<tag>t" + std::to_string(rng->Uniform(50)) + "</tag>");
    default:
      return axmlx::ops::MakeReplace(
          "Select p/name/lastname from p in ATPList//player "
          "where p/name/lastname = " + who,
          "<lastname>" + who + "</lastname>");
  }
}

struct E3Row {
  int players = 0;
  int ops = 0;
  double query_share = 0;
  size_t plan_ops = 0;
  size_t plan_cost = 0;
  double static_coverage = 0;  // % of effects a static scheme could invert
  bool restored = false;
};

E3Row RunOnce(int players, int n_ops, double query_share, uint64_t seed) {
  Rng rng(seed);
  auto doc = BuildDoc(players);
  auto snapshot = doc->Clone();
  axmlx::ops::Executor executor(doc.get(), PointsInvoker());
  axmlx::ops::OpLog log;
  int static_coverable = 0;
  for (int i = 0; i < n_ops; ++i) {
    auto effect = executor.Execute(RandomOp(&rng, players, query_share));
    if (!effect.ok()) continue;
    // A statically predefined compensator exists only for plain updates
    // whose evaluation did not materialize anything (§3.1).
    if (effect->op.type != axmlx::ops::ActionType::kQuery &&
        effect->materialize_stats.calls_invoked == 0) {
      ++static_coverable;
    }
    log.Append(std::move(effect).value());
  }
  axmlx::comp::CompensationPlan plan =
      axmlx::comp::CompensationBuilder::ForLog(log);
  size_t nodes = 0;
  (void)axmlx::comp::ApplyPlan(&executor, plan, &nodes);
  E3Row row;
  row.players = players;
  row.ops = n_ops;
  row.query_share = query_share;
  row.plan_ops = plan.operations.size();
  row.plan_cost = plan.cost_nodes;
  row.static_coverage =
      log.empty() ? 100.0
                  : 100.0 * static_coverable / static_cast<double>(log.size());
  row.restored = axmlx::xml::Document::Equals(*doc, *snapshot);
  return row;
}

void PrintExperiment() {
  std::printf(
      "E3: dynamic compensation construction over document size and "
      "workload mix (20 ops per run)\n\n");
  Table table({"players (doc nodes)", "query share", "plan ops", "plan cost",
               "static coverage %", "restored exactly"});
  for (int players : {10, 100, 1000, 10000}) {
    for (double query_share : {0.0, 0.5, 1.0}) {
      E3Row row = RunOnce(players, 20, query_share, 42);
      table.AddRow({Fmt(players) + " (" + Fmt(players * 7 + 1) + ")",
                    Fmt(query_share), Fmt(row.plan_ops), Fmt(row.plan_cost),
                    Fmt(row.static_coverage), row.restored ? "yes" : "NO"});
    }
  }
  table.Print();
  std::printf(
      "\nShape check (paper): every run restores exactly; static coverage "
      "collapses once queries (with materialization) enter the mix, and the "
      "plan cost tracks nodes touched, not document size.\n\n");
}

/// Machine-readable report: execute-and-compensate latency at 100 players,
/// mixed workload, plus the plan shape and restoration check of one run.
void WriteReport(bool smoke) {
  axmlx::bench::JsonReport report("compensation_construction", smoke);
  uint64_t seed = 100;
  axmlx::bench::MeasureThroughput(
      &report, "compensate_latency_us", smoke ? 3 : 15,
      [&] { (void)RunOnce(100, 20, 0.5, seed++); });
  E3Row row = RunOnce(100, 20, 0.5, 42);
  report.AddCounter("plan_ops", static_cast<int64_t>(row.plan_ops));
  report.AddCounter("plan_cost_nodes", static_cast<int64_t>(row.plan_cost));
  report.AddCounter("restored_exactly", row.restored ? 1 : 0);
  report.AddCounter("static_coverage_pct",
                    static_cast<int64_t>(row.static_coverage));
  (void)report.Write();
}

void BM_ExecuteAndCompensate(benchmark::State& state) {
  const int players = static_cast<int>(state.range(0));
  for (auto _ : state) {
    E3Row row = RunOnce(players, 20, 0.5, 7);
    benchmark::DoNotOptimize(row.plan_cost);
  }
  state.SetLabel(std::to_string(players) + " players");
}
BENCHMARK(BM_ExecuteAndCompensate)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_PlanConstructionOnly(benchmark::State& state) {
  // Isolate ForLog: execute once, rebuild the plan repeatedly.
  Rng rng(3);
  auto doc = BuildDoc(200);
  axmlx::ops::Executor executor(doc.get(), PointsInvoker());
  axmlx::ops::OpLog log;
  for (int i = 0; i < 50; ++i) {
    auto effect = executor.Execute(RandomOp(&rng, 200, 0.4));
    if (effect.ok()) log.Append(std::move(effect).value());
  }
  for (auto _ : state) {
    axmlx::comp::CompensationPlan plan =
        axmlx::comp::CompensationBuilder::ForLog(log);
    benchmark::DoNotOptimize(plan.operations.size());
  }
}
BENCHMARK(BM_PlanConstructionOnly)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = axmlx::bench::StripSmokeFlag(&argc, argv);
  if (!smoke) PrintExperiment();
  WriteReport(smoke);
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
