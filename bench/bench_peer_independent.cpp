// Experiment E5 — peer-independent compensation under disconnection (§3.2,
// §3.3).
//
// In the Figure 1 scenario, S5's late fault forces the transaction to roll
// back work that AP2, AP4 and AP6 already completed. Each of those peers
// then disconnects, with probability p, right after returning its results —
// "compensation might lead to peer disconnection having an adverse affect
// even after the actual processing has completed".
//
// Peer-dependent compensation needs the original peer alive to replay its
// log; peer-independent compensation ships the compensating-service
// definition with the results, so the recovering peer can run it on the
// disconnected peer's replica.
//
// Expected shape: the peer-dependent success rate decays like
// (1-p)^3 as p grows; the peer-independent rate stays at 100%.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "repo/axml_repository.h"
#include "repo/scenarios.h"

namespace {

using axmlx::Rng;
using axmlx::bench::Fmt;
using axmlx::bench::Table;
using axmlx::repo::AxmlRepository;
using axmlx::repo::BuildFigureOne;
using axmlx::repo::kTxnName;
using axmlx::repo::ScenarioDocName;
using axmlx::repo::ScenarioOptions;

/// Workers that complete before the fault, with the tick right after their
/// RESULT leaves (duration 10, latency 1; see the timeline in the tests).
const std::vector<std::pair<axmlx::overlay::PeerId, axmlx::overlay::Tick>>
    kCompleters = {{"AP2", 12}, {"AP4", 13}, {"AP6", 14}};

size_t EntriesIn(const axmlx::xml::Document* doc) {
  if (doc == nullptr) return 0;
  size_t count = 0;
  doc->Walk(doc->root(), [&count](const axmlx::xml::Node& n) {
    if (n.is_element() && n.name == "entry") ++count;
    return true;
  });
  return count;
}

struct TrialResult {
  bool fully_recovered = false;
  size_t stranded_nodes = 0;
};

TrialResult RunTrial(double p, bool independent, uint64_t seed) {
  Rng rng(seed);
  AxmlRepository repo(seed);
  ScenarioOptions options;
  options.s5_fault_probability = 1.0;
  options.duration = 10;
  options.add_replicas = true;
  options.peer_options.peer_independent = independent;
  options.seed = seed;
  if (!BuildFigureOne(&repo, options).ok()) return {};
  for (const auto& [peer, when] : kCompleters) {
    if (rng.Bernoulli(p)) repo.network().DisconnectAt(when, peer);
  }
  (void)repo.RunTransaction("AP1", kTxnName, "S1");

  // The system's surviving copy of a disconnected peer's document is its
  // replica; for connected peers it is the peer's own document. Any <entry>
  // left there is stranded, uncompensated work.
  TrialResult result;
  size_t stranded = 0;
  for (const auto& [peer, when] : kCompleters) {
    const axmlx::overlay::PeerId host =
        repo.network().IsConnected(peer) ? peer : peer + "R";
    const axmlx::xml::Document* doc =
        repo.FindPeer(host)->repository().GetDocument(ScenarioDocName(peer));
    stranded += EntriesIn(doc);
  }
  result.stranded_nodes = stranded;
  result.fully_recovered = (stranded == 0);
  return result;
}

struct SweepRow {
  double success_rate = 0;
  double avg_stranded = 0;
};

SweepRow Sweep(double p, bool independent, int trials) {
  SweepRow row;
  int ok = 0;
  size_t stranded = 0;
  for (int i = 0; i < trials; ++i) {
    TrialResult r = RunTrial(p, independent, 1000 + static_cast<uint64_t>(i));
    if (r.fully_recovered) ++ok;
    stranded += r.stranded_nodes;
  }
  row.success_rate = 100.0 * ok / trials;
  row.avg_stranded = static_cast<double>(stranded) / trials;
  return row;
}

void PrintExperiment() {
  constexpr int kTrials = 200;
  std::printf(
      "E5: recovery success vs post-completion disconnection probability p "
      "(%d trials per point, Figure 1 with S5 failing late)\n\n",
      kTrials);
  Table table({"p(disconnect)", "mode", "fully recovered %",
               "avg stranded entries"});
  for (double p : {0.0, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    for (bool independent : {false, true}) {
      SweepRow row = Sweep(p, independent, kTrials);
      table.AddRow({Fmt(p), independent ? "peer-independent" : "peer-dependent",
                    Fmt(row.success_rate), Fmt(row.avg_stranded)});
    }
  }
  table.Print();
  std::printf(
      "\nShape check (paper): peer-dependent success decays ~ (1-p)^3 with "
      "three completed participants; peer-independent compensation (plans "
      "executed on replicas) stays at 100%%.\n\n");
}

/// Machine-readable report: per-trial latency at p=0.4 (peer-independent)
/// and the success/stranded comparison over a small sweep.
void WriteReport(bool smoke) {
  axmlx::bench::JsonReport report("peer_independent", smoke);
  uint64_t seed = 500;
  axmlx::bench::MeasureThroughput(
      &report, "trial_latency_us", smoke ? 3 : 10,
      [&] { (void)RunTrial(0.4, /*independent=*/true, seed++); });
  const int trials = smoke ? 5 : 25;
  SweepRow dependent = Sweep(0.4, /*independent=*/false, trials);
  SweepRow independent = Sweep(0.4, /*independent=*/true, trials);
  report.AddCounter("trials", trials);
  report.AddCounter("dependent.success_pct",
                    static_cast<int64_t>(dependent.success_rate));
  report.AddCounter("independent.success_pct",
                    static_cast<int64_t>(independent.success_rate));
  report.AddCounter("dependent.avg_stranded_x100",
                    static_cast<int64_t>(dependent.avg_stranded * 100));
  report.AddCounter("independent.avg_stranded_x100",
                    static_cast<int64_t>(independent.avg_stranded * 100));
  (void)report.Write();
}

void BM_TrialPeerDependent(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    TrialResult r = RunTrial(0.4, false, seed++);
    benchmark::DoNotOptimize(r.stranded_nodes);
  }
}
BENCHMARK(BM_TrialPeerDependent)->Unit(benchmark::kMillisecond);

void BM_TrialPeerIndependent(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    TrialResult r = RunTrial(0.4, true, seed++);
    benchmark::DoNotOptimize(r.stranded_nodes);
  }
}
BENCHMARK(BM_TrialPeerIndependent)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = axmlx::bench::StripSmokeFlag(&argc, argv);
  if (!smoke) PrintExperiment();
  WriteReport(smoke);
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
