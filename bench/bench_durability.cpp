// Experiment E10 (extension) — durability cost and recovery time.
//
// The paper's framework promises relaxed ACID; D rests on per-peer durable
// storage. This bench measures what the write-ahead log costs on the
// forward path and how recovery time scales with the volume of logged work
// (snapshot + logical redo + compensation of in-flight transactions).
//
// Expected shape: WAL overhead is a constant factor per operation; recovery
// time is linear in the number of WAL records and drops to ~zero right
// after a checkpoint.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "ops/operation.h"
#include "storage/durable_store.h"
#include "xml/builder.h"

namespace {

using axmlx::bench::Fmt;
using axmlx::bench::Table;
using axmlx::storage::DurableStore;

int g_dir_counter = 0;

std::string FreshDir() {
  std::string dir = "/tmp/axmlx_bench_store_" + std::to_string(g_dir_counter++);
  std::string cleanup = "rm -rf " + dir;
  (void)std::system(cleanup.c_str());
  return dir;
}

std::string StoreDoc() {
  return "<Store><log/></Store>";
}

axmlx::ops::Operation InsertOp(int i) {
  return axmlx::ops::MakeInsert(
      "Select d from d in Store//log",
      "<entry n=\"" + std::to_string(i) + "\">payload</entry>");
}

/// Runs `n_txns` transactions of `ops_per_txn` inserts; the last
/// `in_flight` transactions are left unresolved (simulated crash). Returns
/// the directory for reopening.
std::string Workload(int n_txns, int ops_per_txn, int in_flight,
                     bool checkpoint_at_end) {
  std::string dir = FreshDir();
  DurableStore store(dir, nullptr);
  if (!store.Open().ok()) return dir;
  (void)store.CreateDocument(StoreDoc());
  for (int t = 0; t < n_txns; ++t) {
    std::string txn = "T" + std::to_string(t);
    (void)store.Begin(txn);
    for (int i = 0; i < ops_per_txn; ++i) {
      (void)store.Execute(txn, "Store", InsertOp(t * ops_per_txn + i));
    }
    if (t < n_txns - in_flight) (void)store.Commit(txn);
  }
  if (checkpoint_at_end && in_flight == 0) (void)store.Checkpoint();
  return dir;
}

void PrintExperiment() {
  std::printf(
      "E10 (extension): WAL recovery time vs logged work "
      "(logical redo + compensation of in-flight transactions)\n\n");
  Table table({"txns in WAL", "in-flight at crash", "checkpointed",
               "replayed ops", "recovered txns", "reopen time (ms)"});
  for (int n_txns : {10, 100, 500}) {
    for (int in_flight : {0, 5}) {
      for (bool checkpointed : {false, true}) {
        if (checkpointed && in_flight > 0) continue;
        std::string dir = Workload(n_txns, 4, in_flight, checkpointed);
        auto start = std::chrono::steady_clock::now();
        DurableStore reopened(dir, nullptr);
        bool ok = reopened.Open().ok();
        auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        table.AddRow({Fmt(n_txns), Fmt(in_flight),
                      checkpointed ? "yes" : "no",
                      ok ? Fmt(reopened.stats().replayed_ops) : "ERR",
                      Fmt(reopened.stats().recovered_txns),
                      Fmt(elapsed / 1000.0)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nShape check: recovery time scales with WAL length; a checkpoint "
      "collapses it to a snapshot load; in-flight transactions add their "
      "compensation on top.\n\n");
}

/// Machine-readable report: WAL-recovery (reopen) latency on a fixed
/// workload plus the replay counters of one recovery.
void WriteReport(bool smoke) {
  axmlx::bench::JsonReport report("durability", smoke);
  const int n_txns = smoke ? 10 : 100;
  std::string dir = Workload(n_txns, 4, 2, /*checkpoint_at_end=*/false);
  axmlx::bench::MeasureThroughput(&report, "recovery_latency_us",
                                  smoke ? 3 : 10, [&] {
                                    DurableStore reopened(dir, nullptr);
                                    (void)reopened.Open();
                                  });
  DurableStore reopened(dir, nullptr);
  if (reopened.Open().ok()) {
    report.AddCounter("wal_txns", n_txns);
    report.AddCounter("replayed_ops",
                      static_cast<int64_t>(reopened.stats().replayed_ops));
    report.AddCounter("recovered_txns",
                      static_cast<int64_t>(reopened.stats().recovered_txns));
  }
  (void)report.Write();
}

void BM_ExecuteWithWal(benchmark::State& state) {
  std::string dir = FreshDir();
  DurableStore store(dir, nullptr);
  if (!store.Open().ok()) return;
  (void)store.CreateDocument(StoreDoc());
  (void)store.Begin("T");
  int i = 0;
  for (auto _ : state) {
    auto effect = store.Execute("T", "Store", InsertOp(i++));
    benchmark::DoNotOptimize(effect.ok());
  }
}
BENCHMARK(BM_ExecuteWithWal)->Unit(benchmark::kMicrosecond);

void BM_ExecuteInMemoryOnly(benchmark::State& state) {
  // Baseline: same operation stream without the WAL (plain executor).
  auto doc = std::make_unique<axmlx::xml::Document>("Store");
  axmlx::xml::AddElement(doc.get(), doc->root(), "log");
  axmlx::ops::Executor executor(doc.get(), nullptr);
  int i = 0;
  for (auto _ : state) {
    auto effect = executor.Execute(InsertOp(i++));
    benchmark::DoNotOptimize(effect.ok());
  }
}
BENCHMARK(BM_ExecuteInMemoryOnly)->Unit(benchmark::kMicrosecond);

void BM_Recovery(benchmark::State& state) {
  const int n_txns = static_cast<int>(state.range(0));
  std::string dir = Workload(n_txns, 4, 2, false);
  for (auto _ : state) {
    DurableStore reopened(dir, nullptr);
    benchmark::DoNotOptimize(reopened.Open().ok());
  }
  state.SetLabel(std::to_string(n_txns) + " txns in WAL");
}
BENCHMARK(BM_Recovery)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = axmlx::bench::StripSmokeFlag(&argc, argv);
  if (!smoke) PrintExperiment();
  WriteReport(smoke);
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
